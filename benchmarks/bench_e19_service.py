"""E19 — the sharded service: a 4-worker pool vs. one shared session.

The service exists so independent workloads get *independent* engine
state across real OS processes.  The measured scenario is the one the
ROADMAP's sharding item (and E18 before it) describes: **N independent
component builds** arrive interleaved at one endpoint.  Each build opens
every iteration with the deterministic ``reset`` discipline and then makes
repeated warm passes over its workload — gen/-generated closed programs
plus heavy arithmetic, as wire-format job streams (:mod:`repro.gen.jobs`).

* **pooled** — a :class:`repro.service.Dispatcher` with 4 worker
  processes.  Every job of a build carries the build's affinity key, so
  the whole stream shards to one worker: its warm memo caches keep
  hitting, and its resets cool exactly one session.
* **single-session** — the same interleaved stream through the in-process
  executor against one session (``api.execute_jobs(workers=0)``): the
  pre-service world, where every build's reset clobbers every other
  build's warm entries and heavy programs keep renormalizing from cold.

``test_service_throughput_gate`` is the acceptance gate: pooled
throughput (jobs/second over the whole stream) must be **≥ 2×** the
single-session baseline.  On a single-core host the entire speedup is the
cache-isolation structure (sharded sessions dodge cross-build resets); on
multi-core hosts true parallelism stacks on top — the gate is the floor.

The run also enforces the **determinism differential**: the deterministic
half of every pooled result — values, types, exact fuel-replay step
counts, error documents — must be byte-identical to the single-session
run, on every attempt and additionally under a different shard shape
(2 workers, hence different job→worker assignments and warmth).  The
stream deliberately includes failing and fuel-exhausted jobs so errors
cross the wire under the same contract.  Emits ``BENCH_service.json``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro import api
from repro.gen.jobs import interleave, job_corpus
from repro.service import Dispatcher
from repro.surface import to_surface
from workloads import bool_flip_tower, nat_sum

_ARTIFACT = pathlib.Path(__file__).with_name("BENCH_service.json")
_GATE = 2.0
_WORKERS = 4
_BUILDS = 4
_ITERATIONS = 3
_PASSES = 8
_ATTEMPTS = 3


def _pass_jobs(build: int) -> list[dict]:
    """One pass of build ``build``: a gen/ job plus heavy Church arithmetic.

    The heavy job is a ``bool_flip_tower`` — tens of thousands of
    reduction steps from ~200 bytes of program — so the cost of losing a
    warm memo entry dwarfs the per-job fixed costs (parse, render, IPC)
    that pooled and single-session runs pay identically.
    """
    from repro import cc

    key = f"build-{build}"
    jobs = job_corpus(900 + build, count=1, kinds=("normalize",), key=key)
    # α-distinct per build (a build-indexed ζ-wrapper): were two builds'
    # heavy programs α-equivalent, they would intern to one canonical term
    # and share one memo entry — letting the shared baseline warm one
    # build's jobs from another's work, which independent components in
    # separate sessions can never do.
    tower = cc.Let("build", cc.nat_literal(build), cc.Nat(), bool_flip_tower(14))
    jobs.append({"kind": "normalize", "program": to_surface(tower), "key": key})
    return jobs


def _error_jobs(build: int) -> list[dict]:
    """Deterministic failures ride along once per iteration: a type error
    and a fuel exhaustion must cross the wire byte-identically too."""
    key = f"build-{build}"
    return [
        {"kind": "check", "program": "0 0", "key": key},
        {"kind": "normalize", "program": to_surface(nat_sum(40)), "fuel": 25, "key": key},
    ]


def _stream(build: int) -> list[list[dict]]:
    """Build ``build`` as a list of pass-granular job groups.

    Each iteration opens with a ``reset`` job; the first iteration is
    shortened by a per-build stagger, desynchronizing the builds' reset
    points — aligned resets would let the shared baseline dodge most of
    its own cross-talk (exactly E18's discipline).
    """
    template = _pass_jobs(build)
    errors = _error_jobs(build)
    stagger = build * (_PASSES // _BUILDS)
    groups: list[list[dict]] = []
    for iteration in range(_ITERATIONS):
        passes = _PASSES - stagger if iteration == 0 else _PASSES
        for pass_index in range(passes):
            group = []
            jobs = list(template)
            if pass_index == 0:
                group.append(
                    {"kind": "reset", "key": f"build-{build}",
                     "id": f"b{build}-i{iteration}-reset"}
                )
                jobs = jobs + errors
            for job_index, spec in enumerate(jobs):
                stamped = dict(spec)
                stamped["id"] = f"b{build}-i{iteration}-p{pass_index}-{job_index}"
                group.append(stamped)
            groups.append(group)
    return groups


def _interleaved_stream() -> list[dict]:
    """All builds' passes, round-robin — the arrival order a service sees."""
    groups = interleave(_stream(build) for build in range(_BUILDS))
    return [job for group in groups for job in group]


def _run_pooled(jobs: list[dict], workers: int) -> tuple[float, list[dict], dict]:
    """Time one pooled run (pool spun up and health-checked untimed)."""
    with Dispatcher(workers=workers, engine="nbe") as pool:
        for slot in range(workers):
            assert pool.ping(slot, timeout=60.0), f"worker {slot} failed health check"
        start = time.perf_counter()
        results = pool.run_batch(jobs)
        elapsed = time.perf_counter() - start
        stats = pool.stats().to_dict()
    return elapsed, [result.canonical() for result in results], stats


def _run_solo(jobs: list[dict]) -> tuple[float, list[dict]]:
    """Time the same stream through one in-process session."""
    start = time.perf_counter()
    report = api.execute_jobs(jobs, workers=0)
    return time.perf_counter() - start, report.canonical()


def test_service_throughput_gate():
    """Acceptance: 4-worker pool ≥ 2× the single-session baseline, pooled
    results byte-identical to solo under every shard shape, artifact emitted.

    Like the other perf gates (E15/E17/E18), the timing comparison takes
    the best attempt out of three — one noisy scheduler slice must not
    fail CI — while the determinism differential must hold on *every*
    attempt.
    """
    jobs = _interleaved_stream()
    total_jobs = len(jobs)

    speedup = 0.0
    pooled_seconds = solo_seconds = float("inf")
    pool_stats: dict = {}
    identical = True
    for _attempt in range(_ATTEMPTS):
        attempt_solo, solo_canonical = _run_solo(jobs)
        attempt_pooled, pooled_canonical, attempt_stats = _run_pooled(jobs, _WORKERS)
        identical = identical and pooled_canonical == solo_canonical
        attempt_speedup = attempt_solo / attempt_pooled
        if attempt_speedup > speedup:
            speedup = attempt_speedup
            pooled_seconds, solo_seconds = attempt_pooled, attempt_solo
            pool_stats = attempt_stats
        if speedup >= _GATE:
            break

    # A different shard shape: different job→worker assignment, different
    # per-worker warmth — same bytes.
    _elapsed, reshard_canonical, _stats = _run_pooled(jobs, 2)
    _solo_elapsed, solo_canonical = _run_solo(jobs)
    reshard_identical = reshard_canonical == solo_canonical

    failed_jobs = sum(1 for document in solo_canonical if not document["ok"])

    _ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "e19_service",
                "schema": 1,
                "python": sys.version.split()[0],
                "workers": _WORKERS,
                "builds": _BUILDS,
                "iterations": _ITERATIONS,
                "passes_per_iteration": _PASSES,
                "total_jobs": total_jobs,
                "failing_jobs_in_stream": failed_jobs,
                "gate_speedup": _GATE,
                "pooled": {
                    "seconds": pooled_seconds,
                    "throughput_jobs_per_s": total_jobs / pooled_seconds,
                    "stats": pool_stats,
                },
                "single_session": {
                    "seconds": solo_seconds,
                    "throughput_jobs_per_s": total_jobs / solo_seconds,
                },
                "speedup": speedup,
                "determinism_identical": identical,
                "reshard_identical": reshard_identical,
            },
            indent=2,
        )
        + "\n"
    )

    assert identical, (
        "pooled results diverged from the single-session run — worker "
        "state leaked into a deterministic payload"
    )
    assert reshard_identical, (
        "a different shard assignment changed deterministic payloads — "
        "results depend on which worker ran a job"
    )
    assert failed_jobs > 0, "the differential stream must exercise error payloads"
    assert speedup >= _GATE, (
        f"pooled throughput only {speedup:.2f}x the single-session baseline "
        f"(gate {_GATE}x): sharding is not paying for itself"
    )


def test_crash_recovery_differential_small():
    """A worker crash mid-stream must not change any surviving payload
    (the service-level face of the worker-failure satellite)."""
    build_jobs = [
        {"id": f"c{index}", "kind": spec["kind"], "program": spec["program"],
         "key": "crash-build", **({"fuel": spec["fuel"]} if "fuel" in spec else {})}
        for index, spec in enumerate(_pass_jobs(0))
    ]
    jobs = build_jobs[:2] + [{"id": "boom", "kind": "crash", "key": "crash-build"}] + build_jobs[2:]
    survivors = [job for job in jobs if job["kind"] != "crash"]
    solo = api.execute_jobs(survivors, workers=0).canonical()
    with Dispatcher(workers=2, max_attempts=2) as pool:
        results = pool.run_batch(jobs)
        stats = pool.stats()
    by_id = {result.id: result.canonical() for result in results}
    assert not by_id["boom"]["ok"]
    assert [by_id[doc["id"]] for doc in solo] == solo
    assert stats.restarts >= 1
