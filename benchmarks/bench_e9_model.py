"""E9/E10 — the model (Figure 8) and the consistency/type-safety theorems.

Series: cost of decompiling compiler output back into CC and re-checking
it there (the executable content of Lemmas 4.2–4.6), plus the type-safety
observable (closed programs normalize to values).
"""

import pytest

from repro import cc, cccc
from repro.closconv import compile_term
from repro.model import decompile
from repro.properties import check_model_type_preservation, check_type_safety_of_target
from workloads import church_sum, nat_sum, nested_lambdas

_EMPTY = cc.Context.empty()


@pytest.mark.parametrize("depth", [2, 4, 8])
def test_decompile_nested(benchmark, depth):
    target = compile_term(_EMPTY, nested_lambdas(depth), verify=False).target
    benchmark.group = "E9 decompile"
    benchmark(lambda: decompile(target))


@pytest.mark.parametrize("depth", [2, 4, 8])
def test_model_type_preservation(benchmark, depth):
    result = compile_term(_EMPTY, nested_lambdas(depth), verify=False)
    benchmark.group = "E9 Lemma 4.6 check"
    assert benchmark(
        lambda: check_model_type_preservation(result.target_context, result.target)
    )


@pytest.mark.parametrize("n", [2, 4])
def test_model_church_roundtrip_runs(benchmark, n):
    """Decompiled programs still compute: e⁺° normalizes to the same value."""
    term = church_sum(n)
    target = compile_term(_EMPTY, term, verify=False).target
    image = decompile(target)

    benchmark.group = "E9 run decompiled"
    value = benchmark(lambda: cc.normalize(_EMPTY, image))
    assert cc.nat_value(value) == 2 * n


@pytest.mark.parametrize("n", [4, 8])
def test_type_safety_observable(benchmark, n):
    """Theorem 4.8: closed well-typed target programs reach values."""
    target = compile_term(_EMPTY, nat_sum(n), verify=False).target
    benchmark.group = "E10 Theorem 4.8 check"
    assert benchmark(lambda: check_type_safety_of_target(target))
