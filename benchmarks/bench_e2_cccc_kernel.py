"""E2 — the CC-CC kernel (paper Figures 5–7): checking code/closures and
running closure β-chains, including the closure η equivalence rules."""

import pytest

from repro import cc, cccc
from repro.closconv import compile_term
from repro.cccc.ntuple import bind_env, env_sigma, env_tuple
from workloads import church_sum, nat_sum, nested_lambdas

_EMPTY = cc.Context.empty()
_TARGET_EMPTY = cccc.Context.empty()


def _compiled(term: cc.Term) -> cccc.Term:
    return compile_term(_EMPTY, term, verify=False).target


@pytest.mark.parametrize("depth", [4, 8, 16])
def test_typecheck_compiled_lambdas(benchmark, depth):
    target = _compiled(nested_lambdas(depth))
    benchmark.group = "E2 infer(compiled nested_lambdas)"
    benchmark(lambda: cccc.infer(_TARGET_EMPTY, target))


@pytest.mark.parametrize("n", [2, 4, 8])
def test_typecheck_compiled_church(benchmark, n):
    target = _compiled(church_sum(n))
    benchmark.group = "E2 infer(compiled church_sum)"
    benchmark(lambda: cccc.infer(_TARGET_EMPTY, target))


@pytest.mark.parametrize("n", [4, 8, 16])
def test_normalize_compiled_nat_sum(benchmark, n):
    target = _compiled(nat_sum(n))
    benchmark.group = "E2 normalize(compiled nat_sum)"
    result = benchmark(lambda: cccc.normalize(_TARGET_EMPTY, target))
    assert cccc.nat_value(result) == 2 * n


@pytest.mark.parametrize("width", [2, 8, 16])
def test_closure_eta_equivalence(benchmark, width):
    """[≡-Clo]: compare a closure capturing `width` values against its
    fully inlined form."""
    telescope = [(f"y{i}", cccc.Nat()) for i in range(width)]
    captured = cccc.Clo(
        cccc.CodeLam(
            "n",
            env_sigma(telescope),
            "x",
            cccc.Nat(),
            bind_env(telescope, cccc.Var("n"), cccc.Var("y0")),
        ),
        env_tuple(telescope, [cccc.nat_literal(i) for i in range(width)]),
    )
    inlined = cccc.Clo(
        cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Zero()), cccc.UnitVal()
    )
    benchmark.group = "E2 closure-eta"
    assert benchmark(lambda: cccc.equivalent(_TARGET_EMPTY, captured, inlined))
