"""E24 — observability: profiling overhead, byte identity, trace determinism.

Three acceptance gates, one artifact (``BENCH_obs.json``):

* **Profiling-off overhead ≤ 5%.**  The observability hooks are slot
  checks (``repro.api._PROFILE``, ``machine.label_counts``), not imports:
  with no profile active, the E17/E23 execution workloads (machine
  interpretation and staged host closures of ``bool_flip_tower``) must
  run within ``1.05×`` of a baseline measured **before** ``repro.obs``
  has ever been imported into the process — the baseline literally *is*
  the pre-observability build, and the test asserts that with
  ``sys.modules``.

* **Byte identity with obs imported.**  With ``repro.obs`` imported and
  the profiler off, the generated service corpus must produce
  byte-identical canonical documents solo, pooled, warm-from-store
  (second run over the same persistent tier), and under a same-seed
  chaos plan — observability must be invisible to every determinism
  differential the service already gates.

* **Deterministic trace sections.**  Two same-seed chaos runs of a traced
  stream must produce byte-identical ``events`` sections (submit
  sequence, execution kind, completion ok/attempts) for every job, while
  wall-clock data stays confined to the ``timeline`` section
  (:func:`repro.obs.trace.validate_trace` on every trace).
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading
import time

from repro import api
from repro.api import Session
from repro.backend import compile_program
from repro.closconv import compile_term
from repro.machine import hoist, run
from repro.service.faults import FaultPlan
from workloads import bool_flip_tower

from repro import cc

_ARTIFACT = pathlib.Path(__file__).with_name("BENCH_obs.json")

_OVERHEAD_GATE = 1.05
_ATTEMPTS = 3
_REPS = 5
_TOWER = 10  # 2^10 flips: milliseconds-scale machine runs, stable best-of
_SEED = 2400
_WORKERS = 2


def _merge_artifact(section: str, payload: dict) -> None:
    """Fold one gate's results into the shared ``BENCH_obs.json``."""
    document = {"bench": "e24_obs", "schema": 1, "python": sys.version.split()[0]}
    if _ARTIFACT.exists():
        try:
            document.update(json.loads(_ARTIFACT.read_text()))
        except json.JSONDecodeError:
            pass  # a torn artifact from a crashed run: start over
    document[section] = payload
    _ARTIFACT.write_text(json.dumps(document, indent=2) + "\n")


# --------------------------------------------------------------------------
# Gate 1: profiling-off overhead vs. the never-imported baseline.
# --------------------------------------------------------------------------


def _time_executors(label_counts_on: bool = False) -> dict[str, float]:
    """Best-of timings of the two E23 executors on the shared tower.

    Timed in a fresh thread for the same reason E23 does: CPython's
    frame-chunk alignment depends on the caller's stack depth, and a
    fresh thread makes it deterministic.
    """
    session = Session(name="e24-overhead")
    box: dict[str, float] = {}

    def measure() -> None:
        with session.activate():
            program = hoist(
                compile_term(
                    cc.Context.empty(), bool_flip_tower(_TOWER), verify=False
                ).target
            )
            compiled = compile_program(program)
            counts = {} if label_counts_on else None
            best_machine = best_compiled = float("inf")
            for _ in range(_REPS):
                start = time.perf_counter()
                run(program, label_counts=counts)
                best_machine = min(best_machine, time.perf_counter() - start)
                start = time.perf_counter()
                compiled.execute()
                best_compiled = min(best_compiled, time.perf_counter() - start)
            box["machine"] = best_machine
            box["compiled"] = best_compiled

    thread = threading.Thread(target=measure, name="e24-time")
    thread.start()
    thread.join()
    return box


def test_profiling_off_overhead_gate():
    """Acceptance: with the profiler off, the hooks cost ≤ 5%."""
    # Phase A — the pre-observability baseline.  Nothing in the default
    # pipeline imports repro.obs; this assertion is the tentpole's
    # zero-cost-off contract and must hold before any timing does.
    assert "repro.obs" not in sys.modules, (
        "repro.obs was imported before the baseline phase — the default "
        "pipeline must never import the observability package"
    )
    payload: dict = {"attempts": []}
    passed = False
    for _ in range(_ATTEMPTS):
        baseline = _time_executors()

        # Phase B — import the package (and prove the slot round-trips),
        # then re-time with the profiler off.
        import repro.obs as obs

        with obs.activate() as profile:
            assert obs.active() is profile
        assert obs.active() is None

        off = _time_executors()
        ratios = {
            name: off[name] / baseline[name] for name in ("machine", "compiled")
        }
        payload["attempts"].append(
            {"baseline": baseline, "profiler_off": off, "ratios": ratios}
        )
        if all(ratio <= _OVERHEAD_GATE for ratio in ratios.values()):
            passed = True
            break
    # Informational: the cost of actually profiling (per-β label counts).
    payload["profiling_on"] = _time_executors(label_counts_on=True)
    payload["gate"] = _OVERHEAD_GATE
    payload["tower"] = _TOWER
    payload["passed"] = passed
    _merge_artifact("overhead", payload)
    last = payload["attempts"][-1]["ratios"]
    assert passed, (
        f"profiler-off overhead exceeded {_OVERHEAD_GATE}x in every attempt: {last}"
    )


# --------------------------------------------------------------------------
# Gate 2: byte identity with repro.obs imported, profiler off.
# --------------------------------------------------------------------------


def _jobs() -> list[dict]:
    from repro.gen.jobs import job_corpus

    jobs: list[dict] = []
    for build in range(2):
        template = job_corpus(
            _SEED + build, count=3, kinds=("normalize", "check", "run"), key=f"obs-{build}"
        )
        for pass_index in range(2):
            for job_index, spec in enumerate(template):
                stamped = dict(spec)
                stamped["id"] = f"b{build}-p{pass_index}-{job_index}"
                jobs.append(stamped)
    jobs.append({"id": "ill-typed", "kind": "check", "program": "0 0"})
    return jobs


def _chaos_plan(jobs: list[dict]) -> FaultPlan:
    """Healing faults only (kills, store errors): canonical bytes survive."""
    return FaultPlan.generate(
        _SEED,
        [spec["id"] for spec in jobs],
        kills=2,
        store_read_errors=1,
        store_write_errors=1,
    )


def test_byte_identity_with_obs_imported(tmp_path):
    """Acceptance: obs imported + profiler off is invisible on the wire."""
    import repro.obs  # noqa: F401  (imported is the point)

    jobs = _jobs()
    solo = api.execute_jobs(jobs).canonical()
    pooled = api.execute_jobs(jobs, workers=_WORKERS).canonical()

    store = tmp_path / "obs-memo.sqlite"
    cold = api.execute_jobs(jobs, memo_store=str(store)).canonical()
    warm = api.execute_jobs(jobs, memo_store=str(store)).canonical()

    plan = _chaos_plan(jobs)
    chaos = api.execute_jobs(
        jobs, workers=_WORKERS, fault_plan=plan, memo_store=str(tmp_path / "chaos.sqlite")
    ).canonical()

    assert pooled == solo, "pooled diverged from solo with obs imported"
    assert cold == solo and warm == solo, "persistent tier changed payload bytes"
    assert chaos == solo, "healing chaos changed payload bytes"
    _merge_artifact(
        "byte_identity",
        {
            "jobs": len(jobs),
            "workers": _WORKERS,
            "modes": ["solo", "pooled", "cold_store", "warm_store", "chaos"],
            "identical": True,
        },
    )


# --------------------------------------------------------------------------
# Gate 3: deterministic trace sections across same-seed chaos runs.
# --------------------------------------------------------------------------


def test_trace_sections_deterministic_under_chaos(tmp_path):
    from repro.obs.trace import deterministic_section, validate_trace

    jobs = [{**spec, "trace": True} for spec in _jobs()]
    plan = _chaos_plan(jobs)

    def run_traced(tag: str):
        report = api.execute_jobs(
            jobs,
            workers=_WORKERS,
            fault_plan=plan,
            memo_store=str(tmp_path / f"trace-{tag}.sqlite"),
        )
        sections = {}
        for result in report.results:
            trace = result.meta["trace"]
            validate_trace(trace)
            sections[result.id] = deterministic_section(result)
        return sections

    first = run_traced("a")
    second = run_traced("b")
    assert set(first) == {spec["id"] for spec in jobs}
    first_bytes = json.dumps(first, sort_keys=True)
    assert first_bytes == json.dumps(second, sort_keys=True), (
        "deterministic trace sections diverged between same-seed chaos runs"
    )
    retried = sum(
        1 for events in first.values() if events and events[-1].get("attempts", 1) > 1
    )
    assert retried >= 1, "the chaos plan never forced a retry into the traces"
    _merge_artifact(
        "trace_determinism",
        {
            "jobs": len(jobs),
            "retried_jobs": retried,
            "events_bytes": len(first_bytes),
            "identical": True,
        },
    )
