"""Benchmark fixtures and import path setup."""

import pathlib
import sys

# Make `workloads` importable when pytest is invoked from the repo root.
sys.path.insert(0, str(pathlib.Path(__file__).parent))
