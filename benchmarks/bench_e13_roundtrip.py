"""E13 — the Section 6 conjecture ``e ≡ (e⁺)°``: cost of checking the
compile-then-decompile round trip, plus a generated-corpus sweep whose
pass-rate lands in extra_info (empirical evidence for the conjecture)."""

import pytest

from repro import cc
from repro.gen import TermGenerator
from repro.properties import check_roundtrip
from workloads import church_sum, nested_lambdas

_EMPTY = cc.Context.empty()


@pytest.mark.parametrize("depth", [2, 4, 8])
def test_roundtrip_nested(benchmark, depth):
    term = nested_lambdas(depth)
    benchmark.group = "E13 roundtrip (nested λ)"
    assert benchmark(lambda: check_roundtrip(_EMPTY, term))


@pytest.mark.parametrize("n", [2, 4])
def test_roundtrip_church(benchmark, n):
    term = church_sum(n)
    benchmark.group = "E13 roundtrip (church)"
    assert benchmark(lambda: check_roundtrip(_EMPTY, term))


def test_roundtrip_generated_sweep(benchmark):
    """100 random programs; pass-rate must be 100%."""
    triples = []
    for seed in range(100):
        triple = TermGenerator(seed + 900_000).well_typed_term(max_attempts=5)
        if triple is not None:
            triples.append(triple)

    def sweep():
        passed = 0
        for ctx, term, _ in triples:
            if check_roundtrip(ctx, term):
                passed += 1
        return passed

    benchmark.group = "E13 roundtrip sweep"
    passed = benchmark(sweep)
    benchmark.extra_info["checked"] = len(triples)
    benchmark.extra_info["passed"] = passed
    assert passed == len(triples)
