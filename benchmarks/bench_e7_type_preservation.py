"""E7 — Theorem 5.6 (Type Preservation): the cost of the *whole deal* —
translate, then re-check the output with the CC-CC kernel.

Series: compile-with-verification time against term family and size, plus
the translation-only cost for comparison (the gap is the price of running
the target kernel, i.e. of machine-checking the theorem instance).
"""

import pytest

from repro import cc
from repro.closconv import compile_term, translate
from workloads import church_sum, nested_lambdas, wide_capture

_EMPTY = cc.Context.empty()


@pytest.mark.parametrize("depth", [2, 4, 8])
def test_translate_only_nested(benchmark, depth):
    term = nested_lambdas(depth)
    benchmark.group = "E7 translate only (nested)"
    benchmark(lambda: translate(_EMPTY, term))


@pytest.mark.parametrize("depth", [2, 4, 8])
def test_compile_verified_nested(benchmark, depth):
    term = nested_lambdas(depth)
    benchmark.group = "E7 compile+verify (nested)"
    benchmark(lambda: compile_term(_EMPTY, term, verify=True))


@pytest.mark.parametrize("width", [4, 8, 16])
def test_compile_verified_wide(benchmark, width):
    ctx, term = wide_capture(width)
    benchmark.group = "E7 compile+verify (wide env)"
    benchmark(lambda: compile_term(ctx, term, verify=True))


@pytest.mark.parametrize("n", [2, 4])
def test_compile_verified_church(benchmark, n):
    term = church_sum(n)
    benchmark.group = "E7 compile+verify (church)"
    benchmark(lambda: compile_term(_EMPTY, term, verify=True))


def test_corpus_compile_verified(benchmark):
    """The entire hand-written corpus, compiled and verified in one go."""
    import sys, pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tests"))
    from corpus import CORPUS

    def run():
        for _name, ctx, term in CORPUS:
            compile_term(ctx, term, verify=True)

    benchmark.group = "E7 corpus"
    benchmark(run)
