"""E18 — session isolation: N-thread multi-session vs. one shared-state session.

The ``repro.api`` layer exists so independent workloads own independent
kernel state.  This benchmark measures the scenario the ROADMAP's
"parallel workloads" item describes: **N independent component builds**,
each of which resets its engine state up front (the classic
``reset_fresh_counter`` discipline that keeps builds deterministic) and
then makes repeated passes over its workload — the first cold, the rest
riding the warm memo.

* **multi-session** — N threads, each owning a :class:`repro.api.Session`.
  A build's reset touches only its own caches, so its warm passes hit no
  matter what the other builds are doing.
* **shared-state** — one session serves all N builds, interleaved
  round-robin (exactly the pre-API world, where every cache was a process
  global and ``reset_fresh_counter()`` nuked all of them at once).  Every
  build's reset clobbers every other build's warm entries, so passes that
  should be warm keep recomputing from cold.  The builds' reset points are
  staggered (their first iterations differ in length), as independent
  builds' lifecycles are in any real multiplexed service.

``test_session_throughput_gate`` is the acceptance gate: multi-session
throughput (passes/second over all builds) must be **≥ 2×** the
shared-state session on the same workloads.  The run also re-checks the
isolation contract — every thread's records in the multi-session run are
byte-identical to a solo run of the same build — and emits
``BENCH_sessions.json`` for ``benchmarks/trajectory.py`` and CI.
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading
import time

from repro import api, cc
from repro.gen.generator import GenConfig, TermGenerator
from workloads import church_sum, nat_sum

_ARTIFACT = pathlib.Path(__file__).with_name("BENCH_sessions.json")
_GATE = 2.0
_THREADS = 4
_ITERATIONS = 3
_PASSES = 24


def _build_terms(index: int) -> list[tuple[cc.Context, cc.Term]]:
    """The independent workload of build ``index``: gen/ terms + arithmetic.

    Generated inside a throwaway session so corpus construction never
    pollutes the states being measured; the terms themselves are plain
    immutable dataclasses and safe to use from any session.
    """
    build = api.Session(name=f"bench-build-{index}")
    with build.activate():
        source = TermGenerator(900 + index, GenConfig(max_depth=3, context_size=2))
        terms: list[tuple[cc.Context, cc.Term]] = []
        for _ in range(4):
            triple = source.well_typed_term()
            if triple is not None:
                terms.append((triple[0], triple[1]))
    empty = cc.Context.empty()
    terms.append((empty, church_sum(6 + index % 2)))
    terms.append((empty, nat_sum(120 + 10 * index)))
    return terms


def _stream(session: api.Session, terms, index: int, records: list[str]):
    """Build ``index`` as a pass-granular generator: reset, then warm passes.

    Yields once per pass so a driver can interleave several builds through
    one shared session.  The first iteration is shortened by a per-build
    stagger, desynchronizing the builds' reset points — aligned resets
    would let the shared baseline dodge most of its own cross-talk.
    """
    stagger = index * (_PASSES // _THREADS)
    for iteration in range(_ITERATIONS):
        session.reset()
        passes = _PASSES - stagger if iteration == 0 else _PASSES
        for _ in range(passes):
            # Record formatting stays inside the session too: `pretty`
            # resolves fv caches through the active state, and the point of
            # the measurement is that workers touch *no* shared state.
            with session.activate():
                for ctx, term in terms:
                    result = session.normalize(term, ctx=ctx)
                    records.append(f"{cc.pretty(result.value)}[{result.steps}]")
            yield


def _total_passes() -> int:
    return sum(
        (_ITERATIONS * _PASSES) - index * (_PASSES // _THREADS)
        for index in range(_THREADS)
    )


def _run_multi(workloads) -> tuple[float, list[list[str]]]:
    """N threads, one private session each; returns (seconds, records)."""
    records: list[list[str]] = [[] for _ in workloads]
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(workloads) + 1)

    def worker(index: int) -> None:
        try:
            session = api.Session(name=f"bench-multi-{index}")
            stream = _stream(session, workloads[index], index, records[index])
            barrier.wait()
            for _ in stream:
                pass
        except BaseException as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(len(workloads))
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, records


def _run_shared(workloads) -> tuple[float, list[list[str]]]:
    """One shared-state session multiplexing every build, round-robin."""
    session = api.Session(name="bench-shared")
    records: list[list[str]] = [[] for _ in workloads]
    streams = [
        _stream(session, terms, index, records[index])
        for index, terms in enumerate(workloads)
    ]
    live = list(streams)
    start = time.perf_counter()
    while live:
        for stream in list(live):
            try:
                next(stream)
            except StopIteration:
                live.remove(stream)
    return time.perf_counter() - start, records


def _run_solo(workloads) -> list[list[str]]:
    """Each build alone in its own session — the byte-identity reference."""
    all_records: list[list[str]] = []
    for index, terms in enumerate(workloads):
        records: list[str] = []
        session = api.Session(name=f"bench-solo-{index}")
        for _ in _stream(session, terms, index, records):
            pass
        all_records.append(records)
    return all_records


def test_session_throughput_gate():
    """Acceptance: multi-session ≥ 2× the shared-state session, multi-session
    records byte-identical to solo runs, artifact emitted.

    Like the other perf gates (E15/E17 time best-of-N cold runs), the
    timing comparison takes the best attempt out of three — one noisy
    scheduler slice must not fail CI — while the isolation differential
    must hold on *every* attempt.
    """
    workloads = [_build_terms(index) for index in range(_THREADS)]
    total_passes = _total_passes()
    solo_records = _run_solo(workloads)

    speedup = 0.0
    multi_seconds = shared_seconds = float("inf")
    isolation_identical = True
    for _attempt in range(3):
        attempt_multi, multi_records = _run_multi(workloads)
        attempt_shared, _shared_records = _run_shared(workloads)
        isolation_identical = isolation_identical and multi_records == solo_records
        attempt_speedup = (total_passes / attempt_multi) / (total_passes / attempt_shared)
        if attempt_speedup > speedup:
            speedup = attempt_speedup
            multi_seconds, shared_seconds = attempt_multi, attempt_shared
        if speedup >= _GATE:
            break

    multi_throughput = total_passes / multi_seconds
    shared_throughput = total_passes / shared_seconds

    _ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "e18_sessions",
                "schema": 1,
                "python": sys.version.split()[0],
                "threads": _THREADS,
                "iterations": _ITERATIONS,
                "passes_per_iteration": _PASSES,
                "total_passes": total_passes,
                "gate_speedup": _GATE,
                "multi_session": {
                    "seconds": multi_seconds,
                    "throughput_passes_per_s": multi_throughput,
                },
                "shared_state": {
                    "seconds": shared_seconds,
                    "throughput_passes_per_s": shared_throughput,
                },
                "speedup": speedup,
                "isolation_identical": isolation_identical,
            },
            indent=2,
        )
        + "\n"
    )

    assert isolation_identical, (
        "multi-session threaded records diverged from solo runs — "
        "cross-session state leaked"
    )
    assert speedup >= _GATE, (
        f"multi-session throughput only {speedup:.2f}x the shared-state "
        f"session (gate {_GATE}x): isolation is not paying for itself"
    )


def test_interleaved_multi_sessions_byte_identical_single_thread():
    """Interleaving *separate* sessions on one thread is also cross-talk-free
    (the single-thread face of the same differential)."""
    workloads = [_build_terms(index) for index in range(2)]
    solo = _run_solo(workloads)
    records: list[list[str]] = [[], []]
    streams = [
        _stream(api.Session(), terms, index, records[index])
        for index, terms in enumerate(workloads)
    ]
    live = list(streams)
    while live:
        for stream in list(live):
            try:
                next(stream)
            except StopIteration:
                live.remove(stream)
    assert records == solo
