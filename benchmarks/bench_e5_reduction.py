"""E5 — Lemmas 5.2–5.4: preservation of reduction and coherence.

Also reports the *step-count overhead* of compiled programs: closure
conversion inserts one ζ-chain (environment unpacking) per call, so the
target takes more reduction steps for the same value — the series below
quantifies the factor (source steps vs target steps), our stand-in for the
paper's Section 7 cost discussion at the calculus level.
"""

import pytest

from repro import cc, cccc
from repro.closconv import compile_term
from repro.properties import check_coherence, check_preservation_of_reduction
from workloads import church_sum, nat_sum

_EMPTY = cc.Context.empty()
_TARGET_EMPTY = cccc.Context.empty()


@pytest.mark.parametrize("n", [2, 4, 8])
def test_reduction_preservation_check(benchmark, n):
    term = nat_sum(n)
    benchmark.group = "E5 check(reduction preservation)"
    assert benchmark(lambda: check_preservation_of_reduction(_EMPTY, term))


@pytest.mark.parametrize("n", [2, 4])
def test_coherence_check(benchmark, n):
    left = nat_sum(n)
    right = cc.nat_literal(2 * n)
    benchmark.group = "E5 check(coherence)"
    assert benchmark(lambda: check_coherence(_EMPTY, left, right))


@pytest.mark.parametrize("n", [4, 8, 16])
def test_step_overhead_nat(benchmark, n):
    """Reduction-step factor target/source for nat_sum(n)."""
    term = nat_sum(n)
    target = compile_term(_EMPTY, term, verify=False).target
    _, source_steps = cc.normalize_counting(_EMPTY, term)
    _, target_steps = cccc.normalize_counting(_TARGET_EMPTY, target)
    benchmark.extra_info["source_steps"] = source_steps
    benchmark.extra_info["target_steps"] = target_steps
    benchmark.extra_info["overhead_factor"] = round(target_steps / source_steps, 2)
    benchmark.group = "E5 step overhead (nat_sum)"
    benchmark(lambda: cccc.normalize(_TARGET_EMPTY, target))


@pytest.mark.parametrize("n", [2, 4, 8])
def test_step_overhead_church(benchmark, n):
    term = church_sum(n)
    target = compile_term(_EMPTY, term, verify=False).target
    _, source_steps = cc.normalize_counting(_EMPTY, term)
    _, target_steps = cccc.normalize_counting(_TARGET_EMPTY, target)
    benchmark.extra_info["source_steps"] = source_steps
    benchmark.extra_info["target_steps"] = target_steps
    benchmark.extra_info["overhead_factor"] = round(target_steps / source_steps, 2)
    benchmark.group = "E5 step overhead (church_sum)"
    benchmark(lambda: cccc.normalize(_TARGET_EMPTY, target))
