"""E21 — chaos: the pool under a deterministic fault plan.

The robustness gate for the hardened failure domains.  A fixed
:class:`repro.service.faults.FaultPlan` — transient worker kills, one
poison job, a hung-job delay, persistent-tier read/write errors, and
wire-payload corruption — is injected into a 3-worker pooled run of a
mixed build workload (gen/-generated corpus jobs, heavy Church
arithmetic, binary-wire jobs, deterministic failures).  The gates:

* **Determinism under fire** — every job the plan does not *force* to
  diverge (poisons → dead letters, corruptions → decode/parse errors)
  completes byte-identical to the fault-free solo run: transient kills,
  delays, and store errors may cost retries and cache misses but can
  never change a deterministic payload.
* **Reproducible chaos** — the plan is a pure function of its seed
  (regeneration yields the identical schedule), and two same-seed chaos
  runs produce byte-identical canonical documents — dead letters and
  corruption errors included.
* **Bounded damage** — the poison job dead-letters after exactly
  ``max_attempts`` attempts, respawns stay bounded by the crash count,
  injected store errors are counted (never raised), and the store ends
  the run with zero torn rows.
* **Throughput floor** — the chaos run keeps at least ``0.4×`` the
  fault-free pooled throughput: recovery machinery (respawn backoff,
  requeues, breaker probes) must not collapse the service.

Emits ``BENCH_chaos.json``.
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro import api, cc
from repro.gen.jobs import binary_specs, job_corpus
from repro.service.faults import Fault, FaultPlan
from repro.surface import to_surface
from repro.wire.persist import store_stat
from workloads import bool_flip_tower

_ARTIFACT = pathlib.Path(__file__).with_name("BENCH_chaos.json")
_GATE_THROUGHPUT = 0.4
_WORKERS = 3
_BUILDS = 3
_PASSES = 2
_MAX_ATTEMPTS = 3
_ATTEMPTS = 3
_SEED = 21
_POISON_ID = "poison-0"

#: Dispatcher knobs for every pooled run in this bench: fast respawns so
#: the throughput gate measures structure (not sleep time), a suspect
#: threshold high enough that the plan's transient kills landing on the
#: poison's slot are retried rather than fast-failed, and a breaker far
#: above the plan's total crash count.
_POOL_OPTIONS = dict(
    max_attempts=_MAX_ATTEMPTS,
    job_timeout=30.0,
    respawn_backoff=0.02,
    respawn_backoff_cap=0.2,
    suspect_after=50,
    max_slot_respawns=50,
)


def _jobs() -> list[dict]:
    """The chaos workload: builds with warm passes, binaries, failures."""
    jobs: list[dict] = []
    for build in range(_BUILDS):
        key = f"chaos-{build}"
        template = job_corpus(1300 + build, count=2, kinds=("normalize", "check"), key=key)
        # Heavy, α-distinct per build — losing a warm worker must cost
        # real recomputation, or the throughput gate measures nothing.
        tower = cc.Let("build", cc.nat_literal(build), cc.Nat(), bool_flip_tower(12))
        template.append({"kind": "normalize", "program": to_surface(tower), "key": key})
        for pass_index in range(_PASSES):
            for job_index, spec in enumerate(template):
                stamped = dict(spec)
                stamped["id"] = f"b{build}-p{pass_index}-{job_index}"
                jobs.append(stamped)
    # Binary-wire jobs: the corruption targets (term_b64 payloads).
    binary = binary_specs(job_corpus(1390, count=4, kinds=("normalize",), key="bin"))
    for index, spec in enumerate(binary):
        spec["id"] = f"bin-{index}"
        jobs.append(spec)
    # Deterministic failures must cross the chaos wire unchanged too.
    jobs.append({"id": "ill-typed", "kind": "check", "program": "0 0", "key": "chaos-0"})
    # The poison job rides its own affinity lane so its quarantine story
    # (exactly max_attempts crashes, then a dead letter) stays isolated.
    jobs.append({"id": _POISON_ID, "kind": "normalize",
                 "program": r"(\ (x : Nat). succ x) 20", "key": "poison-lane"})
    return jobs


def _plan(job_ids: list[str], corruptible: list[str]) -> FaultPlan:
    """The fixed fault plan: seeded draws plus the explicit poison."""
    generated = FaultPlan.generate(
        _SEED,
        [job_id for job_id in job_ids if job_id != _POISON_ID],
        kills=2,
        delays=1,
        store_read_errors=2,
        store_write_errors=2,
        corruptions=2,
        delay_seconds=0.05,
        corruptible_ids=[job_id for job_id in corruptible if job_id != _POISON_ID],
    )
    faults = [Fault.from_dict(entry) for entry in generated.to_dict()["faults"]]
    faults.append(Fault("kill", _POISON_ID, attempts=-1))
    return FaultPlan(faults, seed=_SEED)


def _run_chaos(jobs: list[dict], plan: FaultPlan, store: pathlib.Path):
    report = api.execute_jobs(
        jobs, workers=_WORKERS, memo_store=store, fault_plan=plan, **_POOL_OPTIONS
    )
    return report.elapsed_seconds, report.canonical(), report.stats


def test_chaos_gate(tmp_path):
    """Acceptance: determinism under fire, reproducible chaos, bounded
    damage, and ≥ 0.4× fault-free throughput.  Timing takes the best of
    three attempts (one noisy scheduler slice must not fail CI); every
    determinism assertion holds on every attempt.
    """
    jobs = _jobs()
    job_ids = [job["id"] for job in jobs]
    corruptible = [job["id"] for job in jobs if job.get("term_b64") or job.get("program")]
    plan = _plan(job_ids, corruptible)

    # Reproducible chaos, half one: the schedule is a pure function of
    # the seed and the job list.
    plan_again = _plan(job_ids, corruptible)
    assert plan_again == plan and plan_again.to_dict() == plan.to_dict()

    divergent = plan.divergent_ids(_MAX_ATTEMPTS)
    assert _POISON_ID in divergent
    corrupted = plan.corrupted_ids()
    assert corrupted  # the plan must exercise the wire-corruption domain

    solo = {doc["id"]: doc for doc in api.execute_jobs(jobs, workers=0).canonical()}

    ratio = 0.0
    faultfree_seconds = chaos_seconds = float("inf")
    chaos_stats: dict = {}
    first_chaos_canonical: list[dict] | None = None
    same_seed_identical = True
    total_crashes = sum(
        _MAX_ATTEMPTS if entry["job_id"] == _POISON_ID else entry.get("attempts", 1)
        for entry in plan.to_dict()["faults"]
        if entry["kind"] == "kill"
    )

    for attempt in range(_ATTEMPTS):
        faultfree = api.execute_jobs(
            jobs, workers=_WORKERS,
            memo_store=tmp_path / f"faultfree-{attempt}.sqlite", **_POOL_OPTIONS
        )
        assert {doc["id"]: doc for doc in faultfree.canonical()} == solo

        store = tmp_path / f"chaos-{attempt}.sqlite"
        elapsed, canonical, stats = _run_chaos(jobs, plan, store)

        # Determinism under fire: only plan-forced divergence is allowed.
        by_id = {doc["id"]: doc for doc in canonical}
        for job_id, doc in by_id.items():
            if job_id in divergent:
                assert not doc["ok"], doc
            else:
                assert doc == solo[job_id], (doc, solo[job_id])
        letter = by_id[_POISON_ID]["error"]
        assert letter["dead_letter"] is True and letter["attempts"] == _MAX_ATTEMPTS
        for job_id in corrupted:
            assert not by_id[job_id]["ok"]

        # Reproducible chaos, half two: same seed, same bytes — dead
        # letters and corruption documents included.
        if first_chaos_canonical is None:
            first_chaos_canonical = canonical
        else:
            same_seed_identical = same_seed_identical and canonical == first_chaos_canonical
        assert stats["chaos"] == plan.summary(_MAX_ATTEMPTS)

        # Bounded damage.
        assert stats["exhausted"] == 1  # the poison, and only the poison
        assert stats["restarts"] <= total_crashes
        assert stats["persist"]["errors"] > 0  # injected, counted, not raised
        assert store_stat(store)["invalid"] == 0  # kills never tear the store

        attempt_ratio = faultfree.elapsed_seconds / elapsed
        if attempt_ratio > ratio:
            ratio = attempt_ratio
            faultfree_seconds, chaos_seconds = faultfree.elapsed_seconds, elapsed
            chaos_stats = stats
        if ratio >= _GATE_THROUGHPUT and attempt >= 1:
            break

    total_jobs = len(jobs)
    _ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "e21_chaos",
                "schema": 1,
                "python": sys.version.split()[0],
                "workers": _WORKERS,
                "total_jobs": total_jobs,
                "max_attempts": _MAX_ATTEMPTS,
                "plan": plan.summary(_MAX_ATTEMPTS),
                "gate_throughput_ratio": _GATE_THROUGHPUT,
                "faultfree": {
                    "seconds": faultfree_seconds,
                    "throughput_jobs_per_s": total_jobs / faultfree_seconds,
                },
                "chaos": {
                    "seconds": chaos_seconds,
                    "throughput_jobs_per_s": total_jobs / chaos_seconds,
                    "restarts": chaos_stats.get("restarts"),
                    "exhausted": chaos_stats.get("exhausted"),
                    "persist_errors": chaos_stats.get("persist", {}).get("errors"),
                    "persist_trips": chaos_stats.get("persist", {}).get("trips"),
                },
                "throughput_ratio": ratio,
                "determinism_identical": True,
                "same_seed_identical": same_seed_identical,
                "plan_regeneration_identical": True,
                "dead_letters": chaos_stats.get("exhausted"),
            },
            indent=2,
        )
        + "\n"
    )

    assert same_seed_identical, (
        "two same-seed chaos runs diverged — fault injection leaked "
        "nondeterminism into a deterministic payload"
    )
    assert ratio >= _GATE_THROUGHPUT, (
        f"chaos throughput only {ratio:.2f}x the fault-free pooled run "
        f"(gate {_GATE_THROUGHPUT}x): recovery machinery is collapsing the pool"
    )


def test_store_breaker_degrades_not_diverges(tmp_path):
    """The store circuit breaker's face of the same contract: a tripped
    breaker mid-batch degrades to in-memory memoization with byte-identical
    results, and reports the trip."""
    jobs = [
        {"id": f"j{index}", "kind": "normalize",
         "program": rf"(\ (x : Nat). succ x) {index}"}
        for index in range(8)
    ]
    plan = FaultPlan(
        [
            Fault(kind, f"j{index}", attempts=-1)
            for index in range(2, 8)
            for kind in ("store_read_error", "store_write_error")
        ],
        seed=_SEED,
    )
    bare = api.execute_jobs(jobs).canonical()
    report = api.execute_jobs(jobs, memo_store=tmp_path / "memo.sqlite", fault_plan=plan)
    assert report.canonical() == bare
    assert report.stats["persist"]["trips"] >= 1
    assert report.stats["persist"]["errors"] > 0
