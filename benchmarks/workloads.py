"""Shared workload families for the benchmark harness.

Each family is parameterized by a size knob so the benchmarks can report
scaling series (the paper is a theory paper; our "figures" are the cost
curves of each mechanized construction — see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro import cc
from repro.cc import prelude
from repro.cc.context import Context
from repro.gen.dag import shared_dag_tower

__all__ = [
    "bool_flip_tower",
    "capture_chain",
    "church_sum",
    "nat_sum",
    "nested_lambdas",
    "pair_tower",
    "shared_dag_tower",
    "wide_capture",
]


def bool_flip_tower(m: int) -> cc.Term:
    """``not`` iterated ``2^m`` times over ``false`` via Church ``m``.

    ``church m`` at type ``Bool -> Bool`` applied to the doubling
    combinator ``twice Bool`` builds ``not^(2^m)``: exponentially many
    β/ι-steps from ~200 bytes of program, with a one-token normal form.
    The extreme cold-to-warm cost ratio (steps grow, term and result do
    not) is what the service benchmark uses to expose cache clobbering.
    """
    boolfn = cc.Pi("_", cc.Bool(), cc.Bool())
    doubler = prelude.twice(cc.Bool())
    negate = cc.Lam("b", cc.Bool(), cc.If(cc.Var("b"), cc.BoolLit(False), cc.BoolLit(True)))
    return cc.make_app(prelude.church_nat(m), boolfn, doubler, negate, cc.BoolLit(False))


def church_sum(n: int) -> cc.Term:
    """``(church n) + (church n)`` converted to a primitive Nat.

    Exercises impredicative polymorphism and deep β-reduction chains.
    """
    total = cc.make_app(prelude.church_add, prelude.church_nat(n), prelude.church_nat(n))
    return cc.make_app(
        total, cc.Nat(), cc.Lam("k", cc.Nat(), cc.Succ(cc.Var("k"))), cc.Zero()
    )


def nat_sum(n: int) -> cc.Term:
    """``n + n`` via the primitive eliminator (ι-reduction chain)."""
    return cc.make_app(prelude.nat_add, cc.nat_literal(n), cc.nat_literal(n))


def nested_lambdas(depth: int) -> cc.Term:
    """``λ x0… λ x_{depth-1}. x0`` — every inner λ captures all outer binders,
    so closure conversion builds ``depth`` nested environments."""
    body: cc.Term = cc.Var("x0")
    for index in range(depth - 1, -1, -1):
        body = cc.Lam(f"x{index}", cc.Nat(), body)
    return body


def wide_capture(width: int) -> tuple[Context, cc.Term]:
    """A single λ capturing ``width`` context variables — wide telescopes."""
    ctx = Context.empty()
    body: cc.Term = cc.Zero()
    for index in range(width):
        ctx = ctx.extend(f"v{index}", cc.Nat())
        body = cc.make_app(prelude.nat_add, body, cc.Var(f"v{index}"))
    return ctx, cc.Lam("x", cc.Nat(), body)


def capture_chain(length: int) -> tuple[Context, cc.Term]:
    """A dependency chain A:⋆, x1:A, …: FV closure must walk the telescope."""
    ctx = Context.empty().extend("A", cc.Star())
    previous = "A"
    for index in range(length):
        name = f"c{index}"
        ctx = ctx.extend(name, cc.Var("A") if index == 0 else cc.Var("A"))
        previous = name
    return ctx, cc.Lam("x", cc.Nat(), cc.Var(previous))


def pair_tower(depth: int) -> cc.Term:
    """Right-nested dependent pairs ⟨1, ⟨2, …⟩⟩ with projections to the core."""
    annot: cc.Term = cc.Nat()
    term: cc.Term = cc.nat_literal(depth)
    for index in range(depth - 1, 0, -1):
        annot = cc.Sigma(f"t{index}", cc.Nat(), annot)
        term = cc.Pair(cc.nat_literal(index), term, annot)
    result = term
    for _ in range(depth - 1):
        result = cc.Snd(result)
    return result
