"""Merge every ``BENCH_*.json`` artifact into one ``BENCH_trajectory.json``.

Each gating benchmark emits a machine-readable artifact next to this file
(``BENCH_conversion.json`` from E16, ``BENCH_nbe.json`` from E17, …).  This
script folds them into a single perf-trajectory document so CI can publish
one artifact per run and successive PRs can diff performance history
without scraping benchmark stdout::

    python benchmarks/trajectory.py            # writes BENCH_trajectory.json
    python benchmarks/trajectory.py --print    # also pretty-print to stdout

The merged schema is ``{"schema": 1, "python": …, "benches": {name:
payload}}`` where each payload is the unmodified per-bench document.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

__all__ = ["merge", "write_trajectory"]

_HERE = pathlib.Path(__file__).parent
_OUTPUT = _HERE / "BENCH_trajectory.json"


def merge(directory: pathlib.Path = _HERE) -> dict:
    """Collect every ``BENCH_*.json`` (except the trajectory itself)."""
    benches: dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name == _OUTPUT.name:
            continue
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise SystemExit(f"unreadable benchmark artifact {path.name}: {error}")
        benches[payload.get("bench", path.stem)] = payload
    return {
        "schema": 1,
        "python": sys.version.split()[0],
        "benches": benches,
    }


def write_trajectory(directory: pathlib.Path = _HERE) -> pathlib.Path:
    """Write the merged document next to the artifacts; returns its path."""
    document = merge(directory)
    output = directory / _OUTPUT.name
    output.write_text(json.dumps(document, indent=2) + "\n")
    return output


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--print", action="store_true", help="echo the merged document")
    parser.add_argument(
        "--directory",
        type=pathlib.Path,
        default=_HERE,
        help="where to look for BENCH_*.json (default: this file's directory)",
    )
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated bench names that must be present in the merge "
        "(e.g. 'e17_nbe,e18_sessions'); missing ones fail the run, so CI "
        "notices a gating benchmark that silently stopped emitting",
    )
    args = parser.parse_args(argv)
    output = write_trajectory(args.directory)
    merged = json.loads(output.read_text())
    names = ", ".join(sorted(merged["benches"])) or "none"
    print(f"wrote {output} ({len(merged['benches'])} benches: {names})")
    required = [name.strip() for name in args.require.split(",") if name.strip()]
    missing = [name for name in required if name not in merged["benches"]]
    if missing:
        raise SystemExit(f"required benchmark artifacts missing: {', '.join(missing)}")
    if args.print:
        print(json.dumps(merged, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
