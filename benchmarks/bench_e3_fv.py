"""E3 — the dependent FV metafunction (paper Figure 10).

Series: FV cost against environment width and dependency-chain length —
the dependency *closure* is what distinguishes Figure 10 from simply
typed free-variable computation.
"""

import pytest

from repro import cc
from repro.closconv.fv import dependent_free_vars
from workloads import wide_capture

_EMPTY = cc.Context.empty()


@pytest.mark.parametrize("width", [4, 16, 64])
def test_fv_wide(benchmark, width):
    ctx, term = wide_capture(width)
    benchmark.group = "E3 FV(wide capture)"
    result = benchmark(lambda: dependent_free_vars(ctx, term))
    assert len(result) == width


@pytest.mark.parametrize("length", [4, 16, 64])
def test_fv_dependency_chain(benchmark, length):
    """h : P x_{n} drags in the whole chain through types only."""
    ctx = _EMPTY.extend("A", cc.Star()).extend("P", cc.arrow(cc.Var("A"), cc.Star()))
    previous = None
    for index in range(length):
        name = f"x{index}"
        ctx = ctx.extend(name, cc.Var("A"))
        previous = name
    ctx = ctx.extend("h", cc.App(cc.Var("P"), cc.Var(previous)))
    term = cc.Lam("q", cc.Nat(), cc.Var("h"))
    benchmark.group = "E3 FV(dependency chain)"
    result = benchmark(lambda: dependent_free_vars(ctx, term))
    # h, its type's P and x_{n-1}, x's type A — but not the unrelated x_i.
    assert {b.name for b in result} == {"A", "P", previous, "h"}


@pytest.mark.parametrize("noise", [10, 100, 400])
def test_fv_ignores_unrelated_context(benchmark, noise):
    ctx = _EMPTY
    for index in range(noise):
        ctx = ctx.extend(f"junk{index}", cc.Nat())
    ctx = ctx.extend("y", cc.Nat())
    term = cc.Lam("x", cc.Nat(), cc.Var("y"))
    benchmark.group = "E3 FV(noisy context)"
    result = benchmark(lambda: dependent_free_vars(ctx, term))
    assert len(result) == 1
