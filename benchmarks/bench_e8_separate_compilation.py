"""E8 — Theorem 5.7 / Corollary 5.8: the separate-compilation pipeline.

Series: end-to-end cost of (check γ, link-then-run in CC, compile, γ⁺,
link-then-run in CC-CC, compare observations) as components grow.
"""

import pytest

from repro import cc
from repro.cc import prelude
from repro.linking import ClosingSubstitution
from repro.properties import check_separate_compilation

_EMPTY = cc.Context.empty()


def _component(imports: int):
    """A component with `imports` Nat imports summed together."""
    ctx = _EMPTY
    gamma = {}
    body: cc.Term = cc.Zero()
    for index in range(imports):
        name = f"m{index}"
        ctx = ctx.extend(name, cc.Nat())
        gamma[name] = cc.nat_literal(index + 1)
        body = cc.make_app(prelude.nat_add, body, cc.Var(name))
    return ctx, body, ClosingSubstitution(gamma)


@pytest.mark.parametrize("imports", [1, 4, 8])
def test_separate_compilation_scaling(benchmark, imports):
    ctx, term, gamma = _component(imports)
    benchmark.group = "E8 Theorem 5.7 pipeline"
    report = benchmark(lambda: check_separate_compilation(ctx, term, gamma))
    assert report.agrees
    assert report.observation == sum(range(1, imports + 1))


def test_polymorphic_import(benchmark):
    ctx = _EMPTY.extend("id", prelude.polymorphic_identity_type)
    term = cc.make_app(cc.Var("id"), cc.Nat(), cc.nat_literal(7))
    gamma = ClosingSubstitution({"id": prelude.polymorphic_identity})
    benchmark.group = "E8 Theorem 5.7 pipeline"
    report = benchmark(lambda: check_separate_compilation(ctx, term, gamma))
    assert report.agrees and report.observation == 7


def test_proof_carrying_import(benchmark):
    ctx = _EMPTY.extend("pos", prelude.positive_nat())
    term = cc.Succ(cc.Fst(cc.Var("pos")))
    gamma = ClosingSubstitution({"pos": prelude.positive_nat_value(3)})
    benchmark.group = "E8 Theorem 5.7 pipeline"
    report = benchmark(lambda: check_separate_compilation(ctx, term, gamma))
    assert report.agrees and report.observation == 4
