"""E1 — the CC kernel (paper Figures 1–4): type checking and normalization.

Series: cost of `infer` and `normalize` across workload families and
sizes.  These are the baseline curves every later experiment is measured
against (the compiler and model re-run this kernel on bigger terms).
"""

import pytest

from repro import cc
from repro.cc import prelude
from workloads import church_sum, nat_sum, nested_lambdas, pair_tower

_EMPTY = cc.Context.empty()


@pytest.mark.parametrize("n", [2, 4, 8])
def test_typecheck_church_sum(benchmark, n):
    term = church_sum(n)
    benchmark.group = "E1 infer(church_sum)"
    benchmark(lambda: cc.infer(_EMPTY, term))


@pytest.mark.parametrize("depth", [4, 8, 16])
def test_typecheck_nested_lambdas(benchmark, depth):
    term = nested_lambdas(depth)
    benchmark.group = "E1 infer(nested_lambdas)"
    benchmark(lambda: cc.infer(_EMPTY, term))


@pytest.mark.parametrize("depth", [4, 8, 16])
def test_typecheck_pair_tower(benchmark, depth):
    term = pair_tower(depth)
    benchmark.group = "E1 infer(pair_tower)"
    benchmark(lambda: cc.infer(_EMPTY, term))


@pytest.mark.parametrize("n", [4, 8, 16])
def test_normalize_nat_sum(benchmark, n):
    term = nat_sum(n)
    benchmark.group = "E1 normalize(nat_sum)"
    result = benchmark(lambda: cc.normalize(_EMPTY, term))
    assert cc.nat_value(result) == 2 * n


@pytest.mark.parametrize("n", [2, 4, 8])
def test_normalize_church_sum(benchmark, n):
    term = church_sum(n)
    benchmark.group = "E1 normalize(church_sum)"
    result = benchmark(lambda: cc.normalize(_EMPTY, term))
    assert cc.nat_value(result) == 2 * n


def test_equivalence_with_eta(benchmark):
    ctx = _EMPTY.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
    expanded = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
    benchmark.group = "E1 equivalence"
    assert benchmark(lambda: cc.equivalent(ctx, expanded, cc.Var("f")))


def test_typecheck_prelude(benchmark):
    terms = [
        prelude.polymorphic_identity,
        prelude.nat_add,
        prelude.church_add,
        prelude.positive_nat_value(3),
    ]
    benchmark.group = "E1 infer(prelude)"
    benchmark(lambda: [cc.infer(_EMPTY, t) for t in terms])
