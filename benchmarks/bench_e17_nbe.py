"""E17 — normalization by evaluation vs. substitution-based reduction.

Series: the cold-path workloads the NbE engine (``repro.kernel.nbe``) is
built for, in both calculi —

* **deep β-redex chains** — ``k`` nested Church-addition towers, each β of
  which makes the substitution engine copy and re-walk the body it just
  built; the environment machine binds a thunk instead.
* **Church arithmetic** — impredicative-polymorphism workloads
  (``church_sum``) whose numerals duplicate their iterator argument.
* **closure-converted images** — the same workloads after the ⁺
  translation, where every β is a *two*-substitution closure application
  (environment, then argument), doubling the substitution engine's bill.
* **10k-deep pending-β / ζ chains** — decidable only by the iterative NbE
  engine; the recursive substitution normalizer exceeds the Python stack.

``test_nbe_speedup_gate`` is the acceptance gate for this layer: NbE must
be **≥ 5×** faster than the substitution engine on every gated workload,
measured from cold caches, both calculi.  The module also emits
``BENCH_nbe.json`` next to this file — a machine-readable perf-trajectory
artifact (see ``benchmarks/trajectory.py``).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import pytest

from repro import cc, cccc
from repro.cc import prelude
from repro.cc.reduce import normalize_subst as cc_normalize_subst
from repro.cccc.reduce import normalize_subst as cccc_normalize_subst
from repro.closconv.translate import translate
from repro.common.names import reset_fresh_counter
from repro.kernel.budget import Budget
from workloads import church_sum

_EMPTY = cc.Context.empty()
_TARGET_EMPTY = cccc.Context.empty()
_ARTIFACT = pathlib.Path(__file__).with_name("BENCH_nbe.json")
_GATE = 5.0
_DEEP = 10_000

#: The substitution oracle recurses one Python frame per node of the
#: *result*; give it room so the comparison measures cost, not stack size
#: (stack safety is a separate, NbE-only record below).
_ORACLE_RECURSION_LIMIT = 50_000


def _timed_cold(fn, repeats: int = 3) -> float:
    """Minimum wall-clock seconds over ``repeats`` cold-cache calls."""
    best = float("inf")
    for _ in range(repeats):
        reset_fresh_counter()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- workloads --------------------------------------------------------------


def _to_nat(term: cc.Term) -> cc.Term:
    return cc.make_app(
        term, cc.Nat(), cc.Lam("k", cc.Nat(), cc.Succ(cc.Var("k"))), cc.Zero()
    )


def _church_beta_chain(length: int, numeral: int) -> cc.Term:
    """``c_m + (c_m + (… + c_m))`` — ``length`` nested β-redex towers."""
    term = prelude.church_nat(numeral)
    for _ in range(length):
        term = cc.make_app(prelude.church_add, term, prelude.church_nat(numeral))
    return _to_nat(term)


def _pending_beta_chain(depth: int) -> cc.Term:
    """``depth`` β-redexes pending along one head spine."""
    term: cc.Term = cc.Lam("x", cc.Nat(), cc.Var("x"))
    for _ in range(depth):
        term = cc.App(cc.Lam("f", cc.arrow(cc.Nat(), cc.Nat()), cc.Var("f")), term)
    return term


def _zeta_chain(depth: int) -> cc.Term:
    term: cc.Term = cc.Var(f"x{depth - 1}")
    for index in range(depth - 1, -1, -1):
        bound = cc.Zero() if index == 0 else cc.Var(f"x{index - 1}")
        term = cc.Let(f"x{index}", bound, cc.Nat(), term)
    return term


def _gated_workloads() -> list[dict]:
    """Time every gated workload under both engines (cold caches)."""
    reset_fresh_counter()
    cases = [
        ("cc/deep_beta_chain_32x20", "cc", _church_beta_chain(32, 20), 660),
        ("cc/church_sum_8", "cc", church_sum(8), 16),
    ]
    reset_fresh_counter()
    target_chain = translate(_EMPTY, _church_beta_chain(8, 20))
    reset_fresh_counter()
    target_sum = translate(_EMPTY, church_sum(6))
    cases += [
        ("cccc/deep_beta_chain_8x20", "cccc", target_chain, 180),
        ("cccc/church_sum_6", "cccc", target_sum, 12),
    ]

    records = []
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, _ORACLE_RECURSION_LIMIT))
    try:
        for name, calculus, term, expected in cases:
            if calculus == "cc":
                nbe = lambda t=term: cc.normalize(_EMPTY, t)
                oracle = lambda t=term: cc_normalize_subst(_EMPTY, t)
                value = cc.nat_value
            else:
                nbe = lambda t=term: cccc.normalize(_TARGET_EMPTY, t)
                oracle = lambda t=term: cccc_normalize_subst(_TARGET_EMPTY, t)
                value = cccc.nat_value
            reset_fresh_counter()
            assert value(nbe()) == expected
            reset_fresh_counter()
            assert value(oracle()) == expected
            nbe_seconds = _timed_cold(nbe)
            oracle_seconds = _timed_cold(oracle)
            records.append(
                {
                    "workload": name,
                    "gated": True,
                    "expected_value": expected,
                    "subst_s": oracle_seconds,
                    "nbe_s": nbe_seconds,
                    "speedup": oracle_seconds / nbe_seconds if nbe_seconds else float("inf"),
                }
            )
    finally:
        sys.setrecursionlimit(limit)
    return records


def _nbe_only_workloads() -> list[dict]:
    """Depth records only the iterative engine can set at all."""
    records = []
    pending = _pending_beta_chain(_DEEP)
    reset_fresh_counter()
    assert isinstance(cc.whnf(_EMPTY, pending, Budget()), cc.Lam)
    records.append(
        {
            "workload": f"cc/pending_beta_whnf_{_DEEP}",
            "gated": False,
            "subst_s": None,
            "nbe_s": _timed_cold(lambda: cc.whnf(_EMPTY, pending, Budget())),
            "speedup": None,
            "note": "baseline (recursive substitution whnf) exceeds the Python stack here",
        }
    )
    zeta = _zeta_chain(_DEEP)
    reset_fresh_counter()
    assert cc.normalize(_EMPTY, zeta) == cc.Zero()
    records.append(
        {
            "workload": f"cc/zeta_chain_nf_{_DEEP}",
            "gated": False,
            "subst_s": None,
            "nbe_s": _timed_cold(lambda: cc.normalize(_EMPTY, zeta)),
            "speedup": None,
            "note": "baseline (recursive substitution normalize) exceeds the Python stack here",
        }
    )
    # Warm repeat: the second call is a single memo probe with fuel replay.
    heavy = church_sum(8)
    reset_fresh_counter()
    cc.normalize(_EMPTY, heavy)
    start = time.perf_counter()
    cc.normalize(_EMPTY, heavy)
    records.append(
        {
            "workload": "cc/church_sum_8_warm_repeat",
            "gated": False,
            "subst_s": None,
            "nbe_s": time.perf_counter() - start,
            "speedup": None,
            "note": "second call hits the normalization memo",
        }
    )
    return records


def test_nbe_speedup_gate():
    """Acceptance: NbE ≥ 5× over substitution on every gated workload, and
    the perf-trajectory artifact is (re)written."""
    records = _gated_workloads() + _nbe_only_workloads()
    _ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "e17_nbe",
                "schema": 1,
                "gate_speedup": _GATE,
                "python": sys.version.split()[0],
                "workloads": records,
            },
            indent=2,
        )
        + "\n"
    )
    failures = [
        (record["workload"], record["speedup"])
        for record in records
        if record["gated"] and record["speedup"] < _GATE
    ]
    assert not failures, (
        f"NbE not {_GATE}x faster than the substitution engine on: "
        + ", ".join(f"{name} ({speedup:.1f}x)" for name, speedup in failures)
    )


def test_nbe_agrees_with_oracle_on_gated_workloads():
    """The timed workloads are also correctness checks (α-equality)."""
    term = _church_beta_chain(10, 12)
    reset_fresh_counter()
    nbe = cc.normalize(_EMPTY, term)
    reset_fresh_counter()
    oracle = cc_normalize_subst(_EMPTY, term)
    assert cc.alpha_equal(nbe, oracle)


@pytest.mark.parametrize("n", [6, 7, 8])
def test_nbe_church(benchmark, n):
    """Micro series: NbE cold normalization of Church arithmetic."""
    term = church_sum(n)
    benchmark.group = "E17 church_sum (NbE)"

    def run():
        reset_fresh_counter()
        return cc.normalize(_EMPTY, term)

    assert cc.nat_value(benchmark(run)) == 2 * n


@pytest.mark.parametrize("n", [6, 7, 8])
def test_subst_church(benchmark, n):
    """Micro series: substitution-engine cold normalization of the same."""
    term = church_sum(n)
    benchmark.group = "E17 church_sum (substitution)"

    def run():
        reset_fresh_counter()
        return cc_normalize_subst(_EMPTY, term)

    assert cc.nat_value(benchmark(run)) == 2 * n
