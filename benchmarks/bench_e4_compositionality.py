"""E4 — Lemma 5.1 (Compositionality): cost of deciding
``(e1[e2/x])⁺ ≡ e1⁺[e2⁺/x]`` as the captured environment grows.

The check exercises the closure η-rule on closures whose environments
differ in shape — the paper's central equivalence innovation.
"""

import pytest

from repro import cc
from repro.cc import prelude
from repro.properties import check_compositionality

_EMPTY = cc.Context.empty()


@pytest.mark.parametrize("width", [1, 4, 8])
def test_compositionality_wide_env(benchmark, width):
    prefix = _EMPTY
    for index in range(width):
        prefix = prefix.extend(f"v{index}", cc.Nat())
    body_core: cc.Term = cc.Var("hole")
    for index in range(width):
        body_core = cc.make_app(prelude.nat_add, body_core, cc.Var(f"v{index}"))
    body = cc.Lam("w", cc.Nat(), body_core)
    benchmark.group = "E4 compositionality(width)"
    assert benchmark(
        lambda: check_compositionality(prefix, "hole", cc.Nat(), body, cc.nat_literal(3))
    )


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_compositionality_nested(benchmark, depth):
    body: cc.Term = cc.Var("hole")
    for index in range(depth):
        body = cc.Lam(f"w{index}", cc.Nat(), body)
    benchmark.group = "E4 compositionality(nesting)"
    assert benchmark(
        lambda: check_compositionality(_EMPTY, "hole", cc.Nat(), body, cc.nat_literal(1))
    )


def test_compositionality_type_substitution(benchmark):
    body = cc.Lam("w", cc.Var("hole"), cc.Var("w"))
    benchmark.group = "E4 compositionality(type)"
    assert benchmark(
        lambda: check_compositionality(_EMPTY, "hole", cc.Star(), body, cc.Nat())
    )
