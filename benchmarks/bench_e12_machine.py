"""E12 — hoisting + machine vs normalizer vs untyped baseline (§3 & §7).

Regenerates the cost table of the compiler-pipeline example: wall-clock
and counter series (closure allocations, environment-tuple allocations,
projections) for the same programs across three execution strategies:

* substitution normalizer on compiled CC-CC terms,
* the hoisted CBV machine (static code table, two-slot frames),
* the untyped baseline's CBV interpreter.

The allocation counters quantify the paper's Section 7 remark that
abstract closure conversion introduces extra allocations/dereferences.
"""

import pytest

from repro import cc, cccc
from repro.baseline import erase, uconvert, ueval
from repro.baseline.untyped import EvalStats
from repro.closconv import compile_term
from repro.machine import MachineStats, hoist, machine_observation, run
from workloads import church_sum, nat_sum, nested_lambdas

_EMPTY = cc.Context.empty()
_TARGET_EMPTY = cccc.Context.empty()


def _applied_nested(depth: int) -> cc.Term:
    term = nested_lambdas(depth)
    return cc.make_app(term, *[cc.nat_literal(i) for i in range(depth)])


@pytest.mark.parametrize("n", [4, 8, 16])
def test_machine_nat_sum(benchmark, n):
    program = hoist(compile_term(_EMPTY, nat_sum(n), verify=False).target)
    benchmark.group = "E12 machine (nat_sum)"
    stats = MachineStats()
    value, _ = run(program, stats)
    benchmark.extra_info["closure_allocs"] = stats.closure_allocs
    benchmark.extra_info["tuple_allocs"] = stats.tuple_allocs
    benchmark.extra_info["projections"] = stats.projections
    result = benchmark(lambda: run(program)[0])
    assert machine_observation(result) == 2 * n


@pytest.mark.parametrize("n", [4, 8, 16])
def test_normalizer_nat_sum(benchmark, n):
    target = compile_term(_EMPTY, nat_sum(n), verify=False).target
    benchmark.group = "E12 normalizer (nat_sum)"
    result = benchmark(lambda: cccc.normalize(_TARGET_EMPTY, target))
    assert cccc.nat_value(result) == 2 * n


@pytest.mark.parametrize("n", [4, 8, 16])
def test_untyped_nat_sum(benchmark, n):
    converted = uconvert(erase(nat_sum(n)))
    benchmark.group = "E12 untyped (nat_sum)"
    result = benchmark(lambda: ueval(converted))
    assert result == 2 * n


@pytest.mark.parametrize("depth", [4, 8])
def test_machine_nested_applied(benchmark, depth):
    program = hoist(compile_term(_EMPTY, _applied_nested(depth), verify=False).target)
    stats = MachineStats()
    run(program, stats)
    benchmark.extra_info["closure_allocs"] = stats.closure_allocs
    benchmark.extra_info["tuple_allocs"] = stats.tuple_allocs
    benchmark.extra_info["projections"] = stats.projections
    benchmark.extra_info["code_blocks"] = program.code_count
    benchmark.group = "E12 machine (nested λ applied)"
    value = benchmark(lambda: run(program)[0])
    assert machine_observation(value) == 0


@pytest.mark.parametrize("depth", [4, 8])
def test_untyped_nested_applied(benchmark, depth):
    converted = uconvert(erase(_applied_nested(depth)))
    stats = EvalStats()
    ueval(converted, stats)
    benchmark.extra_info["closure_allocs"] = stats.closure_allocs
    benchmark.extra_info["env_allocs"] = stats.env_allocs
    benchmark.extra_info["projections"] = stats.projections
    benchmark.group = "E12 untyped (nested λ applied)"
    value = benchmark(lambda: ueval(converted))
    assert value == 0


@pytest.mark.parametrize("n", [2, 4])
def test_machine_church(benchmark, n):
    program = hoist(compile_term(_EMPTY, church_sum(n), verify=False).target)
    benchmark.group = "E12 machine (church_sum)"
    value = benchmark(lambda: run(program)[0])
    assert machine_observation(value) == 2 * n


def test_hoisting_cost(benchmark):
    target = compile_term(_EMPTY, church_sum(4), verify=False).target
    benchmark.group = "E12 hoist"
    program = benchmark(lambda: hoist(target))
    assert program.code_count > 0
