"""E22 — endpoint: the streaming service under concurrent clients.

The robustness gate for the socket layer (``python -m repro serve`` /
``batch --connect``).  A background endpoint fronts an elastic worker pool
while windowed clients stream NDJSON jobs at it; the gates:

* **Concurrency determinism** — four clients streaming interleaved mixed
  workloads (successes, deterministic errors, fuel exhaustion) each get
  results byte-identical to a solo run of their own stream, error
  documents included.  Admission control, fair-share scheduling, and
  per-connection affinity namespacing may reorder *execution* freely but
  can never change a deterministic payload.
* **Zero accepted-and-lost** — a graceful drain fired mid-stream while a
  connection-chaos plan drops, stalls, and truncates deliveries leaves no
  accepted job unresolved: after the drain every retained record carries
  its document, the pool's pending table is empty, and everything the
  client did receive is a structured document.
* **Elastic scaling** — a burst against a ``min_workers=1`` /
  ``max_workers=4`` pool provokes at least one scale-up *and*, once the
  queue empties, at least one scale-down (both visible in pool stats).
* **Concurrent throughput** — four windowed clients push an IO-bound
  workload at least ``2×`` faster than one serial (window-1) client
  against the same pool: the endpoint must actually overlap work across
  connections, not serialize them.

Emits ``BENCH_endpoint.json``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading
import time

from repro import api
from repro.service import ServiceClient, serve_background
from repro.service.faults import FaultPlan

_ARTIFACT = pathlib.Path(__file__).with_name("BENCH_endpoint.json")
_GATE_SPEEDUP = 2.0
_CLIENTS = 4
_ATTEMPTS = 3

REDEX = r"(\ (x : Nat). succ x) 41"
IDENTITY = r"\ (A : Type) (x : A). x"


def _client_stream(client_index: int) -> list[dict]:
    """One client's mixed workload: successes, errors, fuel exhaustion."""
    stream: list[dict] = []
    for index in range(8):
        stream.append(
            {
                "id": f"c{client_index}-n{index}",
                "kind": "normalize",
                "program": rf"(\ (x : Nat). succ x) {40 + index}",
                "key": f"lane-{client_index}",
            }
        )
    stream.append(
        {"id": f"c{client_index}-ok", "kind": "check", "program": IDENTITY}
    )
    stream.append(  # deterministic type error
        {"id": f"c{client_index}-ill", "kind": "check", "program": "0 0"}
    )
    stream.append(  # deterministic fuel exhaustion
        {"id": f"c{client_index}-fuel", "kind": "normalize", "program": REDEX,
         "fuel": 0}
    )
    return stream


def _strip_meta(documents: list[dict]) -> list[dict]:
    return [{k: v for k, v in doc.items() if k != "meta"} for doc in documents]


def _run_clients(
    host: str, port: int, streams: list[list[dict]], window: int
) -> tuple[list[list[dict]], float]:
    """Run one client thread per stream; returns (documents, seconds)."""
    outputs: dict[int, list[dict]] = {}
    errors: list[BaseException] = []

    def run(index: int) -> None:
        try:
            with ServiceClient(host, port, window=window, timeout=120.0) as client:
                outputs[index] = client.run_batch(streams[index])
        except BaseException as err:  # pragma: no cover - surfaced below
            errors.append(err)

    threads = [
        threading.Thread(target=run, args=(index,)) for index in range(len(streams))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180.0)
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return [outputs[index] for index in range(len(streams))], elapsed


def test_endpoint_gate():
    """Acceptance: concurrent-client determinism, elastic scale-up and
    scale-down, and ≥ 2× four-client speedup over a serial client.
    Timing takes the best of three attempts; every determinism assertion
    holds on every attempt.
    """
    streams = [_client_stream(index) for index in range(_CLIENTS)]
    solos = [api.execute_jobs(stream).canonical() for stream in streams]

    # -- concurrency determinism + elastic scaling (one shared server) -----
    with serve_background(min_workers=1, max_workers=4, conn_window=16) as server:
        documents, _ = _run_clients(server.host, server.port, streams, window=8)
        for index, solo in enumerate(solos):
            assert _strip_meta(documents[index]) == solo, (
                f"client {index} diverged from its solo run"
            )

        # Provoke the supervisor: a burst of IO-bound jobs deep enough to
        # cross the high watermark, then an idle tail for the shrink.
        with ServiceClient(server.host, server.port, window=32) as client:
            burst = [
                {"id": f"burst-{index}", "kind": "sleep", "seconds": 0.08,
                 "key": f"bk{index}"}
                for index in range(24)
            ]
            burst_docs = client.run_batch(burst)
            assert all(doc["ok"] for doc in burst_docs)
            deadline = time.monotonic() + 15.0
            pool_stats: dict = {}
            while time.monotonic() < deadline:
                pool_stats = client.stats()["meta"]["stats"]["pool"]
                if pool_stats["scale_ups"] >= 1 and pool_stats["scale_downs"] >= 1:
                    break
                time.sleep(0.1)
        scale_ups = pool_stats.get("scale_ups", 0)
        scale_downs = pool_stats.get("scale_downs", 0)
        endpoint_stats = server.endpoint.telemetry()

    assert scale_ups >= 1, "the burst never provoked a scale-up"
    assert scale_downs >= 1, "the idle tail never provoked a scale-down"

    # -- zero accepted-and-lost across a chaos-plan drain ------------------
    chaos_jobs = [
        {"id": f"x{index}", "kind": "sleep", "seconds": 0.05}
        for index in range(24)
    ]
    plan = FaultPlan.generate(
        22,
        [job["id"] for job in chaos_jobs],
        conn_drops=2,
        conn_stalls=2,
        conn_truncates=2,
    )
    drain_server = serve_background(min_workers=2, fault_plan=plan, conn_window=8)
    outcome: dict = {}

    def stream_into_drain() -> None:
        try:
            with ServiceClient(
                drain_server.host, drain_server.port, window=8, timeout=30.0
            ) as client:
                outcome["documents"] = client.run_batch(chaos_jobs)
        except (TimeoutError, ConnectionError) as err:
            outcome["error"] = err

    feeder = threading.Thread(target=stream_into_drain)
    feeder.start()
    time.sleep(0.4)  # part of the stream accepted, faults firing
    drain_server.stop()  # graceful drain mid-stream
    feeder.join(timeout=60.0)
    endpoint = drain_server.endpoint
    lost = [
        record.job.id
        for record in endpoint._records.values()
        if record.document is None
    ]
    assert not lost, f"accepted jobs went silent through the drain: {lost}"
    assert endpoint.dispatcher.queue_depth() == 0
    drain_telemetry = endpoint.telemetry()
    for document in outcome.get("documents", []):
        assert document["ok"] or document["error"]["type"], document

    # -- concurrent throughput ≥ 2× one serial client ----------------------
    def sleep_jobs(prefix: str, count: int) -> list[dict]:
        return [
            {"id": f"{prefix}-{index}", "kind": "sleep", "seconds": 0.04,
             "key": f"{prefix}{index % 4}"}
            for index in range(count)
        ]

    speedup = 0.0
    serial_seconds = concurrent_seconds = float("inf")
    with serve_background(min_workers=4, conn_window=16) as server:
        for attempt in range(_ATTEMPTS):
            [serial_docs], serial_elapsed = _run_clients(
                server.host, server.port, [sleep_jobs(f"s{attempt}", 24)], window=1
            )
            assert all(doc["ok"] for doc in serial_docs)
            quarters = [sleep_jobs(f"q{attempt}{part}", 6) for part in range(_CLIENTS)]
            concurrent_docs, concurrent_elapsed = _run_clients(
                server.host, server.port, quarters, window=8
            )
            assert all(doc["ok"] for docs in concurrent_docs for doc in docs)
            attempt_speedup = serial_elapsed / concurrent_elapsed
            if attempt_speedup > speedup:
                speedup = attempt_speedup
                serial_seconds, concurrent_seconds = serial_elapsed, concurrent_elapsed
            if speedup >= _GATE_SPEEDUP and attempt >= 1:
                break

    _ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "e22_endpoint",
                "schema": 1,
                "python": sys.version.split()[0],
                "clients": _CLIENTS,
                "gate_speedup": _GATE_SPEEDUP,
                "concurrency": {
                    "streams": len(streams),
                    "jobs_per_stream": len(streams[0]),
                    "determinism_identical": True,
                    "endpoint": {
                        key: endpoint_stats.get(key)
                        for key in ("connections", "accepted", "delivered",
                                    "shed", "redelivered")
                    },
                },
                "elastic": {"scale_ups": scale_ups, "scale_downs": scale_downs},
                "drain": {
                    "accepted_and_lost": len(lost),
                    "accepted": drain_telemetry.get("accepted"),
                    "delivered": drain_telemetry.get("delivered"),
                    "retained": drain_telemetry.get("retained"),
                    "client_finished": "documents" in outcome,
                },
                "throughput": {
                    "serial_seconds": serial_seconds,
                    "concurrent_seconds": concurrent_seconds,
                    "speedup": speedup,
                },
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= _GATE_SPEEDUP, (
        f"four concurrent clients only {speedup:.2f}x a serial client "
        f"(gate {_GATE_SPEEDUP}x): the endpoint is serializing connections"
    )


def test_chaos_clients_heal_to_identical_bytes():
    """Client-side connection chaos (drops, stalls, truncations at exact
    job coordinates) changes nothing but timing: the healed stream is
    byte-identical to the fault-free solo run."""
    jobs = [
        {"id": f"h{index}", "kind": "normalize",
         "program": rf"(\ (x : Nat). succ x) {index}"}
        for index in range(12)
    ]
    solo = api.execute_jobs(jobs).canonical()
    plan = FaultPlan.generate(
        7, [job["id"] for job in jobs], conn_drops=2, conn_stalls=1,
        conn_truncates=1,
    )
    with serve_background(min_workers=2) as server:
        with ServiceClient(
            server.host, server.port, window=4, fault_plan=plan
        ) as client:
            documents = client.run_batch(jobs)
            healed = client.reconnects
    assert _strip_meta(documents) == solo
    assert healed >= 1  # the plan genuinely cost reconnects
