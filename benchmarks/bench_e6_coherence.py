"""E6 — Lemma 5.4 (Coherence) in isolation: the η cases.

The proof's delicate case is source η-equivalence mapping to the closure
η-principle; the series measures the cost of deciding that equivalence as
the captured environment grows.
"""

import pytest

from repro import cc
from repro.properties import check_coherence

_EMPTY = cc.Context.empty()


@pytest.mark.parametrize("captures", [0, 4, 8])
def test_eta_coherence_with_captures(benchmark, captures):
    ctx = _EMPTY.extend("A", cc.Star())
    for index in range(captures):
        ctx = ctx.extend(f"v{index}", cc.Var("A"))
    ctx = ctx.extend("f", cc.arrow(cc.Var("A"), cc.Var("A")))
    expanded = cc.Lam("x", cc.Var("A"), cc.App(cc.Var("f"), cc.Var("x")))
    benchmark.group = "E6 coherence (eta)"
    assert benchmark(lambda: check_coherence(ctx, expanded, cc.Var("f")))


@pytest.mark.parametrize("chain", [1, 4, 8])
def test_reduction_chain_coherence(benchmark, chain):
    """e ≡ e′ where e′ is e after `chain` reduction steps."""
    term: cc.Term = cc.nat_literal(0)
    for _ in range(chain):
        term = cc.App(cc.Lam("x", cc.Nat(), cc.Succ(cc.Var("x"))), term)
    reduced = cc.normalize(_EMPTY, term)
    benchmark.group = "E6 coherence (reduction chain)"
    assert benchmark(lambda: check_coherence(_EMPTY, term, reduced))
