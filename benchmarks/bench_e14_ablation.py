"""E14 — ablations: what fails when a design ingredient is removed.

Tabulates, over the corpus, how often (1) the shallow-FV compiler loses
Theorem 5.6 and (2) the η-less equivalence loses Lemma 5.1 — the
quantitative version of the paper's Sections 3.2 and 5.1 discussions.
"""

import pathlib
import sys

import pytest

from repro import cc
from repro.closconv.ablation import (
    compositionality_without_clo_eta,
    shallow_fv_type_preservation,
)
from repro.properties import check_compositionality
from repro.surface import parse_term

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tests"))
from corpus import CORPUS  # noqa: E402

_EMPTY = cc.Context.empty()


def test_shallow_fv_failure_table(benchmark):
    def tabulate():
        survives = 0
        for _name, ctx, term in CORPUS:
            if shallow_fv_type_preservation(ctx, term):
                survives += 1
        return survives

    benchmark.group = "E14 shallow-FV ablation"
    survives = benchmark(tabulate)
    benchmark.extra_info["corpus_size"] = len(CORPUS)
    benchmark.extra_info["shallow_fv_survives"] = survives
    # The ablation must lose at least the dependency-heavy programs.
    assert survives < len(CORPUS)


def test_clo_eta_ablation_table(benchmark):
    cases = [
        (_EMPTY, "y", cc.Nat(), parse_term(r"\ (w : Nat). y"), cc.nat_literal(3)),
        (
            _EMPTY,
            "g",
            cc.arrow(cc.Nat(), cc.Nat()),
            parse_term(r"\ (w : Nat). g w"),
            parse_term(r"\ (k : Nat). succ k"),
        ),
        (_EMPTY, "T", cc.Star(), parse_term(r"\ (w : T). w"), cc.Nat()),
    ]

    def tabulate():
        with_eta = sum(1 for case in cases if check_compositionality(*case))
        without_eta = sum(
            1 for case in cases if compositionality_without_clo_eta(*case)
        )
        return with_eta, without_eta

    benchmark.group = "E14 closure-η ablation"
    with_eta, without_eta = benchmark(tabulate)
    benchmark.extra_info["lemma51_with_eta"] = with_eta
    benchmark.extra_info["lemma51_without_eta"] = without_eta
    assert with_eta == len(cases)
    assert without_eta < with_eta
