"""E23 — the compile-to-host backend against the machine oracle.

Three acceptance gates, one artifact (``BENCH_backend.json``):

* **Execution.**  The staged Python closures must run **≥ 5×** faster
  than the abstract machine interpreter on the heavy reduction families
  (``bool_flip_tower``, ``church_sum``) — the entire point of staging:
  one translation pass trades the per-node dispatch of the tree-walking
  interpreter for direct host calls.

* **Complexity class.**  Staging must not change the *asymptotics* the
  paper's cost model assigns (the Accattoli-et-al. discipline: count
  machine transitions, not wall time).  The backend's counters mirror
  the machine's exactly, so the gate is the strongest version of
  "within a constant factor": every counter is **equal** at every tower
  size, so the cost curves coincide point for point.

* **Restart.**  A ``compile_py`` stream served warm from the persistent
  artifact table across a **real process restart** must run **≥ 2×**
  faster than the cold run that filled it (both timed inside the
  subprocess via the batch report's ``elapsed_seconds``).  The workload
  is compile-heavy/run-light, so what the artifact cache skips — type
  check, closure conversion, Theorem 5.6 verification, hoisting — is the
  dominant cost.  Payloads must be **byte-identical** cold vs. warm, and
  identical to the in-process solo run; the machine-oracle differential
  and a 4-worker pool sharing one artifact store ride the same stream.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import threading
import time

from repro import api, cc
from repro.api import Session
from repro.backend import compile_program
from repro.closconv import compile_term
from repro.machine import hoist, run
from repro.surface import to_surface
from workloads import bool_flip_tower, church_sum, nested_lambdas

_ARTIFACT = pathlib.Path(__file__).with_name("BENCH_backend.json")
_REPO = pathlib.Path(__file__).resolve().parent.parent

_EXEC_GATE = 5.0
_RESTART_GATE = 2.0
_EXEC_REPS = 5
_ATTEMPTS = 3
_TOWER_SIZES = (7, 9, 11, 13)

_STAT_FIELDS = (
    "steps",
    "closure_allocs",
    "tuple_allocs",
    "projections",
    "code_lookups",
    "max_frame_size",
    "env_allocs",
    "max_env_size",
)


def _merge_artifact(section: str, payload: dict) -> None:
    """Fold one gate's results into the shared ``BENCH_backend.json``."""
    document = {"bench": "e23_backend", "schema": 1, "python": sys.version.split()[0]}
    if _ARTIFACT.exists():
        try:
            document.update(json.loads(_ARTIFACT.read_text()))
        except json.JSONDecodeError:
            pass  # a torn artifact from a crashed run: start over
    document[section] = payload
    _ARTIFACT.write_text(json.dumps(document, indent=2) + "\n")


def _hoisted(term: cc.Term):
    """Closed CC term → hoisted machine program (the shared input form)."""
    return hoist(compile_term(cc.Context.empty(), term, verify=False).target)


# --------------------------------------------------------------------------
# Gate 1: staged execution vs. the machine interpreter.
# --------------------------------------------------------------------------


def _time_family(name: str, term: cc.Term, inner: int) -> dict:
    """Best-of-groups timing of one workload under both executors.

    ``inner`` executions per timed group keep a group in the milliseconds
    so best-of-groups is stable against scheduler noise; the differential
    (same value, same counters) rides the timing loop.

    Both executors are timed inside a **fresh thread**: CPython 3.11
    allocates Python frames in fixed-size data-stack chunks, so the
    caller's base stack depth decides where chunk boundaries fall inside
    the compiled run's call oscillation — an unlucky alignment (pytest's
    runner sits ~50 frames deep) turns a hot boundary crossing into a
    malloc/free per β and costs the staged executor ~40% for reasons
    that have nothing to do with the code under test.  A fresh thread's
    data stack starts at offset zero, making the alignment deterministic.
    """
    session = Session(name=f"e23-exec-{name}")
    with session.activate():
        program = _hoisted(term)
        start = time.perf_counter()
        compiled = compile_program(program)
        stage_seconds = time.perf_counter() - start
        box: dict = {}

        def measure() -> None:
            best_machine = best_compiled = float("inf")
            for _ in range(_EXEC_REPS):
                start = time.perf_counter()
                for _rep in range(inner):
                    machine_value, machine_stats = run(program)
                best_machine = min(
                    best_machine, (time.perf_counter() - start) / inner
                )
                start = time.perf_counter()
                for _rep in range(inner):
                    value, stats = compiled.execute()
                best_compiled = min(
                    best_compiled, (time.perf_counter() - start) / inner
                )
            box["machine"] = best_machine
            box["compiled"] = best_compiled
            box["machine_stats"] = machine_stats
            box["differential"] = value == machine_value and all(
                getattr(stats, field) == getattr(machine_stats, field)
                for field in _STAT_FIELDS
            )

        thread = threading.Thread(target=measure, name=f"e23-time-{name}")
        thread.start()
        thread.join()
    assert box["differential"], f"executors diverged on {name}"
    return {
        "workload": name,
        "steps": box["machine_stats"].steps,
        "stage_seconds": stage_seconds,
        "machine_seconds_best": box["machine"],
        "compiled_seconds_best": box["compiled"],
        "speedup": box["machine"] / box["compiled"],
    }


def test_execution_gate():
    """Compiled ≥ 5× machine on the heavy reduction workloads."""
    families = [
        ("bool_flip_tower(12)", bool_flip_tower(12), 1),
        ("church_sum(48)", church_sum(48), 20),
    ]
    # Best-of-attempts, like the restart gate: wall-clock ratios on a busy
    # box deserve more than one shot before the gate fails the build.
    rows = {}
    for attempt in range(_ATTEMPTS):
        for name, term, inner in families:
            row = _time_family(name, term, inner)
            if name not in rows or row["speedup"] > rows[name]["speedup"]:
                rows[name] = row
        if all(row["speedup"] >= _EXEC_GATE for row in rows.values()):
            break
    worst = min(row["speedup"] for row in rows.values())
    _merge_artifact(
        "execution",
        {
            "reps": _EXEC_REPS,
            "attempts": _ATTEMPTS,
            "gate": _EXEC_GATE,
            "workloads": list(rows.values()),
        },
    )
    assert worst >= _EXEC_GATE, (
        f"staged execution speedup {worst:.1f}x below the {_EXEC_GATE:.0f}x gate: "
        f"{list(rows.values())}"
    )


# --------------------------------------------------------------------------
# Gate 2: identical cost curves (the complexity-class differential).
# --------------------------------------------------------------------------


def test_complexity_class_gate():
    """Every counter equal at every tower size: the curves coincide."""
    series = []
    for size in _TOWER_SIZES:
        session = Session(name=f"e23-curve-{size}")
        with session.activate():
            program = _hoisted(bool_flip_tower(size))
            _value, machine_stats = run(program)
            _value2, stats = compile_program(program).execute()
        point = {field: getattr(machine_stats, field) for field in _STAT_FIELDS}
        compiled_point = {field: getattr(stats, field) for field in _STAT_FIELDS}
        assert compiled_point == point, (
            f"cost curves diverge at tower size {size}: "
            f"machine {point} vs compiled {compiled_point}"
        )
        series.append({"size": size, **point})
    # The family really is exponential in the size knob — the curve the
    # counters must (and do) reproduce identically.
    steps = [point["steps"] for point in series]
    assert all(later > 3 * earlier for earlier, later in zip(steps, steps[2:]))
    _merge_artifact(
        "complexity",
        {
            "workload": "bool_flip_tower",
            "sizes": list(_TOWER_SIZES),
            "series": series,
            "counters_identical": True,
        },
    )


# --------------------------------------------------------------------------
# Gate 3: warm-from-artifact across a real process restart.
# --------------------------------------------------------------------------


def _compile_py_jobs() -> list[dict]:
    """A compile-heavy/run-light ``compile_py`` stream.

    ``nested_lambdas`` towers make closure conversion and Theorem 5.6
    verification the dominant cost while executing in microseconds — the
    regime where the artifact cache's skip pays.  A build-indexed
    ζ-wrapper keeps the programs α-distinct, one artifact row each.
    """
    jobs = []
    for build, depth in enumerate((30, 34, 38)):
        term = cc.Let(
            "build", cc.nat_literal(build), cc.Nat(), nested_lambdas(depth)
        )
        jobs.append(
            {
                "id": f"stage-{build}",
                "kind": "compile_py",
                "program": to_surface(term),
            }
        )
    jobs.append(
        {
            "id": "tower",
            "kind": "compile_py",
            "program": to_surface(bool_flip_tower(8)),
        }
    )
    return jobs


def _run_batch(corpus: pathlib.Path, store: pathlib.Path) -> dict:
    """One ``python -m repro batch`` subprocess — a genuinely fresh process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "batch",
            str(corpus),
            "--json",
            "--memo-store",
            str(store),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(_REPO),
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _canonical_from_report(report: dict) -> list[dict]:
    return [
        {key: value for key, value in result.items() if key != "meta"}
        for result in report["results"]
    ]


def test_artifact_restart_gate():
    """Warm-from-artifact ≥ 2× cold across a restart; payloads identical
    cold / warm / solo; machine oracle and 4-worker pool ride along."""
    jobs = _compile_py_jobs()

    solo = api.execute_jobs(jobs)
    solo_canonical = solo.canonical()

    # Machine-oracle differential: the same programs through the machine
    # backend produce the same payloads modulo the backend-only keys.
    oracle = api.execute_jobs([dict(spec, kind="run") for spec in jobs])
    for machine_result, compiled_result in zip(oracle.results, solo.results):
        assert machine_result.ok and compiled_result.ok
        left = {k: v for k, v in machine_result.payload.items() if k != "backend"}
        right = {
            k: v
            for k, v in compiled_result.payload.items()
            if k not in ("backend", "artifact")
        }
        assert left == right, f"oracle diverged on {machine_result.id}"

    best = None
    identical = True
    with tempfile.TemporaryDirectory(prefix="e23-restart-") as scratch:
        scratch_path = pathlib.Path(scratch)
        corpus = scratch_path / "jobs.jsonl"
        corpus.write_text("".join(json.dumps(spec) + "\n" for spec in jobs))
        for attempt in range(_ATTEMPTS):
            store = scratch_path / f"artifacts-{attempt}.sqlite"
            cold = _run_batch(corpus, store)
            warm = _run_batch(corpus, store)
            identical = identical and (
                _canonical_from_report(cold)
                == _canonical_from_report(warm)
                == solo_canonical
            )
            assert warm["stats"]["persist"]["artifact_hits"] > 0, (
                "warm run never hit the artifact table"
            )
            attempt_result = {
                "cold_seconds": cold["elapsed_seconds"],
                "warm_seconds": warm["elapsed_seconds"],
                "speedup": cold["elapsed_seconds"] / warm["elapsed_seconds"],
                "warm_artifact_hits": warm["stats"]["persist"]["artifact_hits"],
            }
            if best is None or attempt_result["speedup"] > best["speedup"]:
                best = attempt_result
            if identical and best["speedup"] >= _RESTART_GATE:
                break

        # The pooled differential: 4 workers sharing one artifact store.
        pooled = api.execute_jobs(
            jobs, workers=4, memo_store=scratch_path / "artifacts-pool.sqlite"
        )
        pooled_identical = pooled.canonical() == solo_canonical

    _merge_artifact(
        "restart",
        {
            "jobs": len(jobs),
            "attempts": _ATTEMPTS,
            "gate": _RESTART_GATE,
            "payloads_identical": identical and pooled_identical,
            "oracle_identical": True,
            "pool_workers": 4,
            **best,
        },
    )
    assert identical, "restart differential: payloads diverged across runs"
    assert pooled_identical, "pooled differential: payloads diverged from solo"
    assert best["speedup"] >= _RESTART_GATE, (
        f"warm {best['warm_seconds']:.3f}s vs cold {best['cold_seconds']:.3f}s "
        f"= {best['speedup']:.1f}x, below the {_RESTART_GATE:.0f}x gate"
    )
