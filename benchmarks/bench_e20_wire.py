"""E20 — the binary wire and the persistent memo tier.

Two acceptance gates, one artifact (``BENCH_wire.json``):

* **Ingest.**  Binary ingest (decode the content-addressed node table,
  then intern) must be **≥ 5×** faster than text ingest (parse the
  surface syntax, then intern) on the shared-DAG regime the codec exists
  for: :func:`workloads.shared_dag_tower`, a ~10k-node unfolding whose
  interned DAG is a few hundred nodes.  The text wire pays the unfolding
  — its pretty-printed form spells every repeated subterm out — while the
  node table carries each unique node once; the gate also reports the
  bytes-on-wire ratio, which is the same asymmetry measured in bytes.

* **Restart.**  A job stream served warm from the persistent store across
  a **real process restart** must run **≥ 2×** faster than the cold run
  that filled the store (both timed inside the subprocess, via the batch
  report's ``elapsed_seconds`` — interpreter startup is not the thing
  under test).  The workload is ``bool_flip_tower`` normalization: tens
  of thousands of reduction steps from ~200 bytes of program, so the cost
  a persisted hit avoids dwarfs the store lookup that replaces it.

The restart gate also enforces the determinism differential: the
deterministic half of every result — values, types, exact fuel-replay
step counts, error documents — must be **byte-identical** across the
in-process solo run, the 2-worker pooled run sharing the store, and both
subprocess runs (cold and warm-from-store), on every attempt.  The stream
deliberately includes a fuel-starved job and a binary-wire job so error
documents and ``wire: 2`` payloads cross the restart under the same
contract.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

from repro import api, cc
from repro.api import Session
from repro.gen.jobs import binary_specs
from repro.surface import parse_term, to_surface
from repro.wire.codec import decode_term, encode_term
from workloads import bool_flip_tower, nat_sum, shared_dag_tower

_ARTIFACT = pathlib.Path(__file__).with_name("BENCH_wire.json")
_REPO = pathlib.Path(__file__).resolve().parent.parent

_INGEST_GATE = 5.0
_RESTART_GATE = 2.0
_ATTEMPTS = 3
_INGEST_REPS = 5
_TOWER_BUILDS = 3
_TOWER_HEIGHT = 13


def _merge_artifact(section: str, payload: dict) -> None:
    """Fold one gate's results into the shared ``BENCH_wire.json``."""
    document = {"bench": "e20_wire", "schema": 1, "python": sys.version.split()[0]}
    if _ARTIFACT.exists():
        try:
            document.update(json.loads(_ARTIFACT.read_text()))
        except json.JSONDecodeError:
            pass  # a torn artifact from a crashed run: start over
    document[section] = payload
    _ARTIFACT.write_text(json.dumps(document, indent=2) + "\n")


# --------------------------------------------------------------------------
# Gate 1: binary ingest vs. text ingest.
# --------------------------------------------------------------------------


def test_binary_ingest_gate():
    """Decode+intern ≥ 5× parse+intern on the shared-DAG workload."""
    lang = cc.ast.LANGUAGE
    scratch = Session(name="e20-encode")
    with scratch.activate():
        tower = cc.intern(shared_dag_tower())
        text = to_surface(tower)
        blob = encode_term(lang, tower)
        canonical_pretty = cc.pretty(tower)
    text_bytes = len(text.encode("utf-8"))
    ratio_bytes = text_bytes / len(blob)

    best_text = best_binary = float("inf")
    for rep in range(_INGEST_REPS):
        # Fresh sessions: both wires pay their honest cold cost — empty
        # hash-cons tables, empty by_hash index, no warm caches.
        text_session = Session(name=f"e20-text-{rep}")
        with text_session.activate():
            start = time.perf_counter()
            via_text = cc.intern(parse_term(text))
            best_text = min(best_text, time.perf_counter() - start)
            assert cc.pretty(via_text) == canonical_pretty
        binary_session = Session(name=f"e20-binary-{rep}")
        with binary_session.activate():
            start = time.perf_counter()
            via_binary = cc.intern(decode_term(lang, blob))
            best_binary = min(best_binary, time.perf_counter() - start)
            assert cc.pretty(via_binary) == canonical_pretty

    speedup = best_text / best_binary
    _merge_artifact(
        "ingest",
        {
            "workload": "shared_dag_tower()",
            "reps": _INGEST_REPS,
            "text_bytes": text_bytes,
            "binary_bytes": len(blob),
            "bytes_on_wire_ratio": ratio_bytes,
            "text_seconds_best": best_text,
            "binary_seconds_best": best_binary,
            "speedup": speedup,
            "gate": _INGEST_GATE,
        },
    )
    assert speedup >= _INGEST_GATE, (
        f"binary ingest {best_binary * 1e3:.2f} ms vs text {best_text * 1e3:.2f} ms "
        f"= {speedup:.1f}x, below the {_INGEST_GATE:.0f}x gate"
    )


# --------------------------------------------------------------------------
# Gate 2: warm-from-store across a real process restart.
# --------------------------------------------------------------------------


def _restart_jobs() -> list[dict]:
    """The restart stream: heavy towers, a binary-wire job, a failure."""
    jobs: list[dict] = []
    for build in range(_TOWER_BUILDS):
        # α-distinct per build (a build-indexed ζ-wrapper), so every job is
        # its own store entry rather than three aliases of one.
        tower = cc.Let(
            "build", cc.nat_literal(build), cc.Nat(), bool_flip_tower(_TOWER_HEIGHT)
        )
        jobs.append(
            {"id": f"tower-{build}", "kind": "normalize", "program": to_surface(tower)}
        )
    binary = binary_specs(
        [{"id": "dag-binary", "kind": "normalize", "program": to_surface(shared_dag_tower(5))}]
    )
    jobs.extend(binary)
    jobs.append(
        {
            "id": "starved",
            "kind": "normalize",
            "program": to_surface(nat_sum(40)),
            "fuel": 25,
        }
    )
    return jobs


def _run_restart(corpus: pathlib.Path, store: pathlib.Path) -> dict:
    """One ``python -m repro batch`` subprocess — a genuinely fresh process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "batch",
            str(corpus),
            "--json",
            "--memo-store",
            str(store),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(_REPO),
        timeout=600,
    )
    # Exit 1 only flags the deliberate in-stream failure; the report emits.
    assert proc.returncode in (0, 1), proc.stderr
    return json.loads(proc.stdout)


def _canonical_from_report(report: dict) -> list[dict]:
    return [
        {key: value for key, value in result.items() if key != "meta"}
        for result in report["results"]
    ]


def test_persistent_restart_gate():
    """Warm-from-store ≥ 2× cold across a restart; payloads byte-identical
    solo / pooled / cold subprocess / warm subprocess, on every attempt."""
    jobs = _restart_jobs()

    solo_canonical = api.execute_jobs(jobs).canonical()

    best = None
    identical = True
    with tempfile.TemporaryDirectory(prefix="e20-restart-") as scratch:
        scratch_path = pathlib.Path(scratch)
        corpus = scratch_path / "jobs.jsonl"
        corpus.write_text("".join(json.dumps(spec) + "\n" for spec in jobs))
        for attempt in range(_ATTEMPTS):
            store = scratch_path / f"memo-{attempt}.sqlite"
            cold = _run_restart(corpus, store)
            warm = _run_restart(corpus, store)
            identical = identical and (
                _canonical_from_report(cold)
                == _canonical_from_report(warm)
                == solo_canonical
            )
            attempt_result = {
                "cold_seconds": cold["elapsed_seconds"],
                "warm_seconds": warm["elapsed_seconds"],
                "speedup": cold["elapsed_seconds"] / warm["elapsed_seconds"],
                "cold_persist": cold["stats"]["persist"],
                "warm_persist": warm["stats"]["persist"],
            }
            assert warm["stats"]["persist"]["hits"] > 0, "warm run never hit the store"
            if best is None or attempt_result["speedup"] > best["speedup"]:
                best = attempt_result
            if identical and best["speedup"] >= _RESTART_GATE:
                break

        # The pooled differential: two workers sharing the last store.
        pooled = api.execute_jobs(
            jobs, workers=2, memo_store=scratch_path / f"memo-{attempt}.sqlite"
        )
        pooled_identical = pooled.canonical() == solo_canonical

    _merge_artifact(
        "restart",
        {
            "jobs": len(jobs),
            "tower_height": _TOWER_HEIGHT,
            "attempts": _ATTEMPTS,
            "gate": _RESTART_GATE,
            "payloads_identical": identical and pooled_identical,
            **best,
        },
    )
    assert identical, "restart differential: payloads diverged across runs"
    assert pooled_identical, "pooled differential: payloads diverged from solo"
    assert best["speedup"] >= _RESTART_GATE, (
        f"warm {best['warm_seconds']:.3f}s vs cold {best['cold_seconds']:.3f}s "
        f"= {best['speedup']:.1f}x, below the {_RESTART_GATE:.0f}x gate"
    )
