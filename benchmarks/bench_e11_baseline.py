"""E11 — the Section 3.1 head-to-head: ∃-encoding vs the paper's Figure 9.

The headline table (who type-checks on what): regenerated over the corpus
and recorded in `extra_info`, alongside translation-cost comparisons on
the simply-typed fragment where both compilers succeed.
"""

import pathlib
import sys

import pytest

from repro import cc
from repro.baseline import classify_failure, translate_existential
from repro.closconv import compile_term, translate
from repro.surface import parse_term

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tests"))
from corpus import CORPUS  # noqa: E402

_EMPTY = cc.Context.empty()

SIMPLY_TYPED = [
    parse_term(r"\ (x : Nat). x"),
    parse_term(r"\ (x : Nat). \ (y : Bool). x"),
    parse_term(r"\ (f : Nat -> Nat). \ (g : Nat -> Nat). \ (x : Nat). f (g x)"),
    parse_term(r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5"),
]


def test_corpus_success_table(benchmark):
    """The E11 headline: ours always type-preserves; the baseline's score
    and failure modes land in extra_info."""

    def tabulate():
        outcomes = {"type-preserving": 0, "universe": 0, "mismatch": 0, "other": 0}
        ours = 0
        for _name, ctx, term in CORPUS:
            outcomes[classify_failure(ctx, term)] += 1
            compile_term(ctx, term, verify=True)
            ours += 1
        return outcomes, ours

    benchmark.group = "E11 success table"
    outcomes, ours = benchmark(tabulate)
    benchmark.extra_info["existential_outcomes"] = outcomes
    benchmark.extra_info["figure9_type_preserving"] = ours
    assert ours == len(CORPUS)
    assert outcomes["type-preserving"] < len(CORPUS)
    assert outcomes["universe"] > 0 and outcomes["mismatch"] > 0


@pytest.mark.parametrize("index", range(len(SIMPLY_TYPED)))
def test_existential_translation_cost(benchmark, index):
    term = SIMPLY_TYPED[index]
    benchmark.group = "E11 translate (existential)"
    output = benchmark(lambda: translate_existential(_EMPTY, term))
    cc.infer(_EMPTY, output)  # type preserving on this fragment


@pytest.mark.parametrize("index", range(len(SIMPLY_TYPED)))
def test_figure9_translation_cost(benchmark, index):
    term = SIMPLY_TYPED[index]
    benchmark.group = "E11 translate (figure 9)"
    benchmark(lambda: translate(_EMPTY, term))


@pytest.mark.parametrize("index", [0, 3])
def test_output_size_comparison(benchmark, index):
    """The ∃-encoding's output is much larger (packs, unpacks, Church ∃)."""
    term = SIMPLY_TYPED[index]
    ours = translate(_EMPTY, term)
    theirs = translate_existential(_EMPTY, term)
    from repro import cccc

    benchmark.extra_info["figure9_size"] = cccc.term_size(ours)
    benchmark.extra_info["existential_size"] = cc.term_size(theirs)
    benchmark.group = "E11 output size"
    benchmark(lambda: (cccc.term_size(ours), cc.term_size(theirs)))
