"""E16 — incremental conversion checking vs. normalize-then-compare.

Series: the three workload shapes the incremental engine is built for —

* **shared-subterm** — both sides embed the *same* (pointer-shared)
  expensive redex under different wrappers.  The baseline normalizes it;
  the engine's pointer short-circuit never looks inside.
* **divergent-head** — both sides are large but disagree at the outermost
  constructor.  The baseline pays for two full normal forms before its
  comparison can fail; the engine fails after two whnf probes.
* **deep-spine** — structurally equal constructor towers.  Both decide it
  by walking the spine, but only the engine's explicit work-list survives
  depths where the baseline's recursive normalizer hits the Python stack
  limit.

``test_shared_subterm_speedup_gate`` is the acceptance gate for this
layer: incremental must be **≥ 2×** faster than normalize-then-compare on
the shared-subterm workload, both measured from cold caches.  The module
also emits ``BENCH_conversion.json`` next to this file — a machine-readable
perf-trajectory artifact recording every workload's timings, so successive
PRs can diff conversion performance.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import pytest

from repro import cc
from repro.cc.equiv import norm_equal_eta
from repro.common.names import reset_fresh_counter
from repro.kernel.budget import Budget
from workloads import church_sum

_EMPTY = cc.Context.empty()
_ARTIFACT = pathlib.Path(__file__).with_name("BENCH_conversion.json")

#: Deep enough to be measurable, shallow enough that the *baseline*'s
#: recursive normalizer stays inside the Python stack.
_SAFE_SPINE = 400
#: What only the incremental engine survives (cf. tests/test_kernel.py).
_DEEP_SPINE = 10_000


def _baseline_equivalent(ctx: cc.Context, left: cc.Term, right: cc.Term) -> bool:
    """The pre-engine decision procedure: normalize both sides, α-compare."""
    budget = Budget()
    left_nf = cc.normalize(ctx, left, budget)
    right_nf = cc.normalize(ctx, right, budget)
    return norm_equal_eta(left_nf, right_nf)


def _timed_cold(fn, repeats: int = 3) -> float:
    """Minimum wall-clock seconds over ``repeats`` cold-cache calls."""
    best = float("inf")
    for _ in range(repeats):
        reset_fresh_counter()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _succ_tower(n: int, core: cc.Term) -> cc.Term:
    term = core
    for _ in range(n):
        term = cc.Succ(term)
    return term


# -- workloads --------------------------------------------------------------


def _shared_subterm_pair() -> tuple[cc.Term, cc.Term]:
    shared = church_sum(6)  # expensive to normalize, shared by pointer
    return cc.App(cc.Var("f"), shared), cc.App(cc.Var("f"), shared)


def _divergent_head_pair() -> tuple[cc.Term, cc.Term]:
    # λ-free on both sides, so no η-rule can bridge the disagreeing heads.
    heavy = church_sum(5)
    annot = cc.Sigma("s", cc.Nat(), cc.Nat())
    return cc.Pair(heavy, heavy, annot), cc.Sigma("z", cc.Nat(), heavy)


def _deep_spine_pair(depth: int) -> tuple[cc.Term, cc.Term]:
    return _succ_tower(depth, cc.Zero()), _succ_tower(depth, cc.Zero())


def _measure_workloads() -> list[dict]:
    """Time every workload under both procedures (cold caches each run)."""
    shared_l, shared_r = _shared_subterm_pair()
    divergent_l, divergent_r = _divergent_head_pair()
    spine_l, spine_r = _deep_spine_pair(_SAFE_SPINE)
    deep_l, deep_r = _deep_spine_pair(_DEEP_SPINE)

    records = []
    for name, ctx, left, right, expected in [
        ("shared_subterm", _EMPTY, shared_l, shared_r, True),
        ("divergent_head", _EMPTY, divergent_l, divergent_r, False),
        (f"deep_spine_{_SAFE_SPINE}", _EMPTY, spine_l, spine_r, True),
    ]:
        assert _baseline_equivalent(ctx, left, right) is expected
        assert cc.equivalent(ctx, left, right) is expected
        baseline = _timed_cold(lambda c=ctx, l=left, r=right: _baseline_equivalent(c, l, r))
        incremental = _timed_cold(lambda c=ctx, l=left, r=right: cc.equivalent(c, l, r, Budget()))
        records.append(
            {
                "workload": name,
                "expected_verdict": expected,
                "baseline_s": baseline,
                "incremental_s": incremental,
                "speedup": baseline / incremental if incremental else float("inf"),
            }
        )

    # The 10k spine has no baseline number: the recursive normalizer cannot
    # decide it at all (RecursionError), which is the point.
    assert cc.equivalent(_EMPTY, deep_l, deep_r, Budget())
    deep_time = _timed_cold(lambda: cc.equivalent(_EMPTY, deep_l, deep_r, Budget()))
    records.append(
        {
            "workload": f"deep_spine_{_DEEP_SPINE}",
            "expected_verdict": True,
            "baseline_s": None,
            "incremental_s": deep_time,
            "speedup": None,
            "note": "baseline (recursive normalize) exceeds the Python stack here",
        }
    )

    # Warm repeat: the judgment-level memo turns the whole decision into a
    # single cache probe with fuel replay.
    reset_fresh_counter()
    cc.equivalent(_EMPTY, shared_l, shared_r, Budget())
    start = time.perf_counter()
    cc.equivalent(_EMPTY, shared_l, shared_r, Budget())
    records.append(
        {
            "workload": "shared_subterm_warm_repeat",
            "expected_verdict": True,
            "baseline_s": None,
            "incremental_s": time.perf_counter() - start,
            "speedup": None,
            "note": "second call hits the equivalence memo",
        }
    )
    return records


def test_shared_subterm_speedup_gate():
    """Acceptance: incremental ≥ 2× over normalize-and-compare on shared
    subterms, and the perf-trajectory artifact is (re)written."""
    records = _measure_workloads()
    _ARTIFACT.write_text(
        json.dumps(
            {
                "bench": "e16_conversion",
                "schema": 1,
                "python": sys.version.split()[0],
                "workloads": records,
            },
            indent=2,
        )
        + "\n"
    )
    by_name = {record["workload"]: record for record in records}
    shared = by_name["shared_subterm"]
    assert shared["baseline_s"] >= 2 * shared["incremental_s"], (
        f"incremental {shared['incremental_s']:.6f}s not 2x faster than "
        f"baseline {shared['baseline_s']:.6f}s on the shared-subterm workload"
    )


def test_divergent_head_fails_without_fuel():
    """Fail-fast: a divergent-head verdict costs zero reduction steps."""
    left, right = _divergent_head_pair()
    reset_fresh_counter()
    budget = Budget()
    assert cc.equivalent(_EMPTY, left, right, budget) is False
    assert budget.spent == 0


def test_shared_subterm_needs_no_fuel():
    """The pointer short-circuit outruns any budget the baseline would need."""
    left, right = _shared_subterm_pair()
    reset_fresh_counter()
    baseline_budget = Budget()
    assert _baseline_equivalent(_EMPTY, left, right)  # spends real fuel
    # (normalizing Church arithmetic costs hundreds of steps; incremental
    # conversion of the same pair is decidable with none at all)
    reset_fresh_counter()
    assert cc.equivalent(_EMPTY, left, right, Budget(remaining=0))


@pytest.mark.parametrize("n", [4, 5, 6])
def test_incremental_shared(benchmark, n):
    """Micro series: incremental conversion over a shared redex."""
    shared = church_sum(n)
    left = cc.App(cc.Var("f"), shared)
    right = cc.App(cc.Var("f"), shared)
    benchmark.group = "E16 shared subterm (incremental)"
    assert benchmark(lambda: cc.equivalent(_EMPTY, left, right, Budget()))


@pytest.mark.parametrize("n", [4, 5, 6])
def test_baseline_shared(benchmark, n):
    """Micro series: normalize-then-compare over the same shared redex."""
    shared = church_sum(n)
    left = cc.App(cc.Var("f"), shared)
    right = cc.App(cc.Var("f"), shared)
    benchmark.group = "E16 shared subterm (baseline)"

    def run():
        reset_fresh_counter()
        return _baseline_equivalent(_EMPTY, left, right)

    assert benchmark(run)
