"""E15 — the shared term kernel's caches (cold vs. warm).

Series: the three kernel caches introduced with ``repro/kernel/`` —
memoized normalization, cached free variables (as exercised by
substitution), and hash-consing/interning — each measured cold (caches
empty) against warm (caches filled by an identical prior run).

``test_warm_normalize_speedup`` is the acceptance gate for the caching
layer: a warm-cache ``normalize`` must be at least 2× faster than a cold
run on the same workload.  In practice the warm run is a single dict probe
and the ratio is orders of magnitude.
"""

from __future__ import annotations

import time

import pytest

from repro import cc
from repro.common.names import reset_fresh_counter
from workloads import church_sum, nat_sum, nested_lambdas, wide_capture

_EMPTY = cc.Context.empty()


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_warm_normalize_speedup():
    """Acceptance: warm-cache normalize ≥ 2× faster than cold."""
    term = church_sum(6)
    reset_fresh_counter()  # cold: every kernel cache empty

    start = time.perf_counter()
    cold_result = cc.normalize(_EMPTY, term)
    cold = time.perf_counter() - start

    warm = _best_of(lambda: cc.normalize(_EMPTY, term))
    warm_result = cc.normalize(_EMPTY, term)

    assert warm_result is cold_result  # the memoized object comes back
    assert cc.nat_value(warm_result) == 12
    assert warm * 2 <= cold, f"warm {warm:.6f}s not 2x faster than cold {cold:.6f}s"


def test_step_accounting_survives_caching():
    """Fuel replay: cold and warm runs report identical step counts."""
    term = nat_sum(32)
    reset_fresh_counter()
    _, cold_steps = cc.normalize_counting(_EMPTY, term)
    _, warm_steps = cc.normalize_counting(_EMPTY, term)
    assert cold_steps == warm_steps > 0


@pytest.mark.parametrize("n", [4, 6, 8])
def test_normalize_warm(benchmark, n):
    """Steady-state normalize: every iteration after the first is a hit."""
    term = church_sum(n)
    benchmark.group = "E15 normalize (warm)"
    result = benchmark(lambda: cc.normalize(_EMPTY, term))
    assert cc.nat_value(result) == 2 * n


@pytest.mark.parametrize("n", [4, 6, 8])
def test_normalize_cold(benchmark, n):
    """Cold normalize: caches are reset before every iteration."""
    term = church_sum(n)
    benchmark.group = "E15 normalize (cold)"

    def run():
        reset_fresh_counter()
        return cc.normalize(_EMPTY, term)

    result = benchmark(run)
    assert cc.nat_value(result) == 2 * n


@pytest.mark.parametrize("depth", [16, 64])
def test_subst_heavy_warm_fv_cache(benchmark, depth):
    """Substitution over a big term with the free-variable cache warm.

    ``nested_lambdas(depth)`` only has ``x0`` free under the outer binder,
    so each call's relevance scan is the hot path; with cached
    free-variable sets it is a dict probe instead of a term walk.
    """
    term = nested_lambdas(depth).body  # λ x1 … λ x_{depth-1}. x0, x0 free
    replacement = cc.nat_literal(3)
    cc.cached_free_vars(term)  # warm the cache once
    benchmark.group = "E15 subst (warm fv cache)"
    result = benchmark(lambda: cc.subst1(term, "x0", replacement))
    assert cc.free_vars(result) == set()


@pytest.mark.parametrize("width", [16, 64])
def test_subst_wide_capture(benchmark, width):
    """Parallel substitution across a wide-capture body (many free vars)."""
    _, lam = wide_capture(width)
    mapping = {f"v{index}": cc.nat_literal(1) for index in range(width)}
    cc.cached_free_vars(lam)
    benchmark.group = "E15 subst (wide mapping)"
    result = benchmark(lambda: cc.subst(lam, mapping))
    assert cc.free_vars(result) == set()


def test_intern_dedup(benchmark):
    """Interning α-identical builds: second and later calls are lookups."""
    terms = [nested_lambdas(12) for _ in range(8)]
    benchmark.group = "E15 intern"

    def run():
        reps = {id(cc.intern(t)) for t in terms}
        assert len(reps) == 1

    benchmark(run)
