"""Sanity tests for the type-directed random generator (test substrate)."""

import pytest

from repro import cc
from repro.gen import GenConfig, TermGenerator


class TestDeterminism:
    def test_same_seed_same_output(self):
        # Binder names come from the global fresh supply, so determinism is
        # up to α-equivalence.
        first = TermGenerator(42).well_typed_term()
        second = TermGenerator(42).well_typed_term()
        assert first is not None and second is not None
        assert cc.alpha_equal(first[1], second[1])

    def test_different_seeds_vary(self):
        outputs = set()
        for seed in range(20):
            triple = TermGenerator(seed).well_typed_term()
            if triple is not None:
                outputs.add(cc.pretty(triple[1]))
        assert len(outputs) > 5


class TestWellTypedness:
    @pytest.mark.parametrize("seed", range(50))
    def test_output_is_verified(self, seed):
        triple = TermGenerator(seed).well_typed_term()
        if triple is None:
            pytest.skip("generator gave up")
        ctx, term, type_ = triple
        inferred = cc.infer(ctx, term)
        assert cc.equivalent(ctx, inferred, type_)

    @pytest.mark.parametrize("seed", range(20))
    def test_contexts_well_formed(self, seed):
        gen = TermGenerator(seed)
        cc.check_context(gen.context())

    @pytest.mark.parametrize("seed", range(20))
    def test_types_are_types(self, seed):
        gen = TermGenerator(seed)
        ctx = gen.context(2)
        type_ = gen.type_(ctx, 3)
        assert isinstance(cc.infer_universe(ctx, type_), (cc.Star, cc.Box))

    @pytest.mark.parametrize("seed", range(20))
    def test_checking_mode_inhabits(self, seed):
        gen = TermGenerator(seed)
        ctx = gen.context(2)
        target = gen.type_(ctx, 2)
        term = gen.term(ctx, target, 4)
        if term is None:
            pytest.skip("no inhabitant found")
        cc.check(ctx, term, target)


class TestCoverage:
    def test_generates_redexes(self):
        """The corpus must exercise reduction, so redexes must appear."""
        found_app_redex = False
        for seed in range(80):
            gen = TermGenerator(seed, GenConfig(redex_probability=0.9))
            triple = gen.well_typed_term()
            if triple is None:
                continue
            _, term, _ = triple
            for sub in cc.subterms(term):
                if isinstance(sub, cc.App) and isinstance(sub.fn, cc.Lam):
                    found_app_redex = True
                if isinstance(sub, cc.Let):
                    found_app_redex = found_app_redex or True
        assert found_app_redex

    def test_generates_lambdas_and_pairs(self):
        kinds: set[type] = set()
        for seed in range(60):
            triple = TermGenerator(seed).well_typed_term()
            if triple is None:
                continue
            for sub in cc.subterms(triple[1]):
                kinds.add(type(sub))
        assert cc.Lam in kinds
        assert cc.Pair in kinds or cc.Sigma in kinds

    def test_config_disables_ground(self):
        gen = TermGenerator(7, GenConfig(allow_ground=False, allow_sigma=False, allow_poly=False))
        ctx = cc.Context.empty()
        type_ = gen.type_(ctx, 2)
        # Without ground/sigma/poly, only Π over the fallback leaf remains.
        assert isinstance(type_, (cc.Pi, cc.Nat))
