"""Lemma 5.1 (Compositionality): ``(e1[e2/x])⁺ ≡ e1⁺[e2⁺/x]``.

The key difficulty of the paper's type-preservation proof: substituting
before translation yields a *smaller environment* (the substituted value is
inlined), substituting after yields an environment slot holding the value.
The closure η-principle makes the two results definitionally equal.
"""

import pytest

from repro import cc
from repro.cc import prelude
from repro.gen import TermGenerator
from repro.properties import check_compositionality
from repro.surface import parse_term


def _case(prefix_entries, name, name_type, body_src, value):
    prefix = cc.Context.empty()
    for entry_name, entry_type in prefix_entries:
        prefix = prefix.extend(entry_name, entry_type)
    body = parse_term(body_src) if isinstance(body_src, str) else body_src
    return prefix, name, name_type, body, value


HAND_CASES = [
    # The paper's motivating shape: a λ whose environment gains/loses x.
    _case([("B", cc.Star()), ("b", cc.Var("B"))], "y", cc.Var("B"),
          r"\ (w : B). y", cc.Var("b")),
    # Substituting a literal into a captured position.
    _case([], "y", cc.Nat(), r"\ (w : Nat). y", cc.nat_literal(3)),
    # x occurs in the *annotation* (a type), not the body.
    _case([("b", cc.Bool())], "y", cc.Bool(),
          cc.Lam("w", cc.If(cc.Var("y"), cc.Nat(), cc.Bool()), cc.nat_literal(0)),
          cc.Var("b")),
    # x under two binders.
    _case([], "y", cc.Nat(), r"\ (u : Nat). \ (v : Nat). y", cc.nat_literal(1)),
    # x applied, not just returned.
    _case([("f", cc.arrow(cc.Nat(), cc.Nat()))], "y", cc.Nat(),
          r"\ (w : Bool). f y", cc.Zero()),
    # Substitution into a non-λ (structural cases).
    _case([], "y", cc.Nat(), cc.Succ(cc.Var("y")), cc.nat_literal(4)),
    _case([], "y", cc.Nat(),
          cc.Pair(cc.Var("y"), cc.BoolLit(True), parse_term("exists (x : Nat), Bool")),
          cc.nat_literal(2)),
    # Substituting a function value (a closure after translation).
    _case([], "g", cc.arrow(cc.Nat(), cc.Nat()),
          r"\ (w : Nat). g (g w)", parse_term(r"\ (k : Nat). succ k")),
    # Substituting a *type* for a type variable.
    _case([], "T", cc.Star(), r"\ (w : T). w", cc.Nat()),
    # let in the body.
    _case([], "y", cc.Nat(), parse_term(r"\ (w : Nat). let q = y : Nat in q"),
          cc.nat_literal(5)),
]


class TestHandCases:
    @pytest.mark.parametrize("case", HAND_CASES, ids=[f"case{i}" for i in range(len(HAND_CASES))])
    def test_compositionality(self, case):
        prefix, name, name_type, body, value = case
        # Sanity: inputs must be well-typed as the lemma assumes.
        cc.check(prefix, value, name_type)
        cc.infer(prefix.extend(name, name_type), body)
        assert check_compositionality(prefix, name, name_type, body, value)

    def test_paper_example_environment_shapes_differ(self, empty):
        """Demonstrate the proof's point: the two sides are *syntactically*
        different closures (different env arity) yet equivalent."""
        from repro import cccc
        from repro.closconv import translate

        prefix = empty.extend("b", cc.Nat())
        extended = prefix.extend("y", cc.Nat())
        body = parse_term(r"\ (w : Nat). y")

        left = translate(prefix, cc.subst1(body, "y", cc.Var("b")))
        right = cccc.subst1(translate(extended, body), "y", cccc.Var("b"))
        assert cccc.equivalent(cccc.Context.empty(), left, right)

        # With a literal, substitute-then-translate closes the λ entirely
        # (empty environment ⟨⟩), while translate-then-substitute keeps an
        # environment slot holding 3 — different closure *shapes*, equal
        # only thanks to the closure η-principle.
        left2 = translate(prefix, cc.subst1(body, "y", cc.nat_literal(3)))
        right2 = cccc.subst1(translate(extended, body), "y", cccc.nat_literal(3))
        assert cccc.tuple_values(left2.env) == []
        assert cccc.tuple_values(right2.env) == [cccc.nat_literal(3)]
        assert not cccc.alpha_equal(left2, right2)
        assert cccc.equivalent(cccc.Context.empty(), left2, right2)


class TestRandomized:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_substitution_instances(self, seed):
        """Generate Γ, x:A ⊢ e1 and Γ ⊢ e2:A, then check the lemma."""
        gen = TermGenerator(seed * 7 + 1)
        prefix = gen.context(2)
        name_type = gen.type_(prefix, 2)
        value = gen.term(prefix, name_type, 3)
        if value is None:
            pytest.skip("generator found no inhabitant")
        name = f"subst_target{seed}"
        extended = prefix.extend(name, name_type)
        body = gen.any_term(extended, 3)
        if body is None:
            pytest.skip("generator found no body")
        # Only proceed if everything is genuinely well-typed.
        cc.check(prefix, value, name_type)
        cc.infer(extended, body)
        assert check_compositionality(prefix, name, name_type, body, value)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_lambda_bodies(self, seed):
        """Force the interesting case: e1 is a λ capturing x."""
        gen = TermGenerator(seed + 999)
        prefix = gen.context(1)
        name = "cap"
        name_type = cc.Nat()
        extended = prefix.extend(name, name_type)
        domain = gen.type_(extended, 1)
        body_inner = gen.term(extended.extend("w", domain), cc.Nat(), 2)
        if body_inner is None:
            pytest.skip("no body")
        lam = cc.Lam("w", domain, cc.make_app(prelude.nat_add, cc.Var(name), body_inner)
                     if body_inner is not None else cc.Var(name))
        cc.infer(extended, lam)
        assert check_compositionality(prefix, name, name_type, lam, cc.nat_literal(seed))
