"""Tests for the surface lexer and parser."""

import pytest

from repro import cc
from repro.common.errors import ParseError
from repro.surface import parse_term, tokenize


class TestLexer:
    def test_simple_tokens(self):
        kinds = [t.kind for t in tokenize(r"\ (x : Nat). x")]
        assert kinds == ["symbol", "symbol", "ident", "symbol", "keyword", "symbol", "symbol", "ident", "eof"]

    def test_comments_skipped(self):
        tokens = tokenize("x -- a comment\ny")
        assert [t.text for t in tokens[:-1]] == ["x", "y"]

    def test_numbers(self):
        [number, _eof] = tokenize("42")
        assert number.kind == "number" and number.text == "42"

    def test_primes_in_identifiers(self):
        [ident, _eof] = tokenize("x'")
        assert ident.text == "x'"

    def test_positions(self):
        tokens = tokenize("x\n  y")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_arrow_vs_parts(self):
        tokens = tokenize("a -> b")
        assert tokens[1].text == "->"

    def test_dollar_rejected(self):
        with pytest.raises(ParseError, match="reserved"):
            tokenize("x$1")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("x # y")


class TestParserPositive:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("x", cc.Var("x")),
            ("Type", cc.Star()),
            ("Kind", cc.Box()),
            ("Nat", cc.Nat()),
            ("Bool", cc.Bool()),
            ("true", cc.BoolLit(True)),
            ("false", cc.BoolLit(False)),
            ("0", cc.Zero()),
            ("3", cc.nat_literal(3)),
            ("succ 0", cc.Succ(cc.Zero())),
            ("f x", cc.App(cc.Var("f"), cc.Var("x"))),
            ("f x y", cc.App(cc.App(cc.Var("f"), cc.Var("x")), cc.Var("y"))),
            ("fst p", cc.Fst(cc.Var("p"))),
            ("snd p", cc.Snd(cc.Var("p"))),
            (r"\ (x : Nat). x", cc.Lam("x", cc.Nat(), cc.Var("x"))),
            ("fun (x : Nat). x", cc.Lam("x", cc.Nat(), cc.Var("x"))),
            ("forall (x : Nat), Bool", cc.Pi("x", cc.Nat(), cc.Bool())),
            ("exists (x : Nat), Bool", cc.Sigma("x", cc.Nat(), cc.Bool())),
            ("Nat -> Bool", cc.arrow(cc.Nat(), cc.Bool())),
            (
                "let x = 0 : Nat in x",
                cc.Let("x", cc.Zero(), cc.Nat(), cc.Var("x")),
            ),
            (
                "if b then 0 else 1",
                cc.If(cc.Var("b"), cc.Zero(), cc.nat_literal(1)),
            ),
        ],
    )
    def test_forms(self, source, expected):
        assert parse_term(source) == expected

    def test_multi_binder_lambda(self):
        term = parse_term(r"\ (A : Type) (x : A). x")
        assert term == cc.Lam("A", cc.Star(), cc.Lam("x", cc.Var("A"), cc.Var("x")))

    def test_grouped_binder(self):
        term = parse_term(r"\ (x y : Nat). x")
        assert term == cc.Lam("x", cc.Nat(), cc.Lam("y", cc.Nat(), cc.Var("x")))

    def test_multi_binder_forall(self):
        term = parse_term("forall (A : Type) (x : A), A")
        assert term == cc.Pi("A", cc.Star(), cc.Pi("x", cc.Var("A"), cc.Var("A")))

    def test_arrow_right_associative(self):
        assert parse_term("Nat -> Nat -> Nat") == cc.arrow(
            cc.Nat(), cc.arrow(cc.Nat(), cc.Nat())
        )

    def test_app_binds_tighter_than_arrow(self):
        term = parse_term("F Nat -> Bool")
        assert term == cc.arrow(cc.App(cc.Var("F"), cc.Nat()), cc.Bool())

    def test_application_left_associative(self):
        head, args = cc.app_spine(parse_term("f a b c"))
        assert head == cc.Var("f") and len(args) == 3

    def test_pair_syntax(self):
        term = parse_term("<1, true> as (exists (x : Nat), Bool)")
        assert isinstance(term, cc.Pair)
        assert cc.nat_value(term.fst_val) == 1

    def test_natelim_syntax(self):
        term = parse_term(r"natelim(\ (k : Nat). Nat, 0, s, n)")
        assert isinstance(term, cc.NatElim)

    def test_prefix_chains(self):
        assert parse_term("fst snd p") == cc.Fst(cc.Snd(cc.Var("p")))
        assert parse_term("succ succ 0") == cc.nat_literal(2)

    def test_parens_override(self):
        term = parse_term("(Nat -> Nat) -> Nat")
        assert term == cc.arrow(cc.arrow(cc.Nat(), cc.Nat()), cc.Nat())

    def test_nested_everything(self):
        source = r"""
        let pos = <2, true> as (exists (x : Nat), Bool) : exists (x : Nat), Bool in
          if snd pos then fst pos else 0
        """
        term = parse_term(source)
        assert isinstance(term, cc.Let)

    def test_whitespace_insensitive(self):
        compact = parse_term(r"\ (x:Nat). x")
        spaced = parse_term(" \\  ( x  :  Nat ) .  x ")
        assert compact == spaced


class TestParserNegative:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "(",
            "f )",
            r"\ x . x",  # binder needs parentheses + annotation
            r"\ (x : Nat) x",  # missing dot
            "forall (x : Nat) Bool",  # missing comma
            "let x = 0 in x",  # missing annotation
            "<1, 2>",  # pair without 'as'
            "if b then 1",  # missing else
            "natelim(a, b, c)",  # wrong arity
            "x y )",
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(ParseError):
            parse_term(source)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_term("f\n  )")
        assert "2:" in str(excinfo.value)


class TestRoundTrips:
    def test_parse_typecheck_corpus(self):
        """Every parsed surface program in the corpus is well-typed."""
        from tests.corpus import CORPUS

        for name, ctx, term in CORPUS:
            cc.infer(ctx, term)
