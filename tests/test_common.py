"""Tests for the shared infrastructure: names, telescopes, errors."""

import pytest

from repro import cc
from repro.common import NameSupply, base_name, fresh, is_machine_name
from repro.common.errors import TypeCheckError
from repro.common.telescope import Binding, Context


class TestFreshNames:
    def test_fresh_is_fresh(self):
        names = {fresh("x") for _ in range(100)}
        assert len(names) == 100

    def test_fresh_strips_old_suffix(self):
        first = fresh("x")
        second = fresh(first)
        assert base_name(second) == "x"

    def test_is_machine_name(self):
        assert is_machine_name(fresh("x"))
        assert not is_machine_name("x")

    def test_base_name(self):
        assert base_name("x") == "x"
        assert base_name(fresh("foo")) == "foo"

    def test_empty_base_defaults(self):
        assert base_name(fresh("")) == "x"


class TestNameSupply:
    def test_deterministic(self):
        a = NameSupply()
        b = NameSupply()
        assert [a.fresh("x") for _ in range(3)] == [b.fresh("x") for _ in range(3)]

    def test_no_repeats(self):
        supply = NameSupply()
        names = [supply.fresh("x") for _ in range(50)]
        assert len(set(names)) == 50

    def test_reserve(self):
        supply = NameSupply()
        supply.reserve("x")
        assert supply.fresh("x") != "x"

    def test_prefix_fallback(self):
        supply = NameSupply(prefix="tmp")
        assert supply.fresh().startswith("tmp")


class TestTelescope:
    def test_empty(self):
        ctx = Context.empty()
        assert len(ctx) == 0
        assert ctx.lookup("x") is None
        assert "x" not in ctx
        assert str(ctx) == "·"

    def test_extend_and_lookup(self):
        ctx = Context.empty().extend("x", cc.Nat())
        binding = ctx.lookup("x")
        assert binding is not None
        assert binding.type_ == cc.Nat()
        assert not binding.is_definition

    def test_define(self):
        ctx = Context.empty().define("two", cc.nat_literal(2), cc.Nat())
        binding = ctx.lookup("two")
        assert binding.is_definition
        assert binding.definition == cc.nat_literal(2)

    def test_immutability(self):
        base = Context.empty()
        extended = base.extend("x", cc.Nat())
        assert len(base) == 0
        assert len(extended) == 1

    def test_shadowing_inner_wins(self):
        ctx = Context.empty().extend("x", cc.Nat()).extend("x", cc.Bool())
        assert ctx.lookup("x").type_ == cc.Bool()

    def test_position_and_order(self):
        ctx = Context.empty().extend("a", cc.Nat()).extend("b", cc.Bool())
        assert ctx.position("a") == 0
        assert ctx.position("b") == 1
        assert ctx.names() == ["a", "b"]

    def test_position_missing_raises(self):
        with pytest.raises(KeyError):
            Context.empty().position("ghost")

    def test_prefix(self):
        ctx = Context.empty().extend("a", cc.Nat()).extend("b", cc.Bool()).extend("c", cc.Nat())
        prefix = ctx.prefix("b")
        assert prefix.names() == ["a"]

    def test_iteration(self):
        ctx = Context.empty().extend("a", cc.Nat()).extend("b", cc.Bool())
        assert [b.name for b in ctx] == ["a", "b"]

    def test_binding_dataclass(self):
        binding = Binding("x", cc.Nat())
        assert binding.definition is None


class TestErrors:
    def test_notes_accumulate(self):
        error = TypeCheckError("boom")
        error.with_note("checking f x").with_note("checking the body")
        text = str(error)
        assert "boom" in text
        assert "checking f x" in text

    def test_hierarchy(self):
        from repro.common import LinkError, ParseError, ReproError, TranslationError

        for cls in (ParseError, TranslationError, LinkError, TypeCheckError):
            assert issubclass(cls, ReproError)
