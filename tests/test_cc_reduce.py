"""Unit tests for CC reduction (paper Figure 2): δ, ζ, β, π1, π2, ι."""

import pytest

from repro import cc
from repro.cc.reduce import Budget, head_reducts, normalize_counting, reduces_to
from repro.common.errors import NormalizationDepthExceeded
from repro.surface import parse_term


class TestAxioms:
    def test_beta(self, empty):
        term = cc.App(cc.Lam("x", cc.Nat(), cc.Succ(cc.Var("x"))), cc.Zero())
        assert head_reducts(empty, term) == [cc.Succ(cc.Zero())]

    def test_zeta(self, empty):
        term = cc.Let("x", cc.Zero(), cc.Nat(), cc.Succ(cc.Var("x")))
        assert head_reducts(empty, term) == [cc.Succ(cc.Zero())]

    def test_delta(self, empty):
        ctx = empty.define("two", cc.nat_literal(2), cc.Nat())
        assert head_reducts(ctx, cc.Var("two")) == [cc.nat_literal(2)]

    def test_delta_requires_definition(self, empty):
        ctx = empty.extend("x", cc.Nat())
        assert head_reducts(ctx, cc.Var("x")) == []

    def test_pi1(self, empty):
        pair = cc.Pair(cc.Zero(), cc.BoolLit(True), cc.Sigma("x", cc.Nat(), cc.Bool()))
        assert head_reducts(empty, cc.Fst(pair)) == [cc.Zero()]

    def test_pi2(self, empty):
        pair = cc.Pair(cc.Zero(), cc.BoolLit(True), cc.Sigma("x", cc.Nat(), cc.Bool()))
        assert head_reducts(empty, cc.Snd(pair)) == [cc.BoolLit(True)]

    def test_iota_if_true(self, empty):
        term = cc.If(cc.BoolLit(True), cc.Zero(), cc.nat_literal(1))
        assert head_reducts(empty, term) == [cc.Zero()]

    def test_iota_if_false(self, empty):
        term = cc.If(cc.BoolLit(False), cc.Zero(), cc.nat_literal(1))
        assert head_reducts(empty, term) == [cc.nat_literal(1)]

    def test_iota_natelim_zero(self, empty):
        term = cc.NatElim(cc.Var("P"), cc.Var("z"), cc.Var("s"), cc.Zero())
        assert head_reducts(empty, term) == [cc.Var("z")]

    def test_iota_natelim_succ(self, empty):
        term = cc.NatElim(cc.Var("P"), cc.Var("z"), cc.Var("s"), cc.Succ(cc.Zero()))
        [reduct] = head_reducts(empty, term)
        expected = cc.make_app(
            cc.Var("s"), cc.Zero(), cc.NatElim(cc.Var("P"), cc.Var("z"), cc.Var("s"), cc.Zero())
        )
        assert reduct == expected

    def test_no_axiom_at_neutral(self, empty):
        assert head_reducts(empty, cc.App(cc.Var("f"), cc.Zero())) == []
        assert head_reducts(empty, cc.Fst(cc.Var("p"))) == []


class TestWhnf:
    def test_whnf_stops_at_head(self, empty):
        inner_redex = cc.App(cc.Lam("y", cc.Nat(), cc.Var("y")), cc.Zero())
        term = cc.Pair(inner_redex, cc.Zero(), cc.Sigma("x", cc.Nat(), cc.Nat()))
        assert cc.whnf(empty, term) == term  # pairs are whnf; components untouched

    def test_whnf_chains(self, empty):
        term = parse_term(r"(\ (f : Nat -> Nat). f) (\ (x : Nat). x) 0")
        assert cc.whnf(empty, term) == cc.Zero()

    def test_whnf_unfolds_definitions_at_head(self, empty):
        ctx = empty.define("f", cc.Lam("x", cc.Nat(), cc.Var("x")), cc.arrow(cc.Nat(), cc.Nat()))
        assert cc.whnf(ctx, cc.App(cc.Var("f"), cc.Zero())) == cc.Zero()

    def test_whnf_preserves_neutral(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        term = cc.App(cc.Var("f"), cc.Zero())
        assert cc.whnf(ctx, term) == term


class TestNormalize:
    @pytest.mark.parametrize(
        "source, expected",
        [
            (r"(\ (x : Nat). succ x) 4", 5),
            (r"let y = 1 : Nat in succ y", 2),
            (r"if true then 1 else 0", 1),
            (r"fst (<3, true> as (exists (x : Nat), Bool))", 3),
            (r"natelim(\ (k : Nat). Nat, 2, \ (k : Nat) (ih : Nat). succ ih, 3)", 5),
        ],
    )
    def test_ground_programs(self, empty, source, expected):
        assert cc.nat_value(cc.normalize(empty, parse_term(source))) == expected

    def test_normalize_under_binders(self, empty):
        term = parse_term(r"\ (x : Nat). (\ (y : Nat). y) x")
        assert cc.normalize(empty, term) == cc.Lam("x", cc.Nat(), cc.Var("x"))

    def test_normalize_domain(self, empty):
        term = cc.Lam("x", cc.App(cc.Lam("A", cc.Star(), cc.Var("A")), cc.Nat()), cc.Var("x"))
        assert cc.normalize(empty, term) == cc.Lam("x", cc.Nat(), cc.Var("x"))

    def test_normal_forms_are_let_free(self, empty):
        term = parse_term(r"\ (x : Nat). let y = x : Nat in <y, y> as (exists (a : Nat), Nat)")
        normal = cc.normalize(empty, term)
        assert not any(isinstance(sub, cc.Let) for sub in cc.subterms(normal))

    def test_bound_var_shadows_definition(self, empty):
        # With x := 5 in the context, λ x:Nat. x must NOT unfold the bound x.
        ctx = empty.define("x", cc.nat_literal(5), cc.Nat())
        term = cc.Lam("x", cc.Nat(), cc.Var("x"))
        assert cc.normalize(ctx, term) == term

    def test_normalize_is_idempotent(self, empty):
        term = parse_term(r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5")
        once = cc.normalize(empty, term)
        assert cc.normalize(empty, once) == once

    def test_church_arithmetic(self, empty):
        from repro.cc import prelude

        total = cc.make_app(prelude.church_add, prelude.church_nat(3), prelude.church_nat(4))
        assert cc.equivalent(empty, total, prelude.church_nat(7))

    def test_fuel_exhaustion_raises(self, empty):
        from repro.cc import prelude

        big = cc.make_app(prelude.nat_add, cc.nat_literal(30), cc.nat_literal(30))
        with pytest.raises(NormalizationDepthExceeded):
            cc.normalize(empty, big, Budget(remaining=3))

    def test_counting(self, empty):
        term = parse_term(r"(\ (x : Nat). succ x) 4")
        normal, steps = normalize_counting(empty, term)
        assert cc.nat_value(normal) == 5
        assert steps == 1  # exactly the single β step


class TestReducts:
    def test_congruence_positions(self, empty):
        redex = cc.App(cc.Lam("x", cc.Nat(), cc.Var("x")), cc.Zero())
        term = cc.Pair(redex, redex, cc.Sigma("x", cc.Nat(), cc.Nat()))
        results = cc.reducts(empty, term)
        assert len(results) == 2  # one per component

    def test_head_and_congruence_together(self, empty):
        # (λx. ((λy.y) 0)) 1 has the head β-redex and the inner one.
        inner = cc.App(cc.Lam("y", cc.Nat(), cc.Var("y")), cc.Zero())
        term = cc.App(cc.Lam("x", cc.Nat(), inner), cc.nat_literal(1))
        assert len(cc.reducts(empty, term)) == 2

    def test_let_body_sees_definition(self, empty):
        # Inside `let x = 0 in x`, the body's x can δ-step.
        term = cc.Let("x", cc.Zero(), cc.Nat(), cc.Var("x"))
        results = cc.reducts(empty, term)
        # ζ at the root and δ inside the body both yield 0-ish results.
        assert cc.Zero() in results
        assert cc.Let("x", cc.Zero(), cc.Nat(), cc.Zero()) in results

    def test_normal_form_has_no_reducts(self, empty):
        assert cc.reducts(empty, cc.Lam("x", cc.Nat(), cc.Var("x"))) == []
        assert cc.reducts(empty, cc.nat_literal(3)) == []

    def test_reduces_to(self, empty):
        term = parse_term(r"(\ (x : Nat). succ x) ((\ (y : Nat). y) 1)")
        assert reduces_to(empty, term, cc.nat_literal(2))

    def test_reducts_match_normalization(self, empty):
        # Any single step keeps the normal form (confluence smoke test).
        term = parse_term(r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5")
        normal = cc.normalize(empty, term)
        for reduct in cc.reducts(empty, term):
            assert cc.normalize(empty, reduct) == normal
