"""Differential testing: four independent executions of the same program.

For closed ground-type programs we have four ways to compute the answer:

1. the CC normalizer on the source,
2. the CC-CC normalizer on the compiled term,
3. the CBV machine on the hoisted program,
4. the untyped baseline interpreter on the erased program,

plus a fifth — the CC normalizer on the *decompiled* compiled term.  Any
disagreement pinpoints a bug in one of the five systems; Corollary 5.8
says they must all agree.  This module sweeps them over generated closed
programs at both ground types.
"""

import pytest

from repro import cc, cccc
from repro.baseline import erase, uconvert, ueval
from repro.closconv import compile_term
from repro.gen import GenConfig, TermGenerator
from repro.machine import hoist, machine_observation, run
from repro.model import decompile

_EMPTY = cc.Context.empty()
_TARGET_EMPTY = cccc.Context.empty()


def _observe_cc(term: cc.Term):
    value = cc.normalize(_EMPTY, term)
    if isinstance(value, cc.BoolLit):
        return value.value
    return cc.nat_value(value)


def _observe_target(term: cccc.Term):
    value = cccc.normalize(_TARGET_EMPTY, term)
    if isinstance(value, cccc.BoolLit):
        return value.value
    return cccc.nat_value(value)


def _closed_program(seed: int, ground: cc.Term) -> cc.Term | None:
    gen = TermGenerator(seed, GenConfig(context_size=0, max_depth=5))
    term = gen.term(_EMPTY, ground, 5)
    if term is None or cc.free_vars(term):
        return None
    return term


class TestFiveWayAgreement:
    @pytest.mark.parametrize("seed", range(60))
    def test_nat_programs(self, seed):
        term = _closed_program(seed, cc.Nat())
        if term is None:
            pytest.skip("no closed Nat program for this seed")
        expected = _observe_cc(term)
        assert expected is not None

        compiled = compile_term(_EMPTY, term, verify=False).target
        assert _observe_target(compiled) == expected, "CC-CC normalizer disagrees"

        machine_value, _ = run(hoist(compiled))
        assert machine_observation(machine_value) == expected, "machine disagrees"

        assert ueval(uconvert(erase(term))) == expected, "untyped baseline disagrees"

        assert _observe_cc(decompile(compiled)) == expected, "model image disagrees"

    @pytest.mark.parametrize("seed", range(40))
    def test_bool_programs(self, seed):
        term = _closed_program(seed + 500_000, cc.Bool())
        if term is None:
            pytest.skip("no closed Bool program for this seed")
        expected = _observe_cc(term)
        assert expected is not None

        compiled = compile_term(_EMPTY, term, verify=False).target
        assert _observe_target(compiled) == expected
        machine_value, _ = run(hoist(compiled))
        assert machine_observation(machine_value) == expected
        assert ueval(uconvert(erase(term))) == expected
        assert _observe_cc(decompile(compiled)) == expected


class TestCorpusGroundAgreement:
    def test_all_closed_ground_programs(self):
        from tests.corpus import CLOSED_GROUND_PROGRAMS

        for name, term, expected in CLOSED_GROUND_PROGRAMS:
            assert _observe_cc(term) == expected, name
            compiled = compile_term(_EMPTY, term, verify=False).target
            assert _observe_target(compiled) == expected, name
            machine_value, _ = run(hoist(compiled))
            assert machine_observation(machine_value) == expected, name
            assert ueval(uconvert(erase(term))) == expected, name
            assert _observe_cc(decompile(compiled)) == expected, name
