"""Unit tests for the CC-CC kernel (paper Figures 5–7): syntax, reduction,
typing of code and closures."""

import pytest

from repro import cccc
from repro.cccc.ntuple import bind_env, env_sigma, env_tuple
from repro.common.errors import TypeCheckError


def _identity_code(arg_type: cccc.Term) -> cccc.CodeLam:
    """``λ (n:1, x:arg_type). x`` — closed code with an empty environment."""
    return cccc.CodeLam("n", cccc.Unit(), "x", arg_type, cccc.Var("x"))


def _const_closure(value: cccc.Term, arg_type: cccc.Term) -> cccc.Clo:
    """``⟨⟨λ (n:1, x:arg_type). value, ⟨⟩⟩⟩`` (value must be closed)."""
    return cccc.Clo(
        cccc.CodeLam("n", cccc.Unit(), "x", arg_type, value), cccc.UnitVal()
    )


class TestSyntax:
    def test_free_vars_of_code(self):
        code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        assert cccc.free_vars(code) == set()

    def test_code_env_binds_arg_type(self):
        # env name n is bound in the argument annotation.
        code = cccc.CodeLam(
            "n", env_sigma([("A", cccc.Star())]), "x", cccc.Fst(cccc.Var("n")), cccc.Var("x")
        )
        assert cccc.free_vars(code) == set()

    def test_open_code_has_free_vars(self):
        code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("y"))
        assert cccc.free_vars(code) == {"y"}

    def test_clo_components_free(self):
        clo = cccc.Clo(cccc.Var("c"), cccc.Var("e"))
        assert cccc.free_vars(clo) == {"c", "e"}

    def test_alpha_equal_code(self):
        left = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        right = cccc.CodeLam("m", cccc.Unit(), "y", cccc.Nat(), cccc.Var("y"))
        assert cccc.alpha_equal(left, right)

    def test_alpha_unequal_bodies(self):
        left = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        right = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Zero())
        assert not cccc.alpha_equal(left, right)

    def test_subst_respects_code_binders(self):
        code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        assert cccc.subst1(code, "x", cccc.Zero()) == code

    def test_subst_capture_avoidance_env_binder(self):
        # Substituting a term mentioning n under the env binder n must rename.
        code_type = cccc.CodeType("n", cccc.Unit(), "x", cccc.Var("q"), cccc.Nat())
        result = cccc.subst1(code_type, "q", cccc.Var("n"))
        assert isinstance(result, cccc.CodeType)
        assert result.env_name != "n"
        assert result.arg_type == cccc.Var("n")


class TestReduction:
    def test_closure_beta(self, empty_target):
        clo = _const_closure(cccc.nat_literal(5), cccc.Nat())
        term = cccc.App(clo, cccc.Zero())
        assert cccc.normalize(empty_target, term) == cccc.nat_literal(5)

    def test_closure_beta_uses_env(self, empty_target):
        # code: λ (n:Σ(y:Nat), x:Nat). let y = fst n in y ; env ⟨7⟩.
        tele = [("y", cccc.Nat())]
        code = cccc.CodeLam(
            "n",
            env_sigma(tele),
            "x",
            cccc.Nat(),
            bind_env(tele, cccc.Var("n"), cccc.Var("y")),
        )
        clo = cccc.Clo(code, env_tuple(tele, [cccc.nat_literal(7)]))
        assert cccc.normalize(empty_target, cccc.App(clo, cccc.Zero())) == cccc.nat_literal(7)

    def test_beta_axiom_is_syntactic(self, empty_target):
        clo = _const_closure(cccc.Zero(), cccc.Nat())
        [reduct] = cccc.head_reducts(empty_target, cccc.App(clo, cccc.Zero()))
        assert reduct == cccc.Zero()

    def test_no_beta_for_neutral_code(self, empty_target):
        ctx = empty_target.extend(
            "c", cccc.CodeType("n", cccc.Unit(), "x", cccc.Nat(), cccc.Nat())
        )
        term = cccc.App(cccc.Clo(cccc.Var("c"), cccc.UnitVal()), cccc.Zero())
        assert cccc.head_reducts(ctx, term) == []
        assert cccc.whnf(ctx, term) == term

    def test_delta_unfolds_code_through_closure(self, empty_target):
        code = _identity_code(cccc.Nat())
        code_type = cccc.infer(empty_target, code)
        ctx = empty_target.define("idc", code, code_type)
        term = cccc.App(cccc.Clo(cccc.Var("idc"), cccc.UnitVal()), cccc.nat_literal(2))
        assert cccc.normalize(ctx, term) == cccc.nat_literal(2)

    def test_projections_and_let(self, empty_target):
        pair = cccc.Pair(cccc.Zero(), cccc.BoolLit(True), cccc.Sigma("x", cccc.Nat(), cccc.Bool()))
        assert cccc.normalize(empty_target, cccc.Fst(pair)) == cccc.Zero()
        assert cccc.normalize(empty_target, cccc.Snd(pair)) == cccc.BoolLit(True)
        let = cccc.Let("x", cccc.Zero(), cccc.Nat(), cccc.Succ(cccc.Var("x")))
        assert cccc.normalize(empty_target, let) == cccc.nat_literal(1)

    def test_natelim_with_closure_step(self, empty_target):
        # The step function is a closure after conversion.
        step_inner = _const_closure(cccc.nat_literal(9), cccc.Nat())
        step = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "k", cccc.Nat(), step_inner), cccc.UnitVal()
        )
        motive = _const_closure(cccc.Nat(), cccc.Nat())
        term = cccc.NatElim(motive, cccc.Zero(), step, cccc.nat_literal(1))
        assert cccc.normalize(empty_target, term) == cccc.nat_literal(9)

    def test_reducts_enumeration(self, empty_target):
        clo = _const_closure(cccc.Zero(), cccc.Nat())
        redex = cccc.App(clo, cccc.Zero())
        pair = cccc.Pair(redex, redex, cccc.Sigma("x", cccc.Nat(), cccc.Nat()))
        assert len(cccc.reducts(empty_target, pair)) == 2


class TestTyping:
    def test_unit(self, empty_target):
        assert cccc.infer(empty_target, cccc.Unit()) == cccc.Star()
        assert cccc.infer(empty_target, cccc.UnitVal()) == cccc.Unit()

    def test_code_rule(self, empty_target):
        code = _identity_code(cccc.Nat())
        code_type = cccc.infer(empty_target, code)
        assert isinstance(code_type, cccc.CodeType)
        assert code_type.env_type == cccc.Unit()
        assert code_type.arg_type == cccc.Nat()

    def test_code_must_be_closed(self, empty_target):
        # [Code]'s whole point: the body cannot mention ambient variables.
        ctx = empty_target.extend("y", cccc.Nat())
        open_code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("y"))
        with pytest.raises(TypeCheckError, match="not closed"):
            cccc.infer(ctx, open_code)

    def test_clo_rule_substitutes_env(self, empty_target):
        # The paper's example: closure type is Π x:A[e′/n]. B[e′/n].
        tele = [("A", cccc.Star())]
        code = cccc.CodeLam(
            "n",
            env_sigma(tele),
            "x",
            bind_env(tele, cccc.Var("n"), cccc.Var("A")),
            bind_env(tele, cccc.Var("n"), cccc.Var("x")),
        )
        ctx = empty_target.extend("A", cccc.Star())
        clo = cccc.Clo(code, env_tuple(tele, [cccc.Var("A")]))
        clo_type = cccc.infer(ctx, clo)
        assert cccc.equivalent(ctx, clo_type, cccc.Pi("x", cccc.Var("A"), cccc.Var("A")))

    def test_clo_env_type_checked(self, empty_target):
        code = cccc.CodeLam("n", cccc.Nat(), "x", cccc.Nat(), cccc.Var("x"))
        with pytest.raises(TypeCheckError):
            cccc.infer(empty_target, cccc.Clo(code, cccc.BoolLit(True)))

    def test_clo_over_non_code(self, empty_target):
        with pytest.raises(TypeCheckError, match="non-code"):
            cccc.infer(empty_target, cccc.Clo(cccc.Zero(), cccc.UnitVal()))

    def test_application_of_closure(self, empty_target):
        clo = _const_closure(cccc.nat_literal(5), cccc.Nat())
        term = cccc.App(clo, cccc.Zero())
        assert cccc.equivalent(empty_target, cccc.infer(empty_target, term), cccc.Nat())

    def test_code_type_formation_star(self, empty_target):
        # [T-Code-⋆]: impredicative — env type may be large, result small.
        large_env = cccc.Sigma("A", cccc.Star(), cccc.Unit())
        code_type = cccc.CodeType("n", large_env, "x", cccc.Nat(), cccc.Nat())
        assert cccc.infer(empty_target, code_type) == cccc.Star()

    def test_code_type_formation_box(self, empty_target):
        code_type = cccc.CodeType("n", cccc.Unit(), "x", cccc.Nat(), cccc.Star())
        assert cccc.infer(empty_target, code_type) == cccc.Box()

    def test_pi_classifies_closures_not_lambdas(self, empty_target):
        # There is no Lam in CC-CC; Π is inhabited via [Clo].
        clo = _const_closure(cccc.Zero(), cccc.Nat())
        inferred = cccc.whnf(empty_target, cccc.infer(empty_target, clo))
        assert isinstance(inferred, cccc.Pi)

    def test_dependent_code_result(self, empty_target):
        # code: λ (n:1, A:⋆). ⟨⟨id-code, ⟨A⟩⟩⟩ — the compiled polymorphic id.
        tele = [("A", cccc.Star())]
        inner = cccc.CodeLam(
            "n2",
            env_sigma(tele),
            "x",
            bind_env(tele, cccc.Var("n2"), cccc.Var("A")),
            bind_env(tele, cccc.Var("n2"), cccc.Var("x")),
        )
        outer = cccc.CodeLam(
            "n1",
            cccc.Unit(),
            "A",
            cccc.Star(),
            cccc.Clo(inner, env_tuple(tele, [cccc.Var("A")])),
        )
        whole = cccc.Clo(outer, cccc.UnitVal())
        expected = cccc.Pi("A", cccc.Star(), cccc.Pi("x", cccc.Var("A"), cccc.Var("A")))
        assert cccc.equivalent(empty_target, cccc.infer(empty_target, whole), expected)

    def test_context_checking(self, empty_target):
        code = _identity_code(cccc.Nat())
        ctx = empty_target.define("idc", code, cccc.infer(empty_target, code))
        cccc.check_context(ctx)


class TestNTupleSugar:
    def test_env_sigma_empty(self):
        assert env_sigma([]) == cccc.Unit()

    def test_env_sigma_nested(self):
        tele = [("x", cccc.Nat()), ("y", cccc.Bool())]
        assert env_sigma(tele) == cccc.Sigma(
            "x", cccc.Nat(), cccc.Sigma("y", cccc.Bool(), cccc.Unit())
        )

    def test_env_tuple_typechecks_dependently(self, empty_target):
        # Telescope Σ(A:⋆, x:A) with values (Nat, 0).
        tele = [("A", cccc.Star()), ("x", cccc.Var("A"))]
        tup = env_tuple(tele, [cccc.Nat(), cccc.Zero()])
        inferred = cccc.infer(empty_target, tup)
        assert cccc.equivalent(empty_target, inferred, env_sigma(tele))

    def test_env_tuple_arity_mismatch(self):
        with pytest.raises(ValueError):
            env_tuple([("x", cccc.Nat())], [])

    def test_project(self, empty_target):
        tele = [("a", cccc.Nat()), ("b", cccc.Nat()), ("c", cccc.Nat())]
        tup = env_tuple(tele, [cccc.nat_literal(i) for i in range(3)])
        from repro.cccc.ntuple import project

        for index in range(3):
            value = cccc.normalize(empty_target, project(tup, index))
            assert cccc.nat_value(value) == index

    def test_bind_env_rebinding(self, empty_target):
        tele = [("a", cccc.Nat()), ("b", cccc.Nat())]
        tup = env_tuple(tele, [cccc.nat_literal(3), cccc.nat_literal(4)])
        body = bind_env(tele, tup, cccc.Succ(cccc.Var("b")))
        assert cccc.nat_value(cccc.normalize(empty_target, body)) == 5

    def test_bind_env_dependent_annotations(self, empty_target):
        # Σ(A:⋆, x:A): the second let's annotation mentions the first binder.
        tele = [("A", cccc.Star()), ("x", cccc.Var("A"))]
        tup = env_tuple(tele, [cccc.Nat(), cccc.nat_literal(2)])
        body = bind_env(tele, tup, cccc.Var("x"))
        assert cccc.equivalent(empty_target, cccc.infer(empty_target, body), cccc.Nat())
        assert cccc.nat_value(cccc.normalize(empty_target, body)) == 2

    def test_tuple_values_roundtrip(self):
        from repro.cccc.ntuple import tuple_values

        tele = [("a", cccc.Nat()), ("b", cccc.Bool())]
        values = [cccc.Zero(), cccc.BoolLit(False)]
        assert tuple_values(env_tuple(tele, values)) == values
        assert tuple_values(cccc.Zero()) is None


class TestClosureEta:
    def test_inlined_vs_captured(self, empty_target):
        # ⟨⟨λ(n:Σ(y:Nat),x). y, ⟨5⟩⟩⟩ ≡ ⟨⟨λ(n:1,x). 5, ⟨⟩⟩⟩ — [≡-Clo].
        tele = [("y", cccc.Nat())]
        captured = cccc.Clo(
            cccc.CodeLam(
                "n", env_sigma(tele), "x", cccc.Nat(),
                bind_env(tele, cccc.Var("n"), cccc.Var("y")),
            ),
            env_tuple(tele, [cccc.nat_literal(5)]),
        )
        inlined = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.nat_literal(5)),
            cccc.UnitVal(),
        )
        assert cccc.equivalent(empty_target, captured, inlined)

    def test_different_values_not_equal(self, empty_target):
        five = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.nat_literal(5)), cccc.UnitVal()
        )
        six = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.nat_literal(6)), cccc.UnitVal()
        )
        assert not cccc.equivalent(empty_target, five, six)

    def test_clo_eta_against_neutral(self, empty_target):
        # ⟨⟨λ(n:1,x). f x, ⟨⟩⟩⟩ ≡ f for neutral f — [≡-Clo1] with free arg.
        ctx = empty_target.extend("f", cccc.Pi("x", cccc.Nat(), cccc.Nat()))
        eta = cccc.Clo(
            cccc.CodeLam(
                "n", cccc.Unit(), "x", cccc.Nat(), cccc.App(cccc.Var("f"), cccc.Var("x"))
            ),
            cccc.UnitVal(),
        )
        # f is free in the body, so this code is open — but equivalence is
        # untyped and the η rule still applies.
        assert cccc.equivalent(ctx, eta, cccc.Var("f"))
        assert cccc.equivalent(ctx, cccc.Var("f"), eta)

    def test_env_extension_invariance(self, empty_target):
        # A closure that ignores an extra captured variable equals the lean one.
        lean_tele = [("y", cccc.Nat())]
        fat_tele = [("y", cccc.Nat()), ("z", cccc.Bool())]
        lean = cccc.Clo(
            cccc.CodeLam(
                "n", env_sigma(lean_tele), "x", cccc.Nat(),
                bind_env(lean_tele, cccc.Var("n"), cccc.Var("y")),
            ),
            env_tuple(lean_tele, [cccc.nat_literal(1)]),
        )
        fat = cccc.Clo(
            cccc.CodeLam(
                "n", env_sigma(fat_tele), "x", cccc.Nat(),
                bind_env(fat_tele, cccc.Var("n"), cccc.Var("y")),
            ),
            env_tuple(fat_tele, [cccc.nat_literal(1), cccc.BoolLit(True)]),
        )
        assert cccc.equivalent(empty_target, lean, fat)

    def test_eta_differing_argument_use(self, empty_target):
        # λx. succ x as closure ≢ λx. succ 0 as closure.
        left = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Succ(cccc.Var("x"))),
            cccc.UnitVal(),
        )
        right = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Succ(cccc.Zero())),
            cccc.UnitVal(),
        )
        assert not cccc.equivalent(empty_target, left, right)
