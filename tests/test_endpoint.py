"""Tests for the service endpoint and its bundled client.

The endpoint contract: every line a client sends is answered by a
structured document (a result, a dead letter, or a typed refusal — never
silence); the deterministic halves are byte-identical to a solo run of
the same specs; and no failure the harness can schedule — dropped,
stalled, or truncated deliveries, server drain, admission shedding —
loses an accepted job.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import api
from repro.service import ServiceClient, serve_background
from repro.service.client import parse_address
from repro.service.faults import Fault, FaultPlan

IDENTITY = r"\ (A : Type) (x : A). x"
REDEX = r"(\ (x : Nat). succ x) 41"


def _mixed_jobs() -> list[dict]:
    return [
        {"id": "e0", "kind": "parse", "program": IDENTITY},
        {"id": "e1", "kind": "check", "program": IDENTITY, "key": "a"},
        {"id": "e2", "kind": "normalize", "program": REDEX, "key": "b"},
        {"id": "e3", "kind": "check", "program": "0 0"},  # deterministic error
        {"id": "e4", "kind": "normalize", "program": REDEX, "fuel": 0},
        {"id": "e5", "kind": "run", "program": REDEX},
    ]


def _strip_meta(documents: list[dict]) -> list[dict]:
    return [{k: v for k, v in doc.items() if k != "meta"} for doc in documents]


class _RawConnection:
    """A bare socket speaking the NDJSON protocol, for precision tests."""

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port), timeout=10.0)
        self.file = self.sock.makefile("rwb")

    def send(self, document: dict) -> None:
        self.file.write(json.dumps(document).encode() + b"\n")
        self.file.flush()

    def recv(self) -> dict:
        line = self.file.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    def close(self) -> None:
        self.sock.close()


class TestAddress:
    def test_parse(self):
        assert parse_address("127.0.0.1:7420") == ("127.0.0.1", 7420)

    def test_malformed(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("7420")


class TestRoundTrip:
    def test_byte_identical_to_solo(self):
        jobs = _mixed_jobs()
        solo = api.execute_jobs(jobs)
        with serve_background(min_workers=1) as server:
            with ServiceClient(server.host, server.port) as client:
                documents = client.run_batch(jobs)
        assert _strip_meta(documents) == solo.canonical()

    def test_execute_jobs_connect_front_end(self):
        jobs = _mixed_jobs()
        solo = api.execute_jobs(jobs)
        with serve_background(min_workers=1) as server:
            report = api.execute_jobs(jobs, connect=f"{server.host}:{server.port}")
        assert report.canonical() == solo.canonical()
        assert report.stats["pool"]["workers"] == 1
        assert report.stats["client"]["reconnects"] == 0

    def test_stats_poll_is_inline_telemetry(self):
        with serve_background(min_workers=1) as server:
            with ServiceClient(server.host, server.port) as client:
                client.run_batch([{"id": "w0", "kind": "normalize", "program": REDEX}])
                document = client.stats()
        assert document["ok"] and document["payload"] == {"stats": True}
        stats = document["meta"]["stats"]
        assert stats["pool"]["completed"] >= 1
        assert stats["endpoint"]["accepted"] >= 1
        assert stats["endpoint"]["conn_window"] == 32

    def test_hello_and_structured_refusals(self):
        with serve_background(min_workers=1) as server:
            conn = _RawConnection(server.host, server.port)
            try:
                conn.send({"op": "hello"})
                welcome = conn.recv()
                assert welcome["op"] == "welcome" and welcome["wire"] == 2

                conn.file.write(b"this is not json\n")
                conn.file.flush()
                assert conn.recv()["error"]["type"] == "BadJob"

                conn.send({"kind": "check", "program": "0"})  # no id
                refusal = conn.recv()
                assert refusal["error"]["type"] == "BadJob"
                assert "id" in refusal["error"]["message"]

                conn.send({"id": "x", "kind": "frobnicate"})
                assert conn.recv()["error"]["type"] == "BadJob"
            finally:
                conn.close()


class TestAdmission:
    def test_hard_shed_is_a_structured_overloaded_document(self):
        # Two connections, each windowed at 2, against a hard limit of 2:
        # the first fills the endpoint, the second is shed immediately.
        with serve_background(min_workers=1, conn_window=2, max_inflight=2) as server:
            first = _RawConnection(server.host, server.port)
            second = _RawConnection(server.host, server.port)
            try:
                for index in range(2):
                    first.send({"id": f"slow-{index}", "kind": "sleep", "seconds": 0.5})
                time.sleep(0.2)  # let both be admitted
                second.send({"id": "unlucky", "kind": "normalize", "program": REDEX})
                shed = second.recv()
                assert shed["id"] == "unlucky" and not shed["ok"]
                assert shed["error"]["type"] == "Overloaded"
                assert shed["error"]["shed"] is True
                for _ in range(2):  # the slow jobs still complete
                    assert first.recv()["ok"]
            finally:
                first.close()
                second.close()

    def test_client_retries_shed_jobs_to_completion(self):
        jobs = [{"id": f"s{i}", "kind": "sleep", "seconds": 0.05} for i in range(8)]
        jobs += [{"id": "real", "kind": "normalize", "program": REDEX}]
        with serve_background(min_workers=2, conn_window=2, max_inflight=2) as server:
            # Window 4 > the endpoint's hard limit: some sends are shed and
            # must be retried by the client with backoff.
            with ServiceClient(server.host, server.port, window=4) as client:
                documents = client.run_batch(jobs)
        assert all(doc["ok"] for doc in documents)

    def test_backpressure_window_still_completes_long_streams(self):
        jobs = [{"id": f"b{i}", "kind": "normalize", "program": REDEX} for i in range(20)]
        solo = api.execute_jobs(jobs)
        with serve_background(min_workers=1, conn_window=4, max_inflight=8) as server:
            with ServiceClient(server.host, server.port, window=4) as client:
                documents = client.run_batch(jobs)
        assert _strip_meta(documents) == solo.canonical()

    def test_fuel_quota_threads_into_the_checkers(self):
        jobs = [{"id": "q0", "kind": "normalize", "program": REDEX}]
        clamped = api.execute_jobs([{**jobs[0], "fuel": 0}])
        with serve_background(min_workers=1, fuel_quota=0) as server:
            with ServiceClient(server.host, server.port) as client:
                documents = client.run_batch(jobs)
        # The quota-exceeding job fails with the kernel's own deterministic
        # fuel-exhaustion document — as if the client had sent fuel: 0.
        assert _strip_meta(documents) == clamped.canonical()


class TestFairShare:
    def test_affinity_keys_are_namespaced_per_connection(self):
        with serve_background(min_workers=2) as server:
            first = _RawConnection(server.host, server.port)
            second = _RawConnection(server.host, server.port)
            try:
                # Same key from two clients: the namespace keeps their
                # streams on *separate* warm workers.
                first.send({"id": "a0", "kind": "normalize", "program": REDEX, "key": "k"})
                assert first.recv()["ok"]
                second.send({"id": "b0", "kind": "normalize", "program": REDEX, "key": "k"})
                assert second.recv()["ok"]
                first.send({"id": "poll", "kind": "stats"})
                pool = first.recv()["meta"]["stats"]["pool"]
                busy = [slot for slot, count in pool["jobs_per_slot"].items() if count]
                assert len(busy) == 2
            finally:
                first.close()
                second.close()

    def test_clients_with_identical_job_ids_do_not_collide(self):
        # Job ids are client-scoped: two clients streaming the *same* ids
        # concurrently (the CI smoke's generated batches do exactly this)
        # must each get their own complete, correct stream — the session
        # namespace keeps their records and dispatch ids apart.
        jobs = [
            {"id": f"dup-{index}", "kind": "normalize",
             "program": rf"(\ (x : Nat). succ x) {40 + index}"}
            for index in range(6)
        ]
        solo = api.execute_jobs(jobs)
        with serve_background(min_workers=2) as server:
            outputs: dict[int, list] = {}
            errors: list = []

            def run(index: int) -> None:
                try:
                    with ServiceClient(server.host, server.port, window=3) as client:
                        outputs[index] = client.run_batch(jobs)
                except Exception as err:  # pragma: no cover - surfaced below
                    errors.append(err)

            threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors
        for index in range(2):
            assert _strip_meta(outputs[index]) == solo.canonical()

    def test_interleaved_clients_all_complete_byte_identical(self):
        streams = [
            [
                {"id": f"c{c}-{i}", "kind": "normalize", "program": REDEX, "key": f"k{c}"}
                for i in range(6)
            ]
            for c in range(3)
        ]
        solos = [api.execute_jobs(stream) for stream in streams]
        with serve_background(min_workers=2, conn_window=4) as server:
            outputs: dict[int, list] = {}
            errors: list = []

            def run(index: int) -> None:
                try:
                    with ServiceClient(server.host, server.port, window=4) as client:
                        outputs[index] = client.run_batch(streams[index])
                except Exception as err:  # pragma: no cover - surfaced below
                    errors.append(err)

            threads = [threading.Thread(target=run, args=(i,)) for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not errors
        for index, solo in enumerate(solos):
            assert _strip_meta(outputs[index]) == solo.canonical()


class TestDeadlines:
    def test_deadline_over_the_wire_is_a_job_timeout_document(self):
        with serve_background(min_workers=1) as server:
            with ServiceClient(server.host, server.port) as client:
                [fine, late] = client.run_batch(
                    [
                        {"id": "fine", "kind": "normalize", "program": REDEX},
                        {"id": "late", "kind": "sleep", "seconds": 10.0, "deadline": 0.2},
                    ]
                )
        assert fine["ok"]
        assert not late["ok"]
        assert late["error"]["type"] == "JobTimeout"
        assert late["error"]["message"] == "job missed its 0.2s deadline"
        assert late["error"]["dead_letter"] is True


class TestConnectionFaults:
    def test_dropped_and_truncated_deliveries_heal_by_resubmit(self):
        jobs = [{"id": f"f{i}", "kind": "normalize", "program": REDEX} for i in range(8)]
        solo = api.execute_jobs(jobs)
        plan = FaultPlan(
            [
                Fault("conn_drop", "f2", attempts=1),
                Fault("conn_truncate", "f5", attempts=1),
                Fault("conn_stall", "f6", attempts=1, seconds=0.05),
            ],
            seed=3,
        )
        with serve_background(min_workers=1, fault_plan=plan) as server:
            with ServiceClient(server.host, server.port, window=4) as client:
                documents = client.run_batch(jobs)
                poll = client.stats()
        assert _strip_meta(documents) == solo.canonical()
        assert client.reconnects >= 2  # one per drop/truncate
        endpoint = poll["meta"]["stats"]["endpoint"]
        # The dropped/truncated results were retained and redelivered on
        # resubmit, not re-executed.
        assert endpoint["redelivered"] >= 1

    def test_client_side_chaos_changes_nothing_but_timing(self):
        jobs = [{"id": f"g{i}", "kind": "normalize", "program": REDEX} for i in range(10)]
        solo = api.execute_jobs(jobs)
        plan = FaultPlan.generate(
            9, [job["id"] for job in jobs], conn_drops=2, conn_stalls=1, conn_truncates=1
        )
        with serve_background(min_workers=1) as server:
            with ServiceClient(server.host, server.port, window=4, fault_plan=plan) as client:
                documents = client.run_batch(jobs)
        assert _strip_meta(documents) == solo.canonical()


class TestDrain:
    def test_drain_under_load_answers_every_job(self):
        jobs = [{"id": f"d{i}", "kind": "sleep", "seconds": 0.05} for i in range(12)]
        server = serve_background(min_workers=2, conn_window=4)
        outcome: dict = {}

        def run() -> None:
            try:
                with ServiceClient(server.host, server.port, window=4, timeout=30.0) as client:
                    outcome["documents"] = client.run_batch(jobs)
            except Exception as err:
                outcome["error"] = err

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.2)  # let part of the stream be accepted
        server.stop()  # graceful drain mid-stream
        thread.join(timeout=60)
        # The client either finished the whole batch before the drain cut
        # it off, or timed out trying to resubmit to a gone server — but
        # every document it *did* receive is structured, and everything the
        # endpoint accepted was answered (the endpoint asserts this shape
        # in its own drain; here we check the client's view).
        if "documents" in outcome:
            for document in outcome["documents"]:
                assert document["ok"] or document["error"]["type"] in (
                    "EndpointDraining",
                    "DrainTimeout",
                    "DispatcherShutdown",
                )
        else:
            assert isinstance(outcome["error"], (TimeoutError, ConnectionError))
