"""Tests for both pretty printers (paper-notation rendering)."""

import pytest

from repro import cc, cccc
from repro.surface import parse_term


class TestCCPretty:
    @pytest.mark.parametrize(
        "term, expected",
        [
            (cc.Star(), "⋆"),
            (cc.Box(), "□"),
            (cc.Var("x"), "x"),
            (cc.nat_literal(3), "3"),
            (cc.BoolLit(True), "true"),
            (cc.arrow(cc.Nat(), cc.Bool()), "Nat -> Bool"),
            (cc.Lam("x", cc.Nat(), cc.Var("x")), "λ (x : Nat). x"),
            (cc.Pi("A", cc.Star(), cc.Var("A")), "Π (A : ⋆). A"),
            (cc.Sigma("x", cc.Nat(), cc.Bool()), "Σ (x : Nat). Bool"),
            (cc.Fst(cc.Var("p")), "fst p"),
            (cc.App(cc.Var("f"), cc.Var("x")), "f x"),
        ],
    )
    def test_forms(self, term, expected):
        assert cc.pretty(term) == expected

    def test_application_grouping(self):
        # f (g x) needs parens; (f g) x does not.
        inner = cc.App(cc.Var("f"), cc.App(cc.Var("g"), cc.Var("x")))
        assert cc.pretty(inner) == "f (g x)"
        outer = cc.App(cc.App(cc.Var("f"), cc.Var("g")), cc.Var("x"))
        assert cc.pretty(outer) == "f g x"

    def test_arrow_grouping(self):
        left_nested = cc.arrow(cc.arrow(cc.Nat(), cc.Nat()), cc.Nat())
        assert cc.pretty(left_nested) == "(Nat -> Nat) -> Nat"
        right_nested = cc.arrow(cc.Nat(), cc.arrow(cc.Nat(), cc.Nat()))
        assert cc.pretty(right_nested) == "Nat -> Nat -> Nat"

    def test_dependent_pi_not_arrow(self):
        dependent = cc.Pi("x", cc.Nat(), cc.App(cc.Var("P"), cc.Var("x")))
        assert "Π" in cc.pretty(dependent)

    def test_succ_non_literal(self):
        assert cc.pretty(cc.Succ(cc.Var("n"))) == "succ n"

    def test_numerals_collapse(self):
        assert cc.pretty(cc.Succ(cc.Succ(cc.Zero()))) == "2"

    def test_pretty_matches_str(self):
        term = parse_term(r"\ (x : Nat). succ x")
        assert str(term) == cc.pretty(term)


class TestCCCCPretty:
    def test_unit_forms(self):
        assert cccc.pretty(cccc.Unit()) == "1"
        assert cccc.pretty(cccc.UnitVal()) == "⟨⟩"

    def test_closure_brackets(self):
        clo = cccc.Clo(cccc.Var("c"), cccc.Var("e"))
        assert cccc.pretty(clo) == "⟨⟨c, e⟩⟩"

    def test_code_lam(self):
        code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        assert cccc.pretty(code) == "λ (n : 1, x : Nat). x"

    def test_code_type(self):
        code_type = cccc.CodeType("n", cccc.Unit(), "x", cccc.Nat(), cccc.Nat())
        assert cccc.pretty(code_type) == "Code (n : 1, x : Nat). Nat"

    def test_nested_render_parses_visually(self):
        from repro.closconv import compile_term

        result = compile_term(cc.Context.empty(), parse_term(r"\ (x : Nat). x"))
        text = cccc.pretty(result.target)
        assert text.startswith("⟨⟨λ (")
        assert text.endswith("⟨⟩⟩⟩")

    def test_pair_annotation_shown(self):
        pair = cccc.Pair(cccc.Zero(), cccc.UnitVal(), cccc.Sigma("x", cccc.Nat(), cccc.Unit()))
        assert " as " in cccc.pretty(pair)
