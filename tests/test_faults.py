"""Tests for the deterministic fault-injection harness (``repro.service.faults``).

The harness contract: every fault a plan schedules fires at an exact
(job, attempt) coordinate, the whole schedule is a pure function of the
seed, and an inactive harness costs nothing — the executor and the
persistent tier take the identical code path when no injector is
installed.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.service import Job
from repro.service.faults import (
    FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultPlan,
    activate,
    active,
)

REDEX = r"(\ (x : Nat). succ x) 41"


class TestFault:
    def test_roundtrip(self):
        fault = Fault(kind="kill", job_id="j1", attempts=2)
        assert Fault.from_dict(fault.to_dict()) == fault
        delayed = Fault(kind="delay", job_id="j2", seconds=0.25)
        assert Fault.from_dict(delayed.to_dict()) == delayed

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="meteor", job_id="j1")

    def test_attempt_gating(self):
        transient = Fault(kind="kill", job_id="j", attempts=2)
        assert transient.fires_on(0) and transient.fires_on(1)
        assert not transient.fires_on(2)
        poison = Fault(kind="kill", job_id="j", attempts=-1)
        assert all(poison.fires_on(attempt) for attempt in range(10))

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="kill", job_id="j", attempts=0)


class TestFaultPlan:
    def test_generate_is_a_pure_function_of_the_seed(self):
        ids = [f"job-{index}" for index in range(24)]
        kwargs = dict(
            kills=2,
            poisons=1,
            delays=2,
            store_read_errors=2,
            store_write_errors=2,
            corruptions=3,
        )
        one = FaultPlan.generate(17, ids, **kwargs)
        two = FaultPlan.generate(17, ids, **kwargs)
        assert one == two
        assert one.to_dict() == two.to_dict()
        other = FaultPlan.generate(18, ids, **kwargs)
        assert one != other

    def test_generate_victims_are_disjoint(self):
        ids = [f"job-{index}" for index in range(30)]
        plan = FaultPlan.generate(
            5, ids, kills=3, poisons=2, delays=3, store_read_errors=3,
            store_write_errors=3, corruptions=3,
        )
        victims = [entry["job_id"] for entry in plan.to_dict()["faults"]]
        assert len(victims) == len(set(victims))  # at most one fault per job
        assert set(victims) <= set(ids)

    def test_corruptible_ids_restrict_wire_corrupt(self):
        ids = [f"job-{index}" for index in range(12)]
        plan = FaultPlan.generate(
            3, ids, kills=2, corruptions=2, corruptible_ids=["job-0", "job-1"]
        )
        corrupted = plan.corrupted_ids()
        assert corrupted and corrupted <= {"job-0", "job-1"}

    def test_divergent_ids_are_poisons_plus_corruptions(self):
        plan = FaultPlan(
            [
                Fault("kill", "transient", attempts=1),
                Fault("kill", "poison", attempts=-1),
                Fault("kill", "exhausting", attempts=3),
                Fault("wire_corrupt", "garbled", attempts=-1),
                Fault("store_read_error", "unlucky", attempts=-1),
            ],
            seed=9,
        )
        # max_attempts=2: a 1-attempt kill recovers, a 3-attempt kill exhausts.
        assert plan.divergent_ids(2) == {"exhausting", "garbled", "poison"}
        # max_attempts=4 gives the 3-attempt kill room to recover.
        assert plan.divergent_ids(4) == {"garbled", "poison"}

    def test_roundtrip_and_summary_are_json_safe(self):
        ids = [f"job-{index}" for index in range(10)]
        plan = FaultPlan.generate(7, ids, kills=1, poisons=1, delays=1)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(plan.to_dict()) == plan
        assert FaultPlan.coerce(None) is None
        summary = plan.summary(max_attempts=2)
        assert json.loads(json.dumps(summary)) == summary
        assert summary["seed"] == 7
        assert sum(summary["by_kind"].values()) == len(plan)

    def test_one_job_can_carry_several_faults(self):
        plan = FaultPlan([Fault("kill", "j"), Fault("delay", "j", seconds=0.1)])
        assert [fault.kind for fault in plan.for_job("j")] == ["kill", "delay"]
        assert len(plan) == 2
        assert plan.for_job(None) == ()

    def test_all_kinds_generate(self):
        ids = [f"job-{index}" for index in range(20)]
        plan = FaultPlan.generate(
            1, ids, kills=1, poisons=1, delays=1, store_read_errors=1,
            store_write_errors=1, corruptions=1,
            conn_drops=1, conn_stalls=1, conn_truncates=1,
        )
        kinds = {entry["kind"] for entry in plan.to_dict()["faults"]}
        assert kinds == set(FAULT_KINDS)


class TestFaultInjector:
    def test_attempt_counting_gates_transient_kills(self):
        injector = FaultInjector(FaultPlan([Fault("kill", "j", attempts=1)]))
        injector.begin("j", 0)
        assert injector.kill("j")
        injector.begin("j", 1)
        assert not injector.kill("j")  # second attempt survives

    def test_stall_and_mutate_leave_unlisted_jobs_alone(self):
        injector = FaultInjector(
            FaultPlan([Fault("delay", "slowpoke", seconds=0.25)])
        )
        injector.begin("other", 0)
        assert injector.stall_seconds("other") == 0.0
        job = Job(kind="normalize", program=REDEX, id="other")
        assert injector.mutate(job) is job

    def test_mutation_is_deterministic(self):
        injector = FaultInjector(FaultPlan([Fault("wire_corrupt", "g", attempts=-1)]))
        job = Job(kind="normalize", program=REDEX, id="g")
        injector.begin("g", 0)
        first = injector.mutate(job)
        injector.begin("g", 1)
        second = injector.mutate(job)
        assert first.program == second.program != job.program

    def test_fired_telemetry_records_each_firing(self):
        injector = FaultInjector(FaultPlan([Fault("kill", "j", attempts=-1)]))
        injector.begin("j", 0)
        injector.kill("j")
        injector.begin("j", 1)
        injector.kill("j")
        assert [(kind, jid) for kind, jid, _ in injector.fired] == [
            ("kill", "j"),
            ("kill", "j"),
        ]

    def test_activation_is_scoped(self):
        assert active() is None
        injector = FaultInjector(FaultPlan([]))
        with activate(injector):
            assert active() is injector
        assert active() is None


class TestSoloChaos:
    def test_no_plan_is_byte_identical_to_never_having_the_module(self):
        jobs = [{"id": "j0", "kind": "normalize", "program": REDEX}]
        plain = api.execute_jobs(jobs)
        unfaulted = api.execute_jobs(jobs, fault_plan=None)
        assert plain.canonical() == unfaulted.canonical()
        assert "chaos" not in plain.stats

    def test_corruption_yields_a_deterministic_error_document(self):
        jobs = [
            {"id": "fine", "kind": "normalize", "program": REDEX},
            {"id": "garbled", "kind": "normalize", "program": REDEX},
        ]
        plan = FaultPlan([Fault("wire_corrupt", "garbled", attempts=-1)], seed=3)
        one = api.execute_jobs(jobs, fault_plan=plan)
        two = api.execute_jobs(jobs, fault_plan=plan)
        assert one.canonical() == two.canonical()
        by_id = {doc["id"]: doc for doc in one.canonical()}
        assert by_id["fine"]["ok"]
        assert not by_id["garbled"]["ok"]
        assert one.stats["chaos"]["divergent_ids"] == ["garbled"]

    def test_chaos_stats_carry_the_plan_summary(self):
        plan = FaultPlan([Fault("delay", "j0", seconds=0.0)], seed=21)
        report = api.execute_jobs(
            [{"id": "j0", "kind": "normalize", "program": REDEX}], fault_plan=plan
        )
        assert report.stats["chaos"]["seed"] == 21
        assert report.stats["chaos"]["by_kind"] == {"delay": 1}
