"""The session API: isolation differentials and the workspace entrypoints.

The load-bearing property of :mod:`repro.api` is that a :class:`Session`
is a *unit of isolation*: two sessions running interleaved workloads — on
one thread or on several — must produce results **byte-identical** to each
session running alone.  That covers everything observable: pretty-printed
terms and types (which embed fresh names, so the per-session name counter
is on the hook), reduction step counts (fuel-replay semantics), error
messages, and fuel exhaustion.

The differential here drives one workload per calculus, both fed from
``gen/``: a CC workload (generate → check → normalize on both engines →
deliberate failures) and a CC-CC workload (generate → closure-convert with
Theorem 5.6 verification → normalize the target → run the machine).  Each
workload is a generator yielding one record string per operation, so the
same code runs solo, interleaved operation-by-operation, and on threads.
"""

from __future__ import annotations

import threading

import pytest

from repro import api, cc, cccc
from repro.common.errors import NormalizationDepthExceeded, ReproError, TypeCheckError
from repro.common.names import fresh
from repro.gen.generator import GenConfig, TermGenerator
from repro.kernel.budget import Budget

# --------------------------------------------------------------------------
# Workloads: generators yielding one record string per operation.
# --------------------------------------------------------------------------

_GEN_CONFIG = GenConfig(max_depth=3, context_size=2)


def _church_blowup() -> cc.Term:
    """A term whose normalization overruns a small budget deterministically."""
    from repro.cc import prelude

    two = prelude.church_nat(2)
    total = cc.make_app(prelude.church_add, two, two)
    return cc.make_app(
        total, cc.Nat(), cc.Lam("k", cc.Nat(), cc.Succ(cc.Var("k"))), cc.Zero()
    )


def cc_workload(session: api.Session, seeds=(11, 12, 13)):
    """CC: generate, check, normalize (both engines), fail, exhaust fuel.

    Never yields while a session activation is held: a generator suspended
    inside ``with session.activate():`` would leak the active state into
    whatever its driver runs next (context variables are per-thread, and a
    suspended generator keeps its mutations).  Records are computed under
    the session and yielded outside it.
    """
    for seed in seeds:
        with session.activate():
            triple = TermGenerator(seed, _GEN_CONFIG).well_typed_term()
        if triple is None:  # deterministic per seed, so identical in every run
            yield f"{seed}:no-term"
            continue
        ctx, term, _ = triple
        checked = session.check(term, ctx=ctx)
        yield f"{seed}:check:{cc.pretty(checked.term)} : {cc.pretty(checked.type_)} [{checked.steps}]"
        nbe = session.normalize(term, ctx=ctx, engine="nbe")
        yield f"{seed}:nbe:{cc.pretty(nbe.value)} [{nbe.steps}]"
        subst = session.normalize(term, ctx=ctx, engine="subst")
        yield f"{seed}:subst:{cc.pretty(subst.value)} [{subst.steps}]"
        with session.activate():
            record = f"{seed}:fresh:{fresh('probe')}"
        yield record
    # Failure records: the error text embeds step counts and pretty names.
    try:
        session.check(cc.App(cc.Zero(), cc.Zero()))
    except TypeCheckError as error:
        yield f"ill-typed:{error}"
    with session.activate():
        record = "fuel:none"
        try:
            cc.normalize(cc.Context.empty(), _church_blowup(), Budget(remaining=40))
        except NormalizationDepthExceeded as error:
            record = f"fuel:{error}"
    yield record


def cccc_workload(session: api.Session, seeds=(21, 22)):
    """CC-CC: compile gen/ terms (Theorem 5.6), normalize targets, run."""
    for seed in seeds:
        with session.activate():
            triple = TermGenerator(seed, _GEN_CONFIG).well_typed_term()
        if triple is None:
            yield f"{seed}:no-term"
            continue
        ctx, term, _ = triple
        try:
            compiled = session.compile(term, ctx=ctx, verify=True)
        except ReproError as error:
            yield f"{seed}:compile-error:{error}"
            continue
        yield (
            f"{seed}:compile:{cccc.pretty(compiled.target)} "
            f": {cccc.pretty(compiled.target_type)} [{compiled.steps}]"
        )
        with session.activate():
            normal = cccc.normalize(compiled.compilation.target_context, compiled.target)
            records = [
                f"{seed}:target-nf:{cccc.pretty(normal)}",
                f"{seed}:fresh:{fresh('probe')}",
            ]
        yield from records
    ran = session.run(r"(\ (x : Nat). succ x) 41")
    yield f"run:{ran.observation} [{ran.machine_steps} steps, {ran.code_count} blocks]"


def solo_records(workload) -> list[str]:
    """Run ``workload`` alone in a brand-new session."""
    return list(workload(api.Session()))


def interleaved_records(*workloads) -> list[list[str]]:
    """Alternate operations across fresh sessions, one per workload."""
    iterators = [workload(api.Session()) for workload in workloads]
    records: list[list[str]] = [[] for _ in iterators]
    live = list(range(len(iterators)))
    while live:
        for index in list(live):
            try:
                records[index].append(next(iterators[index]))
            except StopIteration:
                live.remove(index)
    return records


# --------------------------------------------------------------------------
# The isolation differential.
# --------------------------------------------------------------------------


class TestInterleavedIsolation:
    def test_interleaved_sessions_match_solo_runs(self):
        solo_cc = solo_records(cc_workload)
        solo_cccc = solo_records(cccc_workload)
        inter_cc, inter_cccc = interleaved_records(cc_workload, cccc_workload)
        assert inter_cc == solo_cc
        assert inter_cccc == solo_cccc

    def test_two_cc_sessions_with_different_seeds(self):
        first = lambda session: cc_workload(session, seeds=(31, 32))
        second = lambda session: cc_workload(session, seeds=(41, 42))
        solo_first = solo_records(first)
        solo_second = solo_records(second)
        inter_first, inter_second = interleaved_records(first, second)
        assert inter_first == solo_first
        assert inter_second == solo_second

    def test_threaded_sessions_match_solo_runs(self):
        solo_cc = solo_records(cc_workload)
        solo_cccc = solo_records(cccc_workload)
        results: dict[str, list[str]] = {}
        errors: list[BaseException] = []

        def drive(name, workload):
            try:
                results[name] = list(workload(api.Session()))
            except BaseException as error:  # surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=drive, args=("cc", cc_workload)),
            threading.Thread(target=drive, args=("cccc", cccc_workload)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results["cc"] == solo_cc
        assert results["cccc"] == solo_cccc

    def test_fresh_names_are_per_session(self):
        one, two = api.Session(), api.Session()
        with one.activate():
            first = [fresh("x") for _ in range(3)]
        with two.activate():
            assert [fresh("x") for _ in range(3)] == first  # same sequence
        with one.activate():
            assert fresh("x") == "x$4"  # continues where session one left off


class TestResetIsolation:
    def test_reset_leaves_sibling_sessions_warm(self):
        left, right = api.Session(), api.Session()
        # One term *object*, so repeat calls can hit the identity-keyed
        # memos (terms are immutable dataclasses, safe to share; the
        # sessions still keep fully separate cache entries for it).
        program = cc.make_app(
            cc.Lam("x", cc.Nat(), cc.Succ(cc.Var("x"))), cc.nat_literal(4)
        )
        warm_left = left.normalize(program)
        warm_right = right.normalize(program)
        assert right.cache_stats()["kernel.normalization"] > 0

        right_entries_before = right.cache_stats()
        left.reset()
        # Sibling caches untouched, byte for byte.
        assert right.cache_stats() == right_entries_before
        assert left.cache_stats()["kernel.normalization"] == 0
        assert left.cache_stats()["cc.fv"] == 0

        # The sibling still *hits*: same result object, hits counter moves.
        hits_before = right.hit_counts()["kernel.judgments"]
        again = right.normalize(program)
        assert again.value is warm_right.value
        assert right.hit_counts()["kernel.judgments"] > hits_before
        # And the reset session recomputes from cold, reaching equal output.
        cold_left = left.normalize(program)
        assert cc.pretty(cold_left.value) == cc.pretty(warm_left.value)
        assert cold_left.steps == warm_left.steps

    def test_reset_restarts_fresh_counter_locally(self):
        one, two = api.Session(), api.Session()
        with one.activate():
            fresh("a"), fresh("a")
        with two.activate():
            fresh("b")
        one.reset()
        with one.activate():
            assert fresh("a") == "a$1"  # restarted
        with two.activate():
            assert fresh("b") == "b$2"  # sibling counter kept running


# --------------------------------------------------------------------------
# Entrypoint and shim behavior.
# --------------------------------------------------------------------------


class TestSessionEntrypoints:
    def test_check_accepts_text_and_terms(self):
        session = api.Session()
        from_text = session.check(r"\ (x : Nat). x")
        from_term = session.check(cc.Lam("x", cc.Nat(), cc.Var("x")))
        assert cc.pretty(from_text.type_) == cc.pretty(from_term.type_) == "Nat -> Nat"
        assert from_text.engine == "nbe"

    def test_normalize_engines_agree(self):
        session = api.Session()
        program = r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 0"
        nbe = session.normalize(program, engine="nbe")
        subst = session.normalize(program, engine="subst")
        assert cc.pretty(nbe.value) == cc.pretty(subst.value) == "2"
        assert nbe.engine == "nbe" and subst.engine == "subst"

    def test_session_engine_default(self):
        session = api.Session(engine="subst")
        result = session.normalize(r"(\ (x : Nat). x) 0")
        assert result.engine == "subst"
        with pytest.raises(ValueError):
            api.Session(engine="machine-of-the-future")
        with pytest.raises(ValueError):
            api.Session().normalize("0", engine="nope")

    def test_compile_verifies_and_reports(self):
        session = api.Session()
        result = session.compile(r"\ (A : Type) (x : A). x")
        assert result.verified
        assert result.steps == result.check_steps + result.verify_steps
        document = result.to_dict()
        assert document["verified"] is True
        assert "⟨⟨" in document["target"]

    def test_run_reaches_machine_value(self):
        session = api.Session()
        result = session.run(r"(\ (A : Type) (x : A). x) Nat 42")
        assert result.observation == 42
        assert result.code_count >= 1
        assert result.machine_steps > 0

    def test_link_checks_imports(self):
        session = api.Session()
        ctx = cc.Context.empty().extend("n", cc.Nat())
        linked = session.link(ctx, "succ n", {"n": "41"})
        assert cc.pretty(linked.term) == "42"
        assert cc.pretty(linked.type_) == "Nat"
        from repro.common.errors import LinkError

        with pytest.raises(LinkError):
            session.link(ctx, "succ n", {})

    def test_parse_result(self):
        session = api.Session()
        parsed = session.parse(r"\ (x : Nat). x")
        assert isinstance(parsed.term, cc.Lam)
        assert parsed.to_dict()["session"] == session.name

    def test_budget_carries_session_fuel(self):
        session = api.Session(fuel=123)
        budget = session.budget()
        assert budget.remaining == 123
        with pytest.raises(NormalizationDepthExceeded):
            api.Session(fuel=3).normalize(_church_blowup())

    def test_default_session_wraps_legacy_state(self):
        # Legacy module calls outside any session land in the default
        # session's caches — the shim story.
        default = api.default_session()
        before = default.cache_stats()["kernel.normalization"]
        term = cc.make_app(
            cc.Lam("x", cc.Nat(), cc.Succ(cc.Var("x"))), cc.nat_literal(7)
        )
        cc.normalize(cc.Context.empty(), term)  # no session active
        assert default.cache_stats()["kernel.normalization"] > before

    def test_activate_nests_and_restores(self):
        outer, inner = api.Session(), api.Session()
        with outer.activate():
            first = fresh("n")
            with inner.activate():
                assert fresh("n") == first  # inner session starts at 1 too
            second = fresh("n")
        assert first != second  # outer counter resumed where it left off
