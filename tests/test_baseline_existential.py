"""Tests for the Section 3.1 existential-encoding baseline — the negative
result: type-preserving on the simply-typed fragment, broken on CC."""

import pytest

from repro import cc
from repro.baseline import classify_failure, translate_existential
from repro.cc import prelude
from repro.surface import parse_term


SIMPLY_TYPED = [
    ("mono-id", r"\ (x : Nat). x"),
    ("const", r"\ (x : Nat). \ (y : Bool). x"),
    ("applied", r"(\ (x : Nat). \ (y : Bool). x) 3 true"),
    ("compose", r"\ (f : Nat -> Nat). \ (g : Nat -> Nat). \ (x : Nat). f (g x)"),
    ("twice-applied", r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5"),
    ("triple-capture", r"\ (a : Nat). \ (b : Nat). \ (c : Nat). a"),
]


class TestSimplyTypedFragmentWorks:
    @pytest.mark.parametrize("name, source", SIMPLY_TYPED, ids=[n for n, _ in SIMPLY_TYPED])
    def test_type_preserving(self, empty, name, source):
        assert classify_failure(empty, parse_term(source)) == "type-preserving"

    @pytest.mark.parametrize(
        "source, expected",
        [
            (r"(\ (x : Nat). \ (y : Bool). x) 3 true", 3),
            (r"(\ (x : Nat). succ x) 4", 5),
            (r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5", 7),
        ],
    )
    def test_encoded_programs_run(self, empty, source, expected):
        """The encoding is not just well-typed — it computes correctly."""
        encoded = translate_existential(empty, parse_term(source))
        cc.infer(empty, encoded)
        assert cc.nat_value(cc.normalize(empty, encoded)) == expected


class TestDependentFailures:
    def test_polymorphic_identity_universe_failure(self, empty):
        """Capturing a type variable ⇒ the environment type is large ⇒ the
        ⋆-encoded ∃ cannot hide it (paper Section 3.1, impredicativity)."""
        assert classify_failure(empty, prelude.polymorphic_identity) == "universe"

    def test_type_capture_inner_lambda(self, empty):
        ctx = empty.extend("A", cc.Star())
        assert classify_failure(ctx, parse_term(r"\ (x : A). x")) == "universe"

    def test_term_dependency_mismatch_failure(self, empty):
        """A small type depending on a captured term variable ⇒ the code's
        concrete type projects from the environment (`fst n`) while the
        package interface expects the original variable — [Conv] fails."""
        ctx = empty.extend("b", cc.Bool())
        dependent = cc.Lam("x", cc.If(cc.Var("b"), cc.Nat(), cc.Bool()), cc.Var("x"))
        assert classify_failure(ctx, dependent) == "mismatch"

    def test_failure_is_in_checking_not_translation(self, empty):
        """The translation is total; only the kernel rejects the output."""
        output = translate_existential(empty, prelude.polymorphic_identity)
        assert output is not None  # produced fine
        from repro.common.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            cc.infer(empty, output)

    def test_paper_translation_handles_all_failures(self, empty):
        """Head-to-head: every case the ∃-encoding loses, Figure 9 wins."""
        from repro.closconv import compile_term

        cases = [
            (empty, prelude.polymorphic_identity),
            (empty.extend("A", cc.Star()), parse_term(r"\ (x : A). x")),
            (
                empty.extend("b", cc.Bool()),
                cc.Lam("x", cc.If(cc.Var("b"), cc.Nat(), cc.Bool()), cc.Var("x")),
            ),
        ]
        for ctx, term in cases:
            assert classify_failure(ctx, term) != "type-preserving"
            compile_term(ctx, term, verify=True)  # ours must succeed


class TestEncodingInternals:
    def test_exists_encoding_shape(self, empty):
        from repro.baseline.existential import exists_type

        encoded = exists_type("alpha", cc.Var("alpha"))
        # Π C:⋆. (Π α:⋆. α → C) → C
        assert isinstance(encoded, cc.Pi)
        assert encoded.domain == cc.Star()
        cc.infer_universe(empty, encoded)

    def test_pi_translation_is_existential(self, empty):
        translated = translate_existential(empty, parse_term("Nat -> Nat"))
        assert isinstance(translated, cc.Pi)  # the ∃ encoding is a Π C:⋆ …
        assert cc.infer(empty, translated) == cc.Star()
