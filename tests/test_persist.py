"""Tests for the persistent memo tier (``repro.wire.persist``).

The differential contract: a run served from the store is **bit-identical**
to a cold run — payloads, step counts, error positions — across fresh
sessions, across pool workers, and across a *real process restart* (the
subprocess tests below).  A tampered row must never be trusted: the seal
turns poison into a miss, and the recomputed answer matches the cold run.
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import sys

import pytest

from repro import cc
from repro.api import Session, execute_jobs
from repro.gen.jobs import build_stream, job_corpus
from repro.surface import parse_term
from repro.wire.persist import PersistentMemoStore

REDEX = r"(\ (x : Nat). succ x) ((\ (y : Nat). succ (succ y)) 4)"


def _normalize_steps(session: Session, text: str) -> tuple[str, int]:
    with session.activate():
        result = session.normalize(cc.intern(parse_term(text)))
        return cc.pretty(cc.intern(result.value)), result.steps


class TestStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = PersistentMemoStore(tmp_path / "memo.sqlite")
        store.put(b"k" * 24, 7, b"payload")
        assert store.get(b"k" * 24) == (7, b"payload")  # served from the buffer
        store.flush()
        assert store.get(b"k" * 24) == (7, b"payload")  # served from the table
        assert len(store) == 1
        store.close()
        # A second connection (a "restarted process") sees the flushed row.
        again = PersistentMemoStore(tmp_path / "memo.sqlite")
        assert again.get(b"k" * 24) == (7, b"payload")
        assert again.stats()["hits"] == 1
        again.close()

    def test_missing_key_is_a_miss(self, tmp_path):
        store = PersistentMemoStore(tmp_path / "memo.sqlite")
        assert store.get(b"absent" * 4) is None
        assert store.stats()["misses"] == 1
        store.close()

    def test_poisoned_row_fails_its_seal(self, tmp_path):
        path = tmp_path / "memo.sqlite"
        store = PersistentMemoStore(path)
        store.put(b"p" * 24, 3, b"result")
        store.close()
        # Tamper with the recorded fuel behind the store's back.
        raw = sqlite3.connect(path)
        raw.execute("UPDATE memo SET steps = steps + 7")
        raw.commit()
        raw.close()
        reopened = PersistentMemoStore(path)
        assert reopened.get(b"p" * 24) is None  # wrong fuel → sealed out
        assert reopened.stats()["misses"] == 1
        reopened.close()

    def test_read_only_never_writes(self, tmp_path):
        path = tmp_path / "memo.sqlite"
        writer = PersistentMemoStore(path)
        writer.put(b"r" * 24, 1, b"row")
        writer.close()
        reader = PersistentMemoStore(path, read_only=True)
        assert reader.get(b"r" * 24) == (1, b"row")
        reader.put(b"x" * 24, 2, b"new")
        reader.flush()
        reader.close()
        check = PersistentMemoStore(path)
        assert check.get(b"x" * 24) is None  # the read-only put never landed
        check.close()


class TestTier:
    def test_cold_then_warm_across_fresh_sessions(self, tmp_path):
        store = PersistentMemoStore(tmp_path / "memo.sqlite")

        cold = Session(name="persist-cold")
        cold.attach_memo_store(store)
        cold_normal, cold_steps = _normalize_steps(cold, REDEX)
        tier = cold.detach_memo_store()
        assert tier.stores > 0
        store.flush()

        warm = Session(name="persist-warm")
        warm.attach_memo_store(store)
        warm_normal, warm_steps = _normalize_steps(warm, REDEX)
        warm_tier = warm.detach_memo_store()

        assert (warm_normal, warm_steps) == (cold_normal, cold_steps)
        assert warm_tier.hits > 0
        store.close()

    def test_reset_detaches_the_tier(self, tmp_path):
        store = PersistentMemoStore(tmp_path / "memo.sqlite")
        session = Session(name="persist-reset")
        session.attach_memo_store(store)
        assert session.state.persistent is not None
        session.reset()
        assert session.state.persistent is None
        assert session.state.normalization.persistent is None
        store.close()

    def test_service_reset_job_reattaches(self, tmp_path):
        # Service policy: a reset *job* cools the session but keeps the
        # worker configured — gen streams open every build with a reset,
        # which must not permanently sever the shared store.
        store = PersistentMemoStore(tmp_path / "memo.sqlite")
        session = Session(name="persist-reset-job")
        session.attach_memo_store(store)
        report = execute_jobs(
            [{"kind": "reset"}, {"kind": "normalize", "program": REDEX}],
            session=session,
            memo_store=store,
        )
        assert report.ok
        assert report.stats["persist"]["writes"] > 0
        store.close()

    def test_poisoned_entry_recomputes_correctly(self, tmp_path):
        path = tmp_path / "memo.sqlite"
        store = PersistentMemoStore(path)
        cold = Session(name="poison-cold")
        cold.attach_memo_store(store)
        cold_normal, cold_steps = _normalize_steps(cold, REDEX)
        cold.detach_memo_store()
        store.close()

        raw = sqlite3.connect(path)
        raw.execute("UPDATE memo SET steps = steps + 7")
        raw.commit()
        raw.close()

        reopened = PersistentMemoStore(path)
        warm = Session(name="poison-warm")
        warm.attach_memo_store(reopened)
        warm_normal, warm_steps = _normalize_steps(warm, REDEX)
        tier = warm.detach_memo_store()
        assert (warm_normal, warm_steps) == (cold_normal, cold_steps)
        assert tier.hits == 0  # every poisoned row sealed out
        assert reopened.stats()["misses"] > 0
        reopened.close()

    def test_batch_stats_expose_the_tier_without_new_hit_kinds(self, tmp_path):
        # tests/test_cli.py pins the exact cache_hits key set; the tier's
        # counters must travel under stats["persist"] instead.
        report = execute_jobs(
            [{"kind": "normalize", "program": REDEX}],
            memo_store=tmp_path / "memo.sqlite",
        )
        assert report.ok
        assert set(report.stats["cache_hits"]) == {
            "kernel.normalization",
            "kernel.judgments",
        }
        assert report.stats["persist"]["writes"] > 0


class TestRestartDifferential:
    """Cold corpus run → real process restart → warm run: byte-identical."""

    def _run_batch(self, corpus_path, store_path, tmp_path, tag):
        out = tmp_path / f"report-{tag}.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "batch",
                str(corpus_path),
                "--json",
                "--memo-store",
                str(store_path),
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd="/root/repo",
            timeout=300,
        )
        # Exit 1 just means some job *result* failed (the corpus includes a
        # deliberate fuel-starved job); the report itself must still emit.
        assert proc.returncode in (0, 1), proc.stderr
        out.write_text(proc.stdout)
        return json.loads(proc.stdout)

    @staticmethod
    def _canonical(report) -> list[dict]:
        documents = []
        for result in report["results"]:
            document = {key: result[key] for key in ("id", "ok")}
            if result["ok"]:
                document["payload"] = result["payload"]
            else:
                document["error"] = result["error"]
            documents.append(document)
        return documents

    def test_cold_restart_warm_identical(self, tmp_path):
        specs = job_corpus(seed=5, count=3)
        # Include a deterministic failure so error documents are compared too.
        specs.append({"kind": "normalize", "program": REDEX, "fuel": 1, "id": "starved"})
        corpus = tmp_path / "jobs.jsonl"
        corpus.write_text("".join(json.dumps(spec) + "\n" for spec in specs))
        store = tmp_path / "memo.sqlite"

        cold = self._run_batch(corpus, store, tmp_path, "cold")
        warm = self._run_batch(corpus, store, tmp_path, "warm")

        assert self._canonical(cold) == self._canonical(warm)
        assert cold["stats"]["persist"]["writes"] > 0
        assert warm["stats"]["persist"]["hits"] > 0

    def test_pooled_workers_share_one_store(self, tmp_path):
        stream = build_stream(build=0, seed=9, iterations=1, passes=2, corpus_size=2)
        store = tmp_path / "memo.sqlite"
        solo = execute_jobs(stream)
        pooled = execute_jobs(stream, workers=2, memo_store=store)
        warm = execute_jobs(stream, workers=2, memo_store=store)
        assert solo.canonical() == pooled.canonical() == warm.canonical()
        # The pooled runs actually reached the shared store.
        check = PersistentMemoStore(store, read_only=True)
        try:
            assert len(check) > 0
        finally:
            check.close()


class TestFailureHardening:
    """The store's failure domain: counted errors, breaker, bounded buffer."""

    def _store(self, tmp_path, **kwargs):
        return PersistentMemoStore(tmp_path / "memo.sqlite", **kwargs)

    def test_sqlite_errors_are_counted_not_raised(self, tmp_path):
        from repro.wire import persist

        store = self._store(tmp_path, flush_threshold=1)
        calls = {"n": 0}

        def hook(op):
            calls["n"] += 1
            raise sqlite3.OperationalError("injected")

        persist.FAULT_HOOK = hook
        try:
            store.put(b"k" * 24, 1, b"v")       # flush fails, buffer kept
            assert store.get(b"k" * 24) == (1, b"v")  # pending still serves it
            assert store.get(b"x" * 24) is None  # read fails -> counted miss
        finally:
            persist.FAULT_HOOK = None
        assert store.errors >= 2
        assert calls["n"] >= 2
        assert store.counters()["errors"] == store.errors
        # With the hook gone the buffered entry flushes cleanly.
        store.flush()
        assert store.counters()["pending"] == 0
        store.close()

    def test_breaker_trips_then_probe_recloses(self, tmp_path):
        from repro.wire import persist

        store = self._store(
            tmp_path, flush_threshold=10_000, breaker_threshold=3, probe_interval=4
        )
        persist.FAULT_HOOK = lambda op: (_ for _ in ()).throw(
            sqlite3.OperationalError("injected")
        )
        try:
            for index in range(3):
                assert store.get(str(index).encode() * 8) is None
        finally:
            persist.FAULT_HOOK = None
        assert store.trips == 1
        assert store.counters()["breaker"] == "open"
        # While open, reads are misses without touching SQLite; after
        # probe_interval ops one probe goes through, succeeds, and recloses.
        for index in range(10, 20):
            store.get(str(index).encode() * 8)
        assert store.counters()["breaker"] == "closed"
        store.close()

    def test_pending_buffer_is_bounded(self, tmp_path):
        store = self._store(
            tmp_path, read_only=True, flush_threshold=10_000, max_pending_entries=8
        )
        for index in range(20):
            store.put(f"{index:03d}".encode() * 8, index, b"v")
        assert store.counters()["pending"] == 8
        assert store.dropped == 12
        # The newest entries survive; the oldest were shed.
        assert store.get(b"019" * 8) == (19, b"v")
        assert store.get(b"000" * 8) is None
        store.close()

    def test_store_open_failure_is_a_typed_error_with_the_path(self, tmp_path):
        from repro.common.errors import StoreError

        bogus = tmp_path / "not-a-directory" / "nested" / "memo.sqlite"
        with pytest.raises(StoreError) as excinfo:
            PersistentMemoStore(bogus)
        assert str(bogus) in str(excinfo.value)

    def test_breaker_trip_mid_batch_degrades_without_divergence(self, tmp_path):
        # Trip the store breaker partway through a batch: the run must
        # complete byte-identical to a storeless run (in-memory memo only)
        # and report the trip in its stats.
        from repro.service.faults import Fault, FaultPlan

        jobs = [
            {"id": f"j{index}", "kind": "normalize",
             "program": rf"(\ (x : Nat). succ x) {index}"}
            for index in range(8)
        ]
        faults = [
            Fault(kind, f"j{index}", attempts=-1)
            for index in range(2, 8)
            for kind in ("store_read_error", "store_write_error")
        ]
        bare = execute_jobs(jobs)
        report = execute_jobs(
            jobs, memo_store=tmp_path / "memo.sqlite", fault_plan=FaultPlan(faults)
        )
        assert report.canonical() == bare.canonical()
        persisted = report.stats["persist"]
        assert persisted["errors"] > 0
        assert persisted["trips"] >= 1


class TestTornStoreRecovery:
    """``python -m repro store`` maintenance: stat, scrub, compact."""

    def _populate(self, path):
        store = PersistentMemoStore(path)
        session = Session(name="maintenance-populate")
        session.attach_memo_store(store)
        with session.activate():
            session.normalize(cc.intern(parse_term(REDEX)))
        session.detach_memo_store()
        store.close()

    def test_stat_reports_valid_and_invalid_rows(self, tmp_path):
        from repro.wire.persist import store_stat

        path = tmp_path / "memo.sqlite"
        self._populate(path)
        report = store_stat(path)
        assert report["entries"] == report["valid"] > 0
        assert report["invalid"] == 0

    def test_scrub_salvages_valid_rows_from_a_torn_store(self, tmp_path):
        from repro.wire.persist import store_scrub, store_stat

        path = tmp_path / "memo.sqlite"
        self._populate(path)
        before = store_stat(path)
        # Tear the store: corrupt one row's seal and one row's payload.
        connection = sqlite3.connect(path)
        connection.execute(
            "UPDATE memo SET seal = zeroblob(16) WHERE key = "
            "(SELECT key FROM memo LIMIT 1)"
        )
        connection.commit()
        connection.close()
        report = store_scrub(path)
        assert report["scanned"] == before["entries"]
        assert report["discarded"] == 1
        assert report["salvaged"] == before["entries"] - 1
        after = store_stat(path)
        assert after["entries"] == after["valid"] == report["salvaged"]
        # The scrubbed store still serves byte-identical warm runs.
        scrubbed = PersistentMemoStore(path)
        warm = Session(name="maintenance-warm")
        warm.attach_memo_store(scrubbed)
        with warm.activate():
            result = warm.normalize(cc.intern(parse_term(REDEX)))
        warm.detach_memo_store()
        scrubbed.close()
        cold = Session(name="maintenance-cold")
        with cold.activate():
            expected = cold.normalize(cc.intern(parse_term(REDEX)))
        assert cc.pretty(cc.intern(result.value)) == cc.pretty(cc.intern(expected.value))
        assert result.steps == expected.steps

    def test_compact_removes_torn_rows_in_place(self, tmp_path):
        from repro.wire.persist import store_compact, store_stat

        path = tmp_path / "memo.sqlite"
        self._populate(path)
        connection = sqlite3.connect(path)
        connection.execute(
            "UPDATE memo SET result = x'00' WHERE key = "
            "(SELECT key FROM memo LIMIT 1)"
        )
        connection.commit()
        connection.close()
        report = store_compact(path)
        assert report["removed"] == 1
        assert store_stat(path)["invalid"] == 0

    def test_maintenance_on_garbage_is_a_typed_error(self, tmp_path):
        from repro.common.errors import StoreError
        from repro.wire.persist import store_scrub, store_stat

        garbage = tmp_path / "garbage.sqlite"
        garbage.write_bytes(b"this is not a database")
        with pytest.raises(StoreError):
            store_stat(garbage)
        with pytest.raises(StoreError):
            store_scrub(tmp_path / "missing.sqlite")

    def test_killed_worker_leaves_no_torn_rows(self, tmp_path):
        # Satellite contract: a worker killed with unflushed buffered
        # entries must leave the shared store fully valid (lost entries are
        # fine — torn rows are not), and a warm rerun over the survivor
        # store is byte-identical to the crashed run.
        from repro.service.faults import Fault, FaultPlan
        from repro.wire.persist import store_stat

        path = tmp_path / "memo.sqlite"
        jobs = [
            {"id": f"j{index}", "kind": "normalize", "program": REDEX, "key": "one"}
            for index in range(4)
        ]
        plan = FaultPlan([Fault("kill", "j2", attempts=1)])
        chaos = execute_jobs(
            jobs, workers=1, memo_store=path, fault_plan=plan, max_attempts=3
        )
        report = store_stat(path)
        assert report["invalid"] == 0  # no torn rows, ever
        warm = execute_jobs(jobs, workers=1, memo_store=path)
        assert warm.canonical() == chaos.canonical()
