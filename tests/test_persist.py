"""Tests for the persistent memo tier (``repro.wire.persist``).

The differential contract: a run served from the store is **bit-identical**
to a cold run — payloads, step counts, error positions — across fresh
sessions, across pool workers, and across a *real process restart* (the
subprocess tests below).  A tampered row must never be trusted: the seal
turns poison into a miss, and the recomputed answer matches the cold run.
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import sys

import pytest

from repro import cc
from repro.api import Session, execute_jobs
from repro.gen.jobs import build_stream, job_corpus
from repro.surface import parse_term
from repro.wire.persist import PersistentMemoStore

REDEX = r"(\ (x : Nat). succ x) ((\ (y : Nat). succ (succ y)) 4)"


def _normalize_steps(session: Session, text: str) -> tuple[str, int]:
    with session.activate():
        result = session.normalize(cc.intern(parse_term(text)))
        return cc.pretty(cc.intern(result.value)), result.steps


class TestStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = PersistentMemoStore(tmp_path / "memo.sqlite")
        store.put(b"k" * 24, 7, b"payload")
        assert store.get(b"k" * 24) == (7, b"payload")  # served from the buffer
        store.flush()
        assert store.get(b"k" * 24) == (7, b"payload")  # served from the table
        assert len(store) == 1
        store.close()
        # A second connection (a "restarted process") sees the flushed row.
        again = PersistentMemoStore(tmp_path / "memo.sqlite")
        assert again.get(b"k" * 24) == (7, b"payload")
        assert again.stats()["hits"] == 1
        again.close()

    def test_missing_key_is_a_miss(self, tmp_path):
        store = PersistentMemoStore(tmp_path / "memo.sqlite")
        assert store.get(b"absent" * 4) is None
        assert store.stats()["misses"] == 1
        store.close()

    def test_poisoned_row_fails_its_seal(self, tmp_path):
        path = tmp_path / "memo.sqlite"
        store = PersistentMemoStore(path)
        store.put(b"p" * 24, 3, b"result")
        store.close()
        # Tamper with the recorded fuel behind the store's back.
        raw = sqlite3.connect(path)
        raw.execute("UPDATE memo SET steps = steps + 7")
        raw.commit()
        raw.close()
        reopened = PersistentMemoStore(path)
        assert reopened.get(b"p" * 24) is None  # wrong fuel → sealed out
        assert reopened.stats()["misses"] == 1
        reopened.close()

    def test_read_only_never_writes(self, tmp_path):
        path = tmp_path / "memo.sqlite"
        writer = PersistentMemoStore(path)
        writer.put(b"r" * 24, 1, b"row")
        writer.close()
        reader = PersistentMemoStore(path, read_only=True)
        assert reader.get(b"r" * 24) == (1, b"row")
        reader.put(b"x" * 24, 2, b"new")
        reader.flush()
        reader.close()
        check = PersistentMemoStore(path)
        assert check.get(b"x" * 24) is None  # the read-only put never landed
        check.close()


class TestTier:
    def test_cold_then_warm_across_fresh_sessions(self, tmp_path):
        store = PersistentMemoStore(tmp_path / "memo.sqlite")

        cold = Session(name="persist-cold")
        cold.attach_memo_store(store)
        cold_normal, cold_steps = _normalize_steps(cold, REDEX)
        tier = cold.detach_memo_store()
        assert tier.stores > 0
        store.flush()

        warm = Session(name="persist-warm")
        warm.attach_memo_store(store)
        warm_normal, warm_steps = _normalize_steps(warm, REDEX)
        warm_tier = warm.detach_memo_store()

        assert (warm_normal, warm_steps) == (cold_normal, cold_steps)
        assert warm_tier.hits > 0
        store.close()

    def test_reset_detaches_the_tier(self, tmp_path):
        store = PersistentMemoStore(tmp_path / "memo.sqlite")
        session = Session(name="persist-reset")
        session.attach_memo_store(store)
        assert session.state.persistent is not None
        session.reset()
        assert session.state.persistent is None
        assert session.state.normalization.persistent is None
        store.close()

    def test_service_reset_job_reattaches(self, tmp_path):
        # Service policy: a reset *job* cools the session but keeps the
        # worker configured — gen streams open every build with a reset,
        # which must not permanently sever the shared store.
        store = PersistentMemoStore(tmp_path / "memo.sqlite")
        session = Session(name="persist-reset-job")
        session.attach_memo_store(store)
        report = execute_jobs(
            [{"kind": "reset"}, {"kind": "normalize", "program": REDEX}],
            session=session,
            memo_store=store,
        )
        assert report.ok
        assert report.stats["persist"]["writes"] > 0
        store.close()

    def test_poisoned_entry_recomputes_correctly(self, tmp_path):
        path = tmp_path / "memo.sqlite"
        store = PersistentMemoStore(path)
        cold = Session(name="poison-cold")
        cold.attach_memo_store(store)
        cold_normal, cold_steps = _normalize_steps(cold, REDEX)
        cold.detach_memo_store()
        store.close()

        raw = sqlite3.connect(path)
        raw.execute("UPDATE memo SET steps = steps + 7")
        raw.commit()
        raw.close()

        reopened = PersistentMemoStore(path)
        warm = Session(name="poison-warm")
        warm.attach_memo_store(reopened)
        warm_normal, warm_steps = _normalize_steps(warm, REDEX)
        tier = warm.detach_memo_store()
        assert (warm_normal, warm_steps) == (cold_normal, cold_steps)
        assert tier.hits == 0  # every poisoned row sealed out
        assert reopened.stats()["misses"] > 0
        reopened.close()

    def test_batch_stats_expose_the_tier_without_new_hit_kinds(self, tmp_path):
        # tests/test_cli.py pins the exact cache_hits key set; the tier's
        # counters must travel under stats["persist"] instead.
        report = execute_jobs(
            [{"kind": "normalize", "program": REDEX}],
            memo_store=tmp_path / "memo.sqlite",
        )
        assert report.ok
        assert set(report.stats["cache_hits"]) == {
            "kernel.normalization",
            "kernel.judgments",
        }
        assert report.stats["persist"]["writes"] > 0


class TestRestartDifferential:
    """Cold corpus run → real process restart → warm run: byte-identical."""

    def _run_batch(self, corpus_path, store_path, tmp_path, tag):
        out = tmp_path / f"report-{tag}.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "batch",
                str(corpus_path),
                "--json",
                "--memo-store",
                str(store_path),
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd="/root/repo",
            timeout=300,
        )
        # Exit 1 just means some job *result* failed (the corpus includes a
        # deliberate fuel-starved job); the report itself must still emit.
        assert proc.returncode in (0, 1), proc.stderr
        out.write_text(proc.stdout)
        return json.loads(proc.stdout)

    @staticmethod
    def _canonical(report) -> list[dict]:
        documents = []
        for result in report["results"]:
            document = {key: result[key] for key in ("id", "ok")}
            if result["ok"]:
                document["payload"] = result["payload"]
            else:
                document["error"] = result["error"]
            documents.append(document)
        return documents

    def test_cold_restart_warm_identical(self, tmp_path):
        specs = job_corpus(seed=5, count=3)
        # Include a deterministic failure so error documents are compared too.
        specs.append({"kind": "normalize", "program": REDEX, "fuel": 1, "id": "starved"})
        corpus = tmp_path / "jobs.jsonl"
        corpus.write_text("".join(json.dumps(spec) + "\n" for spec in specs))
        store = tmp_path / "memo.sqlite"

        cold = self._run_batch(corpus, store, tmp_path, "cold")
        warm = self._run_batch(corpus, store, tmp_path, "warm")

        assert self._canonical(cold) == self._canonical(warm)
        assert cold["stats"]["persist"]["writes"] > 0
        assert warm["stats"]["persist"]["hits"] > 0

    def test_pooled_workers_share_one_store(self, tmp_path):
        stream = build_stream(build=0, seed=9, iterations=1, passes=2, corpus_size=2)
        store = tmp_path / "memo.sqlite"
        solo = execute_jobs(stream)
        pooled = execute_jobs(stream, workers=2, memo_store=store)
        warm = execute_jobs(stream, workers=2, memo_store=store)
        assert solo.canonical() == pooled.canonical() == warm.canonical()
        # The pooled runs actually reached the shared store.
        check = PersistentMemoStore(store, read_only=True)
        try:
            assert len(check) > 0
        finally:
            check.close()
