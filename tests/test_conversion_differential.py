"""Differential tests: memoized judgments agree with cold-cache runs.

The judgment cache (`repro.kernel.judgment`) and the equivalence memo must
be *invisible*: a warm run has to return the same verdicts and types, spend
the same reduction fuel (via exact replay), exhaust fuel at the same point,
and raise the same `TypeCheckError`s as a cold run.  These tests quantify
that over the generator workloads of `gen/` for both calculi, plus the η
edge cases the incremental engine handles specially.

Error messages may embed globally fresh names (binder renamings,
`natelim` step types), and a warm run draws fewer fresh names than a cold
one, so messages are compared with fresh-name counters normalized out.
"""

from __future__ import annotations

import re

import pytest

from repro import cc, cccc
from repro.cc import prelude
from repro.closconv.translate import translate, translate_context
from repro.common.errors import NormalizationDepthExceeded, TypeCheckError
from repro.common.names import reset_fresh_counter
from repro.gen import GenConfig, TermGenerator
from repro.kernel.budget import Budget

SEEDS = range(600, 612)


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_fresh_counter()
    yield


def _normalize_message(error: Exception) -> str:
    """Error text with fresh-name counters canonicalized (``x$7`` → ``x$N``)."""
    return re.sub(r"\$\d+", "$N", str(error))


def _generated(seed: int):
    triple = TermGenerator(seed, GenConfig(redex_probability=0.5)).well_typed_term()
    if triple is None:
        pytest.skip(f"seed {seed} produced no well-typed term")
    return triple


class TestInferDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cc_infer_cold_vs_warm(self, seed):
        ctx, term, _ = _generated(seed)
        reset_fresh_counter()
        cold = Budget()
        cold_type = cc.infer(ctx, term, cold)
        warm = Budget()
        warm_type = cc.infer(ctx, term, warm)
        assert warm_type is cold_type  # the memoized object comes back
        assert warm.spent == cold.spent
        assert warm.remaining == cold.remaining

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cccc_infer_cold_vs_warm(self, seed):
        ctx, term, _ = _generated(seed)
        target_ctx = translate_context(ctx)
        target = translate(ctx, term)
        reset_fresh_counter()
        cold = Budget()
        cold_type = cccc.infer(target_ctx, target, cold)
        warm = Budget()
        warm_type = cccc.infer(target_ctx, target, warm)
        assert warm_type is cold_type
        assert warm.spent == cold.spent

    @pytest.mark.parametrize("seed", SEEDS)
    def test_check_against_inferred_type(self, seed):
        ctx, term, type_ = _generated(seed)
        reset_fresh_counter()
        cold = Budget()
        cc.check(ctx, term, type_, cold)
        warm = Budget()
        cc.check(ctx, term, type_, warm)
        assert warm.spent == cold.spent


class TestEquivalentDifferential:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_term_vs_normal_form(self, seed):
        ctx, term, _ = _generated(seed)
        normal = cc.normalize(ctx, term)
        reset_fresh_counter()
        cold = Budget()
        cold_verdict = cc.equivalent(ctx, term, normal, cold)
        warm = Budget()
        warm_verdict = cc.equivalent(ctx, term, normal, warm)
        assert cold_verdict is True
        assert warm_verdict is True
        assert warm.spent == cold.spent

    @pytest.mark.parametrize("seed", SEEDS)
    def test_translated_images(self, seed):
        ctx, term, _ = _generated(seed)
        target_ctx = translate_context(ctx)
        left = translate(ctx, term)
        right = translate(ctx, cc.normalize(ctx, term))
        reset_fresh_counter()
        cold = Budget()
        cold_verdict = cccc.equivalent(target_ctx, left, right, cold)
        warm = Budget()
        warm_verdict = cccc.equivalent(target_ctx, left, right, warm)
        assert warm_verdict == cold_verdict
        assert warm.spent == cold.spent

    def test_negative_verdict_cached_with_steps(self, empty):
        left = cc.make_app(prelude.nat_add, cc.nat_literal(6), cc.nat_literal(6))
        right = cc.nat_literal(13)
        reset_fresh_counter()
        cold = Budget()
        assert not cc.equivalent(empty, left, right, cold)
        warm = Budget()
        assert not cc.equivalent(empty, left, right, warm)
        assert warm.spent == cold.spent > 0

    def test_eta_cold_vs_warm_both_orders(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        expanded = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
        for left, right in [(expanded, cc.Var("f")), (cc.Var("f"), expanded)]:
            reset_fresh_counter()
            cold = Budget()
            assert cc.equivalent(ctx, left, right, cold)
            warm = Budget()
            assert cc.equivalent(ctx, left, right, warm)
            assert warm.spent == cold.spent

    def test_closure_eta_cold_vs_warm(self, empty_target):
        ctx = empty_target.extend("f", cccc.arrow(cccc.Nat(), cccc.Nat()))
        code = cccc.CodeLam(
            "env", cccc.Unit(), "a", cccc.Nat(), cccc.App(cccc.Var("f"), cccc.Var("a"))
        )
        clo = cccc.Clo(code, cccc.UnitVal())
        for left, right in [(clo, cccc.Var("f")), (cccc.Var("f"), clo)]:
            reset_fresh_counter()
            cold = Budget()
            assert cccc.equivalent(ctx, left, right, cold)
            warm = Budget()
            assert cccc.equivalent(ctx, left, right, warm)
            assert warm.spent == cold.spent


_ILL_TYPED = [
    cc.App(cc.Zero(), cc.Zero()),
    cc.Fst(cc.nat_literal(1)),
    cc.If(cc.Zero(), cc.Zero(), cc.Zero()),
    cc.App(cc.Lam("x", cc.Nat(), cc.Var("x")), cc.Bool()),
    cc.Succ(cc.BoolLit(True)),
    cc.NatElim(cc.Zero(), cc.Zero(), cc.Zero(), cc.Zero()),
    cc.Pair(cc.Zero(), cc.Zero(), cc.Nat()),
    cc.Var("missing"),
]


class TestErrorDifferential:
    @pytest.mark.parametrize("index", range(len(_ILL_TYPED)))
    def test_cc_errors_identical_cold_vs_warm(self, empty, index):
        term = _ILL_TYPED[index]
        reset_fresh_counter()
        with pytest.raises(TypeCheckError) as cold:
            cc.infer(empty, term, Budget())
        with pytest.raises(TypeCheckError) as warm:
            cc.infer(empty, term, Budget())
        assert type(warm.value) is type(cold.value)
        assert _normalize_message(warm.value) == _normalize_message(cold.value)

    def test_cccc_errors_identical_cold_vs_warm(self, empty_target):
        term = cccc.App(cccc.Zero(), cccc.Zero())
        reset_fresh_counter()
        with pytest.raises(TypeCheckError) as cold:
            cccc.infer(empty_target, term, Budget())
        with pytest.raises(TypeCheckError) as warm:
            cccc.infer(empty_target, term, Budget())
        assert _normalize_message(warm.value) == _normalize_message(cold.value)

    def test_open_code_error_stable(self, empty_target):
        open_code = cccc.CodeLam(
            "env", cccc.Unit(), "a", cccc.Nat(), cccc.Var("stray")
        )
        reset_fresh_counter()
        with pytest.raises(TypeCheckError) as cold:
            cccc.infer(empty_target, open_code, Budget())
        with pytest.raises(TypeCheckError) as warm:
            cccc.infer(empty_target, open_code, Budget())
        assert _normalize_message(warm.value) == _normalize_message(cold.value)


class TestFuelDifferential:
    def test_typecheck_exhaustion_identical(self, empty):
        # A term whose typing requires more reduction than the budget has:
        # cold and warm runs must die at the same spent count.
        motive = cc.Lam("n", cc.Nat(), cc.Nat())
        heavy = cc.NatElim(
            motive,
            cc.Zero(),
            cc.Lam("n", cc.Nat(), cc.Lam("ih", cc.App(motive, cc.Var("n")), cc.Var("ih"))),
            cc.nat_literal(64),
        )
        term = cc.App(cc.Lam("r", cc.Nat(), cc.Var("r")), heavy)
        reset_fresh_counter()
        full = Budget()
        cc.infer(empty, term, full)
        assert full.spent > 4
        limit = 3
        cold = Budget(remaining=limit)
        with pytest.raises(NormalizationDepthExceeded):
            cc.infer(empty, term, cold)
        warm = Budget(remaining=limit)
        with pytest.raises(NormalizationDepthExceeded):
            cc.infer(empty, term, warm)
        assert cold.spent == warm.spent == limit
        assert cold.remaining == warm.remaining == 0

    @pytest.mark.parametrize("limit", [1, 7, 29])
    def test_equivalent_exhaustion_identical(self, empty, limit):
        left = cc.make_app(prelude.nat_add, cc.nat_literal(24), cc.nat_literal(24))
        right = cc.make_app(prelude.nat_add, cc.nat_literal(25), cc.nat_literal(23))
        reset_fresh_counter()
        cold = Budget(remaining=limit)
        with pytest.raises(NormalizationDepthExceeded):
            cc.equivalent(empty, left, right, cold)
        warm = Budget(remaining=limit)
        with pytest.raises(NormalizationDepthExceeded):
            cc.equivalent(empty, left, right, warm)
        assert cold.spent == warm.spent == limit
