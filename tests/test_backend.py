"""Differential tests for the compile-to-host backend.

The backend's whole correctness story is *agreement with the machine
oracle*: for every program, the staged Python closures must produce the
same value (α-canonical egress), the same error documents, and the same
cost counters as ``machine/machine.py`` — which stays verbatim as the
oracle.  These tests enforce that contract over the shared theorem-test
corpus, generated service workloads, the error paths, and the artifact
cache (round trips, corruption, warm-equals-cold across sessions and
across a shared worker pool).
"""

import pytest

from repro import api, cc, cccc
from repro.backend import (
    ArtifactMeta,
    artifact_key,
    compile_program,
    decode_artifact,
    encode_artifact,
    load_artifact,
    store_artifact,
    validate_backend,
)
from repro.backend.stats import CompiledStats
from repro.closconv import compile_term
from repro.common.errors import WireDecodeError
from repro.gen.jobs import close_over, job_corpus
from repro.machine import MachineError, hoist, machine_observation, run
from tests.corpus import (
    CLOSED_GROUND_PROGRAMS,
    CORPUS,
    closed_ground_ids,
    corpus_ids,
)

_STAT_FIELDS = (
    "steps",
    "closure_allocs",
    "tuple_allocs",
    "projections",
    "code_lookups",
    "max_frame_size",
    "env_allocs",
    "max_env_size",
)


def _stats_dict(stats) -> dict:
    return {name: getattr(stats, name) for name in _STAT_FIELDS}


def _compile_closed(term: cc.Term):
    """Closed CC term → hoisted machine program (no verification)."""
    return hoist(compile_term(cc.Context.empty(), term, verify=False).target)


def _differential(program) -> None:
    """Machine and backend agree on value, counters, and errors."""
    compiled = compile_program(program)
    try:
        machine_value, machine_stats = run(program)
    except MachineError as failure:
        with pytest.raises(MachineError) as caught:
            compiled.execute()
        assert str(caught.value) == str(failure)
        return
    value, stats = compiled.execute()
    assert value == machine_value
    assert machine_observation(value) == machine_observation(machine_value)
    assert _stats_dict(stats) == _stats_dict(machine_stats)
    assert stats.matches(machine_stats)


class TestCorpusDifferential:
    @pytest.mark.parametrize("name,ctx,term", CORPUS, ids=corpus_ids())
    def test_corpus_entry(self, name, ctx, term):
        # Open entries are closed over their contexts so the whole corpus
        # runs; the redexes survive the close-over intact.
        closed = close_over(ctx, term)
        cc.infer(cc.Context.empty(), closed)
        _differential(_compile_closed(closed))

    @pytest.mark.parametrize(
        "name,term,expected", CLOSED_GROUND_PROGRAMS, ids=closed_ground_ids()
    )
    def test_ground_observations(self, name, term, expected):
        program = _compile_closed(term)
        value, _stats = compile_program(program).execute()
        assert machine_observation(value) == expected

    def test_separately_compiled_runs_are_structurally_equal(self):
        # Two independent compile_program calls over the same program
        # share the machine's frozen value classes, so results compare
        # structurally across compilations.
        program = _compile_closed(close_over(*CORPUS[0][1:]))
        left, left_stats = compile_program(program).execute()
        right, right_stats = compile_program(program).execute()
        assert left == right
        assert _stats_dict(left_stats) == _stats_dict(right_stats)

    def test_deep_program_runs_off_the_default_stack(self):
        # A succ-tower past the machine's deep-term threshold: both
        # executors switch to their dedicated deep-stack thread.  Built
        # directly at the hoisted level (the surface pipeline has its own
        # deep-program handling; this targets the executors).
        from repro.machine.hoist import Program

        deep: cccc.Term = cccc.Zero()
        for _ in range(3_000):
            deep = cccc.Succ(deep)
        _differential(Program({}, deep))


class TestSessionBackend:
    def test_run_engine_compiled(self):
        session = api.Session()
        result = session.run(r"(\ (x : Nat). succ x) 41", engine="compiled")
        assert result.observation == 42
        assert result.backend == "compiled"
        assert result.artifact is not None
        assert result.compile_result is not None  # cold: full compile ran

    def test_compiled_matches_machine_document(self):
        source = r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5"
        machine_doc = api.Session().run(source).to_dict()
        compiled_doc = api.Session().run(source, engine="compiled").to_dict()
        compiled_doc.pop("artifact")
        # "term": the machine document keeps the source spelling while the
        # compiled one is α-canonical (so warm artifact hits — which never
        # see the original spelling — render identically to cold runs);
        # both spell the same α-class.
        session = api.Session()
        with session.activate():
            from repro.surface import parse_term

            assert cc.pretty(cc.intern(parse_term(source))) == compiled_doc.pop("term")
            machine_doc.pop("term")
        skip = {"backend", "session", "cache_hits", "diagnostics"}
        assert {k: v for k, v in machine_doc.items() if k not in skip} == {
            k: v for k, v in compiled_doc.items() if k not in skip
        }
        assert machine_doc["backend"] == "machine"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            api.Session().run("0", engine="turbo")
        with pytest.raises(ValueError, match="unknown backend"):
            validate_backend("turbo")

    def test_warm_session_hit_skips_compile(self):
        session = api.Session()
        source = r"(\ (x : Nat). succ x) 41"
        cold = session.run(source, engine="compiled")
        warm = session.run(source, engine="compiled")
        assert warm.compile_result is None  # in-memory artifact hit
        assert warm.artifact == cold.artifact
        assert warm.to_dict() == cold.to_dict()


class TestErrorParity:
    def test_fuel_exhaustion_documents_match(self):
        # The polymorphic application spends verification fuel, so fuel=0
        # exhausts mid-pipeline on both backends.
        starved = r"(\ (A : Type) (x : A). x) Nat 3"
        jobs = [
            {"id": "m", "kind": "run", "program": starved, "fuel": 0},
            {"id": "c", "kind": "compile_py", "program": starved, "fuel": 0},
        ]
        report = api.execute_jobs(jobs)
        by_id = {result.id: result for result in report.results}
        assert not by_id["m"].ok and not by_id["c"].ok
        assert by_id["m"].error == by_id["c"].error
        assert by_id["m"].error["type"] == "NormalizationDepthExceeded"

    def test_ill_typed_documents_match(self):
        jobs = [
            {"id": "m", "kind": "run", "program": "succ true"},
            {"id": "c", "kind": "compile_py", "program": "succ true"},
        ]
        report = api.execute_jobs(jobs)
        by_id = {result.id: result for result in report.results}
        assert by_id["m"].error == by_id["c"].error
        assert by_id["m"].error["type"] == "TypeCheckError"

    def test_runtime_error_text_matches_machine(self):
        # A hand-built ill-formed machine program errors identically under
        # both executors (the backend stages errors lazily, like the
        # machine raises them lazily).
        from repro.machine.hoist import Program

        program = Program({}, cccc.App(cccc.Zero(), cccc.Zero()))
        with pytest.raises(MachineError) as machine_err:
            run(program)
        with pytest.raises(MachineError) as compiled_err:
            compile_program(program).execute()
        assert str(compiled_err.value) == str(machine_err.value)


class TestArtifacts:
    def _program_and_meta(self):
        program = _compile_closed(close_over(*CORPUS[0][1:]))
        return program, ArtifactMeta(check_steps=7, verify_steps=3, verified=True)

    def test_roundtrip(self):
        program, meta = self._program_and_meta()
        compiled = compile_program(program)
        blob = encode_artifact(compiled.program, meta)
        decoded, decoded_meta = decode_artifact(blob)
        assert decoded_meta == meta
        assert list(decoded.code_table) == list(compiled.program.code_table)
        for label, code in compiled.program.code_table.items():
            assert cccc.alpha_equal(decoded.code_table[label], code)
        assert cccc.alpha_equal(decoded.main, compiled.program.main)
        # Recompiling the decoded program reproduces the content hash.
        assert compile_program(decoded).source_hash == compiled.source_hash

    def test_corruption_rejected(self):
        program, meta = self._program_and_meta()
        pristine = encode_artifact(compile_program(program).program, meta)
        torn = bytearray(pristine)
        torn[len(torn) // 2] ^= 0xFF
        with pytest.raises(WireDecodeError):
            decode_artifact(bytes(torn))
        with pytest.raises(WireDecodeError, match="bad magic"):
            decode_artifact(b"NOPE" + pristine[4:])
        with pytest.raises(WireDecodeError, match="trailing garbage"):
            decode_artifact(pristine + b"\x00")

    def test_key_is_alpha_invariant_and_option_sensitive(self):
        left = cc.intern(cc.Lam("x", cc.Nat(), cc.Var("x")))
        right = cc.intern(cc.Lam("y", cc.Nat(), cc.Var("y")))
        assert artifact_key(left, engine="nbe", verify=True) == artifact_key(
            right, engine="nbe", verify=True
        )
        assert artifact_key(left, engine="nbe", verify=True) != artifact_key(
            left, engine="nbe", verify=False
        )
        assert artifact_key(left, engine="nbe", verify=True) != artifact_key(
            left, engine="subst", verify=True
        )

    def test_torn_persistent_row_is_a_miss(self, tmp_path):
        # A corrupt blob in the artifact table degrades to a miss.
        session = api.Session()
        session.attach_memo_store(str(tmp_path / "store.sqlite"))
        state = session.state
        key = b"k" * 24
        state.persistent.store.put_artifact(key, 0, b"garbage-not-an-artifact")
        assert load_artifact(state, key) is None
        session.detach_memo_store()

    def test_store_and_load_across_sessions(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        program, meta = self._program_and_meta()
        compiled = compile_program(program)
        key = b"\x07" * 24

        writer = api.Session(name="writer")
        writer.attach_memo_store(path)
        store_artifact(writer.state, key, compiled, meta)
        writer.detach_memo_store()  # flush

        reader = api.Session(name="reader")
        reader.attach_memo_store(path)
        found = load_artifact(reader.state, key)
        assert found is not None
        loaded, loaded_meta = found
        assert loaded_meta == meta
        assert loaded.source_hash == compiled.source_hash
        assert reader.state.persistent.store.artifact_hits == 1
        reader.detach_memo_store()


class TestWorkloadDifferential:
    def test_generated_corpus_payloads_match_machine(self):
        # Generated service workloads: the compile_py payload equals the
        # machine run payload modulo the backend-only keys, job for job.
        specs = job_corpus(seed=11, count=6, kinds=("run",))
        runs = [dict(spec, id=f"m{i}") for i, spec in enumerate(specs)]
        compiles = [
            dict(spec, kind="compile_py", id=f"c{i}") for i, spec in enumerate(specs)
        ]
        report = api.execute_jobs(runs + compiles)
        by_id = {result.id: result for result in report.results}
        for index in range(len(specs)):
            machine = by_id[f"m{index}"]
            compiled = by_id[f"c{index}"]
            assert machine.ok and compiled.ok
            left = {k: v for k, v in machine.payload.items() if k != "backend"}
            right = {
                k: v
                for k, v in compiled.payload.items()
                if k not in ("backend", "artifact")
            }
            assert left == right

    def test_pooled_compile_py_matches_solo_with_shared_store(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        specs = [
            dict(spec, kind="compile_py", id=f"j{i}")
            for i, spec in enumerate(job_corpus(seed=3, count=4, kinds=("run",)))
        ] * 2  # repeat: the second pass hits the shared artifact table
        specs = [dict(spec, id=f"{spec['id']}-{n}") for n, spec in enumerate(specs)]
        solo = api.execute_jobs(specs, workers=0, memo_store=path + ".solo")
        pooled = api.execute_jobs(specs, workers=2, memo_store=path + ".pool")
        assert solo.canonical() == pooled.canonical()
        assert all(result.ok for result in solo.results)


class TestHoistInvariant:
    def test_nested_code_references_only_earlier_labels(self):
        # Nested closures hoist innermost-first; the __debug__ guard in
        # hoist() would raise if a block referenced a later label.
        term = cc.Lam(
            "x", cc.Nat(), cc.Lam("y", cc.Nat(), cc.Lam("z", cc.Nat(), cc.Var("x")))
        )
        program = _compile_closed(term)
        earlier: set = set()
        for label, code in program.code_table.items():
            assert cccc.free_vars(code) <= earlier
            earlier.add(label)

    def test_violation_detected(self):
        import importlib

        # ``repro.machine`` re-exports the hoist *function* under the
        # submodule's name, so fetch the module itself.
        hoist_module = importlib.import_module("repro.machine.hoist")

        # Forge a table whose first entry references a label allocated later.
        bad = cccc.CodeLam("env", cccc.Unit(), "arg", cccc.Unit(), cccc.Var("code$1"))
        good = cccc.CodeLam("env", cccc.Unit(), "arg", cccc.Unit(), cccc.Var("arg"))
        with pytest.raises(AssertionError, match="hoist invariant"):
            hoist_module._check_earlier_labels({"code$0": bad, "code$1": good})
        # In order, the same table passes.
        hoist_module._check_earlier_labels({"code$1": good, "code$0": bad})


class TestCompiledStats:
    def test_counter_mirror_roundtrip(self):
        counters = [10, 2, 3, 4, 5, 6, 7]
        stats = CompiledStats.from_counters(counters)
        assert stats.steps == 10 and stats.env_allocs == 6
        assert stats.max_frame_size == 7  # env_allocs > 0 → widest env
        machine = stats.to_machine()
        assert _stats_dict(machine) == _stats_dict(stats)
        assert stats.matches(machine)

    def test_no_envs_means_no_frames(self):
        stats = CompiledStats.from_counters([1, 0, 0, 0, 0, 0, 0])
        assert stats.max_frame_size == 0
        assert stats.as_dict()["steps"] == 1
