"""Unit tests for CC substitution and α-equivalence."""

from repro import cc
from repro.cc.subst import rename, subst, subst1


class TestSubstBasics:
    def test_var_hit(self):
        assert subst1(cc.Var("x"), "x", cc.Zero()) == cc.Zero()

    def test_var_miss(self):
        assert subst1(cc.Var("y"), "x", cc.Zero()) == cc.Var("y")

    def test_empty_mapping_is_identity(self):
        term = cc.Lam("x", cc.Nat(), cc.Var("x"))
        assert subst(term, {}) is term

    def test_irrelevant_mapping_shares_term(self):
        term = cc.Lam("x", cc.Nat(), cc.Var("x"))
        assert subst(term, {"q": cc.Zero()}) is term

    def test_parallel_is_simultaneous(self):
        # [y/x, x/y] swaps, it does not chain.
        term = cc.App(cc.Var("x"), cc.Var("y"))
        swapped = subst(term, {"x": cc.Var("y"), "y": cc.Var("x")})
        assert swapped == cc.App(cc.Var("y"), cc.Var("x"))

    def test_substitutes_in_annotations(self):
        term = cc.Lam("y", cc.Var("x"), cc.Var("y"))
        result = subst1(term, "x", cc.Nat())
        assert result == cc.Lam("y", cc.Nat(), cc.Var("y"))

    def test_pair_annotation_substituted(self):
        term = cc.Pair(cc.Var("x"), cc.Zero(), cc.Var("S"))
        result = subst(term, {"x": cc.Zero(), "S": cc.Nat()})
        assert result == cc.Pair(cc.Zero(), cc.Zero(), cc.Nat())


class TestBinders:
    def test_shadowed_name_untouched(self):
        term = cc.Lam("x", cc.Nat(), cc.Var("x"))
        assert subst1(term, "x", cc.Zero()) == term

    def test_shadowing_still_substitutes_domain(self):
        term = cc.Lam("x", cc.Var("x"), cc.Var("x"))  # domain x is free
        result = subst1(term, "x", cc.Nat())
        assert result.domain == cc.Nat()
        assert result.body == cc.Var(result.name)

    def test_capture_avoidance(self):
        # (λ y. x)[y/x] must NOT become λ y. y.
        term = cc.Lam("y", cc.Nat(), cc.Var("x"))
        result = subst1(term, "x", cc.Var("y"))
        assert isinstance(result, cc.Lam)
        assert result.name != "y"
        assert result.body == cc.Var("y")  # the substituted y, now not captured

    def test_capture_avoidance_in_pi(self):
        term = cc.Pi("y", cc.Nat(), cc.App(cc.Var("P"), cc.Var("x")))
        result = subst1(term, "x", cc.Var("y"))
        assert result.name != "y"
        assert cc.free_vars(result) == {"P", "y"}

    def test_capture_avoidance_in_let(self):
        term = cc.Let("y", cc.Zero(), cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
        result = subst1(term, "x", cc.Var("y"))
        assert result.name != "y"

    def test_capture_avoidance_in_sigma(self):
        term = cc.Sigma("y", cc.Nat(), cc.App(cc.Var("P"), cc.Var("x")))
        result = subst1(term, "x", cc.Var("y"))
        assert result.name != "y"

    def test_rename(self):
        term = cc.App(cc.Var("x"), cc.Lam("x", cc.Nat(), cc.Var("x")))
        result = rename(term, "x", "z")
        assert result == cc.App(cc.Var("z"), cc.Lam("x", cc.Nat(), cc.Var("x")))

    def test_substitution_lemma_shape(self):
        # e[a/x][b/y] == e[b/y][a[b/y]/x] when x ∉ fv(b): the classic identity.
        e = cc.App(cc.Var("x"), cc.Var("y"))
        a = cc.App(cc.Var("y"), cc.Zero())
        b = cc.nat_literal(2)
        lhs = subst1(subst1(e, "x", a), "y", b)
        rhs = subst1(subst1(e, "y", b), "x", subst1(a, "y", b))
        assert cc.alpha_equal(lhs, rhs)


class TestAlphaEqual:
    def test_identical(self):
        term = cc.Lam("x", cc.Nat(), cc.Var("x"))
        assert cc.alpha_equal(term, term)

    def test_renamed_binder(self):
        assert cc.alpha_equal(
            cc.Lam("x", cc.Nat(), cc.Var("x")),
            cc.Lam("y", cc.Nat(), cc.Var("y")),
        )

    def test_free_vars_matter(self):
        assert not cc.alpha_equal(cc.Var("x"), cc.Var("y"))

    def test_bound_vs_free(self):
        # λx. x  vs  λx. y — not α-equal.
        assert not cc.alpha_equal(
            cc.Lam("x", cc.Nat(), cc.Var("x")),
            cc.Lam("x", cc.Nat(), cc.Var("y")),
        )

    def test_crossed_binders(self):
        # λx. λy. x  vs  λy. λx. x — NOT α-equal (inner binder differs).
        left = cc.Lam("x", cc.Nat(), cc.Lam("y", cc.Nat(), cc.Var("x")))
        right = cc.Lam("y", cc.Nat(), cc.Lam("x", cc.Nat(), cc.Var("x")))
        assert not cc.alpha_equal(left, right)

    def test_crossed_binders_matching(self):
        left = cc.Lam("x", cc.Nat(), cc.Lam("y", cc.Nat(), cc.Var("x")))
        right = cc.Lam("y", cc.Nat(), cc.Lam("x", cc.Nat(), cc.Var("y")))
        assert cc.alpha_equal(left, right)

    def test_domains_compared(self):
        assert not cc.alpha_equal(
            cc.Lam("x", cc.Nat(), cc.Var("x")),
            cc.Lam("x", cc.Bool(), cc.Var("x")),
        )

    def test_pi_and_sigma(self):
        assert cc.alpha_equal(
            cc.Pi("x", cc.Nat(), cc.Var("x")), cc.Pi("y", cc.Nat(), cc.Var("y"))
        )
        assert cc.alpha_equal(
            cc.Sigma("x", cc.Nat(), cc.Var("x")), cc.Sigma("y", cc.Nat(), cc.Var("y"))
        )

    def test_let_binder(self):
        assert cc.alpha_equal(
            cc.Let("x", cc.Zero(), cc.Nat(), cc.Var("x")),
            cc.Let("y", cc.Zero(), cc.Nat(), cc.Var("y")),
        )

    def test_different_node_types(self):
        assert not cc.alpha_equal(cc.Star(), cc.Box())
        assert not cc.alpha_equal(cc.Zero(), cc.BoolLit(False))

    def test_literals(self):
        assert cc.alpha_equal(cc.BoolLit(True), cc.BoolLit(True))
        assert not cc.alpha_equal(cc.BoolLit(True), cc.BoolLit(False))

    def test_shadowing_inside(self):
        left = cc.Lam("x", cc.Nat(), cc.Lam("x", cc.Nat(), cc.Var("x")))
        right = cc.Lam("y", cc.Nat(), cc.Lam("z", cc.Nat(), cc.Var("z")))
        assert cc.alpha_equal(left, right)

    def test_subst_then_alpha(self):
        # Substitution respects α-equivalence of results.
        left = subst1(cc.Lam("y", cc.Nat(), cc.Var("x")), "x", cc.Var("y"))
        right = cc.Lam("w", cc.Nat(), cc.Var("y"))
        assert cc.alpha_equal(left, right)
