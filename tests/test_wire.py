"""Codec hardening tests for the binary term wire (``repro.wire.codec``).

The contracts under test, in the order the ISSUE states them:

* every node spec of *both* calculi round-trips byte-stably (with a
  coverage assertion, so adding a node class without wire coverage fails
  here rather than in production),
* truncated and corrupt buffers are rejected with deterministic error
  documents — same bytes in, same message out, byte offsets not addresses,
* the wire-version negotiation keeps old text-only JSONL corpora loading
  and executing unchanged, while binary jobs produce payloads that are
  byte-identical to their text twins.
"""

from __future__ import annotations

import json

import pytest

from repro import cc, cccc
from repro.api import Session, execute_jobs
from repro.common.errors import WireDecodeError, WireError
from repro.gen.dag import shared_dag_tower
from repro.gen.jobs import binary_specs, job_corpus
from repro.service.jobs import WIRE_VERSIONS, Job
from repro.surface import parse_term
from repro.wire import (
    CODEC_VERSION,
    content_hash,
    decode_term,
    encode_term,
    term_from_b64,
    term_to_b64,
)

CCL = cc.ast.LANGUAGE
CCCCL = cccc.ast.LANGUAGE


# --------------------------------------------------------------------------
# Kitchen-sink terms: one term per calculus containing every node class.
# --------------------------------------------------------------------------


def _cc_everything() -> cc.Term:
    """A (deliberately ill-typed) CC term using every registered node class."""
    sigma = cc.Sigma("p", cc.Nat(), cc.Bool())
    pair = cc.Pair(cc.Zero(), cc.BoolLit(True), sigma)
    elim = cc.NatElim(
        cc.Lam("n", cc.Nat(), cc.Nat()),
        cc.Zero(),
        cc.Lam("n", cc.Nat(), cc.Lam("ih", cc.Nat(), cc.Succ(cc.Var("ih")))),
        cc.Succ(cc.Fst(pair)),
    )
    body = cc.If(cc.BoolLit(False), cc.Snd(pair), cc.App(cc.Var("f"), elim))
    return cc.Let(
        "f",
        cc.Lam("x", cc.Bool(), cc.Var("x")),
        cc.Pi("A", cc.Star(), cc.Box()),
        body,
    )


def _cccc_everything() -> cccc.Term:
    """A CC-CC term using every registered node class (Code/Clo included)."""
    sigma = cccc.Sigma("p", cccc.Nat(), cccc.Bool())
    pair = cccc.Pair(cccc.Zero(), cccc.BoolLit(True), sigma)
    code = cccc.CodeLam("env", cccc.Unit(), "x", cccc.Nat(), cccc.Succ(cccc.Var("x")))
    clo = cccc.Clo(code, cccc.UnitVal())
    elim = cccc.NatElim(
        cccc.Var("P"), cccc.Zero(), clo, cccc.App(clo, cccc.Fst(pair))
    )
    code_type = cccc.CodeType("env", cccc.Unit(), "x", cccc.Nat(), cccc.Nat())
    body = cccc.If(cccc.BoolLit(False), cccc.Snd(pair), elim)
    return cccc.Let(
        "t",
        body,
        cccc.Pi("A", cccc.Star(), cccc.Box()),
        cccc.Pair(cccc.Var("t"), code_type, cccc.Sigma("q", sigma, cccc.Star())),
    )


def _node_classes(lang, term) -> set[str]:
    """Class names reachable in ``term`` (structural walk, sharing ignored)."""
    seen: set[str] = set()
    stack = [term]
    while stack:
        node = stack.pop()
        seen.add(type(node).__name__)
        spec = lang.specs[type(node)]
        stack.extend(getattr(node, child.attr) for child in spec.children)
    return seen


def _unshared(lang, term):
    """A structural deep copy: same term, zero object sharing."""
    spec = lang.specs[type(term)]
    args = []
    for attr in spec.field_order:
        value = getattr(term, attr)
        args.append(_unshared(lang, value) if attr in spec.child_attrs else value)
    return type(term)(*args)


CASES = [
    pytest.param(CCL, _cc_everything, id="cc"),
    pytest.param(CCCCL, _cccc_everything, id="cc-cc"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("lang, build", CASES)
    def test_every_spec_covered(self, lang, build):
        # The kitchen-sink term must mention every node class the calculus
        # registers — otherwise the round-trip below is not the full claim.
        all_specs = {cls.__name__ for cls in lang.specs}
        assert _node_classes(lang, build()) == all_specs

    @pytest.mark.parametrize("lang, build", CASES)
    def test_roundtrip_byte_stable(self, lang, build):
        session = Session(name="wire-rt")
        with session.activate():
            term = build()
            interned = (cc if lang is CCL else cccc).intern(term)
            blob = encode_term(lang, interned)
            decoded = decode_term(lang, blob)
            assert decoded is interned  # hash-consed: same representative
            assert encode_term(lang, decoded) == blob

    @pytest.mark.parametrize("lang, build", CASES)
    def test_canonical_across_sharing(self, lang, build):
        # A fully-unshared structural copy encodes to the same bytes as the
        # maximally-shared interned DAG: table order is first *structural*
        # occurrence, not object identity.
        session = Session(name="wire-canon")
        with session.activate():
            interned = (cc if lang is CCL else cccc).intern(build())
            copy = _unshared(lang, interned)
            assert copy is not interned
            assert encode_term(lang, copy) == encode_term(lang, interned)

    def test_decode_joins_parse_on_the_same_representative(self):
        text = r"\ (x : Nat). succ ((\ (y : Nat). y) x)"
        session = Session(name="wire-join")
        with session.activate():
            via_text = cc.intern(parse_term(text))
            blob = encode_term(CCL, via_text)
        other = Session(name="wire-join-2")
        with other.activate():
            via_wire = cc.intern(decode_term(CCL, blob))
            assert via_wire is cc.intern(parse_term(text))

    def test_adoption_is_by_pointer(self):
        session = Session(name="wire-adopt")
        with session.activate():
            tower = cc.intern(shared_dag_tower(5))
            blob = encode_term(CCL, tower)
            assert decode_term(CCL, blob) is tower
            # And again — the by_hash index keeps answering.
            assert decode_term(CCL, blob) is tower

    def test_content_hash_ignores_sharing_and_session(self):
        one = Session(name="wire-h1")
        two = Session(name="wire-h2")
        with one.activate():
            interned = cc.intern(shared_dag_tower(4))
            shared_hash = content_hash(CCL, interned)
            unshared_hash = content_hash(CCL, _unshared(CCL, interned))
        with two.activate():
            again = content_hash(CCL, cc.intern(shared_dag_tower(4)))
        assert shared_hash == unshared_hash == again

    def test_shared_dag_compresses(self):
        # The whole point of the node table: ~10k-node unfoldings whose
        # DAGs are O(hundreds) must not pay tree-sized buffers.
        session = Session(name="wire-size")
        with session.activate():
            tower = cc.intern(shared_dag_tower())
            blob = encode_term(CCL, tower)
            text = cc.pretty(tower)
            assert len(blob) * 10 < len(text)

    def test_b64_roundtrip(self):
        session = Session(name="wire-b64")
        with session.activate():
            term = cc.intern(parse_term("succ (succ 0)"))
            assert term_from_b64(CCL, term_to_b64(CCL, term)) is term

    def test_foreign_term_rejected(self):
        session = Session(name="wire-foreign")
        with session.activate():
            with pytest.raises(WireError, match="not a CC term"):
                encode_term(CCL, cccc.UnitVal())


class TestRejection:
    def _blob(self) -> bytes:
        session = Session(name="wire-reject")
        with session.activate():
            return encode_term(CCL, cc.intern(_cc_everything()))

    def test_every_truncation_rejected(self):
        blob = self._blob()
        for length in range(len(blob)):
            with pytest.raises(WireDecodeError):
                fresh = Session(name=f"wire-trunc-{length}")
                with fresh.activate():
                    decode_term(CCL, blob[:length])

    def test_truncation_errors_are_deterministic(self):
        blob = self._blob()
        for length in (0, 3, len(blob) // 2, len(blob) - 1):
            messages = set()
            for attempt in range(2):
                fresh = Session(name=f"wire-det-{length}-{attempt}")
                with fresh.activate():
                    with pytest.raises(WireDecodeError) as err:
                        decode_term(CCL, blob[:length])
                messages.add(str(err.value))
            assert len(messages) == 1, messages

    def test_bad_magic(self):
        with pytest.raises(WireDecodeError, match="bad magic"):
            decode_term(CCL, b"NOPE" + self._blob()[4:])

    def test_version_mismatch(self):
        blob = bytearray(self._blob())
        assert blob[4] == CODEC_VERSION
        blob[4] = CODEC_VERSION + 1
        with pytest.raises(WireDecodeError, match="unsupported codec version"):
            decode_term(CCL, bytes(blob))

    def test_language_mismatch(self):
        blob = self._blob()
        session = Session(name="wire-lang")
        with session.activate():
            with pytest.raises(WireDecodeError, match="language mismatch"):
                decode_term(CCCCL, blob)

    def test_trailing_garbage(self):
        blob = self._blob()
        session = Session(name="wire-trail")
        with session.activate():
            with pytest.raises(WireDecodeError, match="trailing garbage"):
                decode_term(CCL, blob + b"\x00")

    def test_corrupt_hash_detected_cold(self):
        blob = bytearray(self._blob())
        blob[-2] ^= 0xFF  # inside the last node's stored content hash
        fresh = Session(name="wire-corrupt")
        with fresh.activate():
            with pytest.raises(WireDecodeError, match="content hash mismatch"):
                decode_term(CCL, bytes(blob))

    def test_bad_base64(self):
        with pytest.raises(WireDecodeError, match="malformed base64"):
            term_from_b64(CCL, "!!! not base64 !!!")

    def test_executor_turns_corruption_into_error_documents(self):
        # Kernel-side wire failures are *results*: deterministic error
        # documents, byte-identical on every run.
        session = Session(name="wire-errdoc")
        with session.activate():
            good = term_to_b64(CCL, cc.intern(parse_term("0")))
        bad = good[:-8] + "AAAAAAAA"  # same length, corrupt tail
        job = {"id": "c0", "kind": "normalize", "term_b64": bad, "wire": 2}
        first = execute_jobs([job]).canonical()
        second = execute_jobs([job]).canonical()
        assert first == second
        (doc,) = first
        assert doc["ok"] is False
        assert doc["error"]["type"] == "WireDecodeError"
        assert "offset" in doc["error"]["message"] or "mismatch" in doc["error"]["message"]


class TestJobWireVersions:
    def test_default_wire_is_text(self):
        job = Job(kind="check", program="0")
        assert job.wire == 1
        assert "wire" not in job.to_dict()

    def test_unknown_wire_version_rejected(self):
        top = max(WIRE_VERSIONS)
        with pytest.raises(ValueError, match="unsupported wire version"):
            Job(kind="check", program="0", wire=top + 1)
        with pytest.raises(ValueError, match="unsupported wire version"):
            Job.from_dict({"kind": "check", "program": "0", "wire": top + 1})

    def test_binary_term_requires_wire_2(self):
        with pytest.raises(ValueError, match="wire version 2"):
            Job(kind="check", term_b64="AAAA")

    def test_binary_job_roundtrips_the_wire_format(self):
        session = Session(name="wire-jobrt")
        with session.activate():
            b64 = term_to_b64(CCL, cc.intern(parse_term("succ 0")))
        job = Job.from_dict({"kind": "normalize", "term_b64": b64, "wire": 2})
        assert Job.from_dict(json.loads(json.dumps(job.to_dict()))) == job

    def test_old_text_jsonl_corpus_still_executes(self, tmp_path):
        # A corpus written before the binary wire existed: plain text specs,
        # no wire field anywhere.  It must load and run unchanged.
        specs = job_corpus(seed=11, count=3)
        assert all("wire" not in spec and "term_b64" not in spec for spec in specs)
        corpus = tmp_path / "old.jsonl"
        corpus.write_text("".join(json.dumps(spec) + "\n" for spec in specs))
        loaded = [
            Job.from_dict(json.loads(line))
            for line in corpus.read_text().splitlines()
        ]
        assert all(job.wire == 1 for job in loaded)
        report = execute_jobs(loaded)
        assert report.ok

    def test_binary_and_text_payloads_byte_identical(self):
        # Every program-carrying kind, plus deterministic failures: the
        # binary twin of a text stream yields the same canonical documents
        # once the binary-only ``*_b64`` payload echoes are set aside.
        text_specs = [
            {"id": "j0", "kind": "parse", "program": r"\ (A : Type) (x : A). x"},
            {"id": "j1", "kind": "check", "program": r"\ (A : Type) (x : A). x"},
            {"id": "j2", "kind": "normalize", "program": r"(\ (x : Nat). succ x) 41"},
            {"id": "j3", "kind": "compile", "program": r"\ (x : Nat). x"},
            {"id": "j4", "kind": "run", "program": r"(\ (x : Nat). succ x) 41"},
            {
                "id": "j5",
                "kind": "link",
                "program": "n",
                "interface": [["n", "Nat"]],
                "imports": {"n": "41"},
            },
            {"id": "j6", "kind": "check", "program": "0 0"},  # type error
            {"id": "j7", "kind": "normalize", "program": r"(\ (x : Nat). succ x) 41", "fuel": 0},
        ]
        binary = binary_specs(text_specs)
        assert all(
            spec["wire"] == 2 and spec["term_b64"] and "program" not in spec
            for spec in binary
        )
        text_docs = execute_jobs(text_specs).canonical()
        binary_docs = execute_jobs(binary).canonical()

        def strip(document):
            if "payload" not in document:
                return document  # failed jobs carry only the error half
            payload = {
                key: value
                for key, value in document["payload"].items()
                if not key.endswith("_b64")
            }
            return {**document, "payload": payload}

        assert [strip(doc) for doc in binary_docs] == text_docs
        # And the binary echoes decode back to exactly the text rendering.
        normalize_doc = next(doc for doc in binary_docs if doc["id"] == "j2")
        check = Session(name="wire-echo")
        with check.activate():
            echoed = term_from_b64(CCL, normalize_doc["payload"]["normal_b64"])
            assert cc.pretty(cc.intern(echoed)) == normalize_doc["payload"]["normal"]

    def test_binary_specs_passthrough(self):
        specs = [
            {"kind": "reset"},
            {"kind": "sleep", "seconds": 0.0},
        ]
        assert binary_specs(specs) == specs
