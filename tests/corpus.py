"""A shared corpus of well-typed CC programs used across the theorem tests.

Each entry is ``(name, context, term)`` with ``context ⊢ term`` valid.
The corpus is built to cover every syntactic form and every interesting
closure-conversion situation:

* closed and open functions, nested functions, captured term variables,
  captured *type* variables (the paper's Section 3 example),
* dependent pairs, projections, refinement-style Σ's,
* let with definitions, δ/ζ/β/π/ι redexes,
* ground-type computation (Bool, Nat) for observation tests,
* impredicative polymorphism (Church encodings).
"""

from __future__ import annotations

from repro import cc
from repro.cc import prelude
from repro.cc.context import Context
from repro.gen.dag import shared_dag_tower
from repro.surface import parse_term

__all__ = ["CORPUS", "CLOSED_GROUND_PROGRAMS", "corpus_ids", "closed_ground_ids"]


def _ctx(*entries: tuple[str, cc.Term]) -> Context:
    ctx = Context.empty()
    for name, type_ in entries:
        ctx = ctx.extend(name, type_)
    return ctx


_EMPTY = Context.empty()
_A_STAR = _ctx(("A", cc.Star()))
_ARITH = _ctx(("A", cc.Star()), ("f", cc.arrow(cc.Var("A"), cc.Var("A"))), ("a", cc.Var("A")))
_BOOL = _ctx(("b", cc.Bool()))
_DEFS = Context.empty().define("two", cc.nat_literal(2), cc.Nat()).extend("m", cc.Nat())
_TYPE_ONLY = _ctx(("C", cc.Star()), ("f", cc.arrow(cc.Nat(), cc.Var("C"))))
_SIGMA_DEP = _ctx(("A", cc.Star()), ("p", cc.Sigma("x", cc.Var("A"), cc.Nat())))
_CHAIN = _ctx(
    ("A", cc.Star()),
    ("P", cc.arrow(cc.Var("A"), cc.Star())),
    ("x", cc.Var("A")),
    ("h", cc.App(cc.Var("P"), cc.Var("x"))),
)

#: (name, context, term) — all well-typed.
CORPUS: list[tuple[str, Context, cc.Term]] = [
    # -- functions and closures ------------------------------------------
    ("poly-id", _EMPTY, prelude.polymorphic_identity),
    ("mono-id", _EMPTY, prelude.identity_at(cc.Nat())),
    ("const", _EMPTY, prelude.const_fn(cc.Nat(), cc.Bool())),
    ("compose", _EMPTY, prelude.compose(cc.Nat(), cc.Nat(), cc.Bool())),
    ("twice", _EMPTY, prelude.twice(cc.Nat())),
    ("open-capture-term", _ARITH, parse_term(r"\ (x : A). f x")),
    ("open-capture-type", _A_STAR, parse_term(r"\ (x : A). x")),
    ("nested-capture", _ARITH, parse_term(r"\ (x : A). \ (y : A). f x")),
    ("triple-nest", _EMPTY, parse_term(r"\ (x : Nat). \ (y : Nat). \ (z : Nat). x")),
    ("shadow", _EMPTY, parse_term(r"\ (x : Nat). (\ (x : Bool). x) true")),
    # -- application / redexes -------------------------------------------
    ("beta-redex", _EMPTY, parse_term(r"(\ (x : Nat). succ x) 4")),
    ("id-Nat-3", _EMPTY, cc.make_app(prelude.polymorphic_identity, cc.Nat(), cc.nat_literal(3))),
    ("partial-app", _EMPTY, cc.App(prelude.nat_add, cc.nat_literal(2))),
    ("higher-order", _EMPTY, parse_term(
        r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5"
    )),
    ("apply-open", _ARITH, parse_term(r"(\ (x : A). f x) a")),
    # -- let / definitions -------------------------------------------------
    ("let-zeta", _EMPTY, parse_term(r"let y = succ 0 : Nat in succ y")),
    ("let-under-lam", _EMPTY, parse_term(r"\ (x : Nat). let y = succ x : Nat in y")),
    ("let-type", _EMPTY, parse_term(r"let T = Nat : Type in \ (x : T). x")),
    ("delta-def", _DEFS, parse_term(r"natelim(\ (k : Nat). Nat, two, \ (k : Nat) (ih : Nat). succ ih, m)")),
    # -- pairs / sigma -----------------------------------------------------
    ("pair-ground", _EMPTY, parse_term(r"<3, true> as (exists (x : Nat), Bool)")),
    ("pair-dependent", _EMPTY, prelude.positive_nat_value(2)),
    ("fst-proj", _EMPTY, parse_term(r"fst (<3, true> as (exists (x : Nat), Bool))")),
    ("snd-proj", _EMPTY, parse_term(r"snd (<3, true> as (exists (x : Nat), Bool))")),
    ("sigma-in-lam", _EMPTY, parse_term(
        r"\ (p : exists (x : Nat), Bool). fst p"
    )),
    ("snd-dependent", _EMPTY, cc.Snd(prelude.positive_nat_value(3))),
    # -- ground types ------------------------------------------------------
    ("if-ground", _EMPTY, parse_term(r"if true then 1 else 0")),
    ("if-neutral", _BOOL, parse_term(r"if b then 1 else 0")),
    ("natelim-add", _EMPTY, cc.make_app(prelude.nat_add, cc.nat_literal(3), cc.nat_literal(4))),
    ("is-zero", _EMPTY, cc.App(prelude.nat_is_zero, cc.nat_literal(0))),
    ("pred", _EMPTY, cc.App(prelude.nat_pred, cc.nat_literal(5))),
    # -- dependent types in anger -----------------------------------------
    ("dependent-if-annot", _BOOL, cc.Lam(
        "x", cc.If(cc.Var("b"), cc.Nat(), cc.Bool()), cc.Var("x")
    )),
    ("leibniz-refl", _EMPTY, prelude.leibniz_refl(cc.Nat(), cc.nat_literal(1))),
    ("type-operator", _EMPTY, parse_term(r"\ (F : Type -> Type) (A : Type) (x : F A). x")),
    ("impredicative", _EMPTY, parse_term(
        r"\ (f : forall (A : Type), A -> A). f (forall (A : Type), A -> A) f"
    )),
    # -- type-only captures (Figure 10's raison d'être) --------------------
    ("type-only-capture", _TYPE_ONLY, parse_term(r"\ (x : Nat). f x")),
    ("sigma-dep-capture", _SIGMA_DEP, parse_term(r"\ (w : Nat). fst p")),
    ("chain-capture", _CHAIN, parse_term(r"\ (w : Nat). h")),
    # -- a real inductive proof --------------------------------------------
    ("add-zero-proof", _EMPTY, prelude.add_zero_right_proof()),
    # -- church encodings --------------------------------------------------
    ("church-2", _EMPTY, prelude.church_nat(2)),
    ("church-add-2-3", _EMPTY, cc.make_app(
        prelude.church_add, prelude.church_nat(2), prelude.church_nat(3)
    )),
    # -- types as terms ----------------------------------------------------
    ("type-term", _EMPTY, parse_term("Nat -> Bool")),
    ("pi-type-term", _EMPTY, parse_term("forall (A : Type), A -> A")),
    ("sigma-type-term", _EMPTY, prelude.positive_nat()),
    # -- heavily shared DAG (wire-codec / canonicalize-memo regime) --------
    ("shared-dag-tower", _EMPTY, shared_dag_tower(3)),
]


#: Closed programs of ground type, for whole-program correctness checks.
CLOSED_GROUND_PROGRAMS: list[tuple[str, cc.Term, bool | int]] = [
    ("lit-7", cc.nat_literal(7), 7),
    ("beta", parse_term(r"(\ (x : Nat). succ x) 4"), 5),
    ("id-Nat-3", cc.make_app(prelude.polymorphic_identity, cc.Nat(), cc.nat_literal(3)), 3),
    ("add-3-4", cc.make_app(prelude.nat_add, cc.nat_literal(3), cc.nat_literal(4)), 7),
    ("pred-5", cc.App(prelude.nat_pred, cc.nat_literal(5)), 4),
    ("is-zero-0", cc.App(prelude.nat_is_zero, cc.nat_literal(0)), True),
    ("is-zero-3", cc.App(prelude.nat_is_zero, cc.nat_literal(3)), False),
    ("if", parse_term(r"if false then 1 else 2"), 2),
    ("fst", parse_term(r"fst (<3, true> as (exists (x : Nat), Bool))"), 3),
    ("snd", parse_term(r"snd (<3, true> as (exists (x : Nat), Bool))"), True),
    ("let", parse_term(r"let y = succ 0 : Nat in succ y"), 2),
    ("higher-order", parse_term(
        r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5"
    ), 7),
    ("church-to-nat", cc.make_app(
        cc.make_app(prelude.church_add, prelude.church_nat(2), prelude.church_nat(3)),
        cc.Nat(),
        cc.Lam("k", cc.Nat(), cc.Succ(cc.Var("k"))),
        cc.Zero(),
    ), 5),
    ("deep-pair", parse_term(
        r"fst (snd (<1, <2, 3> as (exists (y : Nat), Nat)> as (exists (x : Nat), (exists (y : Nat), Nat))))"
    ), 2),
]


def corpus_ids() -> list[str]:
    """pytest ids for :data:`CORPUS`."""
    return [name for name, _, _ in CORPUS]


def closed_ground_ids() -> list[str]:
    """pytest ids for :data:`CLOSED_GROUND_PROGRAMS`."""
    return [name for name, _, _ in CLOSED_GROUND_PROGRAMS]
