"""The Section 6 conjecture: ``e ≡ (e⁺)°``.

Compiling to CC-CC and decompiling through the model returns a term
definitionally equal to the original.  The paper conjectures this (it is
the missing piece of their preservation/reflection argument); our
implementation lets us check it empirically.
"""

import pytest

from repro import cc
from repro.closconv import translate
from repro.gen import TermGenerator
from repro.model import decompile
from repro.properties import check_roundtrip
from tests.corpus import CORPUS, corpus_ids


class TestCorpus:
    @pytest.mark.parametrize("name, ctx, term", CORPUS, ids=corpus_ids())
    def test_roundtrip(self, name, ctx, term):
        assert check_roundtrip(ctx, term)


class TestShapes:
    def test_roundtrip_is_not_syntactic_identity(self, empty):
        """The round trip inserts environment plumbing, so the result is
        definitionally — NOT syntactically — equal."""
        from repro.cc import prelude

        image = decompile(translate(empty, prelude.polymorphic_identity))
        assert not cc.alpha_equal(image, prelude.polymorphic_identity)
        assert cc.equivalent(empty, image, prelude.polymorphic_identity)

    def test_roundtrip_fixed_points(self, empty):
        """Terms with no functions come back syntactically unchanged."""
        for term in [cc.nat_literal(3), cc.BoolLit(True), cc.Nat(), cc.Star()]:
            assert cc.alpha_equal(decompile(translate(empty, term)), term)


class TestRandomized:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_roundtrips(self, seed):
        gen = TermGenerator(seed + 123_456)
        triple = gen.well_typed_term()
        if triple is None:
            pytest.skip("no term generated")
        ctx, term, _ = triple
        assert check_roundtrip(ctx, term)
