"""Differential tests: the NbE engine agrees with the substitution oracle.

``cc.whnf``/``cc.normalize`` (and the CC-CC twins) are now backed by the
environment machine of ``repro.kernel.nbe``; the substitution engine
survives as ``whnf_subst``/``normalize_subst``.  These tests quantify the
agreement over the corpus and the ``gen/`` workloads for both calculi:

* α-equal results for ``whnf`` and ``normalize`` (for ``whnf`` the *fuel*
  must match too: both engines charge one unit per head contraction, in
  the same order);
* identical ``equivalent`` verdicts against the pre-NbE baseline
  (normalize-with-the-oracle, then α-compare up to η);
* identical error behaviour on fuel exhaustion;
* the 10k-deep corpus, where only the iterative NbE engine can answer at
  all (the recursive substitution normalizer exceeds the Python stack).
"""

from __future__ import annotations

import pytest

from corpus import CORPUS, corpus_ids
from repro import cc, cccc
from repro.cc import prelude
from repro.cc.equiv import norm_equal_eta
from repro.cc.reduce import normalize_subst as cc_normalize_subst
from repro.cc.reduce import whnf_subst as cc_whnf_subst
from repro.cccc.reduce import normalize_subst as cccc_normalize_subst
from repro.cccc.reduce import whnf_subst as cccc_whnf_subst
from repro.closconv.translate import translate, translate_context
from repro.common.errors import NormalizationDepthExceeded
from repro.common.names import reset_fresh_counter
from repro.gen import GenConfig, TermGenerator
from repro.kernel.budget import Budget

SEEDS = range(600, 614)
DEEP = 10_000


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_fresh_counter()
    yield


def _generated(seed: int):
    triple = TermGenerator(seed, GenConfig(redex_probability=0.5)).well_typed_term()
    if triple is None:
        pytest.skip(f"seed {seed} produced no well-typed term")
    return triple


class TestCCAgainstOracle:
    @pytest.mark.parametrize("name, ctx, term", CORPUS, ids=corpus_ids())
    def test_corpus_whnf_agrees_with_fuel(self, name, ctx, term):
        reset_fresh_counter()
        nbe_budget = Budget()
        nbe = cc.whnf(ctx, term, nbe_budget)
        reset_fresh_counter()
        oracle_budget = Budget()
        oracle = cc_whnf_subst(ctx, term, oracle_budget)
        assert cc.alpha_equal(nbe, oracle)
        assert nbe_budget.spent == oracle_budget.spent

    @pytest.mark.parametrize("name, ctx, term", CORPUS, ids=corpus_ids())
    def test_corpus_normalize_agrees(self, name, ctx, term):
        reset_fresh_counter()
        nbe = cc.normalize(ctx, term)
        reset_fresh_counter()
        oracle = cc_normalize_subst(ctx, term)
        assert cc.alpha_equal(nbe, oracle)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_whnf_agrees_with_fuel(self, seed):
        ctx, term, _ = _generated(seed)
        reset_fresh_counter()
        nbe_budget = Budget()
        nbe = cc.whnf(ctx, term, nbe_budget)
        reset_fresh_counter()
        oracle_budget = Budget()
        oracle = cc_whnf_subst(ctx, term, oracle_budget)
        assert cc.alpha_equal(nbe, oracle)
        assert nbe_budget.spent == oracle_budget.spent

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_normalize_agrees(self, seed):
        ctx, term, _ = _generated(seed)
        reset_fresh_counter()
        nbe = cc.normalize(ctx, term)
        reset_fresh_counter()
        oracle = cc_normalize_subst(ctx, term)
        assert cc.alpha_equal(nbe, oracle)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_verdicts_match_baseline(self, seed):
        # The NbE-backed incremental `equivalent` agrees with the pre-NbE
        # baseline decision procedure (oracle-normalize then α-η-compare).
        ctx, term, _ = _generated(seed)
        normal = cc_normalize_subst(ctx, term)
        baseline = norm_equal_eta(cc_normalize_subst(ctx, term), normal)
        assert cc.equivalent(ctx, term, normal) is baseline is True
        different = cc.Succ(cc.Var("distinct$oracle"))
        assert cc.equivalent(ctx, term, different) is norm_equal_eta(normal, different)


class TestCCCCAgainstOracle:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_translated_whnf_agrees_with_fuel(self, seed):
        ctx, term, _ = _generated(seed)
        target_ctx = translate_context(ctx)
        target = translate(ctx, term)
        reset_fresh_counter()
        nbe_budget = Budget()
        nbe = cccc.whnf(target_ctx, target, nbe_budget)
        reset_fresh_counter()
        oracle_budget = Budget()
        oracle = cccc_whnf_subst(target_ctx, target, oracle_budget)
        assert cccc.alpha_equal(nbe, oracle)
        assert nbe_budget.spent == oracle_budget.spent

    @pytest.mark.parametrize("seed", SEEDS)
    def test_translated_normalize_agrees(self, seed):
        ctx, term, _ = _generated(seed)
        target_ctx = translate_context(ctx)
        target = translate(ctx, term)
        reset_fresh_counter()
        nbe = cccc.normalize(target_ctx, target)
        reset_fresh_counter()
        oracle = cccc_normalize_subst(target_ctx, target)
        assert cccc.alpha_equal(nbe, oracle)

    def test_closure_beta_parallel_binding(self, empty_target):
        # The β-capture hazard `_beta` guards: the environment value is
        # free in the argument binder's name.  Both engines must bind in
        # parallel, never sequentially.
        code = cccc.CodeLam(
            "e", cccc.Nat(), "a", cccc.Nat(),
            cccc.Pair(cccc.Var("e"), cccc.Var("a"), cccc.Sigma("s", cccc.Nat(), cccc.Nat())),
        )
        ctx = empty_target.extend("a", cccc.Nat())
        term = cccc.App(cccc.Clo(code, cccc.Var("a")), cccc.Zero())
        reset_fresh_counter()
        nbe = cccc.normalize(ctx, term)
        reset_fresh_counter()
        oracle = cccc_normalize_subst(ctx, term)
        assert cccc.alpha_equal(nbe, oracle)
        assert nbe.fst_val == cccc.Var("a")  # the env's `a` stays free

    def test_delta_defined_code_agrees(self, empty_target):
        code = cccc.CodeLam("env", cccc.Unit(), "a", cccc.Nat(), cccc.Succ(cccc.Var("a")))
        ctx = empty_target.define(
            "c", code, cccc.CodeType("env", cccc.Unit(), "a", cccc.Nat(), cccc.Nat())
        )
        term = cccc.App(cccc.Clo(cccc.Var("c"), cccc.UnitVal()), cccc.nat_literal(3))
        reset_fresh_counter()
        nbe = cccc.normalize(ctx, term)
        reset_fresh_counter()
        oracle = cccc_normalize_subst(ctx, term)
        assert nbe == oracle == cccc.nat_literal(4)


class TestErrorAgreement:
    def test_cc_fuel_exhaustion_both_engines(self, empty):
        big = cc.make_app(prelude.nat_add, cc.nat_literal(30), cc.nat_literal(30))
        reset_fresh_counter()
        with pytest.raises(NormalizationDepthExceeded):
            cc.normalize(empty, big, Budget(remaining=3))
        reset_fresh_counter()
        with pytest.raises(NormalizationDepthExceeded):
            cc_normalize_subst(empty, big, Budget(remaining=3))

    def test_cc_whnf_exhaustion_at_same_point(self, empty):
        # `is_zero (30 + 30)` must run the whole ι-chain before its head
        # (an `if`) can resolve, so a small budget dies mid-chain — at the
        # same spent count under both engines.
        big = cc.make_app(prelude.nat_add, cc.nat_literal(30), cc.nat_literal(30))
        term = cc.App(prelude.nat_is_zero, big)
        reset_fresh_counter()
        nbe_budget = Budget(remaining=7)
        with pytest.raises(NormalizationDepthExceeded):
            cc.whnf(empty, term, nbe_budget)
        reset_fresh_counter()
        oracle_budget = Budget(remaining=7)
        with pytest.raises(NormalizationDepthExceeded):
            cc_whnf_subst(empty, term, oracle_budget)
        assert nbe_budget.spent == oracle_budget.spent == 7

    def test_cccc_fuel_exhaustion_both_engines(self, empty_target):
        code = cccc.CodeLam("env", cccc.Unit(), "a", cccc.Nat(), cccc.Var("a"))
        term = cccc.nat_literal(1)
        for _ in range(20):
            term = cccc.App(cccc.Clo(code, cccc.UnitVal()), term)
        reset_fresh_counter()
        with pytest.raises(NormalizationDepthExceeded):
            cccc.normalize(empty_target, term, Budget(remaining=3))
        reset_fresh_counter()
        with pytest.raises(NormalizationDepthExceeded):
            cccc_normalize_subst(empty_target, term, Budget(remaining=3))


class TestDeepCorpus:
    """Terms only the iterative NbE engine can decide at all."""

    def test_deep_succ_tower_normalizes(self, empty):
        tower = cc.nat_literal(DEEP)
        assert cc.nat_value(cc.normalize(empty, tower)) == DEEP

    def test_deep_redex_chain_normalizes(self, empty):
        # let x1 = … let x10000 = 0 in x10000: ζ-chains this deep are out
        # of reach for the recursive substitution engine.
        term: cc.Term = cc.Var(f"x{DEEP - 1}")
        for index in range(DEEP - 1, -1, -1):
            bound = cc.Zero() if index == 0 else cc.Var(f"x{index - 1}")
            term = cc.Let(f"x{index}", bound, cc.Nat(), term)
        assert cc.normalize(empty, term) == cc.Zero()

    def test_deep_beta_chain_whnf(self, empty):
        # 10k pending β-redexes along the head spine.
        term: cc.Term = cc.Lam("x", cc.Nat(), cc.Var("x"))
        for _ in range(DEEP):
            term = cc.App(cc.Lam("f", cc.arrow(cc.Nat(), cc.Nat()), cc.Var("f")), term)
        result = cc.whnf(empty, term, Budget())
        assert isinstance(result, cc.Lam)

    def test_deep_neutral_spine_whnf_is_identity(self, empty):
        spine: cc.Term = cc.Var("f")
        for _ in range(DEEP):
            spine = cc.App(spine, cc.Var("y"))
        assert cc.whnf(empty, spine) is spine

    def test_deep_lam_nest_normalizes(self, empty):
        body: cc.Term = cc.Var("x0")
        for index in range(DEEP - 1, -1, -1):
            body = cc.Lam(f"x{index}", cc.Nat(), body)
        normal = cc.normalize(empty, body)
        assert cc.equivalent(empty, normal, body)

    def test_deep_cccc_pair_tower_normalizes(self, empty_target):
        annot = cccc.Sigma("t", cccc.Nat(), cccc.Nat())
        tower: cccc.Term = cccc.Zero()
        for _ in range(DEEP):
            tower = cccc.Pair(tower, cccc.Zero(), annot)
        normal = cccc.normalize(empty_target, tower)
        assert cccc.equivalent(empty_target, normal, tower)
