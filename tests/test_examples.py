"""Integration tests: every example script must run end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_example_count():
    """The deliverable requires at least three runnable examples."""
    assert len(EXAMPLES) >= 3
