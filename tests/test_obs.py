"""Tests for the observability layer (:mod:`repro.obs`).

Three contracts under test:

1. **Profiling reconciles and is backend-identical.**  The per-phase
   flamegraph totals are the same deterministic counters the result
   objects carry, and the machine and compiled backends attribute
   identically — per phase and per hoisted code label.
2. **Off means off.**  A build that never imports ``repro.obs`` produces
   byte-identical result documents and memo-store rows to one that does
   (but never activates a profile) — the hook is a slot check, not an
   import.
3. **Telemetry is out-of-band.**  Job traces ride the result meta (the
   deterministic payloads are untouched), the deterministic ``events``
   section carries no wall-clock fields, and a live metrics subscription
   delivers snapshots without perturbing batch results.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import subprocess
import sys

import pytest

from repro import api, obs
from repro.api import Session
from repro.obs.trace import deterministic_section, new_trace, validate_trace
from repro.service.dispatcher import Dispatcher, ElasticSupervisor, PoolStats
from repro.service.jobs import Job

IDENTITY = r"\ (A : Type) (x : A). x"
REDEX = r"(\ (x : Nat). succ x) 41"
TWICE = r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 0"

CORPUS = [REDEX, TWICE, r"\ (x : Nat). succ x"]


# --------------------------------------------------------------------------
# 1. The profiling collector
# --------------------------------------------------------------------------


class TestProfileReconciliation:
    def _profiled_run(self, program: str, engine: str | None):
        session = Session(name="prof-test")
        with obs.activate() as profile:
            result = session.run(program, engine=engine)
        return result, profile

    @pytest.mark.parametrize("program", CORPUS)
    def test_machine_vs_compiled_totals_identical(self, program):
        _, machine = self._profiled_run(program, engine=None)
        _, compiled = self._profiled_run(program, engine="compiled")
        assert machine.totals() == compiled.totals()

    def test_totals_reconcile_with_result_counters(self):
        result, profile = self._profiled_run(REDEX, engine=None)
        phases = profile.totals()["phases"]
        assert phases["typecheck"]["weight"] == result.check_steps
        assert phases["verify"]["weight"] == result.verify_steps
        assert phases["execute"]["weight"] == result.machine_steps
        assert phases["hoist"]["weight"] == result.code_count
        assert phases["execute"]["counters"]["code_lookups"] == sum(
            profile.totals()["labels"].values()
        )

    def test_speedscope_document_is_wellformed(self):
        _, profile = self._profiled_run(TWICE, engine=None)
        document = profile.to_speedscope(name="twice")
        assert document["$schema"].startswith("https://www.speedscope.app/")
        [evented] = document["profiles"]
        assert evented["type"] == "evented" and evented["unit"] == "none"
        opens = [e for e in evented["events"] if e["type"] == "O"]
        closes = [e for e in evented["events"] if e["type"] == "C"]
        assert len(opens) == len(closes)
        assert evented["endValue"] == sum(
            record["weight"] for record in profile.phases
        )
        # Deterministic weights: re-profiling renders the same bytes.
        _, again = self._profiled_run(TWICE, engine=None)
        assert json.dumps(document, sort_keys=True) == json.dumps(
            again.to_speedscope(name="twice"), sort_keys=True
        )

    def test_activation_nests_and_restores(self):
        assert obs.active() is None
        with obs.activate() as outer:
            assert obs.active() is outer
            with obs.activate() as inner:
                assert obs.active() is inner
            assert obs.active() is outer
        assert obs.active() is None

    def test_max_counters_aggregate_by_max(self):
        profile = obs.Profile()
        profile.phase("execute", weight=1, counters={"max_env_size": 3, "steps": 2})
        profile.phase("execute", weight=1, counters={"max_env_size": 2, "steps": 2})
        counters = profile.totals()["phases"]["execute"]["counters"]
        assert counters["max_env_size"] == 3  # high-water mark, not 5
        assert counters["steps"] == 4


# --------------------------------------------------------------------------
# 2. Profiler-off byte identity against a build that never imports obs
# --------------------------------------------------------------------------

_RUN_SCRIPT = """
import json, sqlite3, sys
{prelude}
from repro import api
specs = json.loads({specs!r})
report = api.execute_jobs(specs, memo_store={store!r})
{postlude}
rows = sqlite3.connect({store!r}).execute(
    "SELECT key, steps, result FROM memo ORDER BY key"
).fetchall()
digest = [[row[0].hex(), row[1], row[2].hex()] for row in rows]
print(json.dumps({{"report": report.canonical(), "memo": digest}}, sort_keys=True))
"""


class TestProfilerOffByteIdentity:
    def _run(self, tmp_path, name: str, prelude: str, postlude: str = "") -> bytes:
        specs = json.dumps(
            [
                {"id": "b0", "kind": "normalize", "program": REDEX},
                {"id": "b1", "kind": "run", "program": TWICE},
                {"id": "b2", "kind": "compile_py", "program": REDEX},
                {"id": "b3", "kind": "check", "program": "0 0"},
            ]
        )
        store = str(tmp_path / f"{name}.sqlite")
        script = _RUN_SCRIPT.format(
            prelude=prelude, specs=specs, store=store, postlude=postlude
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr.decode()
        return proc.stdout

    def test_results_and_store_identical_without_obs_import(self, tmp_path):
        # The baseline *is* the pre-observability build: it asserts
        # repro.obs was never imported by the default pipeline.
        baseline = self._run(
            tmp_path,
            "plain",
            prelude="",
            postlude="assert 'repro.obs' not in sys.modules, 'obs leaked into the default pipeline'",
        )
        with_obs = self._run(tmp_path, "obs", prelude="import repro.obs")
        assert baseline == with_obs


# --------------------------------------------------------------------------
# 3. PoolStats drift audit
# --------------------------------------------------------------------------


class TestPoolStatsDrift:
    def test_every_field_reaches_the_wire(self):
        field_names = {spec.name for spec in dataclasses.fields(PoolStats)}
        assert set(PoolStats().to_dict()) == field_names

    def test_sentinel_round_trip(self):
        sentinels = {}
        kwargs = {}
        for index, spec in enumerate(dataclasses.fields(PoolStats)):
            if spec.type in ("int", int):
                kwargs[spec.name] = sentinels[spec.name] = 1000 + index
        document = PoolStats(**kwargs).to_dict()
        for name, value in sentinels.items():
            assert document[name] == value, f"{name} dropped or mangled"

    def test_slot_maps_are_string_keyed_copies(self):
        stats = PoolStats(
            jobs_per_slot={1: 4, 0: 2},
            slots={"0": {"alive": True}},
            cache_hits={"kernel.judgments": 3},
        )
        document = stats.to_dict()
        assert document["jobs_per_slot"] == {"0": 2, "1": 4}
        document["cache_hits"]["kernel.judgments"] = 99
        assert stats.cache_hits["kernel.judgments"] == 3  # copied, not aliased


# --------------------------------------------------------------------------
# 4. Job tracing
# --------------------------------------------------------------------------


def _traced(specs: list[dict]) -> list[dict]:
    return [{**spec, "trace": True} for spec in specs]


_TRACE_SPECS = [
    {"id": "t0", "kind": "normalize", "program": REDEX},
    {"id": "t1", "kind": "run", "program": TWICE},
    {"id": "t2", "kind": "check", "program": "0 0"},
]


class TestTrace:
    def test_wire_round_trip(self):
        job = Job.from_dict({"id": "x", "kind": "parse", "program": REDEX, "trace": True})
        assert job.trace is True
        assert job.to_dict()["trace"] is True
        assert "trace" not in Job(kind="parse", program=REDEX).to_dict()

    def test_solo_trace_rides_meta_only(self):
        plain = api.execute_jobs(_TRACE_SPECS)
        traced = api.execute_jobs(_traced(_TRACE_SPECS))
        assert traced.canonical() == plain.canonical()
        for result in traced.results:
            trace = result.meta["trace"]
            validate_trace(trace)
            kinds = [event["ev"] for event in trace["events"]]
            assert kinds == ["execute", "complete"]
            assert any(entry["ev"] == "memo" for entry in trace["timeline"])
        for result in plain.results:
            assert "trace" not in result.meta
            assert deterministic_section(result) is None

    def test_pooled_trace_adds_submit_and_attempts(self):
        report = api.execute_jobs(_traced(_TRACE_SPECS), workers=1)
        plain = api.execute_jobs(_TRACE_SPECS)
        assert report.canonical() == plain.canonical()
        seqs = []
        for result in report.results:
            trace = result.meta["trace"]
            validate_trace(trace)
            events = trace["events"]
            assert events[0]["ev"] == "submit"
            seqs.append(events[0]["seq"])
            assert events[-1]["ev"] == "complete"
            assert events[-1]["attempts"] == 1
            assert any(entry["ev"] == "dispatch" for entry in trace["timeline"])
        assert seqs == sorted(seqs)  # monotonic in submission order

    def test_validate_trace_rejects_leaks(self):
        validate_trace(new_trace())
        with pytest.raises(ValueError, match="unknown trace sections"):
            validate_trace({"events": [], "timeline": [], "extra": []})
        with pytest.raises(ValueError, match="non-deterministic"):
            validate_trace({"events": [{"ev": "dispatch", "slot": 1}]})
        with pytest.raises(ValueError, match="wall-clock"):
            validate_trace({"events": [{"ev": "complete", "ok": True, "at": 1.0}]})
        with pytest.raises(ValueError, match="timeline"):
            validate_trace({"timeline": [{"ev": "submit", "seq": 0}]})


# --------------------------------------------------------------------------
# 5. Live telemetry: supervisor signals and the metrics stream
# --------------------------------------------------------------------------


class TestSupervisorSignals:
    def test_signal_document_shape(self):
        pool = Dispatcher(workers=1)
        try:
            supervisor = ElasticSupervisor(pool, min_workers=1, max_workers=2)
            signals = supervisor.signals()
            assert {
                "depth",
                "active",
                "completion_rate",
                "memo_hit_rate",
                "high_watermark",
                "low_watermark",
                "min_workers",
                "max_workers",
                "scale_ups",
                "scale_downs",
                "stalled_ticks",
            } <= set(signals)
            assert signals["memo_hit_rate"] is None
            json.dumps(signals)  # NDJSON-able
        finally:
            pool.shutdown()

    def test_memo_hit_rate_sums_tier_counters(self):
        rate = ElasticSupervisor._memo_hit_rate(
            {"persist_hits": 3, "persist_misses": 1, "artifact_hits": 2, "breakers_open": 0}
        )
        assert rate == pytest.approx(5 / 6)
        assert ElasticSupervisor._memo_hit_rate(None) is None
        assert ElasticSupervisor._memo_hit_rate({"breakers_open": 0}) is None


class TestWatchStats:
    def test_metrics_stream_during_live_batch(self):
        from repro.service import ServiceClient, serve_background

        jobs = [{"id": f"w{i}", "kind": "normalize", "program": REDEX} for i in range(4)]
        jobs += [{"id": f"s{i}", "kind": "sleep", "seconds": 0.08} for i in range(4)]
        solo = api.execute_jobs(jobs)
        seen = []
        with serve_background(min_workers=1, max_workers=2) as server:
            with ServiceClient(server.host, server.port) as client:
                client.watch_stats(interval=0.05, callback=seen.append)
                documents = client.run_batch(jobs)
                client.unwatch_stats()
        stripped = [{k: v for k, v in doc.items() if k != "meta"} for doc in documents]
        assert stripped == solo.canonical()
        assert len(client.metrics) >= 2, "expected at least two snapshots mid-batch"
        assert seen == client.metrics
        for snapshot in client.metrics:
            assert snapshot["op"] == "metrics"
            assert "pool" in snapshot and "endpoint" in snapshot
            assert "supervisor" in snapshot  # elastic pool publishes signals
            assert "queues" in snapshot
        summary = obs.summarize_snapshot(client.metrics[-1])
        assert "workers" in summary and "pending" in summary

    def test_summarize_snapshot_minimal(self):
        line = obs.summarize_snapshot({"pool": {"active": 2, "pending": 1}})
        assert line.startswith("workers 2")


# --------------------------------------------------------------------------
# 6. store stat: artifact table reporting
# --------------------------------------------------------------------------


class TestStoreStatArtifacts:
    def test_reports_bytes_and_orphans(self, tmp_path):
        from repro.wire.persist import _seal, store_stat

        store = tmp_path / "memo.sqlite"
        session = Session(name="store-test")
        session.attach_memo_store(str(store))
        session.run(REDEX, engine="compiled")
        session.detach_memo_store()

        report = store_stat(str(store))
        assert report["artifact_valid"] >= 1
        assert report["artifact_bytes"] > 0
        assert report["artifact_orphaned"] == 0
        assert report["memo_bytes"] >= 0

        # A validly-sealed row that is not an RPYC artifact is an orphan.
        bogus_key, bogus_blob = b"orphan-key", b"NOPE not an artifact"
        conn = sqlite3.connect(str(store))
        conn.execute(
            "INSERT INTO artifact (key, steps, result, seal) VALUES (?, ?, ?, ?)",
            (bogus_key, 0, bogus_blob, _seal(bogus_key, 0, bogus_blob)),
        )
        conn.commit()
        conn.close()
        report = store_stat(str(store))
        assert report["artifact_orphaned"] == 1
        assert report["artifact_invalid"] == 0  # sealed fine; orphaned is separate


# --------------------------------------------------------------------------
# 7. CLI surfaces
# --------------------------------------------------------------------------


class TestCLI:
    def test_profile_emits_reconciling_speedscope(self, tmp_path, capsys):
        from repro.__main__ import main

        out_machine = tmp_path / "machine.json"
        out_py = tmp_path / "py.json"
        assert main(["profile", "-e", REDEX, "-o", str(out_machine)]) == 0
        assert main(["profile", "-e", REDEX, "--target", "py", "-o", str(out_py)]) == 0
        capsys.readouterr()
        machine = json.loads(out_machine.read_text())
        compiled = json.loads(out_py.read_text())
        assert machine["totals"] == compiled["totals"]
        assert machine["profiles"][0]["events"]

    def test_profile_stdout_is_json(self, capsys):
        from repro.__main__ import main

        assert main(["profile", "-e", REDEX]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["exporter"] == "repro-obs"

    def test_batch_profile_requires_solo(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "batch.json"
        assert (
            main(["batch", "--gen-seed", "3", "--workers", "2", "--profile", str(out)])
            == 1
        )
        assert "solo" in capsys.readouterr().err

    def test_batch_profile_solo(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "batch.json"
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            "\n".join(
                json.dumps(spec)
                for spec in [
                    {"id": "p0", "kind": "run", "program": REDEX},
                    {"id": "p1", "kind": "compile_py", "program": REDEX},
                ]
            )
        )
        assert main(["batch", str(jobs), "--profile", str(out)]) == 0
        capsys.readouterr()
        document = json.loads(out.read_text())
        assert document["totals"]["phases"]["execute"]["weight"] > 0
