"""Tests for the dependent free-variable metafunction FV (paper Figure 10)."""

import pytest

from repro import cc
from repro.closconv.fv import dependent_free_vars
from repro.common.errors import TranslationError
from repro.surface import parse_term


def _names(bindings):
    return [binding.name for binding in bindings]


class TestBasics:
    def test_closed_term(self, empty):
        assert dependent_free_vars(empty, parse_term(r"\ (x : Nat). x")) == []

    def test_single_free_var(self, empty):
        ctx = empty.extend("y", cc.Nat())
        assert _names(dependent_free_vars(ctx, cc.Var("y"))) == ["y"]

    def test_bound_vars_excluded(self, empty):
        ctx = empty.extend("y", cc.Nat())
        term = parse_term(r"\ (y : Nat). y")
        assert dependent_free_vars(ctx, term) == []

    def test_multiple_terms_unioned(self, empty):
        ctx = empty.extend("a", cc.Nat()).extend("b", cc.Bool())
        assert _names(dependent_free_vars(ctx, cc.Var("a"), cc.Var("b"))) == ["a", "b"]

    def test_unbound_raises(self, empty):
        with pytest.raises(TranslationError, match="ghost"):
            dependent_free_vars(empty, cc.Var("ghost"))


class TestDependencyClosure:
    def test_type_dependency_pulled_in(self, empty):
        # x : A where A : ⋆ — using x must also capture A.
        ctx = empty.extend("A", cc.Star()).extend("x", cc.Var("A"))
        assert _names(dependent_free_vars(ctx, cc.Var("x"))) == ["A", "x"]

    def test_transitive_dependencies(self, empty):
        # h : P x, P : A → ⋆, x : A, A : ⋆ — capture h drags all four.
        ctx = (
            empty.extend("A", cc.Star())
            .extend("P", cc.arrow(cc.Var("A"), cc.Star()))
            .extend("x", cc.Var("A"))
            .extend("h", cc.App(cc.Var("P"), cc.Var("x")))
        )
        assert _names(dependent_free_vars(ctx, cc.Var("h"))) == ["A", "P", "x", "h"]

    def test_type_only_occurrence(self, empty):
        # The paper's point: FV must look at the *type* too.  Here the term
        # is just `f y`, but f's type mentions C which must be captured.
        ctx = (
            empty.extend("C", cc.Star())
            .extend("f", cc.arrow(cc.Nat(), cc.Var("C")))
            .extend("y", cc.Nat())
        )
        term = cc.App(cc.Var("f"), cc.Var("y"))
        term_type = cc.infer(ctx, term)
        names = _names(dependent_free_vars(ctx, term, term_type))
        assert names == ["C", "f", "y"]

    def test_result_is_telescope_ordered(self, empty):
        ctx = (
            empty.extend("A", cc.Star())
            .extend("B", cc.Star())
            .extend("g", cc.arrow(cc.Var("B"), cc.Var("A")))
        )
        # Mention g first, then B: order must still follow Γ.
        names = _names(dependent_free_vars(ctx, cc.Var("g"), cc.Var("B")))
        assert names == ["A", "B", "g"]

    def test_telescope_self_contained(self, empty):
        """Every type in the result only mentions earlier result entries."""
        ctx = (
            empty.extend("A", cc.Star())
            .extend("P", cc.arrow(cc.Var("A"), cc.Star()))
            .extend("x", cc.Var("A"))
            .extend("h", cc.App(cc.Var("P"), cc.Var("x")))
            .extend("unrelated", cc.Bool())
        )
        bindings = dependent_free_vars(ctx, cc.Var("h"))
        seen: set[str] = set()
        for binding in bindings:
            assert cc.free_vars(binding.type_) <= seen
            seen.add(binding.name)

    def test_irrelevant_entries_not_captured(self, empty):
        ctx = empty.extend("junk", cc.Nat()).extend("y", cc.Nat())
        assert _names(dependent_free_vars(ctx, cc.Var("y"))) == ["y"]

    def test_definition_entries_captured_as_assumptions(self, empty):
        ctx = empty.define("two", cc.nat_literal(2), cc.Nat())
        [binding] = dependent_free_vars(ctx, cc.Var("two"))
        assert binding.name == "two"
        assert binding.type_ == cc.Nat()

    def test_deterministic(self, empty):
        ctx = (
            empty.extend("A", cc.Star())
            .extend("x", cc.Var("A"))
            .extend("y", cc.Var("A"))
            .extend("z", cc.Var("A"))
        )
        term = cc.make_app(cc.Var("z"), cc.Var("x"), cc.Var("y"))
        first = _names(dependent_free_vars(ctx, term))
        for _ in range(5):
            assert _names(dependent_free_vars(ctx, term)) == first
