"""Property-based tests (hypothesis) over the paper's metatheory.

Hypothesis drives the type-directed generator through integer seeds, so
failures shrink to the smallest failing seed.  Each property is one of the
paper's lemmas/theorems quantified over arbitrary well-typed programs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import cc, cccc
from repro.closconv import compile_term, translate, translate_context
from repro.gen import GenConfig, TermGenerator
from repro.model import decompile
from repro.properties import (
    check_preservation_of_reduction,
    check_roundtrip,
    check_subject_reduction,
    check_type_preservation,
)

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _generate(seed: int):
    triple = TermGenerator(seed).well_typed_term()
    if triple is None:
        pytest.skip("generator produced no term for this seed")
    return triple


class TestKernelProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_normalization_is_idempotent(self, seed):
        ctx, term, _ = _generate(seed)
        normal = cc.normalize(ctx, term)
        assert cc.alpha_equal(cc.normalize(ctx, normal), normal)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_subject_reduction(self, seed):
        ctx, term, _ = _generate(seed)
        assert check_subject_reduction(ctx, term)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_equivalence_respects_reduction(self, seed):
        ctx, term, _ = _generate(seed)
        for reduct in cc.reducts(ctx, term)[:3]:
            assert cc.equivalent(ctx, term, reduct)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_substitution_respects_typing(self, seed):
        """Γ, x:A ⊢ e and Γ ⊢ v:A imply Γ ⊢ e[v/x] (substitution lemma)."""
        gen = TermGenerator(seed)
        ctx = gen.context(2)
        var_type = gen.type_(ctx, 1)
        value = gen.term(ctx, var_type, 2)
        if value is None:
            pytest.skip("no value")
        extended = ctx.extend("hole", var_type)
        body = gen.any_term(extended, 3)
        if body is None:
            pytest.skip("no body")
        body_type = cc.infer(extended, body)
        substituted = cc.subst1(body, "hole", value)
        inferred = cc.infer(ctx, substituted)
        assert cc.equivalent(ctx, inferred, cc.subst1(body_type, "hole", value))


class TestCompilerProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_type_preservation(self, seed):
        ctx, term, _ = _generate(seed)
        assert check_type_preservation(ctx, term)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_reduction_preservation(self, seed):
        ctx, term, _ = _generate(seed)
        assert check_preservation_of_reduction(ctx, term)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_roundtrip_conjecture(self, seed):
        ctx, term, _ = _generate(seed)
        assert check_roundtrip(ctx, term)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_translation_preserves_free_variables(self, seed):
        """fv(e⁺) ⊆ FV-closure(e) — no variable appears from nowhere."""
        ctx, term, _ = _generate(seed)
        from repro.closconv.fv import dependent_free_vars

        term_type = cc.infer(ctx, term)
        closure_names = {b.name for b in dependent_free_vars(ctx, term, term_type)}
        target = translate(ctx, term)
        assert cccc.free_vars(target) <= closure_names

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_compiled_code_blocks_all_closed(self, seed):
        """Every CodeLam anywhere in compiler output is closed — the
        property [Code] enforces, checked syntactically over the output."""
        ctx, term, _ = _generate(seed)
        target = translate(ctx, term)
        for sub in cccc.subterms(target):
            if isinstance(sub, cccc.CodeLam):
                assert cccc.free_vars(sub) == set()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_model_type_preservation_of_compiled(self, seed):
        """Lemma 4.6 on the image of the compiler."""
        ctx, term, _ = _generate(seed)
        result = compile_term(ctx, term, verify=False)
        from repro.model import decompile_context

        cc_ctx = decompile_context(result.target_context)
        image = decompile(result.target)
        image_type = cc.infer(cc_ctx, image)
        assert cc.equivalent(cc_ctx, image_type, decompile(result.target_type))


class TestGroundEvaluation:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SETTINGS
    def test_closed_nat_programs_agree_end_to_end(self, seed):
        """Corollary 5.8 + machine, on random closed Nat programs."""
        gen = TermGenerator(seed, GenConfig(context_size=0))
        empty = cc.Context.empty()
        term = gen.term(empty, cc.Nat(), 4)
        if term is None or cc.free_vars(term):
            pytest.skip("no closed Nat program")
        cc.check(empty, term, cc.Nat())
        expected = cc.nat_value(cc.normalize(empty, term))

        result = compile_term(empty, term, verify=False)
        target_value = cccc.normalize(cccc.Context.empty(), result.target)
        assert cccc.nat_value(target_value) == expected

        from repro.machine import hoist, machine_observation, run

        machine_value, _ = run(hoist(result.target))
        assert machine_observation(machine_value) == expected

        from repro.baseline import erase, uconvert, ueval

        assert ueval(uconvert(erase(term))) == expected
