"""Lemmas 5.2–5.4: preservation of reduction and coherence of ``⁺``.

* Lemma 5.2/5.3: if ``e ⊲ e′`` then the images are definitionally equal in
  CC-CC (the paper proves ``e⁺ ⊲* ≡ e′⁺``; ≡ of the images is the
  checkable consequence, and we additionally confirm the images share a
  normal form up to the closure η-rules).
* Lemma 5.4: ``e ≡ e′`` implies ``e⁺ ≡ e′⁺`` — checked on reduction
  chains, η-expansions, and random equivalent pairs.
"""

import pytest

from repro import cc, cccc
from repro.cc import prelude
from repro.closconv import translate, translate_context
from repro.gen import TermGenerator
from repro.properties import check_coherence, check_preservation_of_reduction
from repro.surface import parse_term
from tests.corpus import CORPUS, corpus_ids


class TestReductionPreservation:
    @pytest.mark.parametrize("name, ctx, term", CORPUS, ids=corpus_ids())
    def test_corpus_single_steps(self, name, ctx, term):
        assert check_preservation_of_reduction(ctx, term)

    def test_beta_step_explicit(self, empty, empty_target):
        source = parse_term(r"(\ (x : Nat). succ x) 4")
        stepped = cc.nat_literal(5)
        assert cccc.equivalent(
            empty_target, translate(empty, source), translate(empty, stepped)
        )

    def test_delta_step_explicit(self, empty):
        ctx = empty.define("two", cc.nat_literal(2), cc.Nat())
        target_ctx = translate_context(ctx)
        assert cccc.equivalent(
            target_ctx, translate(ctx, cc.Var("two")), translate(ctx, cc.nat_literal(2))
        )

    def test_multi_step_chain(self, empty, empty_target):
        """Follow a full reduction sequence, checking each link's image."""
        term = parse_term(
            r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5"
        )
        current = term
        steps = 0
        while True:
            reducts = cc.reducts(empty, current)
            if not reducts:
                break
            following = reducts[0]
            assert cccc.equivalent(
                empty_target, translate(empty, current), translate(empty, following)
            )
            current = following
            steps += 1
            if steps > 30:
                pytest.fail("reduction did not terminate")
        assert cc.nat_value(current) == 7

    @pytest.mark.parametrize("seed", range(25))
    def test_random_terms(self, seed):
        gen = TermGenerator(seed + 31337)
        triple = gen.well_typed_term()
        if triple is None:
            pytest.skip("no term generated")
        ctx, term, _ = triple
        assert check_preservation_of_reduction(ctx, term)


class TestCoherence:
    @pytest.mark.parametrize(
        "left_src, right_src",
        [
            (r"(\ (x : Nat). succ x) 1", "2"),
            (r"let y = 1 : Nat in succ y", "2"),
            (r"fst (<3, true> as (exists (x : Nat), Bool))", "3"),
            (r"if true then 1 else 0", "1"),
            (
                r"natelim(\ (k : Nat). Nat, 0, \ (k : Nat) (ih : Nat). succ ih, 2)",
                "2",
            ),
        ],
    )
    def test_reduction_equalities(self, empty, left_src, right_src):
        assert check_coherence(empty, parse_term(left_src), parse_term(right_src))

    def test_eta_equivalence_preserved(self, empty):
        """The proof's interesting case: source η becomes closure η."""
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        expanded = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
        assert cc.equivalent(ctx, expanded, cc.Var("f"))  # η in CC
        assert check_coherence(ctx, expanded, cc.Var("f"))

    def test_eta_under_capture(self, empty):
        ctx = empty.extend("A", cc.Star()).extend("f", cc.arrow(cc.Var("A"), cc.Var("A")))
        expanded = cc.Lam("x", cc.Var("A"), cc.App(cc.Var("f"), cc.Var("x")))
        assert check_coherence(ctx, expanded, cc.Var("f"))

    def test_church_equality(self, empty):
        left = cc.make_app(prelude.church_add, prelude.church_nat(2), prelude.church_nat(2))
        right = prelude.church_nat(4)
        assert check_coherence(empty, left, right)

    def test_vacuous_on_inequivalent(self, empty):
        # Not equivalent in CC ⇒ the lemma says nothing; checker returns True.
        assert check_coherence(empty, cc.nat_literal(1), cc.nat_literal(2))

    def test_images_of_inequivalent_stay_inequivalent(self, empty, empty_target):
        """Soundness direction (not a paper lemma, but a sanity check):
        the translation should not *conflate* observably different terms."""
        left = translate(empty, cc.nat_literal(1))
        right = translate(empty, cc.nat_literal(2))
        assert not cccc.equivalent(empty_target, left, right)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_reduct_pairs(self, seed):
        gen = TermGenerator(seed + 777)
        triple = gen.well_typed_term()
        if triple is None:
            pytest.skip("no term generated")
        ctx, term, _ = triple
        for reduct in cc.reducts(ctx, term)[:3]:
            assert check_coherence(ctx, term, reduct)
