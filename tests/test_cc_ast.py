"""Unit tests for the CC abstract syntax (paper Figure 1)."""

import pytest

from repro import cc


class TestConstructors:
    def test_nodes_are_immutable(self):
        var = cc.Var("x")
        with pytest.raises(AttributeError):
            var.name = "y"

    def test_structural_equality_is_syntactic(self):
        assert cc.Lam("x", cc.Nat(), cc.Var("x")) == cc.Lam("x", cc.Nat(), cc.Var("x"))
        # different bound name => different syntax (α-equal but not ==)
        assert cc.Lam("x", cc.Nat(), cc.Var("x")) != cc.Lam("y", cc.Nat(), cc.Var("y"))

    def test_terms_are_hashable(self):
        seen = {cc.Star(), cc.Box(), cc.Var("x"), cc.nat_literal(2)}
        assert cc.Star() in seen
        assert cc.nat_literal(2) in seen
        assert cc.nat_literal(3) not in seen

    def test_str_pretty_prints(self):
        assert str(cc.Star()) == "⋆"
        assert "λ" in str(cc.Lam("x", cc.Nat(), cc.Var("x")))


class TestHelpers:
    def test_arrow_is_nondependent_pi(self):
        arrow = cc.arrow(cc.Nat(), cc.Bool())
        assert isinstance(arrow, cc.Pi)
        assert arrow.name == "_"
        assert arrow.domain == cc.Nat()
        assert arrow.codomain == cc.Bool()

    def test_make_app_left_nests(self):
        term = cc.make_app(cc.Var("f"), cc.Var("a"), cc.Var("b"))
        assert term == cc.App(cc.App(cc.Var("f"), cc.Var("a")), cc.Var("b"))

    def test_make_app_no_args(self):
        assert cc.make_app(cc.Var("f")) == cc.Var("f")

    def test_app_spine_inverts_make_app(self):
        head, args = cc.app_spine(cc.make_app(cc.Var("f"), cc.Var("a"), cc.Var("b")))
        assert head == cc.Var("f")
        assert args == [cc.Var("a"), cc.Var("b")]

    def test_app_spine_of_atom(self):
        head, args = cc.app_spine(cc.Var("f"))
        assert head == cc.Var("f")
        assert args == []

    @pytest.mark.parametrize("value", [0, 1, 2, 17])
    def test_nat_literal_roundtrip(self, value):
        assert cc.nat_value(cc.nat_literal(value)) == value

    def test_nat_literal_rejects_negative(self):
        with pytest.raises(ValueError):
            cc.nat_literal(-1)

    def test_nat_value_of_non_literal(self):
        assert cc.nat_value(cc.Var("x")) is None
        assert cc.nat_value(cc.Succ(cc.Var("x"))) is None


class TestFreeVars:
    def test_var_is_free(self):
        assert cc.free_vars(cc.Var("x")) == {"x"}

    def test_lam_binds(self):
        assert cc.free_vars(cc.Lam("x", cc.Nat(), cc.Var("x"))) == set()

    def test_lam_domain_is_outside_binder(self):
        term = cc.Lam("x", cc.Var("x"), cc.Var("x"))
        assert cc.free_vars(term) == {"x"}  # the domain's x is free

    def test_pi_binds_codomain_only(self):
        term = cc.Pi("x", cc.Var("A"), cc.Var("x"))
        assert cc.free_vars(term) == {"A"}

    def test_sigma_binds_second_only(self):
        term = cc.Sigma("x", cc.Var("A"), cc.App(cc.Var("P"), cc.Var("x")))
        assert cc.free_vars(term) == {"A", "P"}

    def test_let_binds_body_only(self):
        term = cc.Let("x", cc.Var("e"), cc.Var("T"), cc.Var("x"))
        assert cc.free_vars(term) == {"e", "T"}

    def test_let_body_other_vars_still_free(self):
        term = cc.Let("x", cc.Zero(), cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
        assert cc.free_vars(term) == {"f"}

    def test_nested_binders(self):
        term = cc.Lam("x", cc.Nat(), cc.Lam("y", cc.Nat(), cc.App(cc.Var("x"), cc.Var("z"))))
        assert cc.free_vars(term) == {"z"}

    def test_pair_annotation_counts(self):
        term = cc.Pair(cc.Zero(), cc.Zero(), cc.Var("S"))
        assert cc.free_vars(term) == {"S"}

    def test_natelim_all_components(self):
        term = cc.NatElim(cc.Var("P"), cc.Var("z"), cc.Var("s"), cc.Var("n"))
        assert cc.free_vars(term) == {"P", "z", "s", "n"}

    def test_ground_leaves_closed(self):
        for leaf in [cc.Star(), cc.Box(), cc.Bool(), cc.Nat(), cc.Zero(), cc.BoolLit(True)]:
            assert cc.free_vars(leaf) == set()


class TestTraversal:
    def test_subterms_preorder(self):
        term = cc.App(cc.Var("f"), cc.Var("a"))
        subs = list(cc.subterms(term))
        assert subs[0] == term
        assert cc.Var("f") in subs and cc.Var("a") in subs

    def test_term_size_counts_nodes(self):
        assert cc.term_size(cc.Var("x")) == 1
        assert cc.term_size(cc.App(cc.Var("f"), cc.Var("a"))) == 3
        assert cc.term_size(cc.nat_literal(3)) == 4  # succ succ succ zero

    def test_size_of_lambda(self):
        # λ x:Nat. x = Lam + Nat + Var
        assert cc.term_size(cc.Lam("x", cc.Nat(), cc.Var("x"))) == 3
