"""Tests for the untyped (type-erasing) closure-conversion baseline."""

import pytest

from repro import cc
from repro.baseline import erase, uconvert, ueval
from repro.baseline.untyped import (
    EvalStats,
    UApp,
    UClo,
    UCode,
    UConst,
    ULam,
    UNat,
    UVar,
)
from tests.corpus import CLOSED_GROUND_PROGRAMS, closed_ground_ids


class TestErasure:
    def test_lambda_loses_annotation(self):
        erased = erase(cc.Lam("x", cc.Nat(), cc.Var("x")))
        assert erased == ULam("x", UVar("x"))

    def test_types_become_constants(self):
        assert erase(cc.Nat()) == UConst("Nat")
        assert erase(cc.Star()) == UConst("Star")
        assert isinstance(erase(cc.Pi("x", cc.Nat(), cc.Nat())), UConst)

    def test_natelim_motive_dropped(self):
        from repro.baseline.untyped import UNatRec

        erased = erase(
            cc.NatElim(
                cc.Lam("n", cc.Nat(), cc.Nat()), cc.Zero(),
                cc.Lam("k", cc.Nat(), cc.Lam("ih", cc.Nat(), cc.Var("ih"))), cc.Zero(),
            )
        )
        assert isinstance(erased, UNatRec)

    def test_pair_annotation_dropped(self):
        from repro.baseline.untyped import UPair

        erased = erase(cc.Pair(cc.Zero(), cc.Zero(), cc.Sigma("x", cc.Nat(), cc.Nat())))
        assert isinstance(erased, UPair)


class TestConversion:
    def test_closed_lambda(self):
        converted = uconvert(ULam("x", UVar("x")))
        assert isinstance(converted, UClo)
        assert isinstance(converted.code, UCode)

    def test_captured_variable_in_tuple(self):
        converted = uconvert(ULam("x", UVar("y")))
        assert isinstance(converted, UClo)
        assert converted.env.items == (UVar("y"),)

    def test_nested_lambdas(self):
        converted = uconvert(ULam("x", ULam("y", UVar("x"))))
        assert isinstance(converted, UClo)


class TestEvaluation:
    @pytest.mark.parametrize(
        "name, term, expected", CLOSED_GROUND_PROGRAMS, ids=closed_ground_ids()
    )
    def test_direct_agrees_with_cc(self, empty, name, term, expected):
        assert ueval(erase(term)) == expected

    @pytest.mark.parametrize(
        "name, term, expected", CLOSED_GROUND_PROGRAMS, ids=closed_ground_ids()
    )
    def test_converted_agrees_with_direct(self, name, term, expected):
        erased = erase(term)
        assert ueval(uconvert(erased)) == ueval(erased) == expected

    def test_types_flow_as_constants(self):
        # (λ A. λ x. x) Nat 3 — the type argument is an inert constant.
        program = UApp(UApp(ULam("A", ULam("x", UVar("x"))), UConst("Nat")), UNat(3))
        assert ueval(program) == 3
        assert ueval(uconvert(program)) == 3

    def test_stats_counted(self):
        stats = EvalStats()
        ueval(uconvert(erase(cc.App(cc.Lam("x", cc.Nat(), cc.Var("x")), cc.Zero()))), stats)
        assert stats.closure_allocs >= 1
        assert stats.steps > 0

    def test_converted_code_runs_with_two_bindings(self):
        """Post-conversion closures don't capture ambient environments."""
        converted = uconvert(ULam("x", UVar("y")))
        # Evaluating the UClo captures only the tuple (y) — evaluating it in
        # an environment where y is bound works; the code itself is closed.
        from repro.baseline.untyped import ULet

        program = ULet("y", UNat(5), UApp(converted, UNat(0)))
        assert ueval(program) == 5
