"""Unit tests for the CC type system (paper Figures 3 and 4), rule by rule."""

import pytest

from repro import cc
from repro.cc import prelude
from repro.common.errors import TypeCheckError
from repro.surface import parse_term


class TestAxiomsAndVariables:
    def test_star_has_type_box(self, empty):
        assert cc.infer(empty, cc.Star()) == cc.Box()

    def test_box_has_no_type(self, empty):
        with pytest.raises(TypeCheckError):
            cc.infer(empty, cc.Box())

    def test_var_rule(self, empty):
        ctx = empty.extend("x", cc.Nat())
        assert cc.infer(ctx, cc.Var("x")) == cc.Nat()

    def test_unbound_var(self, empty):
        with pytest.raises(TypeCheckError, match="unbound"):
            cc.infer(empty, cc.Var("ghost"))

    def test_definition_var(self, empty):
        ctx = empty.define("two", cc.nat_literal(2), cc.Nat())
        assert cc.infer(ctx, cc.Var("two")) == cc.Nat()


class TestFunctions:
    def test_lam_rule(self, empty):
        term = cc.Lam("x", cc.Nat(), cc.Var("x"))
        assert cc.equivalent(empty, cc.infer(empty, term), cc.arrow(cc.Nat(), cc.Nat()))

    def test_polymorphic_identity_type(self, empty):
        inferred = cc.infer(empty, prelude.polymorphic_identity)
        assert cc.equivalent(empty, inferred, prelude.polymorphic_identity_type)

    def test_app_rule_substitutes(self, empty):
        # The paper's div example shape: applying replaces x in the codomain.
        f_type = cc.Pi("x", cc.Nat(), prelude.leibniz_eq(cc.Nat(), cc.Var("x"), cc.Var("x")))
        ctx = empty.extend("f", f_type)
        app = cc.App(cc.Var("f"), cc.nat_literal(2))
        expected = prelude.leibniz_eq(cc.Nat(), cc.nat_literal(2), cc.nat_literal(2))
        assert cc.equivalent(ctx, cc.infer(ctx, app), expected)

    def test_app_of_non_function(self, empty):
        with pytest.raises(TypeCheckError, match="non-Π"):
            cc.infer(empty, cc.App(cc.Zero(), cc.Zero()))

    def test_app_argument_mismatch(self, empty):
        term = cc.App(cc.Lam("x", cc.Nat(), cc.Var("x")), cc.BoolLit(True))
        with pytest.raises(TypeCheckError, match="mismatch"):
            cc.infer(empty, term)

    def test_lam_with_ill_formed_domain(self, empty):
        with pytest.raises(TypeCheckError):
            cc.infer(empty, cc.Lam("x", cc.Zero(), cc.Var("x")))  # 0 is not a type

    def test_dependent_application_through_conv(self, empty):
        # id ((λA:⋆.A) Nat) 3 — the argument type needs [Conv] to match.
        term = cc.make_app(
            prelude.polymorphic_identity,
            cc.App(cc.Lam("A", cc.Star(), cc.Var("A")), cc.Nat()),
            cc.nat_literal(3),
        )
        assert cc.equivalent(empty, cc.infer(empty, term), cc.Nat())


class TestUniverses:
    def test_prod_star_small(self, empty):
        assert cc.infer(empty, parse_term("Nat -> Nat")) == cc.Star()

    def test_prod_star_impredicative(self, empty):
        # Π A:⋆. A → A quantifies over ⋆ yet lives in ⋆ ([Prod-*]).
        assert cc.infer(empty, parse_term("forall (A : Type), A -> A")) == cc.Star()

    def test_prod_box(self, empty):
        # Nat → ⋆ is a type operator, in □ ([Prod-□]).
        assert cc.infer(empty, cc.Pi("_", cc.Nat(), cc.Star())) == cc.Box()

    def test_sig_star(self, empty):
        assert cc.infer(empty, parse_term("exists (x : Nat), Bool")) == cc.Star()

    def test_sig_box_no_impredicativity(self, empty):
        # Σ A:⋆. A must NOT be small — impredicative strong Σ is unsound
        # (paper Section 2, citing Girard/Coquand/Hook-Howe).
        sigma = cc.Sigma("A", cc.Star(), cc.Var("A"))
        assert cc.infer(empty, sigma) == cc.Box()

    def test_ground_types_are_small(self, empty):
        assert cc.infer(empty, cc.Nat()) == cc.Star()
        assert cc.infer(empty, cc.Bool()) == cc.Star()

    def test_infer_universe_rejects_terms(self, empty):
        with pytest.raises(TypeCheckError, match="expected a type"):
            cc.infer_universe(empty, cc.Zero())


class TestLet:
    def test_let_rule(self, empty):
        term = parse_term(r"let y = 1 : Nat in succ y")
        assert cc.equivalent(empty, cc.infer(empty, term), cc.Nat())

    def test_let_annotation_checked(self, empty):
        term = cc.Let("y", cc.BoolLit(True), cc.Nat(), cc.Var("y"))
        with pytest.raises(TypeCheckError):
            cc.infer(empty, term)

    def test_let_type_substitutes_definition(self, empty):
        # let T = Nat : Type in λ x:T. x  gets type (Π x:T. T)[Nat/T].
        term = parse_term(r"let T = Nat : Type in \ (x : T). x")
        assert cc.equivalent(empty, cc.infer(empty, term), cc.arrow(cc.Nat(), cc.Nat()))

    def test_let_definition_usable_in_types(self, empty):
        # The definition is available for δ during checking the body.
        term = parse_term(
            r"let T = Nat : Type in (\ (x : T). x) 0"
        )
        assert cc.equivalent(empty, cc.infer(empty, term), cc.Nat())


class TestPairs:
    def test_pair_rule(self, empty):
        term = parse_term(r"<3, true> as (exists (x : Nat), Bool)")
        assert cc.infer(empty, term) == parse_term("exists (x : Nat), Bool")

    def test_pair_dependent_second_component(self, empty):
        # ⟨2, refl⟩ : Σ x:Nat. Eq Nat x 2 — snd checked at B[fst/x].
        annot = cc.Sigma("x", cc.Nat(), prelude.leibniz_eq(cc.Nat(), cc.Var("x"), cc.nat_literal(2)))
        pair = cc.Pair(cc.nat_literal(2), prelude.leibniz_refl(cc.Nat(), cc.nat_literal(2)), annot)
        assert cc.equivalent(empty, cc.infer(empty, pair), annot)

    def test_pair_wrong_witness_rejected(self, empty):
        annot = cc.Sigma("x", cc.Nat(), prelude.leibniz_eq(cc.Nat(), cc.Var("x"), cc.nat_literal(2)))
        bad = cc.Pair(cc.nat_literal(3), prelude.leibniz_refl(cc.Nat(), cc.nat_literal(3)), annot)
        with pytest.raises(TypeCheckError):
            cc.infer(empty, bad)

    def test_pair_needs_sigma_annotation(self, empty):
        with pytest.raises(TypeCheckError, match="not a Σ"):
            cc.infer(empty, cc.Pair(cc.Zero(), cc.Zero(), cc.Nat()))

    def test_fst_snd_rules(self, empty):
        pair = parse_term(r"<3, true> as (exists (x : Nat), Bool)")
        assert cc.infer(empty, cc.Fst(pair)) == cc.Nat()
        assert cc.equivalent(empty, cc.infer(empty, cc.Snd(pair)), cc.Bool())

    def test_snd_substitutes_fst(self, empty):
        # For p : Σ x:Nat. Eq Nat x x, snd p : Eq Nat (fst p) (fst p).
        sigma = cc.Sigma("x", cc.Nat(), prelude.leibniz_eq(cc.Nat(), cc.Var("x"), cc.Var("x")))
        ctx = empty.extend("p", sigma)
        snd_type = cc.infer(ctx, cc.Snd(cc.Var("p")))
        expected = prelude.leibniz_eq(cc.Nat(), cc.Fst(cc.Var("p")), cc.Fst(cc.Var("p")))
        assert cc.equivalent(ctx, snd_type, expected)

    def test_projection_of_non_pair_type(self, empty):
        with pytest.raises(TypeCheckError, match="non-Σ"):
            cc.infer(empty, cc.Fst(cc.Zero()))


class TestConv:
    def test_conv_resolves_redex_in_type(self, empty):
        # e : (λA:⋆.A) Nat should check at Nat.
        redex_type = cc.App(cc.Lam("A", cc.Star(), cc.Var("A")), cc.Nat())
        cc.check(empty, cc.Zero(), redex_type)

    def test_conv_paper_example(self, empty):
        # The paper's Σ x:Nat. x = 1+1 versus x = 2 example, with our add.
        two_computed = cc.make_app(prelude.nat_add, cc.nat_literal(1), cc.nat_literal(1))
        annot_computed = cc.Sigma(
            "x", cc.Nat(), prelude.leibniz_eq(cc.Nat(), cc.Var("x"), two_computed)
        )
        annot_literal = cc.Sigma(
            "x", cc.Nat(), prelude.leibniz_eq(cc.Nat(), cc.Var("x"), cc.nat_literal(2))
        )
        pair = cc.Pair(
            cc.nat_literal(2), prelude.leibniz_refl(cc.Nat(), cc.nat_literal(2)), annot_computed
        )
        cc.check(empty, pair, annot_literal)

    def test_check_rejects_wrong_type(self, empty):
        with pytest.raises(TypeCheckError, match="mismatch"):
            cc.check(empty, cc.Zero(), cc.Bool())


class TestGroundTypes:
    def test_literals(self, empty):
        assert cc.infer(empty, cc.BoolLit(True)) == cc.Bool()
        assert cc.infer(empty, cc.Zero()) == cc.Nat()
        assert cc.infer(empty, cc.nat_literal(3)) == cc.Nat()

    def test_succ_requires_nat(self, empty):
        with pytest.raises(TypeCheckError):
            cc.infer(empty, cc.Succ(cc.BoolLit(True)))

    def test_if_rule(self, empty):
        term = parse_term(r"if true then 1 else 0")
        assert cc.infer(empty, term) == cc.Nat()

    def test_if_branches_must_agree(self, empty):
        with pytest.raises(TypeCheckError):
            cc.infer(empty, parse_term(r"if true then 1 else false"))

    def test_if_condition_must_be_bool(self, empty):
        with pytest.raises(TypeCheckError):
            cc.infer(empty, parse_term(r"if 0 then 1 else 2"))

    def test_if_at_type_level(self, empty):
        ctx = empty.extend("b", cc.Bool())
        term = cc.If(cc.Var("b"), cc.Nat(), cc.Bool())
        assert cc.infer(ctx, term) == cc.Star()

    def test_natelim_type(self, empty):
        term = parse_term(
            r"natelim(\ (k : Nat). Nat, 0, \ (k : Nat) (ih : Nat). succ ih, 3)"
        )
        assert cc.equivalent(empty, cc.infer(empty, term), cc.Nat())

    def test_natelim_dependent_motive(self, empty):
        # motive returning different types per index: P = λ n. if iszero n then Bool else Nat
        motive = cc.Lam(
            "n",
            cc.Nat(),
            cc.If(cc.App(prelude.nat_is_zero, cc.Var("n")), cc.Bool(), cc.Nat()),
        )
        step = cc.Lam(
            "k",
            cc.Nat(),
            cc.Lam("ih", cc.App(motive, cc.Var("k")), cc.nat_literal(7)),
        )
        term = cc.NatElim(motive, cc.BoolLit(True), step, cc.Zero())
        assert cc.equivalent(empty, cc.infer(empty, term), cc.Bool())

    def test_natelim_bad_motive(self, empty):
        with pytest.raises(TypeCheckError, match="motive"):
            cc.infer(empty, cc.NatElim(cc.Zero(), cc.Zero(), cc.Zero(), cc.Zero()))

    def test_natelim_bad_base(self, empty):
        motive = cc.Lam("n", cc.Nat(), cc.Nat())
        step = cc.Lam("k", cc.Nat(), cc.Lam("ih", cc.Nat(), cc.Var("ih")))
        with pytest.raises(TypeCheckError):
            cc.infer(empty, cc.NatElim(motive, cc.BoolLit(True), step, cc.Zero()))

    def test_natelim_bad_step(self, empty):
        motive = cc.Lam("n", cc.Nat(), cc.Nat())
        with pytest.raises(TypeCheckError):
            cc.infer(empty, cc.NatElim(motive, cc.Zero(), cc.Zero(), cc.Zero()))

    def test_natelim_target_must_be_nat(self, empty):
        motive = cc.Lam("n", cc.Nat(), cc.Nat())
        step = cc.Lam("k", cc.Nat(), cc.Lam("ih", cc.Nat(), cc.Var("ih")))
        with pytest.raises(TypeCheckError):
            cc.infer(empty, cc.NatElim(motive, cc.Zero(), step, cc.BoolLit(True)))


class TestContexts:
    def test_empty_context_well_formed(self, empty):
        cc.check_context(empty)

    def test_assumption_context(self, empty):
        cc.check_context(empty.extend("A", cc.Star()).extend("x", cc.Var("A")))

    def test_definition_context(self, empty):
        cc.check_context(empty.define("two", cc.nat_literal(2), cc.Nat()))

    def test_bad_type_rejected(self, empty):
        with pytest.raises(TypeCheckError):
            cc.check_context(empty.extend("x", cc.Zero()))

    def test_bad_definition_rejected(self, empty):
        with pytest.raises(TypeCheckError):
            cc.check_context(empty.define("x", cc.BoolLit(True), cc.Nat()))

    def test_dependent_context(self, empty):
        ctx = (
            empty.extend("A", cc.Star())
            .extend("P", cc.arrow(cc.Var("A"), cc.Star()))
            .extend("x", cc.Var("A"))
            .extend("h", cc.App(cc.Var("P"), cc.Var("x")))
        )
        cc.check_context(ctx)

    def test_well_typed_predicate(self, empty):
        assert cc.well_typed(empty, cc.Zero())
        assert not cc.well_typed(empty, cc.Var("ghost"))


class TestCorpusWellTyped:
    def test_entire_corpus_checks(self):
        from tests.corpus import CORPUS

        for name, ctx, term in CORPUS:
            cc.check_context(ctx)
            cc.infer(ctx, term)  # must not raise
