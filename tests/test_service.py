"""Tests for the sharded normalization service (``repro.service``).

The load-bearing contract: the deterministic half of every job result
(``JobResult.canonical()``) is **byte-identical** no matter where the job
ran — in-process, on any worker, after any crash/requeue, behind any shard
assignment.  Term renderings are α-canonical and step counts replay from
the fuel caches, so payloads cannot observe session history.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import api
from repro.gen.jobs import build_stream, close_over, job_corpus
from repro.service import Dispatcher, Job, JobResult, execute_job
from repro.service.jobs import JOB_KINDS

IDENTITY = r"\ (A : Type) (x : A). x"
REDEX = r"(\ (x : Nat). succ x) 41"
ILL_TYPED = "0 0"


def _mixed_jobs() -> list[dict]:
    """A small stream covering every deterministic kind, errors included."""
    return [
        {"id": "m0", "kind": "parse", "program": IDENTITY},
        {"id": "m1", "kind": "check", "program": IDENTITY, "key": "a"},
        {"id": "m2", "kind": "normalize", "program": REDEX, "key": "b"},
        {"id": "m3", "kind": "normalize", "program": REDEX, "engine": "subst"},
        {"id": "m4", "kind": "compile", "program": r"\ (x : Nat). x", "key": "a"},
        {"id": "m5", "kind": "run", "program": REDEX, "key": "b"},
        {
            "id": "m6",
            "kind": "link",
            "program": "n",
            "interface": [["n", "Nat"]],
            "imports": {"n": "41"},
        },
        {"id": "m7", "kind": "check", "program": ILL_TYPED, "key": "a"},
        {"id": "m8", "kind": "normalize", "program": REDEX, "fuel": 0, "key": "b"},
        {"id": "m9", "kind": "reset", "key": "a"},
        {"id": "m10", "kind": "normalize", "program": REDEX, "key": "a"},
        {"id": "m11", "kind": "stats"},
        {"id": "m12", "kind": "compile_py", "program": REDEX, "key": "b"},
    ]


class TestWireFormat:
    def test_job_roundtrip(self):
        job = Job.from_dict(
            {
                "kind": "link",
                "id": "j1",
                "program": "n",
                "interface": [["n", "Nat"]],
                "imports": {"n": "41"},
                "key": "build-0",
            }
        )
        assert Job.from_dict(job.to_dict()) == job
        # The wire form is honest JSON.
        assert Job.from_dict(json.loads(json.dumps(job.to_dict()))) == job

    def test_sparse_wire_form(self):
        spec = Job(kind="check", program="0").to_dict()
        assert spec == {"kind": "check", "program": "0"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            Job(kind="frobnicate")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown job fields"):
            Job.from_dict({"kind": "check", "program": "0", "bogus": 1})

    def test_program_kinds_require_program(self):
        with pytest.raises(ValueError, match="needs a 'program'"):
            Job(kind="normalize")

    def test_result_split_and_roundtrip(self):
        result = JobResult(
            id="r", ok=True, payload={"steps": 3}, meta={"session": "w0", "attempts": 1}
        )
        assert result.canonical() == {"id": "r", "ok": True, "payload": {"steps": 3}}
        assert "meta" not in result.canonical()
        assert JobResult.from_dict(result.to_dict()) == result


class TestExecutor:
    def test_every_deterministic_kind_executes(self):
        report = api.execute_jobs(_mixed_jobs(), workers=0)
        by_id = {result.id: result for result in report.results}
        assert by_id["m2"].payload["normal"] == "42"
        assert by_id["m2"].payload["steps"] == 1
        assert by_id["m3"].payload["engine"] == "subst"
        assert by_id["m4"].payload["verified"] is True
        assert by_id["m5"].payload["value"] == 42
        assert by_id["m6"].payload["type"] == "Nat"
        assert by_id["m7"].ok is False
        assert by_id["m7"].error["type"] == "TypeCheckError"
        assert by_id["m8"].error["type"] == "NormalizationDepthExceeded"
        assert by_id["m9"].payload == {"reset": True}
        # stats: constant deterministic payload, telemetry rides in meta.
        assert by_id["m11"].payload == {"stats": True}
        assert "cache_stats" in by_id["m11"].meta["stats"]
        # compile_py is run through the host backend: same payload modulo
        # the backend-only keys.
        assert by_id["m12"].payload["value"] == 42
        assert by_id["m12"].payload["backend"] == "compiled"
        machine = {
            key: value
            for key, value in by_id["m5"].payload.items()
            if key != "backend"
        }
        compiled = {
            key: value
            for key, value in by_id["m12"].payload.items()
            if key not in ("backend", "artifact")
        }
        assert compiled == machine

    def test_payloads_are_alpha_canonical(self):
        # α-variants of one program produce byte-identical payloads.
        session = api.Session()
        left = execute_job(session, Job(kind="normalize", id="l", program=REDEX))
        right = execute_job(
            session,
            Job(kind="normalize", id="l", program=r"(\ (y : Nat). succ y) 41"),
        )
        assert left.canonical() == right.canonical()

    def test_warm_repeat_is_byte_identical_with_replayed_fuel(self):
        session = api.Session()
        job = Job(kind="normalize", id="j", program=REDEX)
        cold = execute_job(session, job)
        warm = execute_job(session, job)
        assert warm.canonical() == cold.canonical()
        assert warm.payload["steps"] == cold.payload["steps"] == 1
        # The repeat really was warm: the memo cache hit.
        assert warm.meta["cache_hits"]["kernel.normalization"] >= 1

    def test_fuel_override_restores_session_default(self):
        session = api.Session()
        default = session.fuel
        result = execute_job(session, Job(kind="normalize", id="f", program=REDEX, fuel=0))
        assert not result.ok
        assert session.fuel == default

    def test_crash_in_process_is_a_failed_result(self):
        result = api.default_session().execute({"kind": "crash", "id": "c"})
        assert not result.ok and "worker process" in result.error["message"]

    def test_all_kinds_covered(self):
        # Every wire kind is either exercised above or chaos-only.
        deterministic = {job["kind"] for job in _mixed_jobs()}
        assert set(JOB_KINDS) - deterministic == {"sleep", "crash"}


class TestBatchAPI:
    def test_results_in_submission_order_with_assigned_ids(self):
        report = api.execute_jobs(
            [{"kind": "check", "program": IDENTITY}, {"kind": "normalize", "program": REDEX}]
        )
        assert [result.id for result in report.results] == ["job-0", "job-1"]
        assert report.workers == 0
        assert report.ok is False or report.ok is True  # property computes

    def test_session_fuel_zero_matches_pooled(self):
        # fuel=0 must not fall back to the default on the solo path (0 is
        # falsy!) — the pooled worker honors it, and the two must agree.
        jobs = [{"id": "z", "kind": "normalize", "program": REDEX}]
        solo = api.execute_jobs(jobs, workers=0, fuel=0)
        pooled = api.execute_jobs(jobs, workers=1, fuel=0)
        assert not solo.results[0].ok
        assert solo.results[0].error["type"] == "NormalizationDepthExceeded"
        assert pooled.canonical() == solo.canonical()

    def test_interleave_round_robin_and_uneven_streams(self):
        from repro.gen.jobs import interleave

        assert interleave([[1, 2, 3], ["a"], ["x", "y"]]) == [1, "a", "x", 2, "y", 3]
        assert interleave([]) == []

    def test_batch_report_to_dict_is_json_safe(self):
        report = api.execute_jobs([{"kind": "normalize", "program": REDEX}])
        document = json.loads(json.dumps(report.to_dict()))
        assert document["results"][0]["payload"]["normal"] == "42"
        assert document["ok"] is True


class TestDispatcher:
    def test_pooled_byte_identical_to_solo(self):
        jobs = _mixed_jobs()
        solo = api.execute_jobs(jobs, workers=0)
        pooled = api.execute_jobs(jobs, workers=2)
        assert pooled.canonical() == solo.canonical()

    def test_any_shard_assignment_is_byte_identical(self):
        # The same stream under different pool shapes (hence different
        # job→worker assignments and per-worker warmth) yields the same
        # deterministic results.
        jobs = _mixed_jobs()
        reference = api.execute_jobs(jobs, workers=0).canonical()
        for workers in (1, 3):
            assert api.execute_jobs(jobs, workers=workers).canonical() == reference

    def test_affinity_is_stable_and_round_robin_rotates(self):
        with Dispatcher(workers=3) as pool:
            keyed = Job(kind="check", program=IDENTITY, key="build-7")
            slots = {pool.slot_for(keyed) for _ in range(5)}
            assert len(slots) == 1  # affinity: same key, same slot, always
            unkeyed = Job(kind="check", program=IDENTITY)
            rotation = [pool.slot_for(unkeyed) for _ in range(6)]
            assert sorted(set(rotation)) == [0, 1, 2]  # round-robin rotates

    def test_distinct_keys_spread_across_all_slots(self):
        # Round-robin-with-affinity: N fresh keys claim N distinct slots
        # (a key *hash* can collide hot streams onto one worker).
        with Dispatcher(workers=4) as pool:
            slots = [
                pool.slot_for(Job(kind="check", program=IDENTITY, key=f"build-{index}"))
                for index in range(4)
            ]
            assert sorted(slots) == [0, 1, 2, 3]
            # And the assignment is sticky.
            again = [
                pool.slot_for(Job(kind="check", program=IDENTITY, key=f"build-{index}"))
                for index in range(4)
            ]
            assert again == slots

    def test_ping_and_liveness(self):
        with Dispatcher(workers=2) as pool:
            assert pool.alive_workers() == [True, True]
            assert pool.ping(0, timeout=30.0)
            assert pool.ping(1, timeout=30.0)

    def test_bounded_queue_still_completes(self):
        jobs = [
            {"id": f"q{index}", "kind": "normalize", "program": REDEX}
            for index in range(12)
        ]
        solo = api.execute_jobs(jobs, workers=0)
        pooled = api.execute_jobs(jobs, workers=2, max_pending=2)
        assert pooled.canonical() == solo.canonical()

    def test_duplicate_inflight_ids_rejected(self):
        with Dispatcher(workers=1) as pool:
            pool.submit({"id": "dup", "kind": "sleep", "seconds": 0.5})
            with pytest.raises(ValueError, match="duplicate in-flight job id"):
                pool.submit({"id": "dup", "kind": "check", "program": IDENTITY})

    def test_pool_cache_stats_sum_without_double_counting(self):
        # A 1-worker pool serves the stream in submission order, exactly
        # like a solo session.  Its aggregated hit counters must equal the
        # solo session's — the worker's session IS its process default, so
        # naively adding the legacy-shim counters on top would report 2x.
        jobs = [
            {"id": f"s{index}", "kind": "normalize", "program": REDEX, "key": "one"}
            for index in range(6)
        ]
        solo_session = api.Session(name="stats-ref")
        solo = api.execute_jobs(jobs, workers=0, session=solo_session)
        assert solo.ok
        with Dispatcher(workers=1) as pool:
            results = pool.run_batch(jobs)
            assert all(result.ok for result in results)
            pooled_hits = pool.stats().cache_hits
        assert pooled_hits == solo_session.hit_counts()
        # Cross-check: per-job telemetry deltas sum to the same totals.
        delta_sum: dict[str, int] = {}
        for result in results:
            for cache, hits in result.meta["cache_hits"].items():
                delta_sum[cache] = delta_sum.get(cache, 0) + hits
        assert delta_sum == pooled_hits

    def test_stats_shape(self):
        with Dispatcher(workers=2) as pool:
            pool.run_batch([{"id": "x", "kind": "check", "program": IDENTITY}])
            stats = pool.stats().to_dict()
        assert stats["workers"] == 2
        assert stats["submitted"] == stats["completed"] == 1
        assert stats["failed"] == stats["restarts"] == stats["timeouts"] == 0
        assert sum(int(n) for n in stats["jobs_per_slot"].values()) == 1

    def test_graceful_shutdown_reaps_workers(self):
        pool = Dispatcher(workers=2)
        processes = [handle.process for handle in pool._handles]
        pool.run_batch([{"id": "g", "kind": "check", "program": IDENTITY}])
        pool.shutdown()
        assert not any(process.is_alive() for process in processes)
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit({"kind": "check", "program": IDENTITY})


class TestWorkerFailure:
    def test_crash_mid_batch_completes_byte_identical(self):
        # The satellite contract: kill a worker mid-batch; the batch still
        # completes, requeued jobs land on a fresh worker with cold caches,
        # and every surviving result — values, types, steps, diagnostics —
        # is byte-identical to a solo run.
        key = "doomed-build"
        jobs: list[dict] = [
            {"id": "pre", "kind": "normalize", "program": REDEX, "key": key},
            {"id": "boom", "kind": "crash", "key": key},
        ] + [
            {"id": f"post{index}", "kind": kind, "program": program, "key": key}
            for index, (kind, program) in enumerate(
                [
                    ("normalize", REDEX),
                    ("check", IDENTITY),
                    ("compile", r"\ (x : Nat). x"),
                    ("normalize", ILL_TYPED),
                ]
            )
        ]
        survivors = [job for job in jobs if job["kind"] != "crash"]
        solo = {result.id: result.canonical() for result in api.execute_jobs(survivors).results}
        with Dispatcher(workers=2, max_attempts=2) as pool:
            results = pool.run_batch(jobs)
            stats = pool.stats()
        by_id = {result.id: result for result in results}
        assert not by_id["boom"].ok
        assert by_id["boom"].error["type"] == "WorkerCrash"
        for job in survivors:
            assert by_id[job["id"]].canonical() == solo[job["id"]]
        # The pre-crash job has identical replayed steps to the post-crash
        # requeues of the same program on the cold fresh worker.
        assert by_id["pre"].payload["steps"] == by_id["post0"].payload["steps"] == 1
        assert stats.restarts >= 1
        assert stats.requeued >= 1

    def test_hard_kill_recovers_without_begin_ack(self):
        # SIGKILL can eat the begin-ack; the dispatcher blames the queue
        # head, so recovery stays bounded and the batch still completes.
        with Dispatcher(workers=1, max_attempts=3) as pool:
            first = pool.submit({"id": "k0", "kind": "sleep", "seconds": 2.0})
            time.sleep(0.3)  # let the worker start sleeping
            pool.kill_worker(0)
            rest = [
                pool.submit({"id": f"k{index}", "kind": "normalize", "program": REDEX})
                for index in (1, 2)
            ]
            for pending in [first, *rest]:
                assert pending.done.wait(60.0)
            stats = pool.stats()
        assert stats.restarts >= 1
        assert all(pending.result.ok for pending in rest)

    def test_job_timeout_kills_and_fails_the_culprit(self):
        with Dispatcher(workers=1, job_timeout=0.4, max_attempts=1) as pool:
            results = pool.run_batch(
                [
                    {"id": "slow", "kind": "sleep", "seconds": 30.0},
                    {"id": "after", "kind": "normalize", "program": REDEX},
                ]
            )
            stats = pool.stats()
        by_id = {result.id: result for result in results}
        assert not by_id["slow"].ok
        assert by_id["after"].ok and by_id["after"].payload["normal"] == "42"
        assert stats.timeouts >= 1
        assert stats.restarts >= 1


class TestGenJobStreams:
    def test_corpus_is_deterministic_and_closed(self):
        corpus = job_corpus(11, count=5)
        assert corpus == job_corpus(11, count=5)
        assert len(corpus) == 5
        report = api.execute_jobs(corpus, workers=0)
        assert report.ok  # every candidate survived close-over + re-check

    def test_close_over_preserves_typability(self):
        from repro import cc
        from repro.gen.generator import TermGenerator

        generator = TermGenerator(5)
        session = api.Session()
        with session.activate():
            triple = generator.well_typed_term()
            assert triple is not None
            ctx, term, _ = triple
            closed = close_over(ctx, term)
            assert not cc.free_vars(closed)
            cc.infer(cc.Context.empty(), closed)  # must not raise

    def test_build_stream_shape(self):
        stream = build_stream(3, seed=1, iterations=2, passes=2, corpus_size=2)
        assert [job["kind"] for job in stream[:1]] == ["reset"]
        assert len(stream) == 2 * (1 + 2 * 2)
        assert len({job["id"] for job in stream}) == len(stream)
        assert {job["key"] for job in stream} == {"build-3"}

    def test_build_streams_pooled_match_solo(self):
        streams = [build_stream(build, seed=20 + build, iterations=1, passes=2,
                                corpus_size=2) for build in range(2)]
        interleaved = [job for pair in zip(*streams) for job in pair]
        solo = api.execute_jobs(interleaved, workers=0)
        pooled = api.execute_jobs(interleaved, workers=2)
        assert pooled.canonical() == solo.canonical()


class TestFailureDomains:
    """The hardened failure domains: quarantine, backoff, breaker, health."""

    def test_poison_job_dead_letters_and_survivors_match_solo(self):
        # A job that kills its worker on *every* attempt must exhaust
        # max_attempts and complete as a structured dead-letter document —
        # while every other job in the batch stays byte-identical to solo.
        from repro.service.faults import Fault, FaultPlan

        survivors = [
            {"id": f"s{index}", "kind": "normalize", "program": REDEX, "key": "fine"}
            for index in range(4)
        ]
        jobs = survivors + [
            {"id": "poison", "kind": "normalize", "program": REDEX, "key": "bad"}
        ]
        solo = {doc["id"]: doc for doc in api.execute_jobs(survivors).canonical()}
        plan = FaultPlan([Fault("kill", "poison", attempts=-1)], seed=2)
        with Dispatcher(workers=2, max_attempts=3, fault_plan=plan,
                        respawn_backoff=0.01, respawn_backoff_cap=0.1) as pool:
            results = pool.run_batch(jobs)
            stats = pool.stats()
        by_id = {result.id: result for result in results}
        letter = by_id["poison"]
        assert not letter.ok
        assert letter.error["dead_letter"] is True
        assert letter.error["type"] == "WorkerCrash"
        assert letter.error["attempts"] == 3
        for job in survivors:
            assert by_id[job["id"]].canonical() == solo[job["id"]]
        # Quarantine bounds the damage: at most max_attempts respawns for
        # the poison (the final crash's respawn may still be pending when
        # the batch drains), not one per queued job behind it.
        assert stats.exhausted == 1
        assert 2 <= stats.restarts <= 3

    def test_suspect_streak_fast_fails_new_culprits(self):
        # After suspect_after consecutive crashes of one slot, each new
        # culprit dead-letters immediately instead of burning max_attempts
        # worth of respawns per job — a poison *stream* cannot serially
        # recycle the pool.
        from repro.service.faults import Fault, FaultPlan

        poisons = [f"p{index}" for index in range(4)]
        plan = FaultPlan([Fault("kill", job_id, attempts=-1) for job_id in poisons])
        jobs = [
            {"id": job_id, "kind": "normalize", "program": REDEX, "key": "stream"}
            for job_id in poisons
        ]
        with Dispatcher(workers=1, max_attempts=3, fault_plan=plan,
                        respawn_backoff=0.01, respawn_backoff_cap=0.1,
                        suspect_after=2, max_slot_respawns=50) as pool:
            results = pool.run_batch(jobs)
            stats = pool.stats()
        assert all(not result.ok and result.error["dead_letter"] is True
                   for result in results)
        # The first culprit exhausts 3 attempts (3 crashes); from then on the
        # streak exceeds suspect_after, so each later culprit costs a single
        # crash instead of max_attempts respawns.
        crashes = 3 + (len(poisons) - 1)
        assert crashes - 1 <= stats.restarts <= crashes
        assert stats.exhausted == len(poisons)

    def test_crash_loop_breaker_abandons_the_slot_cleanly(self):
        from repro.service.faults import Fault, FaultPlan

        plan = FaultPlan([Fault("kill", "p", attempts=-1)])
        with Dispatcher(workers=1, max_attempts=100, fault_plan=plan,
                        respawn_backoff=0.01, respawn_backoff_cap=0.05,
                        suspect_after=100, max_slot_respawns=3) as pool:
            results = pool.run_batch([
                {"id": "p", "kind": "normalize", "program": REDEX},
                {"id": "stranded", "kind": "normalize", "program": REDEX},
            ])
            stats = pool.stats()
            # Every slot is broken: the pool refuses new work instead of
            # accepting jobs it can never run.
            with pytest.raises(RuntimeError):
                pool.submit({"id": "next", "kind": "normalize", "program": REDEX})
        assert all(result.error["type"] == "CrashLoopBreaker" for result in results)
        assert stats.restarts == 2  # max_slot_respawns - 1: the breaker stops the churn
        assert stats.slots["0"]["broken"] is True

    def test_timeout_exhaustion_is_a_dead_letter(self):
        with Dispatcher(workers=1, job_timeout=0.4, max_attempts=1,
                        respawn_backoff=0.01) as pool:
            results = pool.run_batch([
                {"id": "slow", "kind": "sleep", "seconds": 30.0},
                {"id": "after", "kind": "normalize", "program": REDEX},
            ])
            stats = pool.stats()
        by_id = {result.id: result for result in results}
        assert by_id["slow"].error["type"] == "JobTimeout"
        assert by_id["slow"].error["dead_letter"] is True
        assert by_id["after"].ok
        assert stats.exhausted == 1
        assert stats.to_dict()["exhausted"] == 1

    def test_stats_surface_slot_health_and_persist(self):
        with Dispatcher(workers=2) as pool:
            pool.run_batch([{"id": "j", "kind": "normalize", "program": REDEX}])
            stats = pool.stats()
        assert set(stats.slots) == {"0", "1"}
        for health in stats.slots.values():
            assert health["alive"] is True
            assert health["broken"] is False
            assert health["crash_streak"] == 0
        assert stats.to_dict()["slots"] == stats.slots

    def test_transient_kill_retries_to_byte_identical_payload(self):
        # One injected crash, then the requeued attempt succeeds on the
        # fresh worker — and the payload is byte-identical to solo.
        from repro.service.faults import Fault, FaultPlan

        jobs = [{"id": "flaky", "kind": "normalize", "program": REDEX}]
        solo = api.execute_jobs(jobs).canonical()
        plan = FaultPlan([Fault("kill", "flaky", attempts=1)])
        with Dispatcher(workers=1, max_attempts=3, fault_plan=plan,
                        respawn_backoff=0.01) as pool:
            results = pool.run_batch(jobs)
            stats = pool.stats()
        assert [result.canonical() for result in results] == solo
        assert stats.restarts == 1
        assert stats.exhausted == 0


class TestRunBatchPartialFailure:
    def test_failed_submit_still_resolves_the_accepted_prefix(self):
        # Satellite contract: when a later submit raises (here a duplicate
        # in-flight id), the already-accepted prefix is waited out — every
        # accepted job resolves to a result — before the error propagates.
        with Dispatcher(workers=1) as pool:
            first = pool.submit({"id": "dup", "kind": "sleep", "seconds": 0.3})
            with pytest.raises(ValueError, match="duplicate in-flight"):
                pool.run_batch(
                    [
                        {"id": "p0", "kind": "normalize", "program": REDEX},
                        {"id": "p1", "kind": "normalize", "program": REDEX},
                        {"id": "dup", "kind": "normalize", "program": REDEX},
                    ]
                )
            # The prefix was not abandoned: both jobs already resolved by
            # the time run_batch raised (no sleeping on done events here).
            with pool._lock:
                settled = {
                    pending.job.id
                    for pending in pool._pending.values()
                    if pending.done.is_set()
                } | {"p0", "p1"} - set(pool._pending)
            assert {"p0", "p1"} <= settled
            assert first.done.wait(30.0) and first.result.ok


class TestDispatcherDeadlines:
    def test_queued_past_deadline_dead_letters_without_running(self):
        # One worker is pinned by a sleeper; the queued job's deadline
        # lapses before it ever starts and it dead-letters in place with
        # the deterministic JobTimeout document (attempts pinned to 1).
        with Dispatcher(workers=1) as pool:
            slow = pool.submit({"id": "pin", "kind": "sleep", "seconds": 1.0, "key": "k"})
            queued = pool.submit(
                {"id": "q", "kind": "normalize", "program": REDEX, "key": "k",
                 "deadline": 0.1}
            )
            assert queued.done.wait(30.0)
            assert slow.done.wait(30.0)
        assert not queued.result.ok
        assert queued.result.error["type"] == "JobTimeout"
        assert queued.result.error["message"] == "job missed its 0.1s deadline"
        assert queued.result.error["attempts"] == 1
        assert slow.result.ok  # the innocent sleeper is never blamed

    def test_running_past_deadline_is_killed_and_dead_lettered(self):
        with Dispatcher(workers=1) as pool:
            late = pool.submit({"id": "late", "kind": "sleep", "seconds": 30.0,
                                "deadline": 0.2})
            after = pool.submit({"id": "after", "kind": "normalize", "program": REDEX})
            assert late.done.wait(30.0) and after.done.wait(30.0)
            stats = pool.stats()
        assert not late.result.ok
        assert late.result.error["type"] == "JobTimeout"
        assert late.result.error["message"] == "job missed its 0.2s deadline"
        assert late.result.error["attempts"] == 1
        assert after.result.ok and after.result.payload["normal"] == "42"
        assert stats.restarts >= 1  # the overdue worker was killed

    def test_deadline_document_is_deterministic_across_paths(self):
        # Queued-expired and running-expired produce the same canonical
        # error halves for the same spec: a pure function of the job.
        def run(pin_first: bool):
            with Dispatcher(workers=1) as pool:
                if pin_first:
                    pool.submit({"id": "pin", "kind": "sleep", "seconds": 0.6,
                                 "key": "k"})
                doomed = pool.submit({"id": "d", "kind": "sleep", "seconds": 30.0,
                                      "key": "k", "deadline": 0.2})
                assert doomed.done.wait(30.0)
                return doomed.result.canonical()

        assert run(pin_first=True) == run(pin_first=False)


class TestElasticity:
    def test_grow_adds_capacity_and_shrink_retires_warmly(self):
        with Dispatcher(workers=1) as pool:
            assert pool.active_workers() == 1
            slot = pool.grow()
            assert slot == 1 and pool.active_workers() == 2
            results = pool.run_batch(
                [{"id": f"e{i}", "kind": "normalize", "program": REDEX,
                  "key": f"k{i}"} for i in range(4)]
            )
            assert all(result.ok for result in results)
            assert pool.shrink() == 1
            assert pool.active_workers() == 1
            assert pool.shrink() is None  # never retires the last slot
            # Work keeps landing on the surviving slot.
            [tail] = pool.run_batch(
                [{"id": "tail", "kind": "normalize", "program": REDEX}]
            )
            assert tail.ok
            stats = pool.stats()
        assert stats.scale_ups == 1 and stats.scale_downs == 1
        assert stats.slots["1"]["retired"] is True

    def test_grow_revives_the_lowest_retired_slot(self):
        with Dispatcher(workers=2) as pool:
            assert pool.shrink() == 1
            # Wait for the retirement to finish (no pending work → instant).
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if pool.stats().slots["1"]["retired"]:
                    break
                time.sleep(0.01)
            assert pool.grow() == 1  # revived, not appended
            assert pool.active_workers() == 2
            [doc] = pool.run_batch(
                [{"id": "r", "kind": "normalize", "program": REDEX}]
            )
            assert doc.ok

    def test_shrinking_slot_finishes_its_pending_jobs(self):
        with Dispatcher(workers=2) as pool:
            # Key "b" shards to slot 1; give it work, then retire it.
            keyed = [
                pool.submit({"id": f"w{i}", "kind": "sleep", "seconds": 0.15,
                             "key": "b"})
                for i in range(2)
            ]
            slot = pool.shrink()
            assert slot is not None
            for pending in keyed:
                assert pending.done.wait(30.0)
                assert pending.result.ok  # finished on the retiring slot
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if pool.stats().slots[str(slot)]["retired"]:
                    break
                time.sleep(0.01)
            assert pool.stats().slots[str(slot)]["retired"] is True

    def test_supervisor_scales_up_under_burst_and_back_down(self):
        from repro.service import ElasticSupervisor

        with Dispatcher(workers=1, max_pending=64) as pool:
            supervisor = ElasticSupervisor(
                pool, min_workers=1, max_workers=3,
                high_watermark=1.5, low_watermark=0.5,
                interval=0.02, cooldown=0.05,
            )
            supervisor.start()
            try:
                results = pool.run_batch(
                    [{"id": f"burst{i}", "kind": "sleep", "seconds": 0.1,
                      "key": f"k{i}"} for i in range(12)]
                )
                assert all(result.ok for result in results)
                # Idle now: wait for the supervisor to shed capacity again.
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if pool.stats().scale_downs >= 1:
                        break
                    time.sleep(0.02)
                stats = pool.stats()
            finally:
                supervisor.stop()
        assert stats.scale_ups >= 1
        assert stats.scale_downs >= 1
        directions = [direction for direction, _, _ in supervisor.events]
        assert "up" in directions and "down" in directions

    def test_supervisor_validates_watermarks(self):
        from repro.service import ElasticSupervisor

        with Dispatcher(workers=1) as pool:
            with pytest.raises(ValueError, match="min_workers"):
                ElasticSupervisor(pool, min_workers=3, max_workers=1)
            with pytest.raises(ValueError, match="low_watermark"):
                ElasticSupervisor(pool, high_watermark=1.0, low_watermark=1.0)


class TestGracefulDrain:
    def test_drain_under_backlog_answers_every_accepted_job(self):
        # Satellite contract: submit more than max_pending, start a drain
        # mid-stream, and every *accepted* job completes or dead-letters —
        # zero accepted-and-lost — while late submits are refused loudly.
        pool = Dispatcher(workers=2, max_pending=4)
        accepted: list = []
        refused: list[str] = []

        def feed() -> None:
            for index in range(16):
                try:
                    accepted.append(
                        pool.submit({"id": f"dr{index}", "kind": "sleep",
                                     "seconds": 0.05})
                    )
                except RuntimeError as err:
                    refused.append(str(err))
                    break

        import threading

        feeder = threading.Thread(target=feed)
        feeder.start()
        time.sleep(0.15)  # a few accepted, the feeder blocked on max_pending
        pool.drain(timeout=30.0)
        feeder.join(timeout=30.0)
        assert accepted  # the stream was genuinely mid-flight
        for pending in accepted:
            assert pending.done.is_set(), "an accepted job went silent"
            result = pending.result
            assert result.ok or result.error["type"] in (
                "DrainTimeout", "DispatcherShutdown"
            )
        assert refused and "draining" in refused[0]
        with pytest.raises(RuntimeError):
            pool.submit({"id": "late", "kind": "normalize", "program": REDEX})

    def test_drain_timeout_dead_letters_the_stragglers(self):
        pool = Dispatcher(workers=1)
        slow = pool.submit({"id": "straggler", "kind": "sleep", "seconds": 30.0})
        quick = pool.submit({"id": "quick", "kind": "normalize", "program": REDEX,
                             "key": "other"})
        pool.drain(timeout=0.5)
        assert slow.done.is_set() and quick.done.is_set()
        assert not slow.result.ok
        assert slow.result.error["type"] in ("DrainTimeout", "DispatcherShutdown")
