"""Theorem 5.7 (Correctness of Separate Compilation) and Corollary 5.8.

Link-then-compile agrees with compile-then-link at ground observations,
and whole closed programs produce matching values.
"""

import pytest

from repro import cc, cccc
from repro.cc import prelude
from repro.closconv import compile_term
from repro.common.errors import LinkError
from repro.linking import (
    ClosingSubstitution,
    check_substitution,
    link,
)
from repro.properties import check_separate_compilation, ground_observation
from repro.surface import parse_term
from tests.corpus import CLOSED_GROUND_PROGRAMS, closed_ground_ids


def _component(entries, term_src, gamma_map):
    ctx = cc.Context.empty()
    for name, type_ in entries:
        ctx = ctx.extend(name, type_)
    term = parse_term(term_src) if isinstance(term_src, str) else term_src
    return ctx, term, ClosingSubstitution(gamma_map)


COMPONENTS = [
    _component(
        [("y", cc.Nat())], r"succ y", {"y": cc.nat_literal(4)}
    ),
    _component(
        [("f", cc.arrow(cc.Nat(), cc.Nat()))],
        r"f 3",
        {"f": parse_term(r"\ (x : Nat). succ x")},
    ),
    _component(
        [("add", cc.Pi("m", cc.Nat(), cc.arrow(cc.Nat(), cc.Nat())))],
        r"add 2 3",
        {"add": prelude.nat_add},
    ),
    _component(
        [("id", prelude.polymorphic_identity_type)],
        r"id Nat 7",
        {"id": prelude.polymorphic_identity},
    ),
    _component(
        [("b", cc.Bool()), ("n", cc.Nat())],
        r"if b then succ n else 0",
        {"b": cc.BoolLit(True), "n": cc.nat_literal(9)},
    ),
    _component(
        [("p", cc.Sigma("x", cc.Nat(), cc.Bool()))],
        r"fst p",
        {"p": parse_term(r"<6, false> as (exists (x : Nat), Bool)")},
    ),
    # A dependent interface: the import is a positive number with proof.
    _component(
        [("pos", prelude.positive_nat())],
        r"succ (fst pos)",
        {"pos": prelude.positive_nat_value(3)},
    ),
]


class TestTheorem57:
    @pytest.mark.parametrize("index", range(len(COMPONENTS)))
    def test_linking_commutes(self, index):
        ctx, term, gamma = COMPONENTS[index]
        report = check_separate_compilation(ctx, term, gamma)
        assert report.agrees, (
            f"source {cc.pretty(report.source_value)} vs "
            f"target {cccc.pretty(report.target_value)}"
        )

    def test_source_values_match_direct_evaluation(self, empty):
        ctx, term, gamma = COMPONENTS[0]
        report = check_separate_compilation(ctx, term, gamma)
        direct = cc.normalize(empty, link(ctx, term, gamma))
        assert ground_observation(direct) == report.observation == 5


class TestCorollary58:
    @pytest.mark.parametrize(
        "name, term, expected", CLOSED_GROUND_PROGRAMS, ids=closed_ground_ids()
    )
    def test_whole_program_correctness(self, empty, empty_target, name, term, expected):
        """Corollary 5.8: e ⊲* v implies e⁺ ⊲* ≈ v⁺ (empty γ)."""
        report = check_separate_compilation(empty, term, ClosingSubstitution({}))
        assert report.agrees
        assert report.observation == expected


class TestLinkChecking:
    def test_gamma_must_cover_imports(self, empty):
        ctx = empty.extend("y", cc.Nat())
        with pytest.raises(LinkError, match="no substitution"):
            check_substitution(ctx, ClosingSubstitution({}))

    def test_gamma_values_must_be_closed(self, empty):
        ctx = empty.extend("y", cc.Nat())
        with pytest.raises(LinkError, match="not closed"):
            check_substitution(ctx, ClosingSubstitution({"y": cc.Var("z")}))

    def test_gamma_values_must_typecheck(self, empty):
        ctx = empty.extend("y", cc.Nat())
        with pytest.raises(LinkError, match="wrong type"):
            check_substitution(ctx, ClosingSubstitution({"y": cc.BoolLit(True)}))

    def test_dependent_interface_checked_in_order(self, empty):
        # Γ = A:⋆, x:A — the value for x must match the value chosen for A.
        ctx = empty.extend("A", cc.Star()).extend("x", cc.Var("A"))
        good = ClosingSubstitution({"A": cc.Nat(), "x": cc.nat_literal(3)})
        check_substitution(ctx, good)
        bad = ClosingSubstitution({"A": cc.Bool(), "x": cc.nat_literal(3)})
        with pytest.raises(LinkError):
            check_substitution(ctx, bad)

    def test_proof_carrying_interface_rejects_fakes(self, empty):
        # The introduction's scenario: a client without the proof is rejected.
        ctx = empty.extend("pos", prelude.positive_nat())
        with pytest.raises(LinkError):
            check_substitution(ctx, ClosingSubstitution({"pos": cc.nat_literal(3)}))
        fake = cc.Pair(
            cc.Zero(),
            prelude.leibniz_refl(cc.Bool(), cc.BoolLit(False)),
            prelude.positive_nat(),
        )
        with pytest.raises(LinkError):
            check_substitution(ctx, ClosingSubstitution({"pos": fake}))

    def test_definition_imports_default(self, empty):
        # A context definition needs no γ entry; its definition links in.
        ctx = empty.define("two", cc.nat_literal(2), cc.Nat())
        linked = link(ctx, cc.Succ(cc.Var("two")), ClosingSubstitution({}))
        assert cc.nat_value(cc.normalize(empty, linked)) == 3

    def test_definition_can_be_overridden_equivalently(self, empty):
        ctx = empty.define("two", cc.nat_literal(2), cc.Nat())
        gamma = ClosingSubstitution(
            {"two": parse_term(r"(\ (x : Nat). x) 2")}  # ≡ 2, different syntax
        )
        check_substitution(ctx, gamma)

    def test_definition_override_must_be_equivalent(self, empty):
        ctx = empty.define("two", cc.nat_literal(2), cc.Nat())
        with pytest.raises(LinkError, match="not .*equivalent|not\\s"):
            check_substitution(ctx, ClosingSubstitution({"two": cc.nat_literal(3)}))


class TestTargetLinking:
    def test_compiled_interface_rejects_ill_typed_target_client(self, empty):
        """Type-preserving compilation's payoff: the CC-CC kernel catches a
        bad client against the *compiled* interface."""
        from repro.linking import TargetClosingSubstitution, check_target_substitution

        ctx = empty.extend("pos", prelude.positive_nat())
        result = compile_term(ctx, parse_term("fst pos"))
        bad = TargetClosingSubstitution({"pos": cccc.nat_literal(3)})
        with pytest.raises(LinkError):
            check_target_substitution(result.target_context, bad)

    def test_compiled_good_client_accepted(self, empty):
        from repro.closconv import translate
        from repro.linking import TargetClosingSubstitution, check_target_substitution

        ctx = empty.extend("pos", prelude.positive_nat())
        result = compile_term(ctx, parse_term("fst pos"))
        good = TargetClosingSubstitution(
            {"pos": translate(empty, prelude.positive_nat_value(2))}
        )
        check_target_substitution(result.target_context, good)
