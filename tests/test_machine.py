"""Tests for code hoisting and the CBV machine (the §3 'statically
allocate code' story, §7 cost discussion)."""

import pytest

from repro import cc, cccc
from repro.closconv import compile_term
from repro.common.errors import TranslationError
from repro.machine import (
    MachineError,
    MachineStats,
    MNat,
    hoist,
    machine_observation,
    program_context,
    run,
    unhoist,
)
from tests.corpus import CLOSED_GROUND_PROGRAMS, closed_ground_ids


def _compile_closed(term: cc.Term) -> cccc.Term:
    return compile_term(cc.Context.empty(), term, verify=False).target


class TestHoisting:
    def test_all_code_hoisted(self):
        target = _compile_closed(cc.Lam("x", cc.Nat(), cc.Lam("y", cc.Nat(), cc.Var("x"))))
        program = hoist(target)
        assert program.code_count == 2
        assert not any(
            isinstance(sub, cccc.CodeLam) for sub in cccc.subterms(program.main)
        )

    def test_hoisted_code_entries_closed_relative_to_table(self):
        target = _compile_closed(cc.Lam("x", cc.Nat(), cc.Lam("y", cc.Nat(), cc.Var("x"))))
        program = hoist(target)
        labels = set(program.code_table)
        for code in program.code_table.values():
            assert cccc.free_vars(code) <= labels

    def test_deduplication(self):
        # Two identical λ's share one code block.
        term = cc.Pair(
            cc.Lam("x", cc.Nat(), cc.Var("x")),
            cc.Lam("x", cc.Nat(), cc.Var("x")),
            cc.Sigma("f", cc.arrow(cc.Nat(), cc.Nat()), cc.arrow(cc.Nat(), cc.Nat())),
        )
        program = hoist(_compile_closed(term))
        assert program.code_count == 1

    def test_unhoist_inverts(self):
        target = _compile_closed(
            cc.make_app(
                cc.Lam("f", cc.arrow(cc.Nat(), cc.Nat()), cc.App(cc.Var("f"), cc.Zero())),
                cc.Lam("y", cc.Nat(), cc.Succ(cc.Var("y"))),
            )
        )
        program = hoist(target)
        assert cccc.alpha_equal(unhoist(program), target)

    def test_program_context_typechecks_main(self):
        target = _compile_closed(cc.make_app(
            cc.Lam("x", cc.Nat(), cc.Succ(cc.Var("x"))), cc.nat_literal(1)
        ))
        program = hoist(target)
        ctx = program_context(program)
        inferred = cccc.infer(ctx, program.main)
        assert cccc.equivalent(ctx, inferred, cccc.Nat())

    def test_open_code_rejected(self):
        open_code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("stray"))
        with pytest.raises(TranslationError, match="open code"):
            hoist(open_code)

    def test_program_str(self):
        program = hoist(_compile_closed(cc.Lam("x", cc.Nat(), cc.Var("x"))))
        text = str(program)
        assert "code$0" in text and "main" in text


class TestMachine:
    @pytest.mark.parametrize(
        "name, term, expected", CLOSED_GROUND_PROGRAMS, ids=closed_ground_ids()
    )
    def test_ground_programs(self, name, term, expected):
        program = hoist(_compile_closed(term))
        value, _stats = run(program)
        assert machine_observation(value) == expected

    def test_machine_agrees_with_normalizer(self, empty_target):
        term = cc.make_app(
            cc.Lam("f", cc.arrow(cc.Nat(), cc.Nat()),
                   cc.App(cc.Var("f"), cc.App(cc.Var("f"), cc.Zero()))),
            cc.Lam("y", cc.Nat(), cc.Succ(cc.Var("y"))),
        )
        target = _compile_closed(term)
        normal = cccc.normalize(empty_target, target)
        value, _ = run(hoist(target))
        assert machine_observation(value) == cccc.nat_value(normal) == 2

    def test_activation_records_small(self):
        """Code runs with exactly env + arg, plus any code-local lets."""
        term = cc.make_app(
            cc.Lam("a", cc.Nat(), cc.Lam("b", cc.Nat(), cc.Lam("c", cc.Nat(), cc.Var("a")))),
            cc.nat_literal(1), cc.nat_literal(2), cc.nat_literal(3),
        )
        program = hoist(_compile_closed(term))
        _, stats = run(program)
        # frames: {env, arg} plus let-bound projections of captured vars —
        # bounded by the environment size, never the whole ambient scope.
        assert stats.max_frame_size <= 5

    def test_counters_populated(self):
        term = cc.make_app(cc.Lam("x", cc.Nat(), cc.Succ(cc.Var("x"))), cc.Zero())
        _, stats = run(hoist(_compile_closed(term)))
        assert stats.closure_allocs >= 1
        assert stats.code_lookups >= 1
        assert stats.steps > 0

    def test_types_are_inert_values(self):
        # id Nat 3: Nat flows through the machine as an MType.
        from repro.cc.prelude import polymorphic_identity

        term = cc.make_app(polymorphic_identity, cc.Nat(), cc.nat_literal(3))
        value, _ = run(hoist(_compile_closed(term)))
        assert machine_observation(value) == 3

    def test_unknown_label_fails(self):
        from repro.machine import Program

        bad = Program({}, cccc.App(cccc.Clo(cccc.Var("code$404"), cccc.UnitVal()), cccc.Zero()))
        with pytest.raises(MachineError):
            run(bad)

    def test_applying_non_closure_fails(self):
        program = hoist(cccc.App(cccc.Zero(), cccc.Zero()))
        with pytest.raises(MachineError, match="non-closure"):
            run(program)

    def test_stats_reusable(self):
        stats = MachineStats()
        term = _compile_closed(cc.nat_literal(1))
        run(hoist(term), stats)
        first = stats.steps
        run(hoist(term), stats)
        assert stats.steps > first  # accumulates


class TestDeepHoist:
    """Hoisting is iterative: ~10k-node-deep terms lift without recursion."""

    DEPTH = 10_000

    def test_deep_application_spine(self):
        # A code literal at the bottom of a 10k-deep App spine: the old
        # recursive walk exceeded the Python stack here.
        code = cccc.CodeLam("env", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        term: cccc.Term = cccc.Clo(code, cccc.UnitVal())
        for _ in range(self.DEPTH):
            term = cccc.App(term, cccc.Zero())
        program = hoist(term)
        assert program.code_count == 1
        assert not any(
            isinstance(sub, cccc.CodeLam) for sub in cccc.subterms(program.main)
        )

    def test_deep_succ_chain_roundtrips(self):
        term = cccc.nat_literal(self.DEPTH)
        program = hoist(term)
        assert program.code_count == 0
        # No code anywhere: the main expression is the input, shared.
        assert program.main is term
        assert cccc.alpha_equal(unhoist(program), term)

    def test_deep_unhoist_roundtrip(self):
        # Reconstituting a 10k-deep program substitutes code blocks back
        # through the (iterative) kernel substitution engine and compares
        # with the (iterative) α-equivalence walk — no recursion limit.
        code = cccc.CodeLam("env", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        term: cccc.Term = cccc.Clo(code, cccc.UnitVal())
        for _ in range(self.DEPTH):
            term = cccc.App(term, cccc.Zero())
        program = hoist(term)
        assert program.code_count == 1
        assert cccc.alpha_equal(unhoist(program), term)

    def test_deep_pair_tower_with_code(self):
        code = cccc.CodeLam("env", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        term: cccc.Term = cccc.Clo(code, cccc.UnitVal())
        annot: cccc.Term = cccc.Nat()
        for _ in range(5_000):
            term = cccc.Pair(term, cccc.Zero(), annot)
        program = hoist(term)
        assert program.code_count == 1
        assert not any(
            isinstance(sub, cccc.CodeLam) for sub in cccc.subterms(program.main)
        )
        assert cccc.term_size(program.main) == cccc.term_size(term) - cccc.term_size(code) + 1

    def test_deep_open_code_still_rejected(self):
        open_code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("stray"))
        term: cccc.Term = cccc.Clo(open_code, cccc.UnitVal())
        for _ in range(self.DEPTH):
            term = cccc.App(term, cccc.Zero())
        with pytest.raises(TranslationError, match="open code"):
            hoist(term)


class TestDeepPrograms:
    """The machine evaluates ~10k-node-deep programs (deep-stack guard)."""

    def test_deep_main_term(self):
        from repro.machine import Program

        program = Program({}, cccc.nat_literal(10_000))
        value, stats = run(program)
        assert value == MNat(10_000)

    def test_deep_code_table_body(self):
        # Hoisting moves deep bodies out of main and into the code table;
        # the guard must count them (main itself stays tiny).
        from repro.machine import Program

        code = cccc.CodeLam("env", cccc.Unit(), "a", cccc.Unit(), cccc.nat_literal(6_000))
        program = Program(
            {"code$0": code},
            cccc.App(cccc.Clo(cccc.Var("code$0"), cccc.UnitVal()), cccc.UnitVal()),
        )
        value, stats = run(program)
        assert value == MNat(6_000)
        assert stats.env_allocs == 1
        assert stats.max_env_size == 2  # exactly {environment, argument}

    def test_deep_let_chain(self):
        from repro.machine import Program

        body: cccc.Term = cccc.Zero()
        for index in range(5_000):
            body = cccc.Let(f"x{index}", cccc.Zero(), cccc.Nat(), body)
        value, stats = run(Program({}, body))
        assert value == MNat(0)
        assert stats.env_allocs == 5_000
