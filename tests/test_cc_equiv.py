"""Unit tests for CC definitional equivalence (paper Figure 2): ≡ and η."""

from repro import cc
from repro.cc import prelude
from repro.surface import parse_term


class TestReductionEquivalence:
    def test_beta(self, empty):
        assert cc.equivalent(empty, parse_term(r"(\ (x : Nat). succ x) 1"), cc.nat_literal(2))

    def test_common_reduct(self, empty):
        left = parse_term(r"(\ (x : Nat). x) 3")
        right = parse_term(r"let y = 3 : Nat in y")
        assert cc.equivalent(empty, left, right)

    def test_delta_in_context(self, empty):
        ctx = empty.define("two", cc.nat_literal(2), cc.Nat())
        assert cc.equivalent(ctx, cc.Var("two"), cc.nat_literal(2))

    def test_inequivalent_literals(self, empty):
        assert not cc.equivalent(empty, cc.nat_literal(2), cc.nat_literal(3))
        assert not cc.equivalent(empty, cc.BoolLit(True), cc.BoolLit(False))

    def test_neutral_terms_compare_structurally(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat())).extend("x", cc.Nat())
        left = cc.App(cc.Var("f"), cc.Var("x"))
        assert cc.equivalent(ctx, left, left)
        assert not cc.equivalent(ctx, left, cc.App(cc.Var("f"), cc.Zero()))

    def test_alpha_invariance(self, empty):
        assert cc.equivalent(
            empty,
            cc.Lam("x", cc.Nat(), cc.Var("x")),
            cc.Lam("y", cc.Nat(), cc.Var("y")),
        )

    def test_types_equivalence(self, empty):
        left = parse_term("forall (A : Type), A -> A")
        right = cc.Pi("B", cc.Star(), cc.Pi("z", cc.Var("B"), cc.Var("B")))
        assert cc.equivalent(empty, left, right)

    def test_type_level_computation(self, empty):
        # (λ A:⋆. A) Nat ≡ Nat — the [Conv] workhorse.
        left = cc.App(cc.Lam("A", cc.Star(), cc.Var("A")), cc.Nat())
        assert cc.equivalent(empty, left, cc.Nat())


class TestEta:
    def test_eta_expansion(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        expanded = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
        assert cc.equivalent(ctx, expanded, cc.Var("f"))

    def test_eta_both_orders(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        expanded = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
        assert cc.equivalent(ctx, cc.Var("f"), expanded)

    def test_eta_nested(self, empty):
        ctx = empty.extend("g", cc.arrow(cc.Nat(), cc.arrow(cc.Nat(), cc.Nat())))
        expanded = cc.Lam(
            "x",
            cc.Nat(),
            cc.Lam("y", cc.Nat(), cc.make_app(cc.Var("g"), cc.Var("x"), cc.Var("y"))),
        )
        assert cc.equivalent(ctx, expanded, cc.Var("g"))

    def test_eta_with_prelude_function(self, empty):
        expanded = cc.Lam("m", cc.Nat(), cc.App(prelude.nat_is_zero, cc.Var("m")))
        assert cc.equivalent(empty, expanded, prelude.nat_is_zero)

    def test_eta_negative(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        not_eta = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Zero()))
        assert not cc.equivalent(ctx, not_eta, cc.Var("f"))

    def test_eta_ignores_domain_annotation(self, empty):
        # Untyped η: λ x:Nat. f x ≡ λ x:Bool. f x (both η-contract to f).
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        left = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
        right = cc.Lam("x", cc.Bool(), cc.App(cc.Var("f"), cc.Var("x")))
        assert cc.equivalent(ctx, left, right)


class TestEquivalenceLaws:
    def test_reflexive(self, empty):
        from tests.corpus import CORPUS

        for _, ctx, term in CORPUS[:10]:
            assert cc.equivalent(ctx, term, term)

    def test_symmetric(self, empty):
        left = parse_term(r"(\ (x : Nat). x) 3")
        right = cc.nat_literal(3)
        assert cc.equivalent(empty, left, right)
        assert cc.equivalent(empty, right, left)

    def test_transitive_through_reduction(self, empty):
        a = parse_term(r"(\ (x : Nat). succ x) 1")
        b = parse_term(r"let z = 1 : Nat in succ z")
        c = cc.nat_literal(2)
        assert cc.equivalent(empty, a, b)
        assert cc.equivalent(empty, b, c)
        assert cc.equivalent(empty, a, c)

    def test_congruence_under_application(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        left = cc.App(cc.Var("f"), parse_term(r"(\ (x : Nat). x) 3"))
        right = cc.App(cc.Var("f"), cc.nat_literal(3))
        assert cc.equivalent(ctx, left, right)

    def test_pair_annotations_irrelevant(self, empty):
        annot_a = cc.Sigma("x", cc.Nat(), cc.Nat())
        annot_b = cc.Sigma("y", cc.Nat(), cc.Nat())
        left = cc.Pair(cc.Zero(), cc.Zero(), annot_a)
        right = cc.Pair(cc.Zero(), cc.Zero(), annot_b)
        assert cc.equivalent(empty, left, right)
