"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCheck:
    def test_check_expr(self, capsys):
        assert main(["check", "-e", r"\ (A : Type) (x : A). x"]) == 0
        out = capsys.readouterr().out
        assert "Π (A : ⋆). A -> A" in out

    def test_check_file(self, tmp_path, capsys):
        source = tmp_path / "program.cc"
        source.write_text(r"(\ (x : Nat). succ x) 4" + "\n-- a comment\n")
        assert main(["check", str(source)]) == 0
        assert "Nat" in capsys.readouterr().out

    def test_ill_typed_fails(self, capsys):
        assert main(["check", "-e", "0 0"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error_fails(self, capsys):
        assert main(["check", "-e", "(("]) == 1
        assert "parse error" in capsys.readouterr().err

    def test_missing_file_fails(self, capsys):
        assert main(["check", "/nonexistent/program.cc"]) == 1


class TestCompile:
    def test_compile_verified(self, capsys):
        assert main(["compile", "-e", r"\ (x : Nat). x"]) == 0
        out = capsys.readouterr().out
        assert "⟨⟨" in out
        assert "verified" in out

    def test_compile_no_verify(self, capsys):
        assert main(["compile", "--no-verify", "-e", r"\ (x : Nat). x"]) == 0
        assert "verified" not in capsys.readouterr().out


class TestRun:
    def test_run_ground_program(self, capsys):
        assert main(["run", "-e", r"(\ (x : Nat). succ x) 41"]) == 0
        out = capsys.readouterr().out
        assert "value        : 42" in out
        assert "code blocks" in out

    def test_run_higher_order(self, capsys):
        assert main(
            ["run", "-e", r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 0"]
        ) == 0
        assert "value        : 2" in capsys.readouterr().out

    def test_run_closure_value(self, capsys):
        assert main(["run", "-e", r"\ (x : Nat). x"]) == 0
        assert "MClo" in capsys.readouterr().out


class TestDecompileAndHoist:
    def test_decompile_reports_roundtrip(self, capsys):
        assert main(["decompile", "-e", r"\ (x : Nat). x"]) == 0
        assert "e ≡ (e⁺)°: True" in capsys.readouterr().out

    def test_hoist_prints_code_table(self, capsys):
        assert main(["hoist", "-e", r"(\ (A : Type) (x : A). x) Nat 1"]) == 0
        out = capsys.readouterr().out
        assert "code$0" in out and "main" in out


class TestJsonOutput:
    """``--json`` emits the structured session result for machine consumption."""

    def test_check_json(self, capsys):
        assert main(["check", "--json", "-e", r"\ (A : Type) (x : A). x"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["type"] == "Π (A : ⋆). A -> A"
        assert document["engine"] == "nbe"
        assert document["steps"] == 0
        assert set(document["cache_hits"]) == {"kernel.normalization", "kernel.judgments"}

    def test_normalize_json_reports_steps_and_engine(self, capsys):
        assert main(["normalize", "--json", "-e", r"(\ (x : Nat). succ x) 41"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["normal"] == "42"
        assert document["type"] == "Nat"
        assert document["steps"] == 1
        assert document["engine"] == "nbe"
        assert document["elapsed_seconds"] >= 0

    def test_normalize_json_subst_engine(self, capsys):
        assert main(
            ["normalize", "--json", "--engine", "subst", "-e", r"(\ (x : Nat). succ x) 4"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["normal"] == "5"
        assert document["engine"] == "subst"

    def test_compile_json(self, capsys):
        assert main(["compile", "--json", "-e", r"\ (x : Nat). x"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["verified"] is True
        assert "⟨⟨" in document["target"]
        assert document["verify_steps"] >= 0
        assert any("Theorem 5.6" in note for note in document["diagnostics"])

    def test_compile_json_no_verify(self, capsys):
        assert main(["compile", "--json", "--no-verify", "-e", r"\ (x : Nat). x"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["verified"] is False

    def test_json_error_still_plain(self, capsys):
        assert main(["check", "--json", "-e", "0 0"]) == 1
        assert "error" in capsys.readouterr().err


class TestLink:
    IMPORTS = ["--assume", "n : Nat", "--import", "n=41"]

    def test_link_plain(self, capsys):
        assert main(["link", "-e", "succ n", *self.IMPORTS]) == 0
        out = capsys.readouterr().out
        assert "linked : 42" in out  # succ 41 renders as the literal
        assert "type   : Nat" in out

    def test_link_json(self, capsys):
        assert main(["link", "--json", "-e", "succ n", *self.IMPORTS]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["term"] == "42"
        assert document["type"] == "Nat"
        assert any("1 import(s)" in note for note in document["diagnostics"])

    def test_link_missing_import_fails(self, capsys):
        assert main(["link", "-e", "succ n", "--assume", "n : Nat"]) == 1
        assert "error" in capsys.readouterr().err

    def test_link_malformed_assume_fails(self, capsys):
        assert main(["link", "-e", "0", "--assume", "nonsense"]) == 1
        assert "--assume" in capsys.readouterr().err


class TestRunJson:
    def test_run_json(self, capsys):
        assert main(["run", "--json", "-e", r"(\ (x : Nat). succ x) 41"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["value"] == 42
        assert document["verified"] is True
        assert document["machine_steps"] > 0


class TestBatch:
    def test_batch_jsonl_file(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            '{"id": "a", "kind": "normalize", "program": "(\\\\ (x : Nat). succ x) 41"}\n'
            '{"id": "b", "kind": "check", "program": "\\\\ (x : Nat). x"}\n'
        )
        assert main(["batch", str(jobs)]) == 0
        out = capsys.readouterr().out
        assert "ok   a" in out and "ok   b" in out
        assert "2 job(s)" in out

    def test_batch_json_array_file_with_json_output(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.json"
        jobs.write_text(
            '[{"id": "a", "kind": "normalize", "program": "(\\\\ (x : Nat). succ x) 4"}]'
        )
        assert main(["batch", "--json", str(jobs)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["results"][0]["payload"]["normal"] == "5"
        assert document["stats"]["completed"] == 1

    def test_batch_failed_job_exits_nonzero(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text('{"id": "bad", "kind": "check", "program": "0 0"}\n')
        assert main(["batch", str(jobs)]) == 1
        assert "FAIL bad" in capsys.readouterr().out

    def test_batch_malformed_json_is_a_clean_error(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text('{"kind": "check", "program"\n')
        assert main(["batch", str(jobs)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: bad job stream:")

    def test_batch_unknown_job_field_is_a_clean_error(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text('{"kind": "check", "program": "0", "bogus": 1}\n')
        assert main(["batch", str(jobs)]) == 1
        assert "unknown job fields" in capsys.readouterr().err

    def test_batch_zero_gen_builds_is_a_clean_error(self, capsys):
        assert main(["batch", "--gen-builds", "0"]) == 1
        assert "--gen-builds" in capsys.readouterr().err

    def test_batch_generated_corpus_pooled(self, capsys):
        assert main(
            ["batch", "--gen-seed", "9", "--gen-builds", "2", "--gen-count", "2",
             "--gen-passes", "1", "--workers", "2", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["stats"]["workers"] == 2
        # One reset per build plus the corpus passes.
        kinds = [len(result["payload"]) for result in document["results"]]
        assert len(kinds) == 2 * (1 + 2)


class TestArgumentHandling:
    def test_requires_input(self):
        with pytest.raises(SystemExit):
            main(["check"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestChaosBatch:
    def test_chaos_seed_injects_a_deterministic_plan(self, capsys):
        argv = [
            "batch", "--gen-seed", "5", "--gen-builds", "2", "--gen-count", "2",
            "--gen-passes", "1", "--workers", "2", "--chaos-seed", "11", "--json",
        ]
        # The generated plan always includes one poison job, so the batch
        # reports failure — but with a structured dead-letter document, not
        # a hang or a crashed pool.
        assert main(list(argv)) == 1
        document = json.loads(capsys.readouterr().out)
        chaos = document["stats"]["chaos"]
        assert chaos["seed"] == 11
        assert chaos["faults"] > 0
        letters = [
            result for result in document["results"]
            if not result["ok"] and result["error"].get("dead_letter")
        ]
        assert letters and document["stats"]["exhausted"] == len(letters)
        # Same seed, same corpus: the second run draws the identical plan
        # and diverges on the identical jobs.
        assert main(list(argv)) == 1
        second = json.loads(capsys.readouterr().out)
        assert second["stats"]["chaos"] == chaos
        assert second["stats"]["exhausted"] == document["stats"]["exhausted"]


class TestServeConnect:
    def test_batch_connect_streams_through_a_live_endpoint(self, tmp_path, capsys):
        from repro.service import serve_background

        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            '{"id": "a", "kind": "normalize", "program": "(\\\\ (x : Nat). succ x) 41"}\n'
            '{"id": "b", "kind": "check", "program": "0 0"}\n'
        )
        assert main(["batch", "--json", str(jobs)]) == 1  # b is ill-typed
        solo = json.loads(capsys.readouterr().out)
        with serve_background(min_workers=1) as server:
            address = f"{server.host}:{server.port}"
            assert main(["batch", "--json", "--connect", address, str(jobs)]) == 1
        remote = json.loads(capsys.readouterr().out)
        # The deterministic halves are byte-identical to the local run.
        strip = lambda results: [
            {k: v for k, v in doc.items() if k != "meta"} for doc in results
        ]
        assert strip(remote["results"]) == strip(solo["results"])
        # The --json stats surface the pool *and* endpoint telemetry.
        assert remote["stats"]["connect"] == address
        assert remote["stats"]["client"]["reconnects"] == 0
        assert remote["stats"]["pool"]["completed"] >= 2
        assert remote["stats"]["endpoint"]["accepted"] >= 2

    def test_batch_connect_with_chaos_seed_heals_to_identical_bytes(
        self, tmp_path, capsys
    ):
        from repro.service import serve_background

        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            "\n".join(
                json.dumps(
                    {"id": f"c{i}", "kind": "normalize",
                     "program": "(\\ (x : Nat). succ x) 41"}
                )
                for i in range(8)
            )
            + "\n"
        )
        assert main(["batch", "--json", str(jobs)]) == 0
        solo = json.loads(capsys.readouterr().out)
        with serve_background(min_workers=1) as server:
            address = f"{server.host}:{server.port}"
            assert main(
                ["batch", "--json", "--connect", address,
                 "--chaos-seed", "13", str(jobs)]
            ) == 0
        chaotic = json.loads(capsys.readouterr().out)
        strip = lambda results: [
            {k: v for k, v in doc.items() if k != "meta"} for doc in results
        ]
        # Client-side connection chaos changes nothing but timing.
        assert strip(chaotic["results"]) == strip(solo["results"])
        assert chaotic["stats"]["chaos"]["seed"] == 13


class TestStoreMaintenance:
    def _seeded_store(self, tmp_path):
        path = tmp_path / "memo.sqlite"
        jobs = tmp_path / "jobs.jsonl"
        jobs.write_text(
            '{"id": "a", "kind": "normalize", "program": "(\\\\ (x : Nat). succ x) 41"}\n'
        )
        assert main(["batch", "--memo-store", str(path), str(jobs)]) == 0
        return path

    def test_store_stat_plain_and_json(self, tmp_path, capsys):
        path = self._seeded_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "stat", str(path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "valid" in out
        assert main(["store", "stat", str(path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["entries"] == document["valid"] > 0
        assert document["invalid"] == 0

    def test_store_scrub_and_compact(self, tmp_path, capsys):
        path = self._seeded_store(tmp_path)
        capsys.readouterr()
        assert main(["store", "scrub", str(path), "--json"]) == 0
        scrub = json.loads(capsys.readouterr().out)
        assert scrub["salvaged"] == scrub["scanned"] > 0
        assert scrub["discarded"] == 0
        assert main(["store", "compact", str(path), "--json"]) == 0
        compact = json.loads(capsys.readouterr().out)
        assert compact["removed"] == 0 and compact["entries"] > 0

    def test_store_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["store", "stat", str(tmp_path / "missing.sqlite")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "missing.sqlite" in err
