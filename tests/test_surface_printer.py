"""Round-trip tests for the surface printer: parse(to_surface(e)) α= e."""

import pytest

from repro import cc
from repro.common.names import fresh
from repro.gen import TermGenerator
from repro.surface import parse_term, to_surface
from tests.corpus import CORPUS, corpus_ids


class TestCorpusRoundTrips:
    @pytest.mark.parametrize("name, ctx, term", CORPUS, ids=corpus_ids())
    def test_roundtrip(self, name, ctx, term):
        assert cc.alpha_equal(parse_term(to_surface(term)), term)


class TestGeneratedRoundTrips:
    @pytest.mark.parametrize("seed", range(30))
    def test_roundtrip(self, seed):
        triple = TermGenerator(seed + 777_000).well_typed_term()
        if triple is None:
            pytest.skip("no term")
        _, term, _ = triple
        assert cc.alpha_equal(parse_term(to_surface(term)), term)


class TestSanitization:
    def test_machine_bound_names(self):
        name = fresh("q")
        term = cc.Lam(name, cc.Nat(), cc.Var(name))
        text = to_surface(term)
        assert "$" not in text
        assert cc.alpha_equal(parse_term(text), term)

    def test_machine_free_names(self):
        term = cc.Var(fresh("free"))
        text = to_surface(term)
        assert "$" not in text
        parse_term(text)  # lexable

    def test_collision_during_sanitize(self):
        # λ q$N : Nat. λ q_N? … — sanitizer must avoid introduced clashes.
        machine = fresh("q")
        human = f"q_{machine.split('$')[1]}"
        term = cc.Lam(machine, cc.Nat(), cc.Lam(human, cc.Nat(), cc.Var(machine)))
        text = to_surface(term)
        assert cc.alpha_equal(parse_term(text), term)


class TestPrecedence:
    @pytest.mark.parametrize(
        "source",
        [
            "f (g x)",
            "(Nat -> Nat) -> Nat",
            "forall (A : Type), (A -> A) -> A",
            r"\ (f : Nat -> Nat). f 0",
            "succ (succ x)",
            "fst (snd p)",
            "(f x) y z",
            "let y = f 0 : Nat in <y, y> as (exists (a : Nat), Nat)",
            "if f x then 1 else g y",
            r"natelim(\ (k : Nat). Nat, 0, s, succ n)",
        ],
    )
    def test_reparse_stable(self, source):
        term = parse_term(source)
        assert cc.alpha_equal(parse_term(to_surface(term)), term)
