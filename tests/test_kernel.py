"""Tests for the shared term kernel (:mod:`repro.kernel`).

Covers the tentpole invariants:

* hash-consing / interning — ``intern(a) is intern(b)`` exactly for
  α-equivalent builds, in both calculi;
* cached free variables — agreement with a reference recursive
  implementation over the whole test corpus, plus O(1) reuse;
* memoized normalization — identical results and *identical step/fuel
  accounting* between cold and warm runs;
* cache invalidation — ``reset_fresh_counter`` clears every kernel cache;
* deep-term regressions — ``subterms`` / ``term_size`` / ``free_vars``
  survive ~10k-node left-nested application spines without hitting the
  recursion limit.
"""

from __future__ import annotations

import pytest

from repro import cc, cccc
from repro.cc import prelude
from repro.common.names import reset_fresh_counter
from repro.kernel.budget import Budget
from repro.kernel.memo import NORMALIZATION_CACHE, context_token

from corpus import CORPUS, corpus_ids

SPINE_DEPTH = 10_000


def _app_spine(mod, depth: int):
    """A left-nested application spine ``x y y y …`` of ``depth`` nodes."""
    term = mod.Var("x")
    for _ in range(depth):
        term = mod.App(term, mod.Var("y"))
    return term


# --------------------------------------------------------------------------
# Interning / hash-consing invariants.
# --------------------------------------------------------------------------


class TestInterning:
    def test_intern_is_idempotent_on_object(self):
        term = cc.Lam("x", cc.Nat(), cc.Var("x"))
        assert cc.intern(term) is cc.intern(term)

    def test_alpha_identical_builds_intern_to_same_object(self):
        left = cc.Lam("x", cc.Nat(), cc.Var("x"))
        right = cc.Lam("x", cc.Nat(), cc.Var("x"))
        assert left is not right
        assert cc.intern(left) is cc.intern(right)

    def test_alpha_equivalent_builds_intern_to_same_object(self):
        left = cc.Lam("x", cc.Nat(), cc.Var("x"))
        right = cc.Lam("y", cc.Nat(), cc.Var("y"))
        assert cc.intern(left) is cc.intern(right)

    def test_distinct_terms_intern_to_distinct_objects(self):
        bound = cc.Lam("x", cc.Nat(), cc.Var("x"))
        free = cc.Lam("x", cc.Nat(), cc.Var("y"))
        assert cc.intern(bound) is not cc.intern(free)

    def test_intern_preserves_alpha_class(self):
        term = cc.Lam("x", cc.Nat(), cc.Lam("y", cc.Nat(), cc.Var("x")))
        assert cc.alpha_equal(cc.intern(term), term)

    def test_intern_respects_crossed_binders(self):
        left = cc.Lam("x", cc.Nat(), cc.Lam("y", cc.Nat(), cc.Var("x")))
        right = cc.Lam("y", cc.Nat(), cc.Lam("x", cc.Nat(), cc.Var("y")))
        wrong = cc.Lam("y", cc.Nat(), cc.Lam("x", cc.Nat(), cc.Var("x")))
        assert cc.intern(left) is cc.intern(right)
        assert cc.intern(left) is not cc.intern(wrong)

    @pytest.mark.parametrize(("name", "ctx", "term"), CORPUS, ids=corpus_ids())
    def test_intern_matches_alpha_equal_over_corpus(self, name, ctx, term):
        rep = cc.intern(term)
        assert cc.alpha_equal(rep, term)
        assert cc.intern(rep) is rep

    def test_hashcons_constructor_shares_nodes(self):
        one = cc.hashcons(cc.App, cc.hashcons(cc.Var, "f"), cc.hashcons(cc.Var, "a"))
        two = cc.hashcons(cc.App, cc.hashcons(cc.Var, "f"), cc.hashcons(cc.Var, "a"))
        assert one is two

    def test_cccc_intern_multi_binder_code(self):
        left = cccc.CodeLam("e", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        right = cccc.CodeLam("env", cccc.Unit(), "arg", cccc.Nat(), cccc.Var("arg"))
        wrong = cccc.CodeLam("e", cccc.Unit(), "x", cccc.Nat(), cccc.Var("e"))
        assert cccc.intern(left) is cccc.intern(right)
        assert cccc.intern(left) is not cccc.intern(wrong)
        assert cccc.alpha_equal(cccc.intern(left), left)

    def test_intern_keeps_free_variable_names(self):
        term = cc.App(cc.Var("f"), cc.Lam("x", cc.Nat(), cc.Var("free")))
        assert cc.free_vars(cc.intern(term)) == {"f", "free"}

    def test_intern_with_free_canonical_named_variable(self):
        # Destructuring a representative releases its canonical binder
        # names as *free* variables; re-interning must not capture them
        # (the canonical prefix escalates instead).
        rep = cc.intern(cc.Lam("y", cc.Star(), cc.Var("y")))
        loose = cc.Lam("z", cc.Star(), rep.body)  # body is a free canonical var
        assert not cc.alpha_equal(loose, rep)
        assert cc.intern(loose) is not rep
        assert cc.alpha_equal(cc.intern(loose), loose)
        assert cc.intern(cc.Lam("w", cc.Star(), rep.body)) is cc.intern(loose)


# --------------------------------------------------------------------------
# Cached free variables vs. a reference recursive implementation.
# --------------------------------------------------------------------------


def _reference_free_vars(lang, term, bound=frozenset()):
    """Straightforward recursive free-variable computation over node specs."""
    if isinstance(term, lang.var_cls):
        return set() if term.name in bound else {term.name}
    spec = lang.spec(term)
    out: set[str] = set()
    for child in spec.children:
        names = {getattr(term, b) for b in child.binders}
        out |= _reference_free_vars(lang, getattr(term, child.attr), bound | names)
    return out


class TestCachedFreeVars:
    @pytest.mark.parametrize(("name", "ctx", "term"), CORPUS, ids=corpus_ids())
    def test_agrees_with_reference_over_corpus(self, name, ctx, term):
        from repro.cc.ast import LANGUAGE

        assert cc.free_vars(term) == _reference_free_vars(LANGUAGE, term)
        # And for every subterm, which exercises the bottom-up fill.
        for sub in cc.subterms(term):
            assert cc.cached_free_vars(sub) == _reference_free_vars(LANGUAGE, sub)

    def test_agrees_on_converted_corpus_terms(self):
        from repro.cccc.ast import LANGUAGE as TARGET
        from repro.closconv.pipeline import compile_term

        for name, ctx, term in CORPUS[:8]:
            if len(ctx) > 0:
                continue
            result = compile_term(ctx, term)
            assert cccc.free_vars(result.target) == _reference_free_vars(TARGET, result.target)

    def test_cache_returns_same_frozenset_object(self):
        term = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
        assert cc.cached_free_vars(term) is cc.cached_free_vars(term)

    def test_free_vars_returns_fresh_mutable_set(self):
        term = cc.App(cc.Var("f"), cc.Var("a"))
        first = cc.free_vars(term)
        first.clear()  # caller mutations must not poison the cache
        assert cc.free_vars(term) == {"f", "a"}

    def test_multi_binder_scoping(self):
        term = cccc.CodeType("e", cccc.Var("E"), "x", cccc.Var("e"), cccc.Var("x"))
        assert cccc.free_vars(term) == {"E"}


# --------------------------------------------------------------------------
# Memoized normalization: results and fuel accounting.
# --------------------------------------------------------------------------


class TestMemoizedNormalization:
    def test_warm_normalize_returns_identical_object(self, empty):
        term = cc.make_app(prelude.nat_add, cc.nat_literal(6), cc.nat_literal(7))
        cold = cc.normalize(empty, term)
        warm = cc.normalize(empty, term)
        assert warm is cold
        assert cc.nat_value(warm) == 13

    def test_step_counts_identical_cold_and_warm(self, empty):
        term = cc.make_app(prelude.nat_add, cc.nat_literal(5), cc.nat_literal(5))
        _, cold_steps = cc.normalize_counting(empty, term)
        _, warm_steps = cc.normalize_counting(empty, term)
        assert cold_steps == warm_steps > 0

    def test_warm_hit_still_exhausts_small_budget(self, empty):
        from repro.common.errors import NormalizationDepthExceeded

        term = cc.make_app(prelude.nat_add, cc.nat_literal(20), cc.nat_literal(20))
        cc.normalize(empty, term)  # fill the cache
        with pytest.raises(NormalizationDepthExceeded):
            cc.normalize(empty, term, Budget(remaining=3))

    def test_context_definitions_distinguish_entries(self):
        term = cc.Var("n")
        with_two = cc.Context.empty().define("n", cc.nat_literal(2), cc.Nat())
        with_three = cc.Context.empty().define("n", cc.nat_literal(3), cc.Nat())
        assert cc.nat_value(cc.normalize(with_two, term)) == 2
        assert cc.nat_value(cc.normalize(with_three, term)) == 3

    def test_assumption_shadows_definition_in_token(self):
        two = cc.nat_literal(2)
        defined = cc.Context.empty().define("n", two, cc.Nat())
        shadowed = defined.extend("n", cc.Nat())
        assert context_token(defined) != context_token(shadowed)
        assert cc.normalize(shadowed, cc.Var("n")) == cc.Var("n")
        assert cc.nat_value(cc.normalize(defined, cc.Var("n"))) == 2

    def test_equal_definition_objects_share_token(self):
        two = cc.nat_literal(2)
        first = cc.Context.empty().define("n", two, cc.Nat())
        second = cc.Context.empty().define("n", two, cc.Nat())
        assert context_token(first) == context_token(second)

    def test_binder_extensions_share_token(self, empty):
        extended = empty.extend("x", cc.Nat()).extend("y", cc.Bool())
        assert context_token(empty) == context_token(extended)

    @pytest.mark.parametrize(("name", "ctx", "term"), CORPUS, ids=corpus_ids())
    def test_normal_forms_have_no_reducts(self, name, ctx, term):
        """Drift guard for the `_WHNF_ACTIVE` memo short-circuits.

        If a reducible head class were ever missing from the short-circuit
        tuples in `cc.reduce`/`cccc.reduce`, normalize would silently leave
        redexes behind; enumerating the one-step relation on the normal
        form catches that no matter where the redex hides.
        """
        nf = cc.normalize(ctx, term)
        assert cc.reducts(ctx, nf) == []

    def test_cccc_normal_forms_have_no_reducts(self, empty_target):
        code = cccc.CodeLam("e", cccc.Unit(), "x", cccc.Nat(), cccc.Succ(cccc.Var("x")))
        term = cccc.Let(
            "p",
            cccc.Pair(cccc.nat_literal(1), cccc.BoolLit(True),
                      cccc.Sigma("n", cccc.Nat(), cccc.Bool())),
            cccc.Sigma("n", cccc.Nat(), cccc.Bool()),
            cccc.If(cccc.Snd(cccc.Var("p")),
                    cccc.App(cccc.Clo(code, cccc.UnitVal()), cccc.Fst(cccc.Var("p"))),
                    cccc.Zero()),
        )
        nf = cccc.normalize(empty_target, term)
        assert cccc.nat_value(nf) == 2
        assert cccc.reducts(empty_target, nf) == []

    def test_deep_context_token_is_linear(self, empty):
        """Incremental context fingerprints survive deep binder nests."""
        ctx = empty.define("base", cc.nat_literal(1), cc.Nat())
        for index in range(1500):  # far past the recursion limit
            ctx = ctx.extend(f"b{index}", cc.Nat())
        assert context_token(ctx) == context_token(ctx)
        assert cc.nat_value(cc.normalize(ctx, cc.Var("base"))) == 1

    def test_cccc_warm_normalize(self, empty_target):
        code = cccc.CodeLam("e", cccc.Unit(), "x", cccc.Nat(), cccc.Succ(cccc.Var("x")))
        term = cccc.App(cccc.Clo(code, cccc.UnitVal()), cccc.nat_literal(3))
        cold = cccc.normalize(empty_target, term)
        assert cccc.nat_value(cold) == 4
        assert cccc.normalize(empty_target, term) is cold


# --------------------------------------------------------------------------
# Reset semantics.
# --------------------------------------------------------------------------


class TestReset:
    def test_reset_clears_kernel_caches(self, empty):
        from repro.cc.ast import LANGUAGE
        from repro.kernel.cache import cache_stats

        term = cc.make_app(prelude.nat_add, cc.nat_literal(4), cc.nat_literal(4))
        cc.normalize(empty, term)
        cc.intern(term)
        assert len(LANGUAGE.fv_cache) > 0
        assert len(NORMALIZATION_CACHE) > 0
        reset_fresh_counter()
        stats = cache_stats()
        assert stats["cc.fv"] == 0
        assert stats["cc.hashcons"] == 0
        assert stats["kernel.normalization"] == 0

    def test_reset_invalidates_interned_representatives(self):
        term = cc.Lam("x", cc.Nat(), cc.Var("x"))
        before = cc.intern(term)
        reset_fresh_counter()
        after = cc.intern(term)
        assert after is not before  # the old table is gone…
        assert cc.alpha_equal(after, before)  # …but the α-class is unchanged
        assert cc.intern(term) is after

    def test_normalization_recomputes_after_reset(self, empty):
        term = cc.make_app(prelude.nat_add, cc.nat_literal(2), cc.nat_literal(2))
        _, cold = cc.normalize_counting(empty, term)
        reset_fresh_counter()
        _, recomputed = cc.normalize_counting(empty, term)
        assert cold == recomputed


# --------------------------------------------------------------------------
# Deep-term regressions: iterative traversals on ~10k-node spines.
# --------------------------------------------------------------------------


class TestDeepTerms:
    def test_cc_deep_spine_traversals(self):
        spine = _app_spine(cc, SPINE_DEPTH)
        assert cc.term_size(spine) == 2 * SPINE_DEPTH + 1
        assert sum(1 for _ in cc.subterms(spine)) == 2 * SPINE_DEPTH + 1
        assert cc.free_vars(spine) == {"x", "y"}

    def test_cccc_deep_spine_traversals(self):
        spine = _app_spine(cccc, SPINE_DEPTH)
        assert cccc.term_size(spine) == 2 * SPINE_DEPTH + 1
        assert sum(1 for _ in cccc.subterms(spine)) == 2 * SPINE_DEPTH + 1
        assert cccc.free_vars(spine) == {"x", "y"}

    def test_deep_succ_chain(self):
        deep = cc.nat_literal(SPINE_DEPTH)
        assert cc.term_size(deep) == SPINE_DEPTH + 1
        assert cc.free_vars(deep) == set()

    def test_deep_spine_intern(self):
        left = _app_spine(cc, SPINE_DEPTH)
        right = _app_spine(cc, SPINE_DEPTH)
        assert cc.intern(left) is cc.intern(right)


class TestDeepPretty:
    """The pretty printers are iterative: ~10k-deep terms render fine.

    Error messages embed pretty-printed terms, so a deep ill-typed program
    must not turn a `TypeCheckError` into a `RecursionError`.
    """

    def test_cc_deep_spine_pretty(self):
        spine = _app_spine(cc, SPINE_DEPTH)
        text = cc.pretty(spine)
        assert text.startswith("x y") and text.endswith(" y")

    def test_cc_deep_numeral_pretty(self):
        assert cc.pretty(cc.nat_literal(SPINE_DEPTH)) == str(SPINE_DEPTH)

    def test_cc_deep_stuck_succ_pretty(self):
        term = cc.Var("k")
        for _ in range(SPINE_DEPTH):
            term = cc.Succ(term)
        text = cc.pretty(term)
        assert text.startswith("succ (succ (") and text.endswith("k" + ")" * (SPINE_DEPTH - 1))

    def test_cc_deep_lam_nest_pretty(self):
        body = cc.Var("x0")
        for index in range(SPINE_DEPTH - 1, -1, -1):
            body = cc.Lam(f"x{index}", cc.Nat(), body)
        text = cc.pretty(body)
        assert text.startswith("λ (x0 : Nat). ")

    def test_cccc_deep_pair_tower_pretty(self):
        annot = cccc.Sigma("t", cccc.Nat(), cccc.Nat())
        tower = cccc.Zero()
        for _ in range(SPINE_DEPTH):
            tower = cccc.Pair(tower, cccc.Zero(), annot)
        text = cccc.pretty(tower)
        assert text.startswith("⟨" * SPINE_DEPTH + "0")

    def test_cccc_deep_clo_nest_pretty(self):
        term = cccc.Var("f")
        for _ in range(SPINE_DEPTH):
            term = cccc.Clo(term, cccc.UnitVal())
        text = cccc.pretty(term)
        assert text.startswith("⟨⟨" * 2)

    def test_surface_printer_deep_spine(self):
        from repro.surface.printer import to_surface

        spine = _app_spine(cc, SPINE_DEPTH)
        assert to_surface(spine).startswith("x y")

    def test_surface_printer_deep_binders_round_trip_prefix(self):
        from repro.surface.printer import to_surface

        body = cc.Var("x0")
        for index in range(SPINE_DEPTH - 1, -1, -1):
            body = cc.Lam(f"x{index}", cc.Nat(), body)
        assert to_surface(body).startswith("\\ (x0 : Nat). ")

    def test_deep_type_error_message_prints(self, empty):
        # An ill-typed program whose error message embeds a ~10k-node-deep
        # subterm: the failure must stay a TypeCheckError, not become a
        # RecursionError inside the pretty printer.
        from repro.common.errors import TypeCheckError

        deep = cc.nat_literal(SPINE_DEPTH)
        term = cc.App(cc.Zero(), deep)
        with pytest.raises(TypeCheckError) as excinfo:
            cc.infer(empty, term)
        assert str(excinfo.value)
