"""Tests for the closure-conversion translation itself (paper Figure 9)."""

import pytest

from repro import cc, cccc
from repro.cc import prelude
from repro.closconv import compile_term, dependent_free_vars, translate, translate_context
from repro.closconv.pipeline import TypePreservationViolation, delta_expand
from repro.common.errors import TranslationError, TypeCheckError
from repro.surface import parse_term
from tests.corpus import CLOSED_GROUND_PROGRAMS, CORPUS, closed_ground_ids, corpus_ids


class TestStructuralCases:
    """Every non-λ case of Figure 9 is a homomorphic walk."""

    def test_var(self, empty):
        ctx = empty.extend("x", cc.Nat())
        assert translate(ctx, cc.Var("x")) == cccc.Var("x")

    def test_star(self, empty):
        assert translate(empty, cc.Star()) == cccc.Star()

    def test_pi(self, empty):
        result = translate(empty, parse_term("forall (A : Type), A -> A"))
        assert isinstance(result, cccc.Pi)
        assert result.domain == cccc.Star()

    def test_app(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat())).extend("x", cc.Nat())
        result = translate(ctx, cc.App(cc.Var("f"), cc.Var("x")))
        assert result == cccc.App(cccc.Var("f"), cccc.Var("x"))

    def test_let(self, empty):
        result = translate(empty, parse_term("let x = 0 : Nat in x"))
        assert result == cccc.Let("x", cccc.Zero(), cccc.Nat(), cccc.Var("x"))

    def test_sigma_pair_projections(self, empty):
        source = parse_term("fst (<3, true> as (exists (x : Nat), Bool))")
        result = translate(empty, source)
        assert isinstance(result, cccc.Fst)
        assert isinstance(result.pair, cccc.Pair)

    def test_ground(self, empty):
        assert translate(empty, cc.nat_literal(3)) == cccc.nat_literal(3)
        assert translate(empty, cc.BoolLit(True)) == cccc.BoolLit(True)
        assert translate(empty, parse_term("if true then 1 else 0")) == cccc.If(
            cccc.BoolLit(True), cccc.nat_literal(1), cccc.Zero()
        )


class TestLambdaCase:
    """The [CC-Lam] case: closures, environments, and their types."""

    def test_closed_lambda_gets_unit_env(self, empty):
        result = translate(empty, parse_term(r"\ (x : Nat). x"))
        assert isinstance(result, cccc.Clo)
        assert result.env == cccc.UnitVal()
        assert isinstance(result.code, cccc.CodeLam)
        assert result.code.env_type == cccc.Unit()

    def test_captured_term_variable(self, empty):
        ctx = empty.extend("y", cc.Nat())
        result = translate(ctx, parse_term(r"\ (x : Nat). y"))
        assert isinstance(result, cccc.Clo)
        values = cccc.tuple_values(result.env)
        assert values == [cccc.Var("y")]

    def test_captured_type_variable_in_annotation(self, empty):
        # The paper's Section 3 example: the type variable A occurs in the
        # *annotation*, and must still be captured.
        ctx = empty.extend("A", cc.Star())
        result = translate(ctx, parse_term(r"\ (x : A). x"))
        assert cccc.tuple_values(result.env) == [cccc.Var("A")]

    def test_environment_is_dependency_ordered(self, empty):
        ctx = empty.extend("A", cc.Star()).extend("a", cc.Var("A"))
        result = translate(ctx, parse_term(r"\ (x : Nat). a"))
        assert cccc.tuple_values(result.env) == [cccc.Var("A"), cccc.Var("a")]

    def test_code_of_translation_is_closed(self, empty):
        ctx = empty.extend("A", cc.Star()).extend("f", cc.arrow(cc.Var("A"), cc.Var("A")))
        result = translate(ctx, parse_term(r"\ (x : A). f x"))
        assert cccc.free_vars(result.code) == set()

    def test_nested_lambdas_nest_closures(self, empty):
        result = translate(empty, prelude.polymorphic_identity)
        assert isinstance(result, cccc.Clo)
        outer_body = result.code.body
        assert isinstance(outer_body, cccc.Clo)  # the inner closure

    def test_binder_shadowing_freed_variable(self, empty):
        # λ x:(x→Nat)… with an outer x captured: binder must be renamed.
        ctx = empty.extend("x", cc.Star())
        term = cc.Lam("x", cc.Var("x"), cc.nat_literal(0))
        result = translate(ctx, term)
        assert isinstance(result, cccc.Clo)
        assert result.code.arg_name != "x"
        cccc.infer(translate_context(ctx), result)  # and it type checks

    def test_ill_typed_function_rejected(self, empty):
        bad = cc.Lam("x", cc.Nat(), cc.App(cc.Zero(), cc.Zero()))
        with pytest.raises(TranslationError):
            translate(empty, bad)


class TestContextTranslation:
    def test_assumptions(self, empty):
        ctx = empty.extend("A", cc.Star()).extend("x", cc.Var("A"))
        target = translate_context(ctx)
        assert target.names() == ["A", "x"]
        assert target.lookup("x").type_ == cccc.Var("A")

    def test_definitions(self, empty):
        ctx = empty.define("two", cc.nat_literal(2), cc.Nat())
        target = translate_context(ctx)
        assert target.lookup("two").definition == cccc.nat_literal(2)

    def test_translated_context_well_formed(self, empty):
        from tests.corpus import CORPUS

        for name, ctx, _ in CORPUS:
            cccc.check_context(translate_context(ctx))


class TestPipeline:
    @pytest.mark.parametrize("name, ctx, term", CORPUS, ids=corpus_ids())
    def test_corpus_compiles_verified(self, name, ctx, term):
        result = compile_term(ctx, term, verify=True)
        assert result.checked_type is not None

    @pytest.mark.parametrize("name, term, expected", CLOSED_GROUND_PROGRAMS, ids=closed_ground_ids())
    def test_ground_values_preserved(self, empty, empty_target, name, term, expected):
        result = compile_term(empty, term)
        value = cccc.normalize(empty_target, result.target)
        observed = value.value if isinstance(value, cccc.BoolLit) else cccc.nat_value(value)
        assert observed == expected

    def test_compile_rejects_ill_typed_source(self, empty):
        with pytest.raises(TypeCheckError):
            compile_term(empty, cc.App(cc.Zero(), cc.Zero()))

    def test_verify_false_skips_target_check(self, empty):
        result = compile_term(empty, prelude.polymorphic_identity, verify=False)
        assert result.checked_type is None
        assert result.target is not None

    def test_delta_expand_option(self, empty):
        ctx = empty.define("two", cc.nat_literal(2), cc.Nat())
        result = compile_term(ctx, cc.Succ(cc.Var("two")), inline_definitions=True)
        assert result.source == cc.Succ(cc.nat_literal(2))

    def test_delta_expand_nested_definitions(self, empty):
        ctx = empty.define("one", cc.nat_literal(1), cc.Nat()).define(
            "two", cc.Succ(cc.Var("one")), cc.Nat()
        )
        expanded = delta_expand(ctx, cc.Var("two"))
        assert cc.free_vars(expanded) == set()
        assert cc.nat_value(cc.normalize(empty, expanded)) == 2

    def test_violation_exception_type(self):
        assert issubclass(TypePreservationViolation, TypeCheckError)


class TestEnvironmentShapes:
    def test_fv_and_env_tuple_agree(self, empty):
        ctx = (
            empty.extend("A", cc.Star())
            .extend("f", cc.arrow(cc.Var("A"), cc.Var("A")))
            .extend("a", cc.Var("A"))
        )
        term = parse_term(r"\ (x : A). f a")
        bindings = dependent_free_vars(ctx, term, cc.infer(ctx, term))
        result = translate(ctx, term)
        values = cccc.tuple_values(result.env)
        assert [v.name for v in values] == [b.name for b in bindings]

    def test_inner_env_contains_outer_binder(self, empty):
        # const: the inner closure's environment holds the outer argument x.
        result = translate(empty, prelude.const_fn(cc.Nat(), cc.Bool()))
        inner = result.code.body
        assert isinstance(inner, cccc.Clo)
        assert cccc.tuple_values(inner.env) == [cccc.Var("x")]
