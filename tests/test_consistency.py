"""Theorems 4.7 (Consistency) and 4.8 (Type Safety) of CC-CC.

Consistency cannot be *proven* by testing, but it can be stress-tested:
no compiled program, hand-written closure, or generated term may inhabit
``False ≜ Π A:⋆. A``, and the model must transport any would-be proof to
CC (where we trust consistency).  Type safety is directly observable:
every closed well-typed CC-CC term normalizes to a value.
"""

import pytest

from repro import cc, cccc
from repro.closconv import compile_term, translate
from repro.gen import TermGenerator
from repro.model import decompile
from repro.properties import (
    check_consistency_of_term,
    check_type_safety_of_target,
    is_target_value,
)
from tests.corpus import CLOSED_GROUND_PROGRAMS, CORPUS


FALSE_TARGET = cccc.Pi("A", cccc.Star(), cccc.Var("A"))


class TestConsistency:
    def test_compiled_corpus_proves_no_false(self):
        for name, ctx, term in CORPUS:
            result = compile_term(ctx, term, verify=False)
            assert check_consistency_of_term(result.target)

    def test_generated_terms_prove_no_false(self):
        for seed in range(40):
            gen = TermGenerator(seed + 4242)
            triple = gen.well_typed_term()
            if triple is None:
                continue
            ctx, term, _ = triple
            target = translate(ctx, term)
            assert check_consistency_of_term(target)

    def test_identity_is_not_a_proof_of_false(self, empty_target):
        poly_id = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "A", cccc.Star(), cccc.Clo(
                cccc.CodeLam(
                    "n2",
                    cccc.Sigma("A", cccc.Star(), cccc.Unit()),
                    "x",
                    cccc.Fst(cccc.Var("n2")),
                    cccc.Var("x"),
                ),
                cccc.Pair(cccc.Var("A"), cccc.UnitVal(), cccc.Sigma("A", cccc.Star(), cccc.Unit())),
            )),
            cccc.UnitVal(),
        )
        assert check_consistency_of_term(poly_id)
        # Its type is True (Π A:⋆. A → A), not False.
        assert not cccc.equivalent(empty_target, cccc.infer(empty_target, poly_id), FALSE_TARGET)

    def test_a_false_proof_would_be_transported(self, empty, empty_target):
        """The proof architecture: IF a closed proof of False existed in
        CC-CC, its decompilation would be a closed CC term; we verify the
        transport machinery on a (well-typed, non-False) stand-in."""
        candidate = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "A", cccc.Star(), cccc.Var("A")),
            cccc.UnitVal(),
        )
        image = decompile(candidate)
        image_type = cc.infer(empty, image)
        target_type = cccc.infer(empty_target, candidate)
        assert cc.equivalent(empty, image_type, decompile(target_type))


class TestTypeSafety:
    @pytest.mark.parametrize("name, term, expected", CLOSED_GROUND_PROGRAMS,
                             ids=[n for n, _, _ in CLOSED_GROUND_PROGRAMS])
    def test_compiled_programs_reach_values(self, empty, name, term, expected):
        compiled = compile_term(empty, term, verify=False).target
        assert check_type_safety_of_target(compiled)

    def test_closures_are_values(self, empty_target):
        clo = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x")), cccc.UnitVal()
        )
        assert is_target_value(clo)

    def test_stuck_terms_are_not_values(self):
        assert not is_target_value(cccc.App(cccc.Zero(), cccc.Zero()))
        assert not is_target_value(cccc.Fst(cccc.Zero()))
        assert not is_target_value(cccc.Var("x"))

    def test_pairs_of_values(self):
        pair = cccc.Pair(cccc.Zero(), cccc.UnitVal(), cccc.Sigma("x", cccc.Nat(), cccc.Unit()))
        assert is_target_value(pair)
        stuck_inside = cccc.Pair(
            cccc.App(cccc.Zero(), cccc.Zero()), cccc.UnitVal(),
            cccc.Sigma("x", cccc.Nat(), cccc.Unit()),
        )
        assert not is_target_value(stuck_inside)

    def test_generated_compiled_terms_are_safe(self):
        checked = 0
        for seed in range(30):
            gen = TermGenerator(seed + 11)
            triple = gen.well_typed_term()
            if triple is None:
                continue
            ctx, term, _ = triple
            if cc.free_vars(term):
                # Type safety is about *closed* programs; close open ones
                # by δ-expanding definitions, else skip.
                from repro.closconv import delta_expand

                term = delta_expand(ctx, term)
                if cc.free_vars(term):
                    continue
            compiled = compile_term(cc.Context.empty(), term, verify=False).target
            assert check_type_safety_of_target(compiled)
            checked += 1
        assert checked > 0
