"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro import cc, cccc


@pytest.fixture
def empty():
    """The empty CC context."""
    return cc.Context.empty()


@pytest.fixture
def empty_target():
    """The empty CC-CC context."""
    return cccc.Context.empty()
