"""The model of CC-CC in CC (paper Figure 8, Lemmas 4.1–4.6).

These tests validate the consistency/type-safety machinery: False
preservation, compositionality, preservation of reduction, coherence, and
type preservation of the *decompilation* ``°``.
"""

import pytest

from repro import cc, cccc
from repro.closconv import compile_term, translate
from repro.model import CHURCH_UNIT_TYPE, CHURCH_UNIT_VALUE, decompile, decompile_context
from repro.properties import (
    check_model_coherence,
    check_model_compositionality,
    check_model_reduction_preservation,
    check_model_type_preservation,
)
from repro.surface import parse_term
from tests.corpus import CORPUS, corpus_ids


def _compiled_corpus():
    """CC-CC terms obtained by compiling the corpus — the natural supply of
    well-typed target terms."""
    out = []
    for name, ctx, term in CORPUS:
        result = compile_term(ctx, term, verify=False)
        out.append((name, result.target_context, result.target))
    return out


_COMPILED = _compiled_corpus()


class TestFigure8Rules:
    def test_code_type_to_curried_pi(self):
        code_type = cccc.CodeType("n", cccc.Unit(), "x", cccc.Nat(), cccc.Nat())
        image = decompile(code_type)
        assert image == cc.Pi("n", CHURCH_UNIT_TYPE, cc.Pi("x", cc.Nat(), cc.Nat()))

    def test_code_to_curried_lambda(self):
        code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        image = decompile(code)
        assert image == cc.Lam("n", CHURCH_UNIT_TYPE, cc.Lam("x", cc.Nat(), cc.Var("x")))

    def test_closure_to_partial_application(self):
        code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        clo = cccc.Clo(code, cccc.UnitVal())
        image = decompile(clo)
        assert isinstance(image, cc.App)
        assert image.arg == CHURCH_UNIT_VALUE

    def test_unit_type_church_encoded(self, empty):
        assert decompile(cccc.Unit()) == CHURCH_UNIT_TYPE
        cc.check(empty, decompile(cccc.UnitVal()), CHURCH_UNIT_TYPE)

    def test_pi_homomorphic(self):
        pi = cccc.Pi("x", cccc.Nat(), cccc.Bool())
        assert decompile(pi) == cc.Pi("x", cc.Nat(), cc.Bool())

    def test_ground_types_fixed(self):
        assert decompile(cccc.Nat()) == cc.Nat()
        assert decompile(cccc.nat_literal(3)) == cc.nat_literal(3)
        assert decompile(cccc.BoolLit(False)) == cc.BoolLit(False)


class TestLemma41FalsePreservation:
    def test_false_is_preserved_syntactically(self):
        false_target = cccc.Pi("A", cccc.Star(), cccc.Var("A"))
        false_source = cc.Pi("A", cc.Star(), cc.Var("A"))
        # The paper stresses `=`, not just ≡.
        assert decompile(false_target) == false_source


class TestLemma42Compositionality:
    @pytest.mark.parametrize(
        "term, name, value",
        [
            (cccc.Succ(cccc.Var("y")), "y", cccc.nat_literal(3)),
            (
                cccc.Clo(
                    cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x")),
                    cccc.Var("e"),
                ),
                "e",
                cccc.UnitVal(),
            ),
            (
                cccc.App(cccc.Var("f"), cccc.Var("y")),
                "f",
                cccc.Clo(
                    cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x")),
                    cccc.UnitVal(),
                ),
            ),
            (cccc.Pair(cccc.Var("y"), cccc.Zero(), cccc.Sigma("x", cccc.Nat(), cccc.Nat())),
             "y", cccc.nat_literal(1)),
        ],
    )
    def test_substitution_commutes(self, term, name, value):
        assert check_model_compositionality(term, name, value)

    def test_on_compiled_programs(self):
        for name, ctx, term in _COMPILED[:10]:
            free = cccc.free_vars(term)
            if not free:
                continue
            target_name = sorted(free)[0]
            assert check_model_compositionality(term, target_name, cccc.Zero())


class TestLemma43ReductionPreservation:
    @pytest.mark.parametrize(
        "name, ctx, term", _COMPILED, ids=[n for n, _, _ in _COMPILED]
    )
    def test_compiled_corpus(self, name, ctx, term):
        assert check_model_reduction_preservation(ctx, term)

    def test_closure_beta_maps_to_cc_betas(self, empty, empty_target):
        """⟨⟨code, env⟩⟩ arg ⊲β … maps to two β steps in CC."""
        code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        redex = cccc.App(cccc.Clo(code, cccc.UnitVal()), cccc.nat_literal(2))
        [reduct] = cccc.head_reducts(empty_target, redex)
        image_redex = decompile(redex)
        image_reduct = decompile(reduct)
        assert cc.equivalent(empty, image_redex, image_reduct)
        # And the CC image really is a nested β-redex.
        head, args = cc.app_spine(image_redex)
        assert isinstance(head, cc.Lam) and len(args) == 2


class TestLemma45Coherence:
    def test_closure_eta_preserved_in_model(self, empty_target):
        """The model must validate the closure η-rule — the paper's note
        that the η rule for closures is preserved by decompilation."""
        tele_sigma = cccc.Sigma("y", cccc.Nat(), cccc.Unit())
        captured = cccc.Clo(
            cccc.CodeLam(
                "n", tele_sigma, "x", cccc.Nat(), cccc.Fst(cccc.Var("n"))
            ),
            cccc.Pair(cccc.nat_literal(5), cccc.UnitVal(), tele_sigma),
        )
        inlined = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.nat_literal(5)),
            cccc.UnitVal(),
        )
        assert check_model_coherence(empty_target, captured, inlined)

    @pytest.mark.parametrize("index", range(0, len(_COMPILED), 3))
    def test_compiled_reducts(self, index):
        name, ctx, term = _COMPILED[index]
        for reduct in cccc.reducts(ctx, term)[:2]:
            assert check_model_coherence(ctx, term, reduct)


class TestLemma46TypePreservation:
    @pytest.mark.parametrize(
        "name, ctx, term", _COMPILED, ids=[n for n, _, _ in _COMPILED]
    )
    def test_compiled_corpus(self, name, ctx, term):
        assert check_model_type_preservation(ctx, term)

    def test_context_decompilation(self, empty_target):
        ctx = empty_target.extend("A", cccc.Star()).extend("x", cccc.Var("A"))
        image = decompile_context(ctx)
        assert image.names() == ["A", "x"]
        cc.check_context(image)

    def test_hand_built_closures(self, empty_target):
        tele_sigma = cccc.Sigma("A", cccc.Star(), cccc.Unit())
        code = cccc.CodeLam(
            "n",
            tele_sigma,
            "x",
            cccc.Fst(cccc.Var("n")),
            cccc.Var("x"),
        )
        ctx = empty_target.extend("A", cccc.Star())
        clo = cccc.Clo(code, cccc.Pair(cccc.Var("A"), cccc.UnitVal(), tele_sigma))
        assert check_model_type_preservation(ctx, clo)
