"""Tests for the CC prelude (encodings used throughout the reproduction)."""

import pytest

from repro import cc
from repro.cc import prelude


class TestLogic:
    def test_false_is_a_small_type(self, empty):
        assert cc.infer(empty, prelude.FALSE) == cc.Star()

    def test_true_prop_inhabited_by_identity(self, empty):
        cc.check(empty, prelude.polymorphic_identity, prelude.TRUE_PROP)

    def test_leibniz_eq_well_formed(self, empty):
        eq = prelude.leibniz_eq(cc.Nat(), cc.nat_literal(1), cc.nat_literal(1))
        assert cc.infer(empty, eq) == cc.Star()

    def test_refl_proves_eq(self, empty):
        eq = prelude.leibniz_eq(cc.Nat(), cc.nat_literal(1), cc.nat_literal(1))
        cc.check(empty, prelude.leibniz_refl(cc.Nat(), cc.nat_literal(1)), eq)

    def test_refl_proves_computed_eq(self, empty):
        """refl : 1+1 = 2 — via [Conv]."""
        sum_ = cc.make_app(prelude.nat_add, cc.nat_literal(1), cc.nat_literal(1))
        eq = prelude.leibniz_eq(cc.Nat(), sum_, cc.nat_literal(2))
        cc.check(empty, prelude.leibniz_refl(cc.Nat(), cc.nat_literal(2)), eq)

    def test_refl_does_not_prove_wrong_eq(self, empty):
        from repro.common.errors import TypeCheckError

        eq = prelude.leibniz_eq(cc.Nat(), cc.nat_literal(1), cc.nat_literal(2))
        with pytest.raises(TypeCheckError):
            cc.check(empty, prelude.leibniz_refl(cc.Nat(), cc.nat_literal(1)), eq)


class TestCombinators:
    def test_types(self, empty):
        assert cc.equivalent(
            empty, cc.infer(empty, prelude.polymorphic_identity), prelude.polymorphic_identity_type
        )
        cc.infer(empty, prelude.const_fn(cc.Nat(), cc.Bool()))
        cc.infer(empty, prelude.compose(cc.Nat(), cc.Bool(), cc.Nat()))
        cc.infer(empty, prelude.twice(cc.Nat()))

    def test_compose_computes(self, empty):
        composed = cc.make_app(
            prelude.compose(cc.Nat(), cc.Nat(), cc.Nat()),
            cc.Lam("a", cc.Nat(), cc.Succ(cc.Var("a"))),
            cc.Lam("b", cc.Nat(), cc.Succ(cc.Succ(cc.Var("b")))),
            cc.nat_literal(0),
        )
        assert cc.nat_value(cc.normalize(empty, composed)) == 3

    def test_twice_computes(self, empty):
        result = cc.make_app(
            prelude.twice(cc.Nat()), cc.Lam("a", cc.Nat(), cc.Succ(cc.Var("a"))), cc.Zero()
        )
        assert cc.nat_value(cc.normalize(empty, result)) == 2


class TestChurch:
    @pytest.mark.parametrize("n", [0, 1, 2, 5])
    def test_numerals_well_typed(self, empty, n):
        cc.check(empty, prelude.church_nat(n), prelude.church_nat_type)

    @pytest.mark.parametrize("m, n", [(0, 0), (1, 2), (3, 4)])
    def test_addition(self, empty, m, n):
        total = cc.make_app(prelude.church_add, prelude.church_nat(m), prelude.church_nat(n))
        assert cc.equivalent(empty, total, prelude.church_nat(m + n))

    def test_church_to_primitive_nat(self, empty):
        applied = cc.make_app(
            prelude.church_nat(4), cc.Nat(), cc.Lam("k", cc.Nat(), cc.Succ(cc.Var("k"))), cc.Zero()
        )
        assert cc.nat_value(cc.normalize(empty, applied)) == 4


class TestArithmetic:
    @pytest.mark.parametrize("m, n", [(0, 0), (0, 3), (2, 0), (3, 4)])
    def test_add(self, empty, m, n):
        total = cc.make_app(prelude.nat_add, cc.nat_literal(m), cc.nat_literal(n))
        assert cc.nat_value(cc.normalize(empty, total)) == m + n

    @pytest.mark.parametrize("n, expected", [(0, 0), (1, 0), (5, 4)])
    def test_pred(self, empty, n, expected):
        result = cc.App(prelude.nat_pred, cc.nat_literal(n))
        assert cc.nat_value(cc.normalize(empty, result)) == expected

    @pytest.mark.parametrize("n, expected", [(0, True), (1, False), (7, False)])
    def test_is_zero(self, empty, n, expected):
        result = cc.normalize(empty, cc.App(prelude.nat_is_zero, cc.nat_literal(n)))
        assert result == cc.BoolLit(expected)


class TestRefinement:
    def test_positive_nat_type(self, empty):
        assert cc.infer(empty, prelude.positive_nat()) == cc.Star()

    @pytest.mark.parametrize("n", [1, 2, 10])
    def test_values_check(self, empty, n):
        cc.check(empty, prelude.positive_nat_value(n), prelude.positive_nat())

    def test_zero_rejected_by_construction(self):
        with pytest.raises(ValueError):
            prelude.positive_nat_value(0)

    def test_fake_zero_witness_ill_typed(self, empty):
        from repro.common.errors import TypeCheckError

        fake = cc.Pair(
            cc.Zero(),
            prelude.leibniz_refl(cc.Bool(), cc.BoolLit(False)),
            prelude.positive_nat(),
        )
        with pytest.raises(TypeCheckError):
            cc.infer(empty, fake)

    def test_projections(self, empty):
        value = prelude.positive_nat_value(4)
        assert cc.nat_value(cc.normalize(empty, cc.Fst(value))) == 4
