"""Theorem 5.6 (Type Preservation): ``Γ ⊢ e : t`` ⟹ ``Γ⁺ ⊢ e⁺ : t⁺``.

The headline theorem, checked by actually running the CC-CC kernel on
compiler output — over the corpus, over targeted dependent-type stress
cases, and over hundreds of randomly generated well-typed programs.
"""

import pytest

from repro import cc, cccc
from repro.cc import prelude
from repro.closconv import compile_term
from repro.gen import GenConfig, TermGenerator
from repro.properties import check_type_preservation
from repro.surface import parse_term
from tests.corpus import CORPUS, corpus_ids


class TestCorpus:
    @pytest.mark.parametrize("name, ctx, term", CORPUS, ids=corpus_ids())
    def test_corpus(self, name, ctx, term):
        assert check_type_preservation(ctx, term)


class TestPaperExamples:
    def test_polymorphic_identity(self, empty):
        """The paper's Section 3 running example, including the check that
        the closure type is equivalent to Π A:⋆. Π x:A. A."""
        result = compile_term(empty, prelude.polymorphic_identity)
        expected = cccc.Pi("A", cccc.Star(), cccc.Pi("x", cccc.Var("A"), cccc.Var("A")))
        assert cccc.equivalent(result.target_context, result.checked_type, expected)

    def test_inner_closure_type_mentions_env(self, empty):
        """The inferred type of the inner closure contains the environment
        substituted per [Clo] — the paper's key synchronization mechanism."""
        ctx = empty.extend("A", cc.Star())
        result = compile_term(ctx, parse_term(r"\ (x : A). x"))
        # The raw inferred type mentions the environment tuple ⟨A, ⟨⟩⟩…
        assert isinstance(result.checked_type, cccc.Pi)
        # …but is definitionally equal to the translated source type.
        assert cccc.equivalent(
            result.target_context,
            result.checked_type,
            cccc.Pi("x", cccc.Var("A"), cccc.Var("A")),
        )

    def test_div_style_precondition(self, empty):
        """The paper's div example shape: a Π whose later arguments are
        proofs about earlier ones."""
        div_type = cc.Pi(
            "x",
            cc.Nat(),
            cc.Pi(
                "y",
                cc.Nat(),
                cc.Pi(
                    "_",
                    prelude.leibniz_eq(cc.Bool(), cc.App(prelude.nat_is_zero, cc.Var("y")), cc.BoolLit(False)),
                    cc.Nat(),
                ),
            ),
        )
        ctx = empty.extend("div", div_type)
        # div 4 2 : Π _:(is_zero 2 = false). Nat — y replaced by 2 ([App]).
        applied = cc.make_app(cc.Var("div"), cc.nat_literal(4), cc.nat_literal(2))
        assert check_type_preservation(ctx, applied)

    def test_proof_term_compilation(self, empty):
        """Compile an actual proof (refl) and its theorem statement."""
        statement = prelude.leibniz_eq(cc.Nat(), cc.nat_literal(2), cc.nat_literal(2))
        proof = prelude.leibniz_refl(cc.Nat(), cc.nat_literal(2))
        cc.check(empty, proof, statement)
        result = compile_term(empty, proof)
        cccc.check(result.target_context, result.target, result.target_type)

    def test_deep_nesting(self, empty):
        term = parse_term(
            r"\ (A : Type) (f : A -> A) (g : A -> A) (x : A). f (g (f x))"
        )
        assert check_type_preservation(empty, term)

    def test_dependent_pair_chain(self, empty):
        assert check_type_preservation(empty, prelude.positive_nat_value(5))

    def test_type_operator_capture(self, empty):
        ctx = empty.extend("F", cc.arrow(cc.Star(), cc.Star())).extend("A", cc.Star())
        term = parse_term(r"\ (x : F A). x")
        assert check_type_preservation(ctx, term)

    def test_impredicative_self_application(self, empty):
        term = parse_term(
            r"\ (f : forall (A : Type), A -> A). f (forall (A : Type), A -> A) f"
        )
        assert check_type_preservation(empty, term)


class TestRandomized:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_programs(self, seed):
        gen = TermGenerator(seed)
        triple = gen.well_typed_term()
        if triple is None:
            pytest.skip("no term generated")
        ctx, term, _ = triple
        assert check_type_preservation(ctx, term)

    @pytest.mark.parametrize("seed", range(20))
    def test_deeper_random_programs(self, seed):
        gen = TermGenerator(seed + 50_000, GenConfig(max_depth=6, context_size=5))
        triple = gen.well_typed_term()
        if triple is None:
            pytest.skip("no term generated")
        ctx, term, _ = triple
        assert check_type_preservation(ctx, term)
