"""Unit tests for the incremental whnf-driven conversion engine.

Covers what the old normalize-then-compare procedure could not do:

* deciding equivalence of 10k-node-deep terms without blowing the Python
  stack (the walk is an explicit work-list, not recursion);
* fail-fast on divergent heads — zero reduction steps spent when the
  outermost constructors already disagree;
* O(1) short-circuits on pointer-shared and previously-interned subterms,
  observable as equivalence succeeding under a budget far too small to
  normalize either side;
* η edge cases in both orders for CC (λ vs neutral) and CC-CC (closure vs
  neutral), and the domain/annotation irrelevance the paper's untyped
  rules prescribe.
"""

from __future__ import annotations

import pytest

from repro import cc, cccc
from repro.cc import prelude
from repro.common.errors import NormalizationDepthExceeded
from repro.common.names import reset_fresh_counter
from repro.kernel.budget import Budget

DEEP = 10_000


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_fresh_counter()
    yield


def _succ_tower(n: int, core: cc.Term) -> cc.Term:
    term = core
    for _ in range(n):
        term = cc.Succ(term)
    return term


def _lam_nest(n: int, base_name: str) -> cc.Term:
    body: cc.Term = cc.Var(base_name + "0")
    for index in range(n - 1, -1, -1):
        body = cc.Lam(f"{base_name}{index}", cc.Nat(), body)
    return body


class TestDeepTerms:
    """The conversion walk survives terms the kernel traversals support."""

    def test_deep_succ_towers_equal(self, empty):
        left = _succ_tower(DEEP, cc.Zero())
        right = _succ_tower(DEEP, cc.Zero())
        assert cc.equivalent(empty, left, right)

    def test_deep_succ_towers_differ_at_core(self, empty):
        left = _succ_tower(DEEP, cc.Zero())
        right = _succ_tower(DEEP, cc.Var("x"))
        assert not cc.equivalent(empty, left, right)

    def test_deep_lambda_nests_alpha_variant(self, empty):
        left = _lam_nest(DEEP, "x")
        right = _lam_nest(DEEP, "y")
        assert cc.equivalent(empty, left, right)

    def test_deep_pair_towers_cccc(self, empty_target):
        annot = cccc.Sigma("t", cccc.Nat(), cccc.Nat())

        def tower(n: int) -> cccc.Term:
            term: cccc.Term = cccc.Zero()
            for _ in range(n):
                term = cccc.Pair(term, cccc.Zero(), annot)
            return term

        assert cccc.equivalent(empty_target, tower(DEEP), tower(DEEP))


class TestFailFast:
    def test_divergent_heads_spend_nothing(self, empty):
        # Two large terms that disagree at the outermost constructor: the
        # engine answers without one reduction step or subterm visit.
        big = _succ_tower(2_000, cc.Zero())
        left = cc.Sigma("x", cc.Nat(), cc.Sigma("y", cc.Nat(), cc.Nat()))
        right = cc.Pi("x", cc.Nat(), cc.Nat())
        budget = Budget()
        assert not cc.equivalent(empty, cc.Pair(big, big, left), cc.Lam("z", right, big), budget)
        assert budget.spent == 0

    def test_shared_subterm_skips_normalization(self, empty):
        # The shared argument would cost thousands of steps to normalize;
        # pointer identity answers before any of them are spent.
        expensive = cc.make_app(prelude.nat_add, cc.nat_literal(40), cc.nat_literal(40))
        left = cc.App(cc.Var("f"), expensive)
        right = cc.App(cc.Var("f"), expensive)
        budget = Budget(remaining=2)  # far too little to run nat_add
        assert cc.equivalent(empty, left, right, budget)

    def test_interned_variants_hit_the_probe(self, empty):
        # α-variants interned beforehand compare via the intern memo —
        # again without touching the (unaffordable) β-redexes inside.
        redex = cc.App(cc.Lam("k", cc.Nat(), cc.Var("k")), cc.nat_literal(30))
        left = cc.Lam("x", cc.Nat(), cc.Pair(cc.Var("x"), redex, cc.Sigma("s", cc.Nat(), cc.Nat())))
        right = cc.Lam("y", cc.Nat(), cc.Pair(cc.Var("y"), redex, cc.Sigma("t", cc.Nat(), cc.Nat())))
        assert cc.intern(left) is cc.intern(right)
        budget = Budget(remaining=0)
        assert cc.equivalent(empty, left, right, budget)
        assert budget.spent == 0


class TestEtaEdgeCases:
    def test_lambda_vs_neutral_both_orders(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        expanded = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
        assert cc.equivalent(ctx, expanded, cc.Var("f"))
        assert cc.equivalent(ctx, cc.Var("f"), expanded)

    def test_lambda_vs_neutral_negative_both_orders(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        constant = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Zero()))
        assert not cc.equivalent(ctx, constant, cc.Var("f"))
        assert not cc.equivalent(ctx, cc.Var("f"), constant)

    def test_eta_under_binder(self, empty):
        # η must also fire below the root, where the walk has crossed a Π.
        ctx = empty.extend("g", cc.arrow(cc.Nat(), cc.arrow(cc.Nat(), cc.Nat())))
        inner = cc.Lam("y", cc.Nat(), cc.App(cc.App(cc.Var("g"), cc.Var("x")), cc.Var("y")))
        left = cc.Lam("x", cc.Nat(), inner)
        right = cc.Lam("x", cc.Nat(), cc.App(cc.Var("g"), cc.Var("x")))
        assert cc.equivalent(ctx, left, right)
        assert cc.equivalent(ctx, right, left)

    def test_shadowed_definition_stays_neutral(self, empty):
        # A binder shadowing a δ-definition must not unfold inside its body.
        ctx = empty.define("x", cc.nat_literal(3), cc.Nat())
        left = cc.Lam("x", cc.Nat(), cc.Var("x"))
        right = cc.Lam("y", cc.Nat(), cc.Var("y"))
        assert cc.equivalent(ctx, left, right)
        assert not cc.equivalent(ctx, left, cc.Lam("y", cc.Nat(), cc.nat_literal(3)))
        # ... while free occurrences still δ-reduce:
        assert cc.equivalent(ctx, cc.Var("x"), cc.nat_literal(3))


def _identity_closure(env_val: cccc.Term, env_type: cccc.Term) -> cccc.Clo:
    code = cccc.CodeLam("env", env_type, "a", cccc.Nat(), cccc.Var("a"))
    return cccc.Clo(code, env_val)


class TestClosureEta:
    def test_different_environments_same_behaviour(self, empty_target):
        # Two identity closures over different environments are equal by
        # [≡-Clo1/2] even though they differ structurally.
        left = _identity_closure(cccc.Zero(), cccc.Nat())
        right = _identity_closure(cccc.BoolLit(True), cccc.Bool())
        assert cccc.equivalent(empty_target, left, right)

    def test_closure_vs_neutral_both_orders(self, empty_target):
        # ⟨⟨λ(e,a). f a, tt⟩⟩ ≡ f for a neutral f, in both orders.
        ctx = empty_target.extend("f", cccc.arrow(cccc.Nat(), cccc.Nat()))
        code = cccc.CodeLam(
            "env", cccc.Unit(), "a", cccc.Nat(), cccc.App(cccc.Var("f"), cccc.Var("a"))
        )
        clo = cccc.Clo(code, cccc.UnitVal())
        assert cccc.equivalent(ctx, clo, cccc.Var("f"))
        assert cccc.equivalent(ctx, cccc.Var("f"), clo)

    def test_closure_vs_neutral_negative(self, empty_target):
        ctx = empty_target.extend("f", cccc.arrow(cccc.Nat(), cccc.Nat()))
        code = cccc.CodeLam(
            "env", cccc.Unit(), "a", cccc.Nat(), cccc.App(cccc.Var("f"), cccc.Zero())
        )
        clo = cccc.Clo(code, cccc.UnitVal())
        assert not cccc.equivalent(ctx, clo, cccc.Var("f"))
        assert not cccc.equivalent(ctx, cccc.Var("f"), clo)

    def test_delta_defined_code_still_opens(self, empty_target):
        # The closure's code position hides behind a definition; the
        # prepare hook exposes it so the η-rule still fires.
        code = cccc.CodeLam("env", cccc.Unit(), "a", cccc.Nat(), cccc.Var("a"))
        ctx = empty_target.define(
            "c", code, cccc.CodeType("env", cccc.Unit(), "a", cccc.Nat(), cccc.Nat())
        )
        left = cccc.Clo(cccc.Var("c"), cccc.UnitVal())
        right = cccc.Clo(code, cccc.UnitVal())
        assert cccc.equivalent(ctx, left, right)

    def test_env_inlining_degrees_equal(self, empty_target):
        # The Section 5.1 shape: one closure captured `zero` in its
        # environment, the other inlined it into the code body.
        captured_code = cccc.CodeLam(
            "env", cccc.Nat(), "a", cccc.Nat(), cccc.App(cccc.App(cccc.Var("add"), cccc.Var("env")), cccc.Var("a"))
        )
        inlined_code = cccc.CodeLam(
            "env", cccc.Unit(), "a", cccc.Nat(), cccc.App(cccc.App(cccc.Var("add"), cccc.Zero()), cccc.Var("a"))
        )
        ctx = empty_target.extend(
            "add", cccc.arrow(cccc.Nat(), cccc.arrow(cccc.Nat(), cccc.Nat()))
        )
        left = cccc.Clo(captured_code, cccc.Zero())
        right = cccc.Clo(inlined_code, cccc.UnitVal())
        assert cccc.equivalent(ctx, left, right)


class TestBudgetSemantics:
    def test_exhaustion_point_is_deterministic(self, empty):
        redex = cc.make_app(prelude.nat_add, cc.nat_literal(16), cc.nat_literal(16))
        reset_fresh_counter()
        with pytest.raises(NormalizationDepthExceeded):
            cc.equivalent(empty, redex, cc.nat_literal(32), Budget(remaining=5))
        # Warm caches replay the recorded fuel and exhaust identically.
        cold = Budget(remaining=5)
        with pytest.raises(NormalizationDepthExceeded):
            cc.equivalent(empty, redex, cc.nat_literal(32), cold)
        assert cold.spent == 5
        assert cold.remaining == 0

    def test_verdicts_replay_steps(self, empty):
        redex = cc.make_app(prelude.nat_add, cc.nat_literal(8), cc.nat_literal(8))
        literal = cc.nat_literal(16)
        first = Budget()
        assert cc.equivalent(empty, redex, literal, first)
        again = Budget()
        assert cc.equivalent(empty, redex, literal, again)
        assert first.spent == again.spent > 0
