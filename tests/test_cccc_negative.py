"""Negative battery for the CC-CC kernel: every rule's failure modes.

Type safety of the target hinges on the kernel *rejecting* bad programs;
each test here is an ill-typed term with a specific broken premise.
"""

import pytest

from repro import cccc
from repro.cccc.ntuple import env_sigma, env_tuple
from repro.common.errors import TypeCheckError


def _expect_reject(ctx, term):
    with pytest.raises(TypeCheckError):
        cccc.infer(ctx, term)


class TestCodeRejections:
    def test_open_body(self, empty_target):
        ctx = empty_target.extend("stray", cccc.Nat())
        _expect_reject(
            ctx, cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("stray"))
        )

    def test_open_env_type(self, empty_target):
        ctx = empty_target.extend("T", cccc.Star())
        _expect_reject(
            ctx, cccc.CodeLam("n", cccc.Var("T"), "x", cccc.Nat(), cccc.Zero())
        )

    def test_open_arg_type(self, empty_target):
        ctx = empty_target.extend("T", cccc.Star())
        _expect_reject(
            ctx, cccc.CodeLam("n", cccc.Unit(), "x", cccc.Var("T"), cccc.Zero())
        )

    def test_env_type_must_be_a_type(self, empty_target):
        _expect_reject(
            empty_target, cccc.CodeLam("n", cccc.Zero(), "x", cccc.Nat(), cccc.Zero())
        )

    def test_arg_type_must_be_a_type(self, empty_target):
        _expect_reject(
            empty_target, cccc.CodeLam("n", cccc.Unit(), "x", cccc.UnitVal(), cccc.Zero())
        )

    def test_ill_typed_body(self, empty_target):
        _expect_reject(
            empty_target,
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.App(cccc.Zero(), cccc.Zero())),
        )

    def test_code_cannot_be_applied_directly(self, empty_target):
        # Code is not a closure; application demands a Π (closure) type.
        code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        _expect_reject(empty_target, cccc.App(code, cccc.Zero()))


class TestCloRejections:
    def test_env_of_wrong_type(self, empty_target):
        code = cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x"))
        _expect_reject(empty_target, cccc.Clo(code, cccc.Zero()))

    def test_env_telescope_value_mismatch(self, empty_target):
        # Telescope Σ(A:⋆, x:A) but values (Nat, true) — true : Bool ≠ Nat.
        tele = [("A", cccc.Star()), ("x", cccc.Var("A"))]
        code = cccc.CodeLam(
            "n", env_sigma(tele), "x2", cccc.Nat(), cccc.Zero()
        )
        bad_env = env_tuple(tele, [cccc.Nat(), cccc.BoolLit(True)])
        _expect_reject(empty_target, cccc.Clo(code, bad_env))

    def test_closure_over_value(self, empty_target):
        _expect_reject(empty_target, cccc.Clo(cccc.Zero(), cccc.UnitVal()))

    def test_closure_over_closure(self, empty_target):
        clo = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x")), cccc.UnitVal()
        )
        _expect_reject(empty_target, cccc.Clo(clo, cccc.UnitVal()))

    def test_applying_closure_to_wrong_argument(self, empty_target):
        clo = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x")), cccc.UnitVal()
        )
        _expect_reject(empty_target, cccc.App(clo, cccc.BoolLit(True)))


class TestUniverseRejections:
    def test_box_untypable(self, empty_target):
        _expect_reject(empty_target, cccc.Box())

    def test_sigma_over_term(self, empty_target):
        _expect_reject(empty_target, cccc.Sigma("x", cccc.Zero(), cccc.Nat()))

    def test_pi_over_term(self, empty_target):
        _expect_reject(empty_target, cccc.Pi("x", cccc.Zero(), cccc.Nat()))

    def test_code_type_over_term(self, empty_target):
        _expect_reject(
            empty_target, cccc.CodeType("n", cccc.Zero(), "x", cccc.Nat(), cccc.Nat())
        )

    def test_large_sigma_not_small(self, empty_target):
        sigma = cccc.Sigma("A", cccc.Star(), cccc.Var("A"))
        assert cccc.infer(empty_target, sigma) == cccc.Box()


class TestStructuralRejections:
    def test_unbound_variable(self, empty_target):
        _expect_reject(empty_target, cccc.Var("ghost"))

    def test_pair_needs_sigma(self, empty_target):
        _expect_reject(empty_target, cccc.Pair(cccc.Zero(), cccc.Zero(), cccc.Nat()))

    def test_fst_of_unit(self, empty_target):
        _expect_reject(empty_target, cccc.Fst(cccc.UnitVal()))

    def test_if_branches_disagree(self, empty_target):
        _expect_reject(
            empty_target,
            cccc.If(cccc.BoolLit(True), cccc.Zero(), cccc.UnitVal()),
        )

    def test_natelim_motive_not_function(self, empty_target):
        _expect_reject(
            empty_target,
            cccc.NatElim(cccc.Zero(), cccc.Zero(), cccc.Zero(), cccc.Zero()),
        )

    def test_let_annotation_mismatch(self, empty_target):
        _expect_reject(
            empty_target,
            cccc.Let("x", cccc.BoolLit(True), cccc.Nat(), cccc.Var("x")),
        )

    def test_succ_of_bool(self, empty_target):
        _expect_reject(empty_target, cccc.Succ(cccc.BoolLit(False)))


class TestMutationRejection:
    """Mutate well-typed compiled programs and confirm the kernel notices.

    A weak form of mutation testing: swapping a closure's environment for
    one of the wrong shape must not slip through.
    """

    def test_swapped_environments(self, empty_target):
        from repro import cc
        from repro.closconv import compile_term

        ctx = cc.Context.empty().extend("y", cc.Nat()).extend("b", cc.Bool())
        nat_capture = compile_term(ctx, cc.Lam("x", cc.Nat(), cc.Var("y"))).target
        bool_capture = compile_term(ctx, cc.Lam("x", cc.Nat(), cc.Var("b"))).target
        target_ctx = compile_term(ctx, cc.Lam("x", cc.Nat(), cc.Var("y"))).target_context
        mutant = cccc.Clo(nat_capture.code, bool_capture.env)
        _expect_reject(target_ctx, mutant)

    def test_truncated_environment(self, empty_target):
        from repro import cc
        from repro.closconv import compile_term

        ctx = cc.Context.empty().extend("A", cc.Star()).extend("a", cc.Var("A"))
        result = compile_term(ctx, cc.Lam("x", cc.Nat(), cc.Var("a")))
        mutant = cccc.Clo(result.target.code, cccc.UnitVal())
        _expect_reject(result.target_context, mutant)
