"""Cross-module integration scenarios exercising the whole library."""

import pytest

from repro import cc, cccc
from repro.baseline import classify_failure, erase, uconvert, ueval
from repro.cc import prelude
from repro.closconv import compile_term
from repro.gen import TermGenerator
from repro.linking import ClosingSubstitution
from repro.machine import hoist, machine_observation, program_context, run
from repro.model import decompile
from repro.properties import check_separate_compilation
from repro.surface import parse_term


class TestFullPipeline:
    """surface → CC → CC-CC → hoist → machine, with every check on."""

    PROGRAMS = [
        (r"(\ (A : Type) (x : A). x) Nat 42", 42),
        (r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 3", 5),
        (r"fst (<9, false> as (exists (x : Nat), Bool))", 9),
        (r"let two = 2 : Nat in natelim(\ (k : Nat). Nat, two, \ (k : Nat) (ih : Nat). succ ih, 3)", 5),
        (r"if (if true then false else true) then 1 else 0", 0),
    ]

    @pytest.mark.parametrize("source, expected", PROGRAMS)
    def test_five_implementations_agree(self, empty, empty_target, source, expected):
        term = parse_term(source)
        # 1. CC normalizer.
        assert cc.nat_value(cc.normalize(empty, term)) == expected
        # 2. CC-CC normalizer on compiled output (verified compile).
        result = compile_term(empty, term)
        assert cccc.nat_value(cccc.normalize(empty_target, result.target)) == expected
        # 3. The machine on the hoisted program (and it re-type-checks).
        program = hoist(result.target)
        program_context(program)
        value, _ = run(program)
        assert machine_observation(value) == expected
        # 4. The untyped baseline.
        assert ueval(uconvert(erase(term))) == expected
        # 5. Back through the model into CC.
        assert cc.nat_value(cc.normalize(empty, decompile(result.target))) == expected


class TestVerifiedLinkingScenario:
    """The paper's introduction scenario as an integration test."""

    def test_proof_carrying_component(self, empty):
        interface = empty.extend("pos", prelude.positive_nat())
        component = parse_term(r"succ (fst pos)")
        gamma = ClosingSubstitution({"pos": prelude.positive_nat_value(3)})
        report = check_separate_compilation(interface, component, gamma)
        assert report.agrees and report.observation == 4

    def test_many_imports(self, empty):
        interface = (
            empty.extend("A", cc.Star())
            .extend("f", cc.arrow(cc.Var("A"), cc.Var("A")))
            .extend("x", cc.Var("A"))
        )
        component = parse_term(r"f (f x)")
        gamma = ClosingSubstitution(
            {
                "A": cc.Nat(),
                "f": parse_term(r"\ (k : Nat). succ k"),
                "x": cc.nat_literal(0),
            }
        )
        report = check_separate_compilation(interface, component, gamma)
        assert report.agrees and report.observation == 2


class TestCompilerVsBaselineCoverage:
    def test_dependent_corpus_headline(self):
        """On the full corpus: Figure 9 is always type-preserving, the
        ∃-encoding only on the simply-typed subset."""
        from tests.corpus import CORPUS

        ours = 0
        baseline = 0
        for name, ctx, term in CORPUS:
            compile_term(ctx, term, verify=True)
            ours += 1
            if classify_failure(ctx, term) == "type-preserving":
                baseline += 1
        assert ours == len(CORPUS)
        assert baseline < ours  # the paper's point, quantified

    def test_random_generated_headline(self):
        compiled = 0
        for seed in range(25):
            triple = TermGenerator(seed + 60_000).well_typed_term()
            if triple is None:
                continue
            ctx, term, _ = triple
            compile_term(ctx, term, verify=True)
            compiled += 1
        assert compiled >= 15


class TestStress:
    def test_wide_environment(self, empty):
        """A function capturing 12 variables — long telescopes."""
        ctx = empty
        for index in range(12):
            ctx = ctx.extend(f"v{index}", cc.Nat())
        body = cc.Var("v0")
        for index in range(1, 12):
            body = cc.make_app(prelude.nat_add, body, cc.Var(f"v{index}"))
        term = cc.Lam("x", cc.Nat(), body)
        result = compile_term(ctx, term)
        assert len(cccc.tuple_values(result.target.env)) == 12

    def test_deep_nesting(self, empty):
        """8 nested lambdas, each capturing all enclosing binders."""
        term = cc.Var("x0")
        for index in range(7, -1, -1):
            term = cc.Lam(f"x{index}", cc.Nat(), term)
        result = compile_term(empty, term)
        applied = result.target
        for index in range(8):
            applied = cccc.App(applied, cccc.nat_literal(index))
        value = cccc.normalize(cccc.Context.empty(), applied)
        assert cccc.nat_value(value) == 0

    def test_church_numeral_tower(self, empty):
        """Compile and run (2+3)+(1+1) on Church numerals through CC-CC."""
        total = cc.make_app(
            prelude.church_add,
            cc.make_app(prelude.church_add, prelude.church_nat(2), prelude.church_nat(3)),
            cc.make_app(prelude.church_add, prelude.church_nat(1), prelude.church_nat(1)),
        )
        to_nat = cc.make_app(
            total, cc.Nat(), cc.Lam("k", cc.Nat(), cc.Succ(cc.Var("k"))), cc.Zero()
        )
        result = compile_term(empty, to_nat)
        assert cccc.nat_value(cccc.normalize(cccc.Context.empty(), result.target)) == 7
