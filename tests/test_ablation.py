"""Ablation studies: the paper's design choices are load-bearing.

Removing Figure 10's dependency closure breaks Theorem 5.6; removing the
closure η-principle breaks Lemma 5.1 — each on exactly the inputs the
paper's discussion predicts.
"""

import pytest

from repro import cc
from repro.cc import prelude
from repro.closconv.ablation import (
    compositionality_without_clo_eta,
    equivalent_without_clo_eta,
    shallow_fv_type_preservation,
)
from repro.properties import check_compositionality, check_type_preservation
from repro.surface import parse_term


class TestShallowFvAblation:
    def test_agrees_on_simply_typed(self, empty):
        """Syntactic FV suffices when types mention no hidden variables."""
        for source in [
            r"\ (x : Nat). x",
            r"\ (x : Nat). \ (y : Bool). x",
            r"(\ (x : Nat). succ x) 4",
        ]:
            term = parse_term(source)
            assert shallow_fv_type_preservation(empty, term)
            assert check_type_preservation(empty, term)

    def test_agrees_when_types_are_syntactically_present(self, empty):
        # A appears in the annotation, so even syntactic FV catches it.
        ctx = empty.extend("A", cc.Star())
        term = parse_term(r"\ (x : A). x")
        assert shallow_fv_type_preservation(ctx, term)

    def test_fails_on_type_only_occurrence(self, empty):
        """C occurs only in f's type: Figure 10 captures it, syntactic FV
        does not, and the ablated compiler produces open code."""
        ctx = empty.extend("C", cc.Star()).extend("f", cc.arrow(cc.Nat(), cc.Var("C")))
        term = parse_term(r"\ (x : Nat). f x")
        assert check_type_preservation(ctx, term)  # the real thing works
        assert not shallow_fv_type_preservation(ctx, term)  # the ablation fails

    def test_fails_on_sigma_dependency(self, empty):
        ctx = empty.extend("A", cc.Star()).extend(
            "p", cc.Sigma("x", cc.Var("A"), cc.Nat())
        )
        term = parse_term(r"\ (w : Nat). fst p")
        assert check_type_preservation(ctx, term)
        assert not shallow_fv_type_preservation(ctx, term)

    def test_fails_on_transitive_chain(self, empty):
        ctx = (
            empty.extend("A", cc.Star())
            .extend("P", cc.arrow(cc.Var("A"), cc.Star()))
            .extend("x", cc.Var("A"))
            .extend("h", cc.App(cc.Var("P"), cc.Var("x")))
        )
        term = parse_term(r"\ (w : Nat). h")
        assert check_type_preservation(ctx, term)
        assert not shallow_fv_type_preservation(ctx, term)


class TestCloEtaAblation:
    def test_eta_needed_for_compositionality(self, empty):
        """The Section 5.1 scenario: environments of different shapes."""
        body = parse_term(r"\ (w : Nat). y")
        args = (empty, "y", cc.Nat(), body, cc.nat_literal(3))
        assert check_compositionality(*args)  # with [≡-Clo]: equal
        assert not compositionality_without_clo_eta(*args)  # without: not

    def test_eta_needed_for_captured_function(self, empty):
        body = parse_term(r"\ (w : Nat). g w")
        value = parse_term(r"\ (k : Nat). succ k")
        args = (empty, "g", cc.arrow(cc.Nat(), cc.Nat()), body, value)
        assert check_compositionality(*args)
        assert not compositionality_without_clo_eta(*args)

    def test_ablated_equivalence_still_sound(self, empty_target):
        """Without η the relation is smaller, never larger: it still
        equates syntactically identical closures and still separates
        different ground values."""
        from repro import cccc

        clo = cccc.Clo(
            cccc.CodeLam("n", cccc.Unit(), "x", cccc.Nat(), cccc.Var("x")),
            cccc.UnitVal(),
        )
        assert equivalent_without_clo_eta(empty_target, clo, clo)
        assert not equivalent_without_clo_eta(
            empty_target, cccc.nat_literal(1), cccc.nat_literal(2)
        )

    def test_ablated_relation_is_a_subset(self, empty_target):
        """Everything the ablated ≡ accepts, the full ≡ accepts too."""
        from repro import cccc
        from repro.closconv import translate

        terms = [
            translate(cc.Context.empty(), parse_term(r"\ (x : Nat). x")),
            translate(cc.Context.empty(), parse_term(r"(\ (x : Nat). succ x) 1")),
            cccc.nat_literal(2),
        ]
        for left in terms:
            for right in terms:
                if equivalent_without_clo_eta(empty_target, left, right):
                    assert cccc.equivalent(empty_target, left, right)


class TestProofPreservation:
    """The new prelude theorem: an inductive proof survives compilation."""

    def test_proof_checks_in_cc(self, empty):
        cc.check(empty, prelude.add_zero_right_proof(), prelude.add_zero_right_theorem())

    def test_proof_compiles_type_preserved(self, empty):
        assert check_type_preservation(empty, prelude.add_zero_right_proof())

    def test_compiled_proof_checks_against_compiled_theorem(self, empty):
        from repro import cccc
        from repro.closconv import compile_term, translate

        result = compile_term(empty, prelude.add_zero_right_proof())
        compiled_theorem = translate(empty, prelude.add_zero_right_theorem())
        cccc.check(result.target_context, result.target, compiled_theorem)

    def test_compiled_proof_computes(self, empty, empty_target):
        """Instantiate the compiled proof at a concrete predicate and watch
        it transport evidence: (add 3 0 = 3) applied at P := Eq-to-3."""
        from repro import cccc
        from repro.closconv import compile_term

        proof = prelude.add_zero_right_proof()
        result = compile_term(empty, proof)
        applied = cccc.App(result.target, cccc.nat_literal(3))
        inferred = cccc.infer(result.target_context, applied)
        expected = compile_term(
            empty,
            prelude.leibniz_eq(
                cc.Nat(),
                cc.make_app(prelude.nat_add, cc.nat_literal(3), cc.Zero()),
                cc.nat_literal(3),
            ),
            verify=False,
        ).target
        assert cccc.equivalent(empty_target, inferred, expected)
