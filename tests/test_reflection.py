"""Section 6: reflection of definitional equivalence.

``e1⁺ ≡ e2⁺ ⟹ e1 ≡ e2`` — with preservation (Lemma 5.4), this is the
paper's conjectured preservation-and-reflection pair for ≡.
"""

import pytest

from repro import cc
from repro.gen import TermGenerator
from repro.properties import check_equivalence_reflection
from repro.surface import parse_term


class TestReflection:
    def test_reflected_on_equivalent_pair(self, empty):
        left = parse_term(r"(\ (x : Nat). succ x) 1")
        right = cc.nat_literal(2)
        assert check_equivalence_reflection(empty, left, right)

    def test_vacuous_on_inequivalent_pair(self, empty):
        assert check_equivalence_reflection(empty, cc.nat_literal(1), cc.nat_literal(2))

    def test_eta_pair(self, empty):
        ctx = empty.extend("f", cc.arrow(cc.Nat(), cc.Nat()))
        expanded = cc.Lam("x", cc.Nat(), cc.App(cc.Var("f"), cc.Var("x")))
        assert check_equivalence_reflection(ctx, expanded, cc.Var("f"))

    def test_compilation_does_not_conflate(self, empty, empty_target):
        """The substantive content: distinct source behaviours stay
        distinct after compilation, across a grid of value pairs."""
        from repro.closconv import translate
        from repro import cccc

        values = [
            cc.nat_literal(0),
            cc.nat_literal(1),
            cc.BoolLit(True),
            cc.Lam("x", cc.Nat(), cc.Var("x")),
            cc.Lam("x", cc.Nat(), cc.Succ(cc.Var("x"))),
        ]
        images = [translate(empty, v) for v in values]
        for i, left in enumerate(images):
            for j, right in enumerate(images):
                if i != j:
                    assert not cccc.equivalent(empty_target, left, right)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_pairs(self, seed):
        gen = TermGenerator(seed + 3_000_000)
        triple = gen.well_typed_term()
        if triple is None:
            pytest.skip("no term")
        ctx, term, _ = triple
        # term vs. each of its reducts: equivalent pair — reflection holds.
        for reduct in cc.reducts(ctx, term)[:2]:
            assert check_equivalence_reflection(ctx, term, reduct)
        # term vs. an unrelated term: usually inequivalent — vacuous or real.
        other = gen.any_term(ctx, 2)
        if other is not None:
            assert check_equivalence_reflection(ctx, term, other)
