"""Separate compilation, end to end (Theorem 5.7 / Corollary 5.8).

A "library" component and an "application" component are developed and
compiled *separately*; the application imports the library through a typed
interface.  We then check, on a grid of inputs, that

    link-then-compile  ≈  compile-then-link

at the ground type Nat — the paper's separate-compilation correctness
theorem, observed experimentally.  The same programs also run through the
hoisted abstract machine as a third implementation to agree with.

Run:  python examples/separate_compilation.py
"""

from repro import cc, cccc
from repro.cc import prelude
from repro.closconv import compile_term, translate
from repro.linking import (
    ClosingSubstitution,
    check_substitution,
    link,
    link_target,
    translate_substitution,
)
from repro.machine import hoist, machine_observation, run
from repro.surface import parse_term


def main() -> None:
    empty = cc.Context.empty()

    # The library exports `add` and a polymorphic `apply_twice`.
    library = {
        "add": prelude.nat_add,
        "apply_twice": parse_term(
            r"\ (A : Type) (f : A -> A) (x : A). f (f x)"
        ),
    }
    interface = (
        empty.extend("add", cc.infer(empty, library["add"]))
        .extend("apply_twice", cc.infer(empty, library["apply_twice"]))
    )

    # The application is written against the *interface*, not the code.
    application = parse_term(
        r"\ (n : Nat). apply_twice Nat (add n) (add n 0)"
    )
    print("application type:", cc.pretty(cc.infer(interface, application)))

    # Compile the application and the library separately.
    compiled_app = compile_term(interface, application)
    gamma = ClosingSubstitution(dict(library))
    check_substitution(interface, gamma)
    gamma_compiled = translate_substitution(gamma)

    print(f"\n{'n':>3} {'source (link→run)':>18} {'target (compile→link→run)':>26} {'machine':>8}")
    for n in range(6):
        argument = cc.nat_literal(n)
        # Source side: link in CC, then run.
        source_program = cc.App(link(interface, application, gamma), argument)
        source_value = cc.nat_value(cc.normalize(empty, source_program))

        # Target side: link the *compiled* pieces in CC-CC, then run.
        target_program = cccc.App(
            link_target(compiled_app.target_context, compiled_app.target, gamma_compiled),
            translate(empty, argument),
        )
        target_value = cccc.nat_value(cccc.normalize(cccc.Context.empty(), target_program))

        # Third opinion: the hoisted machine.
        machine_value = machine_observation(run(hoist(target_program))[0])

        agree = source_value == target_value == machine_value
        print(f"{n:>3} {source_value:>18} {target_value:>26} {machine_value:>8}"
              + ("" if agree else "   MISMATCH!"))
        assert agree

    print("\nall rows agree: linking commutes with compilation (Theorem 5.7).")


if __name__ == "__main__":
    main()
