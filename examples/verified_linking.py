"""Type-checked linking — the paper's motivating scenario (Section 1).

A verified component ``safe_div`` has a dependent interface: its third
argument is a *proof* that the divisor is non-zero (the paper's
``div : Π x:Nat. Π y:Nat. Π _:(y > 0). Nat`` example, built here from the
library's positivity refinement).  We compile the component and then try
to link two clients against the compiled code:

* a well-typed client that supplies the proof — accepted;
* an ill-typed client that passes a divisor with no proof (the "unverified
  OCaml code that segfaults" of the introduction) — *rejected by the CC-CC
  type checker at link time*, which is precisely what type-preserving
  compilation buys.

Run:  python examples/verified_linking.py
"""

from repro import cc, cccc
from repro.cc import prelude
from repro.closconv import compile_term
from repro.common.errors import LinkError
from repro.linking import ClosingSubstitution, check_substitution, link, link_target, translate_substitution
from repro.surface import parse_term


def main() -> None:
    empty = cc.Context.empty()
    positive = prelude.positive_nat()

    # The component is open: it imports a positive number `p`.
    interface = empty.extend("p", positive)
    component = parse_term(r"\ (m : Nat). natelim(\ (k : Nat). Nat, fst p, \ (k : Nat) (ih : Nat). succ ih, m)")
    # component : Nat → Nat, adds the (certified-positive) p to its argument.
    print("component type :", cc.pretty(cc.infer(interface, component)))

    # Compile it separately.  Its CC-CC interface is the translated context.
    result = compile_term(interface, component)
    print("compiled type  :", cccc.pretty(result.target_type))

    # --- Client 1: supplies ⟨3, proof⟩, a genuine positive number. -------
    good = ClosingSubstitution({"p": prelude.positive_nat_value(3)})
    check_substitution(interface, good)  # Γ ⊢ γ — link-time check, source side
    print("client 1 (with proof): source link-check OK")

    linked_source = link(interface, component, good)
    applied = cc.App(linked_source, cc.nat_literal(4))
    print("  source run:", cc.pretty(cc.normalize(empty, applied)))

    # Target side: compile the client value separately, link, run.
    gamma_target = translate_substitution(good)
    linked_target = link_target(result.target_context, result.target, gamma_target)
    applied_target = cccc.App(linked_target, cccc.nat_literal(4))
    print("  target run:", cccc.pretty(cccc.normalize(cccc.Context.empty(), applied_target)))

    # --- Client 2: tries to pass a bare number with no proof. ------------
    bad = ClosingSubstitution({"p": cc.nat_literal(3)})
    try:
        check_substitution(interface, bad)
        print("client 2 (no proof): ACCEPTED — this would be a soundness bug!")
    except LinkError as error:
        print("client 2 (no proof): rejected at link time —")
        print("  ", str(error).splitlines()[0])

    # --- Client 3: a *wrong* proof — ⟨0, refl⟩ does not type check. ------
    fake = cc.Pair(
        cc.Zero(),
        prelude.leibniz_refl(cc.Bool(), cc.BoolLit(False)),
        positive,
    )
    wrong = ClosingSubstitution({"p": fake})
    try:
        check_substitution(interface, wrong)
        print("client 3 (fake proof): ACCEPTED — this would be a soundness bug!")
    except LinkError as error:
        print("client 3 (fake proof): rejected at link time —")
        print("  ", str(error).splitlines()[0])


if __name__ == "__main__":
    main()
