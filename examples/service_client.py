"""Streaming jobs through a live service endpoint.

Starts an elastic endpoint in the background (the same stack as
``python -m repro serve``), then drives it three ways with the bundled
:class:`repro.service.ServiceClient`:

1. **A windowed stream** of mixed jobs — successes, a deterministic type
   error, a fuel-exhausted normalization — showing that every job line is
   answered by a structured document and that the deterministic halves
   are byte-identical to running the same jobs in-process.
2. **A stats poll** — the ``/metrics``-style inline job kind that reports
   pool and endpoint telemetry even under load.
3. **A live metrics subscription** — ``watch_stats()`` streams periodic
   ``{"op": "metrics"}`` snapshots (pool health, supervisor scaling
   signals, queue depths) interleaved with the results of a running
   batch, printed as one-line summaries; the watched batch's payloads
   stay byte-identical to the unwatched run.
4. **A chaotic stream** — the client drops, stalls, and truncates its own
   connection at scheduled job coordinates, and reconnect-plus-resubmit
   heals every fault: same bytes, just later.

Against a real deployment, replace ``serve_background`` with
``python -m repro serve --port 7420`` in another terminal and connect to
it with ``ServiceClient("127.0.0.1", 7420)`` — or from the CLI:

    python -m repro batch --connect 127.0.0.1:7420 jobs.jsonl --json

Run:  python examples/service_client.py
"""

from repro import api
from repro.service import ServiceClient, serve_background
from repro.service.faults import FaultPlan

REDEX = r"(\ (x : Nat). succ x) 41"


def main() -> None:
    jobs = [
        {"id": "n0", "kind": "normalize", "program": REDEX, "key": "demo"},
        {"id": "n1", "kind": "check", "program": r"\ (A : Type) (x : A). x"},
        {"id": "ill", "kind": "check", "program": "0 0"},  # deterministic error
        {"id": "fuel", "kind": "normalize", "program": REDEX, "fuel": 0},
        {"id": "run", "kind": "run", "program": REDEX, "key": "demo"},
    ]
    solo = api.execute_jobs(jobs).canonical()

    with serve_background(min_workers=1, max_workers=2) as server:
        print(f"endpoint listening on {server.host}:{server.port}")

        # 1. A plain windowed stream: every line answered, bytes solo-equal.
        with ServiceClient(server.host, server.port, window=4) as client:
            documents = client.run_batch(jobs)
        for document in documents:
            status = "ok  " if document["ok"] else "FAIL"
            detail = document.get("payload") or document["error"]["type"]
            print(f"  {status} {document['id']:>4}  {detail}")
        stripped = [
            {key: value for key, value in doc.items() if key != "meta"}
            for doc in documents
        ]
        assert stripped == solo, "served results diverged from in-process"
        print("served results byte-identical to in-process execution")

        # 2. Telemetry: a stats job is answered inline, outside admission.
        with ServiceClient(server.host, server.port) as client:
            stats = client.stats()["meta"]["stats"]
        print(
            f"pool: {stats['pool']['workers']} worker(s), "
            f"{stats['pool']['completed']} completed; "
            f"endpoint: {stats['endpoint']['accepted']} accepted, "
            f"{stats['endpoint']['delivered']} delivered"
        )

        # 3. Live telemetry: subscribe to the metrics stream and print a
        # one-line pool health summary per snapshot while a batch (padded
        # with sleep jobs so it spans a few intervals) streams through.
        from repro.obs import summarize_snapshot

        watched = jobs + [
            {"id": f"zz{i}", "kind": "sleep", "seconds": 0.08} for i in range(3)
        ]
        with ServiceClient(server.host, server.port, window=4) as client:
            client.watch_stats(
                interval=0.05,
                callback=lambda snap: print(f"  [pool] {summarize_snapshot(snap)}"),
            )
            documents = client.run_batch(watched)
            client.unwatch_stats()
        stripped = [
            {key: value for key, value in doc.items() if key != "meta"}
            for doc in documents[: len(jobs)]
        ]
        assert stripped == solo, "watching the pool changed result bytes"
        print(
            f"{len(client.metrics)} live snapshot(s) during the batch; "
            "results unchanged"
        )

        # 4. Client-side connection chaos: drop/stall/truncate at exact
        # job coordinates, healed by reconnect-and-resubmit.
        plan = FaultPlan.generate(
            7,
            [job["id"] for job in jobs],
            conn_drops=1,
            conn_stalls=1,
            conn_truncates=1,
        )
        with ServiceClient(
            server.host, server.port, window=2, fault_plan=plan
        ) as client:
            chaotic = client.run_batch(jobs)
            healed = client.reconnects
        stripped = [
            {key: value for key, value in doc.items() if key != "meta"}
            for doc in chaotic
        ]
        assert stripped == solo, "chaos changed more than timing"
        print(f"chaos stream healed by {healed} reconnect(s): same bytes")


if __name__ == "__main__":
    main()
