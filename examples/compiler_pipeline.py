"""The full compiler pipeline, down to the abstract machine.

surface text → CC term → [type check] → CC-CC term → [type check again,
Theorem 5.6] → hoisted program (static code table) → CBV machine run with
cost counters — alongside the *untyped* baseline pipeline (erase → untyped
closure conversion → untyped CBV) for comparison.

The typed pipeline is one :meth:`repro.api.Session.run` call per program:
the session compiles (verifying Theorem 5.6 en route), hoists, executes,
and returns every counter in a structured :class:`repro.api.RunResult`.
Each program gets its *own* session, the way independent components of a
build would — their engine caches and fresh-name counters never interact.

The printout shows the paper's two selling points concretely:

* after hoisting, every activation record holds exactly two bindings
  (environment and argument) and all code lives in a static table;
* the typed pipeline reaches the same ground value as the untyped one,
  but retains a checkable interface at every stage.

Run:  python examples/compiler_pipeline.py
"""

from repro import api
from repro.baseline import erase, uconvert, ueval
from repro.baseline.untyped import EvalStats
from repro.machine import program_context

PROGRAMS = {
    "add 7 8": r"""
        (\ (m : Nat) (n : Nat).
            natelim(\ (k : Nat). Nat, n, \ (k : Nat) (ih : Nat). succ ih, m)) 7 8
    """,
    "id Nat 42": r"(\ (A : Type) (x : A). x) Nat 42",
    "twice succ 5": r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5",
    "fst of pair": r"fst (<3, true> as (exists (x : Nat), Bool))",
    "church 3+2": r"""
        (\ (m : forall (A : Type), (A -> A) -> A -> A)
           (n : forall (A : Type), (A -> A) -> A -> A).
           \ (A : Type) (f : A -> A) (x : A). m A f (n A f x))
        (\ (A : Type) (f : A -> A) (x : A). f (f (f x)))
        (\ (A : Type) (f : A -> A) (x : A). f (f x))
        Nat (\ (k : Nat). succ k) 0
    """,
}


def main() -> None:
    header = (
        f"{'program':<14} {'value':>6} {'code blocks':>12} {'machine steps':>14} "
        f"{'closures':>9} {'env tuples':>11} {'projections':>12} {'untyped value':>14}"
    )
    print(header)
    print("-" * len(header))

    for name, source in PROGRAMS.items():
        # Typed pipeline: CC → CC-CC → hoist → machine, one session per
        # component.  `run` verifies Theorem 5.6 en route.
        session = api.Session(name=name)
        result = session.run(source)
        with session.activate():
            program_context(result.program)  # re-type-check the hoisted program

        # Untyped baseline: erase → untyped conversion → untyped CBV,
        # reusing the term the session already parsed.
        baseline_stats = EvalStats()
        source_term = result.compile_result.compilation.source
        baseline_value = ueval(uconvert(erase(source_term)), baseline_stats)

        print(
            f"{name:<14} {str(result.observation):>6} {result.code_count:>12} "
            f"{result.machine_steps:>14} {result.closure_allocs:>9} "
            f"{result.tuple_allocs:>11} {result.projections:>12} "
            f"{str(baseline_value):>14}"
        )
        assert result.observation == baseline_value, "typed and untyped pipelines disagree!"

    # Show one static code table in full.
    print("\nstatic code table for 'id Nat 42':")
    print(api.Session().run(PROGRAMS["id Nat 42"]).program)


if __name__ == "__main__":
    main()
