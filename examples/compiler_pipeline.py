"""The full compiler pipeline, down to the abstract machine.

surface text → CC term → [type check] → CC-CC term → [type check again,
Theorem 5.6] → hoisted program (static code table) → CBV machine run with
cost counters — alongside the *untyped* baseline pipeline (erase → untyped
closure conversion → untyped CBV) for comparison.

The printout shows the paper's two selling points concretely:

* after hoisting, every activation record holds exactly two bindings
  (environment and argument) and all code lives in a static table;
* the typed pipeline reaches the same ground value as the untyped one,
  but retains a checkable interface at every stage.

Run:  python examples/compiler_pipeline.py
"""

from repro import cc, cccc
from repro.baseline import erase, uconvert, ueval
from repro.baseline.untyped import EvalStats
from repro.closconv import compile_term
from repro.machine import hoist, machine_observation, program_context, run
from repro.surface import parse_term

PROGRAMS = {
    "add 7 8": r"""
        (\ (m : Nat) (n : Nat).
            natelim(\ (k : Nat). Nat, n, \ (k : Nat) (ih : Nat). succ ih, m)) 7 8
    """,
    "id Nat 42": r"(\ (A : Type) (x : A). x) Nat 42",
    "twice succ 5": r"(\ (f : Nat -> Nat) (x : Nat). f (f x)) (\ (y : Nat). succ y) 5",
    "fst of pair": r"fst (<3, true> as (exists (x : Nat), Bool))",
    "church 3+2": r"""
        (\ (m : forall (A : Type), (A -> A) -> A -> A)
           (n : forall (A : Type), (A -> A) -> A -> A).
           \ (A : Type) (f : A -> A) (x : A). m A f (n A f x))
        (\ (A : Type) (f : A -> A) (x : A). f (f (f x)))
        (\ (A : Type) (f : A -> A) (x : A). f (f x))
        Nat (\ (k : Nat). succ k) 0
    """,
}


def main() -> None:
    empty = cc.Context.empty()
    header = (
        f"{'program':<14} {'value':>6} {'code blocks':>12} {'machine steps':>14} "
        f"{'closures':>9} {'env tuples':>11} {'projections':>12} {'untyped value':>14}"
    )
    print(header)
    print("-" * len(header))

    for name, source in PROGRAMS.items():
        term = parse_term(source)

        # Typed pipeline: CC → CC-CC → hoist → machine.
        result = compile_term(empty, term)  # verifies Theorem 5.6 en route
        program = hoist(result.target)
        program_context(program)  # re-type-check the hoisted program
        value, stats = run(program)

        # Untyped baseline: erase → untyped conversion → untyped CBV.
        baseline_stats = EvalStats()
        baseline_value = ueval(uconvert(erase(term)), baseline_stats)

        observation = machine_observation(value)
        print(
            f"{name:<14} {str(observation):>6} {program.code_count:>12} {stats.steps:>14} "
            f"{stats.closure_allocs:>9} {stats.tuple_allocs:>11} {stats.projections:>12} "
            f"{str(baseline_value):>14}"
        )
        assert observation == baseline_value, "typed and untyped pipelines disagree!"

    # Show one static code table in full.
    print("\nstatic code table for 'id Nat 42':")
    program = hoist(compile_term(empty, parse_term(PROGRAMS["id Nat 42"])).target)
    print(program)


if __name__ == "__main__":
    main()
