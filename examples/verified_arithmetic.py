"""Compiling *proofs*: full functional correctness through the compiler.

The paper's abstract promises that preserving full-spectrum dependent
types lets us "preserve proofs of full functional correctness into the
generated code".  This example does exactly that:

1. state the theorem  ``Π m:Nat. add m 0 = m``  (Leibniz equality),
2. prove it *by induction* using the primitive Nat eliminator,
3. check the proof against the theorem with the CC kernel,
4. closure-convert both, and re-check the **compiled proof against the
   compiled theorem with the CC-CC kernel**,
5. use the compiled proof: transport evidence along ``add 3 0 = 3``.

Run:  python examples/verified_arithmetic.py
"""

from repro import cc, cccc
from repro.cc import prelude
from repro.closconv import compile_term, translate
from repro.machine import hoist, run


def main() -> None:
    empty = cc.Context.empty()

    theorem = prelude.add_zero_right_theorem()
    proof = prelude.add_zero_right_proof()

    print("theorem :", cc.pretty(theorem))
    print("proof   :", cc.pretty(proof)[:100], "…")

    # 3. Source-side check.
    cc.check(empty, proof, theorem)
    print("\nCC kernel accepts the proof.          (source verification)")

    # 4. Compile, then check the compiled proof against the compiled theorem.
    result = compile_term(empty, proof)
    compiled_theorem = translate(empty, theorem)
    cccc.check(result.target_context, result.target, compiled_theorem)
    print("CC-CC kernel accepts the compiled proof against the compiled")
    print("theorem.                              (Theorem 5.6 in action)")

    # 5. Use the compiled proof: at m := 3 it is a transport function
    #    Π P:(Nat→⋆). P (add 3 0) → P 3.  Feed it the predicate
    #    P := Eq Nat (add 3 0) — note `refl : P (add 3 0)` — and get a
    #    proof of  Eq Nat (add 3 0) 3.
    three = cc.nat_literal(3)
    add_3_0 = cc.make_app(prelude.nat_add, three, cc.Zero())
    predicate = cc.Lam("q", cc.Nat(), prelude.leibniz_eq(cc.Nat(), add_3_0, cc.Var("q")))
    usage = cc.make_app(
        proof, three, predicate, prelude.leibniz_refl(cc.Nat(), add_3_0)
    )
    wanted = prelude.leibniz_eq(cc.Nat(), add_3_0, three)
    cc.check(empty, usage, wanted)

    compiled_usage = compile_term(empty, usage)
    print("\ninstantiated at m := 3:")
    print("  source type :", cc.pretty(cc.infer(empty, usage)))
    print("  target type :", cccc.pretty(compiled_usage.checked_type)[:80], "…")
    print("  ≡ compiled statement:", cccc.equivalent(
        compiled_usage.target_context,
        compiled_usage.checked_type,
        translate(empty, wanted),
    ))

    # Proofs are also programs: the compiled proof runs on the machine.
    # (Its value is a closure — evidence is computational in CC.)
    program = hoist(compiled_usage.target)
    value, stats = run(program)
    print(f"\nthe compiled proof term executes: value = {type(value).__name__},"
          f" {program.code_count} code blocks, {stats.steps} machine steps")


if __name__ == "__main__":
    main()
