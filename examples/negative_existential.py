"""Reproducing the paper's negative result (Section 3.1).

The "well-known solution" to typed closure conversion hides the
environment behind an existential type.  That works for simply typed and
polymorphic languages — and this script shows it working on simply typed
programs, *running through the encoding* in plain CC.  Then it shows both
ways the encoding breaks on dependent types, with the CC kernel's actual
error messages:

1. impredicativity: capturing a *type* variable makes the environment
   type large, and the ⋆-encoded ∃ cannot hide it;
2. synchronization: a function type mentioning a captured *term* variable
   forces the code type to project from the hidden environment (``fst n``
   where the interface says ``b``).

Finally it compiles the same programs with the paper's translation, which
handles all of them — the point of the whole paper, in one table.

Run:  python examples/negative_existential.py
"""

from repro import cc
from repro.baseline import classify_failure, translate_existential
from repro.closconv import compile_term
from repro.common.errors import TypeCheckError
from repro.surface import parse_term


def main() -> None:
    empty = cc.Context.empty()
    with_bool = empty.extend("b", cc.Bool())

    cases = [
        ("monomorphic id", empty, parse_term(r"\ (x : Nat). x")),
        ("const (captures x)", empty, parse_term(r"\ (x : Nat). \ (y : Bool). x")),
        ("applied const", empty, parse_term(r"(\ (x : Nat). \ (y : Bool). x) 3 true")),
        ("compose at Nat", empty, parse_term(
            r"\ (f : Nat -> Nat). \ (g : Nat -> Nat). \ (x : Nat). f (g x)"
        )),
        ("POLYMORPHIC id", empty, parse_term(r"\ (A : Type) (x : A). x")),
        ("dependent annot", with_bool, cc.Lam(
            "x", cc.If(cc.Var("b"), cc.Nat(), cc.Bool()), cc.Var("x")
        )),
    ]

    print(f"{'program':<22} {'∃-encoding (§3.1)':<22} {'this paper (Fig. 9)':<20}")
    print("-" * 64)
    for name, ctx, term in cases:
        baseline = classify_failure(ctx, term)
        try:
            compile_term(ctx, term)
            ours = "type-preserving"
        except TypeCheckError:
            ours = "FAILED"
        print(f"{name:<22} {baseline:<22} {ours:<20}")

    # Show that the baseline's simply-typed output actually *runs*.
    program = parse_term(r"(\ (x : Nat). \ (y : Bool). x) 3 true")
    encoded = translate_existential(empty, program)
    print("\nsimply-typed program through the ∃ encoding normalizes to:",
          cc.pretty(cc.normalize(empty, encoded)))

    # And surface the kernel's error for the dependent case.
    dependent = cc.Lam("x", cc.If(cc.Var("b"), cc.Nat(), cc.Bool()), cc.Var("x"))
    broken = translate_existential(with_bool, dependent)
    try:
        cc.infer(with_bool, broken)
    except TypeCheckError as error:
        print("\nkernel error for the dependent case (the paper's `fst n` problem):")
        print(" ", "\n  ".join(str(error).splitlines()[:4]))


if __name__ == "__main__":
    main()
