"""Quickstart: parse, type check, closure-convert, and run a CC program.

This walks the paper's running example — the polymorphic identity function
(Section 3) — through the whole library:

1. write the program in the surface syntax,
2. type check it with the CC kernel (Figure 3),
3. closure-convert it to CC-CC (Figure 9) with type preservation verified
   by the CC-CC kernel (Theorem 5.6),
4. evaluate both sides and compare (Corollary 5.8).

Run:  python examples/quickstart.py
"""

from repro import cc, cccc
from repro.closconv import compile_term
from repro.surface import parse_term


def main() -> None:
    empty = cc.Context.empty()

    # 1. The polymorphic identity, applied to Nat and 42.
    program = parse_term(r"(\ (A : Type) (x : A). x) Nat 42")
    print("source        :", cc.pretty(program))

    # 2. CC kernel: infer its type.
    source_type = cc.infer(empty, program)
    print("source type   :", cc.pretty(source_type))

    # 3. Compile.  `compile_term` re-checks the output in CC-CC and compares
    #    against the translated type, so a successful return *is* one
    #    verified instance of Theorem 5.6.
    result = compile_term(empty, program)
    print("target        :", cccc.pretty(result.target)[:120], "…")
    print("target type   :", cccc.pretty(result.target_type))
    print("type preserved:", result.checked_type is not None)

    # 4. Run both sides.
    source_value = cc.normalize(empty, program)
    target_value = cccc.normalize(cccc.Context.empty(), result.target)
    print("source value  :", cc.pretty(source_value))
    print("target value  :", cccc.pretty(target_value))
    assert cc.nat_value(source_value) == cccc.nat_value(target_value) == 42

    # The compiled inner closure really does capture the type variable A in
    # its environment — print it to see the paper's Section 3 machinery.
    identity = parse_term(r"\ (A : Type) (x : A). x")
    compiled = compile_term(empty, identity)
    print("\nthe compiled polymorphic identity:")
    print(cccc.pretty(compiled.target))


if __name__ == "__main__":
    main()
