"""Quickstart: parse, type check, closure-convert, and run a CC program.

This walks the paper's running example — the polymorphic identity function
(Section 3) — through the whole library via the ``repro.api`` session
layer:

1. open a :class:`repro.api.Session` (an isolated engine workspace),
2. type check the program with the CC kernel (Figure 3),
3. closure-convert it to CC-CC (Figure 9) with type preservation verified
   by the CC-CC kernel (Theorem 5.6),
4. evaluate both sides and compare (Corollary 5.8).

Every entrypoint returns a structured result — the term, its type, the
reduction steps spent, the engine used, cache-hit counts — which is also
what ``python -m repro check --json`` prints.  Step 5 turns on the
opt-in profiler (``repro.obs``) to attribute those costs per pipeline
phase — the same data ``python -m repro profile`` renders as
flamegraph JSON, and ``batch --profile`` / ``serve --metrics-interval``
surface for batches and live pools.

Run:  python examples/quickstart.py
"""

from repro import api, cc, cccc


def main() -> None:
    session = api.Session(name="quickstart")

    # 1. The polymorphic identity, applied to Nat and 42.
    source = r"(\ (A : Type) (x : A). x) Nat 42"

    # 2. CC kernel: infer its type.  `check` parses and type checks in one
    #    step; the result carries both the term and the type.
    checked = session.check(source)
    print("source        :", cc.pretty(checked.term))
    print("source type   :", cc.pretty(checked.type_))

    # 3. Compile.  The session re-checks the output in CC-CC and compares
    #    against the translated type, so a successful return *is* one
    #    verified instance of Theorem 5.6.
    compiled = session.compile(checked.term)
    print("target        :", cccc.pretty(compiled.target)[:120], "…")
    print("target type   :", cccc.pretty(compiled.target_type))
    print("type preserved:", compiled.verified)

    # 4. Run both sides: normalize the source, and normalize the compiled
    #    target with the CC-CC kernel inside the same session.
    normal = session.normalize(checked.term)
    with session.activate():
        target_value = cccc.normalize(cccc.Context.empty(), compiled.target)
    print("source value  :", cc.pretty(normal.value))
    print("target value  :", cccc.pretty(target_value))
    print("steps spent   :", normal.steps, f"({normal.engine} engine)")
    assert cc.nat_value(normal.value) == cccc.nat_value(target_value) == 42

    # The structured result is JSON-ready — this is what the CLI's --json
    # flag emits.
    print("\nstructured result:", normal.to_dict())

    # The compiled inner closure really does capture the type variable A in
    # its environment — print it to see the paper's Section 3 machinery.
    identity = session.compile(r"\ (A : Type) (x : A). x")
    print("\nthe compiled polymorphic identity:")
    print(cccc.pretty(identity.target))

    # 5. Opt-in profiling: activate a collector and run the whole pipeline
    #    again — every phase's cost (typecheck fuel, machine steps, per-
    #    label β counts) is attributed without changing any result.  The
    #    CLI equivalent is `python -m repro profile file.cc`, which emits
    #    the same data as speedscope-loadable flamegraph JSON.
    from repro import obs

    with obs.activate() as profile:
        session.run(source)
    print("\nprofiled phases:")
    for phase, total in profile.totals()["phases"].items():
        print(f"  {phase:>10} : {total['weight']}")


if __name__ == "__main__":
    main()
