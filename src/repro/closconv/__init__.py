"""Typed closure conversion CC → CC-CC (paper Section 5).

* :mod:`repro.closconv.fv` — the dependent free-variable metafunction
  (Figure 10),
* :mod:`repro.closconv.translate` — the translation itself (Figure 9),
* :mod:`repro.closconv.pipeline` — the checked end-to-end compiler.
"""

from repro.closconv.fv import dependent_free_vars
from repro.closconv.pipeline import (
    CompilationResult,
    TypePreservationViolation,
    compile_term,
    delta_expand,
)
from repro.closconv.translate import translate, translate_context

__all__ = [
    "CompilationResult",
    "TypePreservationViolation",
    "compile_term",
    "delta_expand",
    "dependent_free_vars",
    "translate",
    "translate_context",
]
