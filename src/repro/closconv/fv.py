"""Dependent free-variable sequences — the FV metafunction (paper Figure 10).

``FV(e, B, Γ)`` computes the sequence of free variables of a term *and its
type*, together with their types, closed under dependency: the types of
collected variables may mention further variables, whose types may mention
still others, and so on.  The result is ordered by position in Γ, which
guarantees the telescope is well-formed (each type only mentions earlier
entries) — Γ itself is a well-formed telescope and we return one of its
sub-telescopes.

This is the heart of why closure conversion for dependent types needs a
*type-directed* free-variable computation: a simply-typed FV would miss
variables that occur only in types (e.g. the type variable ``A`` in the
paper's polymorphic-identity example occurs in the inner function's type
annotation, not just its body).
"""

from __future__ import annotations

from repro.cc.ast import Term, cached_free_vars
from repro.cc.context import Binding, Context
from repro.common.errors import TranslationError

__all__ = ["dependent_free_vars"]


def dependent_free_vars(ctx: Context, *terms: Term) -> list[Binding]:
    """``FV(terms…, Γ)``: the dependency-closed free variables of ``terms``.

    Returns the bindings (with their CC types) in Γ-telescope order.
    Raises :class:`TranslationError` if a free variable is not bound in
    ``ctx`` (the input was not well-typed under ``ctx``).

    Free-variable sets come from the kernel's identity-keyed cache, so the
    dependency walk over context types — which revisits the same type
    terms for every conversion site — costs one traversal per distinct
    term, ever, rather than one per call.
    """
    needed: set[str] = set()
    for term in terms:
        needed |= cached_free_vars(term)

    collected: set[str] = set()
    worklist = sorted(needed)  # deterministic traversal order
    while worklist:
        name = worklist.pop()
        if name in collected:
            continue
        binding = ctx.lookup(name)
        if binding is None:
            raise TranslationError(
                f"free variable {name!r} is not bound in the context"
            )
        collected.add(name)
        for dependency in sorted(cached_free_vars(binding.type_)):
            if dependency not in collected:
                worklist.append(dependency)

    ordered = sorted(collected, key=ctx.position)
    return [ctx.entries[ctx.position(name)] for name in ordered]
