"""The user-facing compiler pipeline: check, translate, re-check.

:func:`compile_term` packages the whole Figure 9 story:

1. type check the source term in CC (rejecting ill-typed inputs),
2. closure-convert term, type, and context,
3. (optionally) run the CC-CC kernel on the output — Theorem 5.6 says this
   *must* succeed, and the pipeline turns a failure into a loud
   :class:`TypePreservationViolation` rather than a silent miscompile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import cc, cccc
from repro.cc.context import Context as CCContext
from repro.cc.subst import subst as cc_subst
from repro.cccc.context import Context as TargetContext
from repro.closconv.translate import translate, translate_context
from repro.common.errors import TypeCheckError
from repro.kernel.budget import Budget

__all__ = ["CompilationResult", "TypePreservationViolation", "compile_term", "delta_expand"]


class TypePreservationViolation(TypeCheckError):
    """The compiled output failed to type check at the translated type.

    Theorem 5.6 proves this cannot happen; reaching this exception means a
    compiler bug (or a deliberately constructed counterexample in tests).
    """


@dataclass(frozen=True)
class CompilationResult:
    """Everything the compiler produced for one component.

    Attributes:
        source: the CC input term.
        source_type: its CC type (as inferred).
        source_context: the CC typing environment it was compiled under.
        target: the CC-CC output term ``source⁺``.
        target_type: the translated type ``source_type⁺``.
        target_context: the translated environment ``Γ⁺``.
        checked_type: the type the CC-CC kernel actually inferred for
            ``target`` (None when verification was disabled).  Theorem 5.6
            guarantees ``checked_type ≡ target_type``.
    """

    source: cc.Term
    source_type: cc.Term
    source_context: CCContext
    target: cccc.Term
    target_type: cccc.Term
    target_context: TargetContext
    checked_type: cccc.Term | None


def compile_term(
    ctx: CCContext,
    term: cc.Term,
    verify: bool = True,
    inline_definitions: bool = False,
    source_budget: Budget | None = None,
    verify_budget: Budget | None = None,
) -> CompilationResult:
    """Closure-convert ``term`` under ``ctx`` and verify type preservation.

    Args:
        ctx: the CC typing environment of the component.
        term: the well-typed CC term to compile.
        verify: run the CC-CC kernel on the output and compare against the
            translated type (Theorem 5.6 made executable).
        inline_definitions: δ-expand context definitions into the term
            before compiling.  The paper's FV metafunction captures defined
            variables as opaque assumptions, so a code body whose typing
            *requires* a δ-step on a captured variable needs this
            preprocessing (see DESIGN.md §3).
        source_budget: fuel for the source type check; a fresh default
            budget when omitted.  ``repro.api`` passes one in to report the
            steps each phase spent.
        verify_budget: fuel for the CC-CC verification pass, likewise.

    Raises:
        TypeCheckError: the input is not well-typed CC.
        TypePreservationViolation: the output failed verification.
    """
    if inline_definitions:
        term = delta_expand(ctx, term)
    # One budget per kernel phase: the source check and the verification
    # each observe their own fuel, and judgment-cache hits replay into
    # these budgets so repeated compilations account identically.
    if source_budget is None:
        source_budget = Budget()
    source_type = cc.infer(ctx, term, source_budget)

    target = translate(ctx, term)
    target_type = translate(ctx, source_type)
    target_context = translate_context(ctx)

    checked_type: cccc.Term | None = None
    if verify:
        target_budget = verify_budget if verify_budget is not None else Budget()
        try:
            checked_type = cccc.infer(target_context, target, target_budget)
        except TypeCheckError as error:
            raise TypePreservationViolation(
                f"compiled term failed to type check in CC-CC: {error}"
            ) from error
        if not cccc.equivalent(target_context, checked_type, target_type, target_budget):
            raise TypePreservationViolation(
                "compiled term has the wrong type:\n"
                f"  inferred  {cccc.pretty(checked_type)}\n"
                f"  expected  {cccc.pretty(target_type)}"
            )

    return CompilationResult(
        source=term,
        source_type=source_type,
        source_context=ctx,
        target=target,
        target_type=target_type,
        target_context=target_context,
        checked_type=checked_type,
    )


def delta_expand(ctx: CCContext, term: cc.Term) -> cc.Term:
    """Substitute every context definition into ``term`` (innermost first)."""
    for binding in reversed(ctx.entries):
        if binding.definition is not None:
            term = cc_subst(term, {binding.name: binding.definition})
    return term
