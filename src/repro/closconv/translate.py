"""The typed closure-conversion translation CC → CC-CC (paper Figure 9).

Every case except functions is a homomorphic walk ([CC-Var], [CC-App],
[CC-Prod], …).  The interesting case is [CC-Lam]::

    (λ x:A. e)⁺ = ⟨⟨ λ (n : Σ(xi:Ai⁺ …), x : let ⟨xi …⟩ = n in A⁺).
                        let ⟨xi …⟩ = n in e⁺,
                     ⟨xi …⟩ as Σ(xi:Ai⁺ …) ⟩⟩
    where  xi : Ai … = FV(λ x:A. e, Π x:A. B, Γ)

The generated code receives its free variables through the environment
tuple ``n``; the pattern lets rebind them both in the *body* and — because
types may mention them — in the argument's *type annotation*.  The
environment tuple ``⟨xi …⟩`` closes over the live variables at the
closure-creation site.

The translation is type-directed (it is defined on typing derivations):
we run the CC kernel as we go, both to find the type ``B`` needed by the
FV metafunction and to reject ill-typed inputs up front.
"""

from __future__ import annotations

from repro import cc, cccc
from repro.cc import typecheck as cc_typecheck
from repro.cc.context import Context as CCContext
from repro.cccc.context import Context as TargetContext
from repro.cccc.ntuple import bind_env, env_sigma, env_tuple
from repro.closconv.fv import dependent_free_vars
from repro.common.errors import TranslationError, TypeCheckError
from repro.common.names import fresh

__all__ = ["translate", "translate_context"]


def translate(ctx: CCContext, term: cc.Term) -> cccc.Term:
    """``e⁺``: closure-convert the well-typed CC term ``term`` under ``ctx``."""
    match term:
        case cc.Var(name):
            return cccc.Var(name)  # [CC-Var]
        case cc.Star():
            return cccc.Star()  # [CC-*]
        case cc.Box():
            # □ is not a term, but the translation is applied to types and
            # must be total on everything `infer` can return.
            return cccc.Box()
        case cc.Pi(name, domain, codomain):
            return cccc.Pi(  # [CC-Prod-⋆] / [CC-Prod-□]
                name,
                translate(ctx, domain),
                translate(ctx.extend(name, domain), codomain),
            )
        case cc.Lam():
            return _translate_lambda(ctx, term)  # [CC-Lam]
        case cc.App(fn, arg):
            return cccc.App(translate(ctx, fn), translate(ctx, arg))  # [CC-App]
        case cc.Let(name, bound, annot, body):
            return cccc.Let(  # [CC-Let]
                name,
                translate(ctx, bound),
                translate(ctx, annot),
                translate(ctx.define(name, bound, annot), body),
            )
        case cc.Sigma(name, first, second):
            return cccc.Sigma(  # [CC-Sig-⋆] / [CC-Sig-□]
                name,
                translate(ctx, first),
                translate(ctx.extend(name, first), second),
            )
        case cc.Pair(fst_val, snd_val, annot):
            return cccc.Pair(
                translate(ctx, fst_val),
                translate(ctx, snd_val),
                translate(ctx, annot),
            )
        case cc.Fst(pair):
            return cccc.Fst(translate(ctx, pair))  # [CC-Fst]
        case cc.Snd(pair):
            return cccc.Snd(translate(ctx, pair))  # [CC-Snd]
        case cc.Bool():
            return cccc.Bool()
        case cc.BoolLit(value):
            return cccc.BoolLit(value)
        case cc.If(cond, then_branch, else_branch):
            return cccc.If(
                translate(ctx, cond),
                translate(ctx, then_branch),
                translate(ctx, else_branch),
            )
        case cc.Nat():
            return cccc.Nat()
        case cc.Zero():
            return cccc.Zero()
        case cc.Succ(pred):
            return cccc.Succ(translate(ctx, pred))
        case cc.NatElim(motive, base, step, target):
            return cccc.NatElim(
                translate(ctx, motive),
                translate(ctx, base),
                translate(ctx, step),
                translate(ctx, target),
            )
        case _:
            raise TranslationError(f"not a CC term: {term!r}")


def _translate_lambda(ctx: CCContext, term: cc.Lam) -> cccc.Term:
    """The [CC-Lam] case: build code, environment type, and environment."""
    arg_name = term.name
    domain = term.domain
    body = term.body

    # The FV metafunction needs the λ's type Π x:A. B, so infer B.
    try:
        body_type = cc_typecheck.infer(ctx.extend(arg_name, domain), body)
    except TypeCheckError as error:
        raise TranslationError(
            f"cannot closure-convert ill-typed function {cc.pretty(term)}: {error}"
        ) from error
    lam_type = cc.Pi(arg_name, domain, body_type)

    free_bindings = dependent_free_vars(ctx, term, lam_type)

    # If the λ binder collides with a captured free variable's name, the
    # environment-projection lets inside the code would shadow the code's
    # argument.  α-rename the binder first; the translation is stable
    # under α-equivalence.
    if any(binding.name == arg_name for binding in free_bindings):
        renamed = fresh(arg_name)
        body = cc.subst1(body, arg_name, cc.Var(renamed))
        arg_name = renamed

    # Translate the telescope types in their (prefix) contexts.
    telescope: cccc.Telescope = []
    for binding in free_bindings:
        telescope.append((binding.name, translate(ctx.prefix(binding.name), binding.type_)))

    env_type = env_sigma(telescope)
    env_name = fresh("n")
    env_var = cccc.Var(env_name)

    domain_tgt = translate(ctx, domain)
    body_tgt = translate(ctx.extend(arg_name, domain), body)

    code = cccc.CodeLam(
        env_name,
        env_type,
        arg_name,
        bind_env(telescope, env_var, domain_tgt),
        bind_env(telescope, env_var, body_tgt),
    )
    environment = env_tuple(telescope, [cccc.Var(name) for name, _ in telescope])
    return cccc.Clo(code, environment)


def translate_context(ctx: CCContext) -> TargetContext:
    """``Γ⁺``: translate a CC environment pointwise (paper [W-Assum]/[W-Def])."""
    result = TargetContext.empty()
    prefix = CCContext.empty()
    for binding in ctx:
        type_tgt = translate(prefix, binding.type_)
        if binding.definition is None:
            result = result.extend(binding.name, type_tgt)
            prefix = prefix.extend(binding.name, binding.type_)
        else:
            result = result.define(binding.name, translate(prefix, binding.definition), type_tgt)
            prefix = prefix.define(binding.name, binding.definition, binding.type_)
    return result
