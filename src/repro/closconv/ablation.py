"""Ablation studies: remove one ingredient of the paper's design and watch
the corresponding theorem fail.

Two of the paper's choices look small but carry the metatheory:

1. **Dependency-closed FV (Figure 10).**  :func:`translate_shallow_fv` is
   Figure 9 with the FV metafunction replaced by *syntactic* free
   variables (no closure over the types of captured variables, no type of
   the λ considered).  On simply typed programs it agrees with the real
   translation; on programs whose types mention variables the term
   doesn't, the generated code is open or refers to unbound names and
   **Theorem 5.6 fails** — the CC-CC kernel rejects the output.

2. **The closure η-principle ([≡-Clo1/2]).**  :func:`equivalent_without_clo_eta`
   is CC-CC definitional equivalence with the closure rules disabled
   (closures compare structurally).  Under it, the two sides of
   **Lemma 5.1 (compositionality) are inequivalent** — exactly the
   problem Section 5.1 describes, where substituting before vs. after
   translation produces environments of different shapes.

Benchmark E14 tabulates both failure rates over the corpus.
"""

from __future__ import annotations

from repro import cc, cccc
from repro.cc.context import Context as CCContext
from repro.cc import typecheck as cc_typecheck
from repro.cccc.equiv import equivalent_structural
from repro.cccc.ntuple import bind_env, env_sigma, env_tuple
from repro.closconv.translate import translate
from repro.common.errors import TranslationError, TypeCheckError
from repro.common.names import fresh

__all__ = [
    "compositionality_without_clo_eta",
    "equivalent_without_clo_eta",
    "shallow_fv_type_preservation",
    "translate_shallow_fv",
]


# --------------------------------------------------------------------------
# Ablation 1: syntactic FV instead of Figure 10.
# --------------------------------------------------------------------------


def translate_shallow_fv(ctx: CCContext, term: cc.Term) -> cccc.Term:
    """Figure 9 with *syntactic* free variables only (ablated Figure 10)."""
    match term:
        case cc.Lam():
            return _shallow_lambda(ctx, term)
        case cc.Pi(name, domain, codomain):
            return cccc.Pi(
                name,
                translate_shallow_fv(ctx, domain),
                translate_shallow_fv(ctx.extend(name, domain), codomain),
            )
        case cc.App(fn, arg):
            return cccc.App(translate_shallow_fv(ctx, fn), translate_shallow_fv(ctx, arg))
        case cc.Let(name, bound, annot, body):
            return cccc.Let(
                name,
                translate_shallow_fv(ctx, bound),
                translate_shallow_fv(ctx, annot),
                translate_shallow_fv(ctx.define(name, bound, annot), body),
            )
        case cc.Sigma(name, first, second):
            return cccc.Sigma(
                name,
                translate_shallow_fv(ctx, first),
                translate_shallow_fv(ctx.extend(name, first), second),
            )
        case cc.Pair(fst_val, snd_val, annot):
            return cccc.Pair(
                translate_shallow_fv(ctx, fst_val),
                translate_shallow_fv(ctx, snd_val),
                translate_shallow_fv(ctx, annot),
            )
        case cc.Fst(pair):
            return cccc.Fst(translate_shallow_fv(ctx, pair))
        case cc.Snd(pair):
            return cccc.Snd(translate_shallow_fv(ctx, pair))
        case cc.If(cond, then_branch, else_branch):
            return cccc.If(
                translate_shallow_fv(ctx, cond),
                translate_shallow_fv(ctx, then_branch),
                translate_shallow_fv(ctx, else_branch),
            )
        case cc.Succ(pred):
            return cccc.Succ(translate_shallow_fv(ctx, pred))
        case cc.NatElim(motive, base, step, target):
            return cccc.NatElim(
                translate_shallow_fv(ctx, motive),
                translate_shallow_fv(ctx, base),
                translate_shallow_fv(ctx, step),
                translate_shallow_fv(ctx, target),
            )
        case _:
            # Leaves are shared with the real translation.
            return translate(ctx, term)


def _shallow_lambda(ctx: CCContext, term: cc.Lam) -> cccc.Term:
    """[CC-Lam] capturing only syntactic free variables of the λ itself."""
    names = sorted(cc.free_vars(term) & set(ctx.names()), key=ctx.position)
    telescope: cccc.Telescope = []
    for name in names:
        binding = ctx.lookup(name)
        telescope.append((name, translate_shallow_fv(ctx.prefix(name), binding.type_)))

    env_name = fresh("n")
    env_var = cccc.Var(env_name)
    domain_tgt = translate_shallow_fv(ctx, term.domain)
    body_tgt = translate_shallow_fv(ctx.extend(term.name, term.domain), term.body)

    code = cccc.CodeLam(
        env_name,
        env_sigma(telescope),
        term.name,
        bind_env(telescope, env_var, domain_tgt),
        bind_env(telescope, env_var, body_tgt),
    )
    environment = env_tuple(telescope, [cccc.Var(name) for name in names])
    return cccc.Clo(code, environment)


def shallow_fv_type_preservation(ctx: CCContext, term: cc.Term) -> bool:
    """Does Theorem 5.6 survive the shallow-FV ablation on this input?"""
    source_type = cc_typecheck.infer(ctx, term)
    from repro.closconv.translate import translate_context

    try:
        target = translate_shallow_fv(ctx, term)
        target_type = translate_shallow_fv(ctx, source_type)
        target_ctx = translate_context(ctx)
        inferred = cccc.infer(target_ctx, target)
    except (TypeCheckError, TranslationError):
        return False
    return cccc.equivalent(target_ctx, inferred, target_type)


# --------------------------------------------------------------------------
# Ablation 2: CC-CC equivalence without the closure η-rules.
# --------------------------------------------------------------------------


def equivalent_without_clo_eta(
    ctx: cccc.Context, left: cccc.Term, right: cccc.Term
) -> bool:
    """CC-CC ≡ with [≡-Clo1/2] disabled: closures compare structurally.

    Runs the shared incremental conversion engine with the closure η hook
    switched off, so β/δ/π-reduction still happens but a closure is only
    ever equal to a structurally matching closure.
    """
    return equivalent_structural(ctx, left, right)


def compositionality_without_clo_eta(
    prefix: CCContext,
    name: str,
    name_type: cc.Term,
    body: cc.Term,
    value: cc.Term,
) -> bool:
    """Lemma 5.1 decided with the ablated equivalence.

    Returns True iff ``(e1[e2/x])⁺`` and ``e1⁺[e2⁺/x]`` are equal
    *without* the closure η-principle — the paper predicts False whenever
    the λ's environment shape changes under substitution.
    """
    from repro.closconv.translate import translate_context

    extended = prefix.extend(name, name_type)
    left = translate(prefix, cc.subst1(body, name, value))
    right = cccc.subst1(translate(extended, body), name, translate(prefix, value))
    del translate_context  # structural comparison needs no context
    return equivalent_without_clo_eta(cccc.Context.empty(), left, right)
