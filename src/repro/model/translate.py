"""The model of CC-CC in CC (paper Figure 8, Section 4.1).

Consistency and type safety of CC-CC are proved by *decompiling* it into
CC:

* code types become curried Π types ([M-T-Code-⋆/□]),
* code becomes curried functions ([M-Code]) — the inner function need not
  be closed, which is fine: the model only exists to transport
  consistency, not closedness,
* closures become partial applications ``e° e′°`` ([M-Clo]),
* the unit type becomes the Church encoding ``Π A:⋆. A → A`` with the
  polymorphic identity as its value,
* everything else is a homomorphic walk.

If CC-CC could prove ``False``, the image of that proof would prove
``False ≜ Π A:⋆. A`` in CC — and [M-Prod-⋆] translates ``False`` to
*itself* (Lemma 4.1), so CC's consistency transfers to CC-CC
(Theorem 4.7).  Because the translation also preserves reduction
(Lemmas 4.3–4.4), type safety transfers too (Theorem 4.8).
"""

from __future__ import annotations

from repro import cc, cccc
from repro.cccc.context import Context as TargetContext
from repro.cc.context import Context as CCContext
from repro.common.errors import TranslationError

__all__ = ["CHURCH_UNIT_TYPE", "CHURCH_UNIT_VALUE", "decompile", "decompile_context"]

#: ``1° ≜ Π A:⋆. A → A`` — the Church unit type.
CHURCH_UNIT_TYPE: cc.Term = cc.Pi("A", cc.Star(), cc.arrow(cc.Var("A"), cc.Var("A")))

#: ``⟨⟩° ≜ λ A:⋆. λ x:A. x`` — the polymorphic identity inhabits it.
CHURCH_UNIT_VALUE: cc.Term = cc.Lam("A", cc.Star(), cc.Lam("x", cc.Var("A"), cc.Var("x")))


def decompile(term: cccc.Term) -> cc.Term:
    """``e°``: translate a CC-CC expression into its CC model."""
    match term:
        case cccc.Var(name):
            return cc.Var(name)
        case cccc.Star():
            return cc.Star()
        case cccc.Box():
            return cc.Box()
        case cccc.Pi(name, domain, codomain):
            return cc.Pi(name, decompile(domain), decompile(codomain))  # [M-Prod]
        case cccc.CodeType(env_name, env_type, arg_name, arg_type, result):
            return cc.Pi(  # [M-T-Code-⋆] / [M-T-Code-□]
                env_name,
                decompile(env_type),
                cc.Pi(arg_name, decompile(arg_type), decompile(result)),
            )
        case cccc.CodeLam(env_name, env_type, arg_name, arg_type, body):
            return cc.Lam(  # [M-Code]
                env_name,
                decompile(env_type),
                cc.Lam(arg_name, decompile(arg_type), decompile(body)),
            )
        case cccc.Clo(code, env):
            return cc.App(decompile(code), decompile(env))  # [M-Clo]
        case cccc.App(fn, arg):
            return cc.App(decompile(fn), decompile(arg))  # [M-App]
        case cccc.Let(name, bound, annot, body):
            return cc.Let(name, decompile(bound), decompile(annot), decompile(body))
        case cccc.Sigma(name, first, second):
            return cc.Sigma(name, decompile(first), decompile(second))
        case cccc.Pair(fst_val, snd_val, annot):
            return cc.Pair(decompile(fst_val), decompile(snd_val), decompile(annot))
        case cccc.Fst(pair):
            return cc.Fst(decompile(pair))
        case cccc.Snd(pair):
            return cc.Snd(decompile(pair))
        case cccc.Unit():
            return CHURCH_UNIT_TYPE
        case cccc.UnitVal():
            return CHURCH_UNIT_VALUE
        case cccc.Bool():
            return cc.Bool()
        case cccc.BoolLit(value):
            return cc.BoolLit(value)
        case cccc.If(cond, then_branch, else_branch):
            return cc.If(decompile(cond), decompile(then_branch), decompile(else_branch))
        case cccc.Nat():
            return cc.Nat()
        case cccc.Zero():
            return cc.Zero()
        case cccc.Succ(pred):
            return cc.Succ(decompile(pred))
        case cccc.NatElim(motive, base, step, target):
            return cc.NatElim(
                decompile(motive),
                decompile(base),
                decompile(step),
                decompile(target),
            )
        case _:
            raise TranslationError(f"not a CC-CC term: {term!r}")


def decompile_context(ctx: TargetContext) -> CCContext:
    """``Γ°``: decompile a CC-CC environment pointwise."""
    result = CCContext.empty()
    for binding in ctx:
        if binding.definition is None:
            result = result.extend(binding.name, decompile(binding.type_))
        else:
            result = result.define(
                binding.name, decompile(binding.definition), decompile(binding.type_)
            )
    return result
