"""The consistency model of CC-CC in CC (paper Figure 8, Lemmas 4.1–4.6)."""

from repro.model.translate import (
    CHURCH_UNIT_TYPE,
    CHURCH_UNIT_VALUE,
    decompile,
    decompile_context,
)

__all__ = ["CHURCH_UNIT_TYPE", "CHURCH_UNIT_VALUE", "decompile", "decompile_context"]
