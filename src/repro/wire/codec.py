"""The binary DAG codec: content-addressed node tables for interned terms.

A buffer is a *node table* in topological (children-first) order::

    "RDAG"  codec-version  language-name
    class-name table (the node classes this buffer uses, by name)
    node count
    node*                     -- one entry per unique node
    root index

Each node entry carries its class (an index into the buffer's class-name
table), its fields in dataclass ``field_order`` — binder names as UTF-8
strings, data fields as tagged scalars, children as *indices into the
table* (strictly earlier entries, so sharing in the source DAG is preserved
exactly: a subterm appearing a thousand times in the unfolding is one entry
and a thousand one-byte indices) — and finally its 128-bit **content
hash**.

The content hash is structural and position-independent: BLAKE2b-128 over
the class *name* and the fields, with each child contributing its own
content hash rather than its table index.  Two encodings of the same term
therefore agree on every node hash, which is what makes ingest O(new
nodes): the decoder looks each hash up in the receiving session's
``by_hash`` index and *adopts* known nodes by pointer, verifying (and
hash-consing) only the genuinely new ones.  For the same reason the hash
doubles as the persistent memo tier's term key (:mod:`repro.wire.persist`).

The encoding is driven entirely by :class:`~repro.kernel.nodespec.NodeSpec`,
so both calculi — and any future one — share this one codec.  Encoding is
canonical: structurally equal terms (shared or unshared, any construction
history) produce byte-identical buffers, and ``encode(decode(b)) == b``.

Hashing is name-sensitive (it hashes binder names literally rather than
α-normalizing).  That is deliberate: the service ingests α-canonical
interned terms anyway, the hash of an interned representative is then a
function of the α-class, and keeping the hash a pure function of the
visible structure makes corruption checks and cross-process key agreement
trivial to reason about.
"""

from __future__ import annotations

import base64
import binascii
from hashlib import blake2b
from typing import Any

from repro.common.errors import WireDecodeError, WireError
from repro.kernel.intern import _build
from repro.kernel.nodespec import Language, NodeSpec

__all__ = [
    "CODEC_VERSION",
    "HASH_BYTES",
    "content_hash",
    "decode_term",
    "encode_term",
    "term_from_b64",
    "term_to_b64",
]

#: Bumped on any change to the buffer layout or the hash preimage.
CODEC_VERSION = 1

#: Content hashes are BLAKE2b-128: 64 bits is within birthday reach of a
#: large persistent store; 128 bits is not, and costs 8 bytes per node.
HASH_BYTES = 16

_MAGIC = b"RDAG"
_PERSON = b"repro.wire.v1"  # domain-separates these hashes from every other use

# Scalar tags for data fields (``BoolLit.value`` etc.) and, in the hash
# preimage, field-kind tags that keep adjacent fields from aliasing.
_D_NONE, _D_FALSE, _D_TRUE, _D_INT, _D_STR = 0, 1, 2, 3, 4
_F_BINDER, _F_CHILD, _F_DATA = b"\x01", b"\x02", b"\x03"


def _write_varint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    _write_varint(out, len(data))
    out += data


def _data_bytes(value: Any) -> bytes:
    """The tagged scalar encoding of one data-field value."""
    if value is None:
        return bytes((_D_NONE,))
    if value is False:
        return bytes((_D_FALSE,))
    if value is True:
        return bytes((_D_TRUE,))
    if isinstance(value, int):
        if value < 0:
            raise WireError(f"unencodable negative data value {value!r}")
        out = bytearray((_D_INT,))
        _write_varint(out, value)
        return bytes(out)
    if isinstance(value, str):
        out = bytearray((_D_STR,))
        _write_str(out, value)
        return bytes(out)
    raise WireError(f"unencodable data field value {value!r}")


def _node_digest(spec: NodeSpec, node: Any, child_hashes: list[bytes]) -> bytes:
    """The content hash of one node, given its children's content hashes."""
    hasher = blake2b(digest_size=HASH_BYTES, person=_PERSON)
    hasher.update(spec.cls.__name__.encode("ascii"))
    hasher.update(b"\x00")
    binders = spec.binder_attrs
    child_attrs = spec.child_attrs
    children = iter(child_hashes)
    buf = bytearray()
    for attr in spec.field_order:
        if attr in child_attrs:
            hasher.update(_F_CHILD)
            hasher.update(next(children))
        elif attr in binders:
            buf.clear()
            _write_str(buf, getattr(node, attr))
            hasher.update(_F_BINDER)
            hasher.update(buf)
        else:
            hasher.update(_F_DATA)
            hasher.update(_data_bytes(getattr(node, attr)))
    return hasher.digest()


def content_hash(lang: Language, term: Any) -> bytes:
    """The stable 128-bit content hash of ``term``.

    A pure function of the term's visible structure (class names, binder
    names, data, child structure) — independent of sharing, session, or
    process.  Cached per session in the language store's weak ``hash_cache``
    so repeated hashing of live (e.g. hash-consed) terms is O(1).
    """
    cache = lang.hash_cache
    found = cache.get(term)
    if found is not None:
        return found
    specs = lang.specs
    results: list[bytes] = []
    stack: list[tuple[Any, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            cached = cache.get(node)
            if cached is not None:
                results.append(cached)
                continue
            spec = specs.get(type(node))
            if spec is None:
                raise WireError(f"not a {lang.name.upper()} term: {node!r}")
            stack.append((node, True))
            for child in reversed(spec.children):
                stack.append((getattr(node, child.attr), False))
        else:
            spec = specs[type(node)]
            count = len(spec.children)
            child_hashes = results[len(results) - count :] if count else []
            if count:
                del results[len(results) - count :]
            digest = _node_digest(spec, node, child_hashes)
            cache.put(node, digest)
            results.append(digest)
    return results[-1]


def encode_term(lang: Language, term: Any) -> bytes:
    """Encode ``term`` as a content-addressed binary node table.

    Canonical: the node-table order is the children-first order of *first
    structural occurrence*, so structurally equal terms — shared DAG or
    unfolded tree alike — encode to byte-identical buffers.
    """
    root_hash = content_hash(lang, term)  # also fills the hash cache
    cache = lang.hash_cache
    specs = lang.specs
    names: list[str] = []
    name_tags: dict[str, int] = {}
    index_of: dict[bytes, int] = {}
    body = bytearray()
    stack: list[tuple[Any, bool]] = [(term, False)]
    while stack:
        node, expanded = stack.pop()
        digest = cache.get(node)
        if digest in index_of:
            continue  # this structure is already in the table
        spec = specs[type(node)]
        if not expanded:
            stack.append((node, True))
            for child in reversed(spec.children):
                stack.append((getattr(node, child.attr), False))
            continue
        cls_name = type(node).__name__
        tag = name_tags.get(cls_name)
        if tag is None:
            tag = name_tags[cls_name] = len(names)
            names.append(cls_name)
        _write_varint(body, tag)
        binders = spec.binder_attrs
        child_attrs = spec.child_attrs
        for attr in spec.field_order:
            if attr in child_attrs:
                _write_varint(body, index_of[cache.get(getattr(node, attr))])
            elif attr in binders:
                _write_str(body, getattr(node, attr))
            else:
                body += _data_bytes(getattr(node, attr))
        body += digest
        index_of[digest] = len(index_of)
    out = bytearray(_MAGIC)
    _write_varint(out, CODEC_VERSION)
    _write_str(out, lang.name)
    _write_varint(out, len(names))
    for name in names:
        _write_str(out, name)
    _write_varint(out, len(index_of))
    out += body
    _write_varint(out, index_of[root_hash])
    return bytes(out)


class _Reader:
    """Bounds-checked cursor over a buffer; every overrun is a decode error."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def read(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise WireDecodeError(
                f"truncated buffer: wanted {count} byte(s) at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def varint(self) -> int:
        value = 0
        shift = 0
        while True:
            if self.pos >= len(self.data):
                raise WireDecodeError(f"truncated varint at offset {self.pos}")
            if shift > 63:
                raise WireDecodeError(f"overlong varint at offset {self.pos}")
            byte = self.data[self.pos]
            self.pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def string(self) -> str:
        length = self.varint()
        raw = self.read(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireDecodeError(f"malformed UTF-8 string at offset {self.pos}") from error

    def data_value(self) -> Any:
        tag = self.read(1)[0]
        if tag == _D_NONE:
            return None
        if tag == _D_FALSE:
            return False
        if tag == _D_TRUE:
            return True
        if tag == _D_INT:
            return self.varint()
        if tag == _D_STR:
            return self.string()
        raise WireDecodeError(f"unknown data tag {tag} at offset {self.pos - 1}")

    def done(self) -> bool:
        return self.pos == len(self.data)


def decode_term(lang: Language, data: bytes) -> Any:
    """Decode a buffer into the active session, adopting known nodes.

    O(new nodes): each entry's content hash is probed against the session's
    ``by_hash`` index first — a hit adopts the existing (already verified,
    already hash-consed) node by pointer.  Only unknown entries are
    re-hashed (rejecting corruption), built through the hash-consing
    constructor, and registered for future adoption.  Raises
    :class:`~repro.common.errors.WireDecodeError` on any malformed,
    truncated, or corrupt buffer, with a deterministic message.
    """
    reader = _Reader(data)
    if reader.read(4) != _MAGIC:
        raise WireDecodeError("bad magic: not a term DAG buffer")
    version = reader.varint()
    if version != CODEC_VERSION:
        raise WireDecodeError(
            f"unsupported codec version {version} (this build speaks {CODEC_VERSION})"
        )
    encoded_lang = reader.string()
    if encoded_lang != lang.name:
        raise WireDecodeError(
            f"language mismatch: buffer encodes {encoded_lang!r}, expected {lang.name!r}"
        )
    by_name = {cls.__name__: cls for cls in lang.specs}
    classes: list[type] = []
    for _ in range(reader.varint()):
        name = reader.string()
        cls = by_name.get(name)
        if cls is None:
            raise WireDecodeError(f"unknown node class {name!r} for language {lang.name!r}")
        classes.append(cls)
    count = reader.varint()
    if count == 0:
        raise WireDecodeError("empty node table")
    store = lang.store()
    by_hash = store.by_hash
    hash_cache = store.hash_cache
    table = store.hashcons
    specs = lang.specs
    nodes: list[Any] = []
    hashes: list[bytes] = []
    for index in range(count):
        tag = reader.varint()
        if tag >= len(classes):
            raise WireDecodeError(f"node {index}: class tag {tag} out of range")
        cls = classes[tag]
        spec = specs[cls]
        binders = spec.binder_attrs
        child_attrs = spec.child_attrs
        args: list[Any] = []
        child_hashes: list[bytes] = []
        for attr in spec.field_order:
            if attr in child_attrs:
                child = reader.varint()
                if child >= index:
                    raise WireDecodeError(
                        f"node {index}: forward/self child reference {child}"
                    )
                args.append(nodes[child])
                child_hashes.append(hashes[child])
            elif attr in binders:
                args.append(reader.string())
            else:
                args.append(reader.data_value())
        digest = reader.read(HASH_BYTES)
        node = by_hash.get(digest)
        if node is None:
            node = _build(lang, table, cls, tuple(args))
            expected = _node_digest(spec, node, child_hashes)
            if expected != digest:
                raise WireDecodeError(f"node {index}: content hash mismatch (corrupt buffer)")
            by_hash[digest] = node
            hash_cache.put(node, digest)
        nodes.append(node)
        hashes.append(digest)
    root = reader.varint()
    if root >= count:
        raise WireDecodeError(f"root index {root} out of range (table has {count})")
    if not reader.done():
        raise WireDecodeError(
            f"trailing garbage: {len(data) - reader.pos} byte(s) after root index"
        )
    return nodes[root]


def term_to_b64(lang: Language, term: Any) -> str:
    """:func:`encode_term`, base64-encoded for JSON transport."""
    return base64.b64encode(encode_term(lang, term)).decode("ascii")


def term_from_b64(lang: Language, text: str) -> Any:
    """:func:`decode_term` from base64 text; bad base64 is a decode error."""
    try:
        data = base64.b64decode(text.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError, ValueError) as error:
        raise WireDecodeError(f"malformed base64 term payload: {error}") from error
    return decode_term(lang, data)
