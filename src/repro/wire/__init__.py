"""Binary wire format and persistent memo tier for interned term DAGs.

Two layers, both keyed by the same 128-bit content hashes:

* :mod:`repro.wire.codec` — a versioned, content-addressed binary encoding
  of a term as a topologically ordered node table with child indices, so
  hash-cons sharing survives the process boundary and ingest is O(new
  nodes): a node whose hash the receiving session already knows is adopted
  by pointer, never rebuilt.
* :mod:`repro.wire.persist` — an append-only SQLite store of normalization
  results keyed on (term content hash × context-defs content key × memo
  kind × fuel discipline), consulted by the in-memory caches on miss and
  written through on store, shared across pool workers and surviving
  restarts.
"""

from repro.wire.codec import (
    CODEC_VERSION,
    content_hash,
    decode_term,
    encode_term,
    term_from_b64,
    term_to_b64,
)
from repro.wire.persist import PersistentMemoStore, PersistentTier

__all__ = [
    "CODEC_VERSION",
    "PersistentMemoStore",
    "PersistentTier",
    "content_hash",
    "decode_term",
    "encode_term",
    "term_from_b64",
    "term_to_b64",
]
