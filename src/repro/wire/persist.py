"""The persistent memo tier: normalization results that survive restarts.

An append-only SQLite table of sealed normalization entries, keyed on pure
*content*::

    key = BLAKE2b( discipline version ∥ memo kind ∥ term content hash
                   ∥ context-defs content key )

``kind`` is the same engine-qualified judgment string the in-memory
:class:`~repro.kernel.memo.NormalizationCache` keys on (``"cc.nf"``,
``"cc.whnf.subst"``, …), so the two engines never exchange entries here
either.  The context-defs key is derived from the session-local context
token by translating it *back* to content: the names of the visible
definitions paired with each definition's own content hash.  Session-local
identities (object ids, token numbers, fresh-counter positions) never
reach the store, which is what lets one store be shared by every worker of
a pool and by runs separated by a process restart.

Each row carries the result term (wire-encoded), the **recorded fuel** the
original computation spent, and a *seal*: a keyed BLAKE2b over (key, steps,
result bytes).  A hit replays the recorded fuel into the caller's budget
exactly like an in-memory hit, so a persisted hit is bit-identical to a
cold run — including the position of a fuel-exhaustion error.  A poisoned
row (tampered result or wrong fuel) fails its seal and is treated as a
miss, never trusted.

Concurrency: the store is read-mostly.  Readers hit SQLite directly (WAL
lets them proceed under a writer); writers buffer ``put`` calls in memory
and flush them as one ``INSERT OR IGNORE`` append transaction at a size
threshold and at detach/shutdown — so the normalization hot path never
blocks on a cross-process lock, and a crash between flushes loses nothing
but uncommitted cache warmth.

Failure domain: persistence is an *accelerator*, never a dependency.  A
store that cannot be **opened** raises a typed :class:`StoreError` (the
caller asked for it by path and must know); once open, every runtime
``sqlite3.Error`` is counted in ``stats()["errors"]`` and absorbed — a
read error is a miss, a write error keeps the buffer for retry.  Enough
*consecutive* errors trip a circuit breaker: the store stops issuing SQL
(reads miss, flushes park), probing once every ``probe_interval`` ops so a
recovered disk re-closes it.  The ``_pending`` buffer is bounded; when a
permanently-failing flush would grow it past ``max_pending_entries`` the
oldest entries are dropped (and counted) — losing cache warmth, never
correctness.  The result is a degradation ladder the session walks without
ever changing a payload byte::

    healthy store  ←  circuit open (in-memory + pending buffer only)  ←  detached

:func:`store_stat` / :func:`store_scrub` / :func:`store_compact` are the
offline maintenance half (surfaced as ``python -m repro store …``): they
verify every row's seal and salvage the validly-sealed ones out of a torn
file.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from hashlib import blake2b
from typing import Any, Callable

from repro.common.errors import ReproError, StoreError
from repro.wire.codec import content_hash, decode_term, encode_term

__all__ = [
    "FUEL_DISCIPLINE",
    "PersistentMemoStore",
    "PersistentTier",
    "StoreError",
    "store_compact",
    "store_scrub",
    "store_stat",
]

#: Fault-injection seam (:mod:`repro.service.faults`).  When a chaos plan
#: arms store faults for the running job, this holds a callable taking
#: ``"read"`` or ``"write"`` that raises ``sqlite3.OperationalError`` for
#: the scheduled kinds; it is ``None`` — one attribute load, no call — in
#: every production run.
FAULT_HOOK: Callable[[str], None] | None = None

#: The fuel-discipline version baked into every key.  Bump when the meaning
#: of recorded steps changes (cost model, replay semantics): old entries
#: then simply stop matching instead of replaying the wrong fuel.
FUEL_DISCIPLINE = 1

_SEAL_KEY = b"repro-memo-seal"
_SCHEMA = """
CREATE TABLE IF NOT EXISTS memo (
    key     BLOB PRIMARY KEY,
    steps   INTEGER NOT NULL,
    result  BLOB NOT NULL,
    seal    BLOB NOT NULL
) WITHOUT ROWID
"""

#: Compiled-backend artifacts (:mod:`repro.backend.artifact`) share the
#: store file in a second table with the same sealed row shape: ``key`` is
#: the artifact key (content hash of the source program + compile options),
#: ``steps`` the recorded check+verify fuel the cold compile spent, and
#: ``result`` the encoded artifact.  Same seal, same failure domain, same
#: breaker — an artifact row that fails its seal is a miss, never trusted.
_ARTIFACT_SCHEMA = """
CREATE TABLE IF NOT EXISTS artifact (
    key     BLOB PRIMARY KEY,
    steps   INTEGER NOT NULL,
    result  BLOB NOT NULL,
    seal    BLOB NOT NULL
) WITHOUT ROWID
"""


def _seal(key: bytes, steps: int, result: bytes) -> bytes:
    sealer = blake2b(digest_size=16, key=_SEAL_KEY)
    sealer.update(key)
    sealer.update(steps.to_bytes(8, "little"))
    sealer.update(result)
    return sealer.digest()


class PersistentMemoStore:
    """One connection to the shared on-disk memo store.

    Every process opens its own instance over the same path; SQLite WAL
    mode arbitrates concurrent readers and the append-only writers.
    ``read_only`` opens in query-only mode (writes buffer but never flush).
    """

    def __init__(
        self,
        path: Any,
        *,
        read_only: bool = False,
        flush_threshold: int = 256,
        timeout: float = 30.0,
        max_pending_entries: int = 4096,
        breaker_threshold: int = 5,
        probe_interval: int = 64,
    ) -> None:
        self.path = str(path)
        self.read_only = read_only
        self.flush_threshold = flush_threshold
        self.max_pending_entries = max_pending_entries
        self.breaker_threshold = breaker_threshold
        self.probe_interval = probe_interval
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.flushes = 0
        self.errors = 0
        self.dropped = 0
        self.trips = 0
        self.artifact_hits = 0
        self.artifact_misses = 0
        self.artifact_writes = 0
        self.consecutive_errors = 0
        self._breaker_open = False
        self._ops_since_trip = 0
        self._lock = threading.RLock()
        self._pending: dict[bytes, tuple[int, bytes]] = {}
        self._pending_artifacts: dict[bytes, tuple[int, bytes]] = {}
        try:
            self._conn = sqlite3.connect(
                self.path, timeout=timeout, check_same_thread=False
            )
            if read_only:
                self._conn.execute("PRAGMA query_only=ON")
            else:
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
                self._conn.execute(_SCHEMA)
                self._conn.execute(_ARTIFACT_SCHEMA)
                self._conn.commit()
        except sqlite3.Error as err:
            raise StoreError(f"cannot open memo store at {self.path}: {err}") from err

    # -- circuit breaker ------------------------------------------------------

    def _sqlite_ok(self) -> None:
        self.consecutive_errors = 0
        self._breaker_open = False

    def _sqlite_error(self) -> None:
        self.errors += 1
        self.consecutive_errors += 1
        if not self._breaker_open and self.consecutive_errors >= self.breaker_threshold:
            self._breaker_open = True
            self.trips += 1
            self._ops_since_trip = 0

    def _breaker_blocks(self) -> bool:
        """Should the open breaker skip this SQLite op?

        While open, one op in every ``probe_interval`` is let through as a
        probe; a probe that succeeds re-closes the breaker.  Counted in
        *ops*, never wall-clock, so chaos runs stay deterministic.
        """
        if not self._breaker_open:
            return False
        self._ops_since_trip += 1
        if self._ops_since_trip >= self.probe_interval:
            self._ops_since_trip = 0
            return False
        return True

    def get(self, key: bytes) -> tuple[int, bytes] | None:
        """The sealed ``(steps, result)`` for ``key``, or None.

        Checks this process's unflushed buffer first, then the table.  A
        row whose seal does not verify — a poisoned or torn entry — is
        counted and reported as a miss.
        """
        with self._lock:
            found = self._pending.get(key)
            if found is not None:
                self.hits += 1
                return found
            if self._breaker_blocks():
                self.misses += 1
                return None
            try:
                hook = FAULT_HOOK
                if hook is not None:
                    hook("read")
                row = self._conn.execute(
                    "SELECT steps, result, seal FROM memo WHERE key = ?", (key,)
                ).fetchone()
            except sqlite3.Error:
                # e.g. a read-only handle on a not-yet-created store, or a
                # disk gone bad mid-run: counted, reported as a miss.
                self._sqlite_error()
                self.misses += 1
                return None
            self._sqlite_ok()
            if row is None:
                self.misses += 1
                return None
            steps, result, seal = row
            if seal != _seal(key, steps, result):
                self.misses += 1
                return None
            self.hits += 1
            return steps, result

    def put(self, key: bytes, steps: int, result: bytes) -> None:
        """Buffer one entry; flushed in a batch at the size threshold.

        The buffer is bounded: if flushing keeps failing (or never happens
        — a read-only handle), the oldest entries are dropped and counted
        rather than growing memory without bound.
        """
        with self._lock:
            if key in self._pending:
                return
            self._pending[key] = (steps, result)
            self.writes += 1
            # A fault window forces the flush attempt so injected write
            # errors fire at the scheduled job, not at a threshold crossing.
            hook = FAULT_HOOK
            if not self.read_only and (
                len(self._pending) >= self.flush_threshold or hook is not None
            ):
                self._flush_locked()
            self._shed_locked()

    def get_artifact(self, key: bytes) -> tuple[int, bytes] | None:
        """The sealed ``(steps, blob)`` of a compiled artifact, or None.

        Same discipline as :meth:`get` — buffer first, seal verified, every
        SQLite error counted and absorbed as a miss — over the ``artifact``
        table.  A pre-artifact store file opened read-only simply has no
        such table; the resulting read error is likewise a counted miss.
        """
        with self._lock:
            found = self._pending_artifacts.get(key)
            if found is not None:
                self.artifact_hits += 1
                return found
            if self._breaker_blocks():
                self.artifact_misses += 1
                return None
            try:
                hook = FAULT_HOOK
                if hook is not None:
                    hook("read")
                row = self._conn.execute(
                    "SELECT steps, result, seal FROM artifact WHERE key = ?", (key,)
                ).fetchone()
            except sqlite3.Error:
                self._sqlite_error()
                self.artifact_misses += 1
                return None
            self._sqlite_ok()
            if row is None:
                self.artifact_misses += 1
                return None
            steps, result, seal = row
            if seal != _seal(key, steps, result):
                self.artifact_misses += 1
                return None
            self.artifact_hits += 1
            return steps, result

    def put_artifact(self, key: bytes, steps: int, blob: bytes) -> None:
        """Buffer one compiled artifact; flushed with the memo batch."""
        with self._lock:
            if key in self._pending_artifacts:
                return
            self._pending_artifacts[key] = (steps, blob)
            self.artifact_writes += 1
            hook = FAULT_HOOK
            if not self.read_only and (
                len(self._pending_artifacts) >= self.flush_threshold or hook is not None
            ):
                self._flush_locked()
            self._shed_locked()

    def flush(self) -> None:
        """Append every buffered entry in one transaction (no-op read-only)."""
        with self._lock:
            if not self.read_only:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._pending and not self._pending_artifacts:
            return
        if self._breaker_blocks():
            return  # breaker open: park the buffer, no SQL issued
        rows = [
            (key, steps, result, _seal(key, steps, result))
            for key, (steps, result) in self._pending.items()
        ]
        artifact_rows = [
            (key, steps, result, _seal(key, steps, result))
            for key, (steps, result) in self._pending_artifacts.items()
        ]
        try:
            hook = FAULT_HOOK
            if hook is not None:
                hook("write")
            if rows:
                self._conn.executemany(
                    "INSERT OR IGNORE INTO memo (key, steps, result, seal) VALUES (?, ?, ?, ?)",
                    rows,
                )
            if artifact_rows:
                self._conn.executemany(
                    "INSERT OR IGNORE INTO artifact (key, steps, result, seal)"
                    " VALUES (?, ?, ?, ?)",
                    artifact_rows,
                )
            self._conn.commit()
        except sqlite3.Error:
            self._sqlite_error()
            return  # keep the buffers; the next flush retries
        self._sqlite_ok()
        self._pending.clear()
        self._pending_artifacts.clear()
        self.flushes += 1

    def _shed_locked(self) -> None:
        """Drop oldest buffered entries past the bound (cache warmth, not data)."""
        while len(self._pending) > self.max_pending_entries:
            del self._pending[next(iter(self._pending))]
            self.dropped += 1
        while len(self._pending_artifacts) > self.max_pending_entries:
            del self._pending_artifacts[next(iter(self._pending_artifacts))]
            self.dropped += 1

    def close(self) -> None:
        """Flush and close the connection."""
        with self._lock:
            if not self.read_only:
                self._flush_locked()
            try:
                self._conn.close()
            except sqlite3.Error:
                self.errors += 1

    def counters(self) -> dict[str, Any]:
        """The pure in-memory counters — cheap enough for per-message posts.

        ``stats()`` adds the SQL-backed ``entries`` count; workers report
        these instead so health telemetry never issues SELECTs.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "flushes": self.flushes,
            "errors": self.errors,
            "dropped": self.dropped,
            "trips": self.trips,
            "artifact_hits": self.artifact_hits,
            "artifact_misses": self.artifact_misses,
            "artifact_writes": self.artifact_writes,
            "breaker": "open" if self._breaker_open else "closed",
            "pending": len(self._pending),
            "artifact_pending": len(self._pending_artifacts),
        }

    def stats(self) -> dict[str, Any]:
        document = self.counters()
        document["entries"] = len(self)
        return document

    def __len__(self) -> int:
        # Telemetry only: suppressed errors are counted but deliberately do
        # not feed the breaker, so reading stats() never shifts its state.
        with self._lock:
            try:
                (count,) = self._conn.execute("SELECT COUNT(*) FROM memo").fetchone()
            except sqlite3.Error:
                self.errors += 1
                return len(self._pending)
            return count + sum(1 for key in self._pending if not self._known(key))

    def _known(self, key: bytes) -> bool:
        try:
            return (
                self._conn.execute(
                    "SELECT 1 FROM memo WHERE key = ?", (key,)
                ).fetchone()
                is not None
            )
        except sqlite3.Error:
            self.errors += 1
            return False


class PersistentTier:
    """One session's view of a :class:`PersistentMemoStore`.

    Installed on a :class:`~repro.kernel.state.KernelState` by
    ``attach_memo_store``; the in-memory normalization cache consults
    :meth:`load` on miss and calls :meth:`save` on store.  The tier owns
    the *translation* between the session's identity-keyed world (context
    tokens, term objects) and the store's content-keyed world.
    """

    __slots__ = (
        "store",
        "_state",
        "_languages",
        "_ctx_keys",
        "hits",
        "stores",
        "skipped",
        "errors",
    )

    def __init__(self, store: PersistentMemoStore, state: Any) -> None:
        self.store = store
        self._state = state
        self._languages: dict[str, Any] = {}
        self._ctx_keys: dict[int, bytes] = {}
        self.hits = 0
        self.stores = 0
        self.skipped = 0
        self.errors = 0

    def _language(self, kind: str) -> Any:
        """The Language a memo kind belongs to (``"cc.nf"`` → cc), or None."""
        prefix = kind.split(".", 1)[0]
        lang = self._languages.get(prefix)
        if lang is None:
            from repro.kernel.state import _LANGUAGES

            for candidate in _LANGUAGES:
                if candidate.name == prefix:
                    lang = self._languages[prefix] = candidate
                    break
        return lang

    def _ctx_key(self, lang: Any, token: int) -> bytes | None:
        """The content key of the context-defs view ``token`` fingerprints.

        Translates the session-local token back into content via the token
        table's reverse index: sorted (name, content hash of definition)
        pairs.  Returns None — skip the tier — when the token cannot be
        resolved in this session (e.g. a context carrying a token issued
        by a different state) or a definition is not a term of ``lang``.
        """
        found = self._ctx_keys.get(token)
        if found is not None:
            return found
        visible = self._state.token_table("kernel.ctx_tokens").by_token.get(token)
        if visible is None:
            return None
        hasher = blake2b(digest_size=16, key=b"repro-memo-ctx")
        term_base = lang.term_base
        for name in sorted(visible):
            value = visible[name]
            if not isinstance(value, term_base):
                return None
            hasher.update(name.encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(content_hash(lang, value))
        key = hasher.digest()
        self._ctx_keys[token] = key
        return key

    def _key(self, kind: str, lang: Any, term: Any, token: int) -> bytes | None:
        ctx_key = self._ctx_key(lang, token)
        if ctx_key is None:
            return None
        hasher = blake2b(digest_size=24, key=b"repro-memo-key")
        hasher.update(FUEL_DISCIPLINE.to_bytes(4, "little"))
        hasher.update(kind.encode("ascii"))
        hasher.update(b"\x00")
        hasher.update(content_hash(lang, term))
        hasher.update(ctx_key)
        return hasher.digest()

    def load(self, kind: str, term: Any, token: int) -> tuple[Any, int] | None:
        """The persisted ``(result, steps)`` for this computation, or None."""
        lang = self._language(kind)
        if lang is None or not isinstance(term, lang.term_base):
            self.skipped += 1
            return None
        key = self._key(kind, lang, term, token)
        if key is None:
            self.skipped += 1
            return None
        found = self.store.get(key)
        if found is None:
            return None
        steps, blob = found
        try:
            result = decode_term(lang, blob)
        except ReproError:
            return None  # undecodable row: a miss, never an error
        self.hits += 1
        return result, steps

    def save(self, kind: str, term: Any, token: int, result: Any, steps: int) -> None:
        """Write one completed computation through to the store."""
        lang = self._language(kind)
        if (
            lang is None
            or not isinstance(term, lang.term_base)
            or not isinstance(result, lang.term_base)
        ):
            self.skipped += 1
            return
        key = self._key(kind, lang, term, token)
        if key is None:
            self.skipped += 1
            return
        self.store.put(key, steps, encode_term(lang, result))
        self.stores += 1

    def _tier_counters(self) -> dict[str, int]:
        return {
            "tier_hits": self.hits,
            "tier_stores": self.stores,
            "tier_skipped": self.skipped,
            "tier_errors": self.errors,
        }

    def counters(self) -> dict[str, Any]:
        document = self.store.counters()
        document.update(self._tier_counters())
        return document

    def stats(self) -> dict[str, Any]:
        document = self.store.stats()
        document.update(self._tier_counters())
        return document


# --------------------------------------------------------------------------
# Offline maintenance: python -m repro store {stat,scrub,compact} PATH
# --------------------------------------------------------------------------


def _open_for_maintenance(path: Any) -> sqlite3.Connection:
    """A raw connection whose ``memo`` table is actually readable."""
    target = str(path)
    if not os.path.exists(target):
        raise StoreError(f"cannot open memo store at {target}: no such file")
    try:
        conn = sqlite3.connect(target)
    except sqlite3.Error as err:  # pragma: no cover - connect rarely fails
        raise StoreError(f"cannot open memo store at {target}: {err}") from err
    try:
        conn.execute("SELECT COUNT(*) FROM memo").fetchone()
    except sqlite3.Error as err:
        conn.close()
        raise StoreError(f"cannot read memo store at {target}: {err}") from err
    return conn


def _has_table(conn: sqlite3.Connection, table: str) -> bool:
    """Whether ``table`` exists (pre-artifact store files lack ``artifact``)."""
    try:
        return (
            conn.execute(
                "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?",
                (table,),
            ).fetchone()
            is not None
        )
    except sqlite3.Error:
        return False


def _salvage(
    conn: sqlite3.Connection, path: Any, table: str = "memo"
) -> tuple[list[tuple], int]:
    """Every validly-sealed row of ``table``, plus the count of rows scanned.

    Keys are listed first, then each row is fetched under its own guard,
    so one torn page costs only the rows on it — everything still readable
    *and* sealed is salvaged.  Both store tables (``memo``, ``artifact``)
    share the sealed row shape, so one salvage covers either.
    """
    try:
        keys = [
            key for (key,) in conn.execute(f"SELECT key FROM {table}").fetchall()
        ]
    except sqlite3.Error as err:
        raise StoreError(f"cannot read memo store at {path}: {err}") from err
    valid: list[tuple] = []
    for key in keys:
        try:
            row = conn.execute(
                f"SELECT steps, result, seal FROM {table} WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error:
            continue
        if row is None:
            continue
        steps, result, seal = row
        if seal == _seal(key, steps, result):
            valid.append((key, steps, result, seal))
    return valid, len(keys)


def _salvage_artifacts(conn: sqlite3.Connection, path: Any) -> tuple[list[tuple], int]:
    """Salvage the ``artifact`` table, tolerating its absence in old files."""
    if not _has_table(conn, "artifact"):
        return [], 0
    return _salvage(conn, path, table="artifact")


def _artifact_orphans(artifacts: list[tuple]) -> int:
    """Validly-sealed artifact rows whose blob is not a loadable artifact.

    The seal proves the row survived storage intact; the ``RPYC``
    magic/version sniff proves the bytes are an artifact this build can
    stage.  A sealed row failing the sniff is an *orphan* — typically
    written by a different artifact version — and will read as a miss
    forever, so ``store stat`` surfaces it as reclaimable.
    """
    from repro.backend.artifact import ARTIFACT_VERSION, _MAGIC

    orphans = 0
    for _key, _steps, blob, _seal in artifacts:
        header = bytes(blob[: len(_MAGIC) + 1])
        if header[: len(_MAGIC)] != _MAGIC:
            orphans += 1
            continue
        # The version varint follows the magic; version 1..127 is one byte.
        if len(header) <= len(_MAGIC) or header[len(_MAGIC)] != ARTIFACT_VERSION:
            orphans += 1
    return orphans


def store_stat(path: Any) -> dict[str, Any]:
    """Inspect a store: row counts, seal validity, byte totals.  Read-only.

    Reports the memo table and the compiled-backend ``artifact`` table
    side by side: scanned/valid/invalid row counts, the total payload
    bytes held by the validly-sealed rows of each, and the count of
    sealed-but-unloadable artifact orphans (see :func:`_artifact_orphans`).
    """
    conn = _open_for_maintenance(path)
    try:
        valid, scanned = _salvage(conn, path)
        artifacts, artifact_scanned = _salvage_artifacts(conn, path)
    finally:
        conn.close()
    return {
        "path": str(path),
        "size_bytes": os.path.getsize(str(path)),
        "entries": scanned,
        "valid": len(valid),
        "invalid": scanned - len(valid),
        "memo_bytes": sum(len(row[2]) for row in valid),
        "artifact_entries": artifact_scanned,
        "artifact_valid": len(artifacts),
        "artifact_invalid": artifact_scanned - len(artifacts),
        "artifact_bytes": sum(len(row[2]) for row in artifacts),
        "artifact_orphaned": _artifact_orphans(artifacts),
    }


def store_scrub(path: Any) -> dict[str, Any]:
    """Rebuild a (possibly torn) store from its validly-sealed rows.

    Salvages every row whose seal verifies into a fresh database, then
    atomically replaces the original (stale ``-wal``/``-shm`` sidecars are
    removed so SQLite cannot replay torn pages over the rebuilt file).
    Raises :class:`StoreError` when the file is not a database at all.
    """
    source = _open_for_maintenance(path)
    try:
        valid, scanned = _salvage(source, path)
        artifacts, artifact_scanned = _salvage_artifacts(source, path)
    finally:
        source.close()
    rebuilt = str(path) + ".scrub"
    if os.path.exists(rebuilt):
        os.unlink(rebuilt)
    replacement = sqlite3.connect(rebuilt)
    try:
        replacement.execute(_SCHEMA)
        replacement.execute(_ARTIFACT_SCHEMA)
        replacement.executemany(
            "INSERT OR IGNORE INTO memo (key, steps, result, seal) VALUES (?, ?, ?, ?)",
            valid,
        )
        replacement.executemany(
            "INSERT OR IGNORE INTO artifact (key, steps, result, seal) VALUES (?, ?, ?, ?)",
            artifacts,
        )
        replacement.commit()
    finally:
        replacement.close()
    os.replace(rebuilt, str(path))
    for sidecar in (str(path) + "-wal", str(path) + "-shm"):
        if os.path.exists(sidecar):
            os.unlink(sidecar)
    return {
        "path": str(path),
        "scanned": scanned + artifact_scanned,
        "salvaged": len(valid) + len(artifacts),
        "discarded": (scanned - len(valid)) + (artifact_scanned - len(artifacts)),
    }


def store_compact(path: Any) -> dict[str, Any]:
    """Delete invalidly-sealed rows in place and reclaim the space."""
    conn = _open_for_maintenance(path)
    try:
        valid, scanned = _salvage(conn, path)
        artifacts, artifact_scanned = _salvage_artifacts(conn, path)
        keep = {key for key, _steps, _result, _seal in valid}
        keep_artifacts = {key for key, _steps, _result, _seal in artifacts}
        try:
            doomed = [
                (key,)
                for (key,) in conn.execute("SELECT key FROM memo").fetchall()
                if key not in keep
            ]
            conn.executemany("DELETE FROM memo WHERE key = ?", doomed)
            if _has_table(conn, "artifact"):
                doomed_artifacts = [
                    (key,)
                    for (key,) in conn.execute("SELECT key FROM artifact").fetchall()
                    if key not in keep_artifacts
                ]
                conn.executemany("DELETE FROM artifact WHERE key = ?", doomed_artifacts)
            conn.commit()
            conn.execute("VACUUM")
        except sqlite3.Error as err:
            raise StoreError(f"cannot compact memo store at {path}: {err}") from err
    finally:
        conn.close()
    return {
        "path": str(path),
        "entries": len(keep) + len(keep_artifacts),
        "removed": (scanned - len(keep)) + (artifact_scanned - len(keep_artifacts)),
    }
