"""The persistent memo tier: normalization results that survive restarts.

An append-only SQLite table of sealed normalization entries, keyed on pure
*content*::

    key = BLAKE2b( discipline version ∥ memo kind ∥ term content hash
                   ∥ context-defs content key )

``kind`` is the same engine-qualified judgment string the in-memory
:class:`~repro.kernel.memo.NormalizationCache` keys on (``"cc.nf"``,
``"cc.whnf.subst"``, …), so the two engines never exchange entries here
either.  The context-defs key is derived from the session-local context
token by translating it *back* to content: the names of the visible
definitions paired with each definition's own content hash.  Session-local
identities (object ids, token numbers, fresh-counter positions) never
reach the store, which is what lets one store be shared by every worker of
a pool and by runs separated by a process restart.

Each row carries the result term (wire-encoded), the **recorded fuel** the
original computation spent, and a *seal*: a keyed BLAKE2b over (key, steps,
result bytes).  A hit replays the recorded fuel into the caller's budget
exactly like an in-memory hit, so a persisted hit is bit-identical to a
cold run — including the position of a fuel-exhaustion error.  A poisoned
row (tampered result or wrong fuel) fails its seal and is treated as a
miss, never trusted.

Concurrency: the store is read-mostly.  Readers hit SQLite directly (WAL
lets them proceed under a writer); writers buffer ``put`` calls in memory
and flush them as one ``INSERT OR IGNORE`` append transaction at a size
threshold and at detach/shutdown — so the normalization hot path never
blocks on a cross-process lock, and a crash between flushes loses nothing
but uncommitted cache warmth.
"""

from __future__ import annotations

import sqlite3
import threading
from hashlib import blake2b
from typing import Any

from repro.common.errors import ReproError
from repro.wire.codec import content_hash, decode_term, encode_term

__all__ = ["FUEL_DISCIPLINE", "PersistentMemoStore", "PersistentTier"]

#: The fuel-discipline version baked into every key.  Bump when the meaning
#: of recorded steps changes (cost model, replay semantics): old entries
#: then simply stop matching instead of replaying the wrong fuel.
FUEL_DISCIPLINE = 1

_SEAL_KEY = b"repro-memo-seal"
_SCHEMA = """
CREATE TABLE IF NOT EXISTS memo (
    key     BLOB PRIMARY KEY,
    steps   INTEGER NOT NULL,
    result  BLOB NOT NULL,
    seal    BLOB NOT NULL
) WITHOUT ROWID
"""


def _seal(key: bytes, steps: int, result: bytes) -> bytes:
    sealer = blake2b(digest_size=16, key=_SEAL_KEY)
    sealer.update(key)
    sealer.update(steps.to_bytes(8, "little"))
    sealer.update(result)
    return sealer.digest()


class PersistentMemoStore:
    """One connection to the shared on-disk memo store.

    Every process opens its own instance over the same path; SQLite WAL
    mode arbitrates concurrent readers and the append-only writers.
    ``read_only`` opens in query-only mode (writes buffer but never flush).
    """

    def __init__(
        self,
        path: Any,
        *,
        read_only: bool = False,
        flush_threshold: int = 256,
        timeout: float = 30.0,
    ) -> None:
        self.path = str(path)
        self.read_only = read_only
        self.flush_threshold = flush_threshold
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.flushes = 0
        self._lock = threading.RLock()
        self._pending: dict[bytes, tuple[int, bytes]] = {}
        self._conn = sqlite3.connect(self.path, timeout=timeout, check_same_thread=False)
        if read_only:
            self._conn.execute("PRAGMA query_only=ON")
        else:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(_SCHEMA)
            self._conn.commit()

    def get(self, key: bytes) -> tuple[int, bytes] | None:
        """The sealed ``(steps, result)`` for ``key``, or None.

        Checks this process's unflushed buffer first, then the table.  A
        row whose seal does not verify — a poisoned or torn entry — is
        counted and reported as a miss.
        """
        with self._lock:
            found = self._pending.get(key)
            if found is not None:
                self.hits += 1
                return found
            try:
                row = self._conn.execute(
                    "SELECT steps, result, seal FROM memo WHERE key = ?", (key,)
                ).fetchone()
            except sqlite3.Error:
                row = None  # e.g. a read-only handle on a not-yet-created store
            if row is None:
                self.misses += 1
                return None
            steps, result, seal = row
            if seal != _seal(key, steps, result):
                self.misses += 1
                return None
            self.hits += 1
            return steps, result

    def put(self, key: bytes, steps: int, result: bytes) -> None:
        """Buffer one entry; flushed in a batch at the size threshold."""
        with self._lock:
            if key in self._pending:
                return
            self._pending[key] = (steps, result)
            self.writes += 1
            if not self.read_only and len(self._pending) >= self.flush_threshold:
                self._flush_locked()

    def flush(self) -> None:
        """Append every buffered entry in one transaction (no-op read-only)."""
        with self._lock:
            if not self.read_only:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._pending:
            return
        rows = [
            (key, steps, result, _seal(key, steps, result))
            for key, (steps, result) in self._pending.items()
        ]
        try:
            self._conn.executemany(
                "INSERT OR IGNORE INTO memo (key, steps, result, seal) VALUES (?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()
        except sqlite3.Error:
            return  # keep the buffer; the next flush retries
        self._pending.clear()
        self.flushes += 1

    def close(self) -> None:
        """Flush and close the connection."""
        with self._lock:
            if not self.read_only:
                self._flush_locked()
            self._conn.close()

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "flushes": self.flushes,
            "entries": len(self),
        }

    def __len__(self) -> int:
        with self._lock:
            try:
                (count,) = self._conn.execute("SELECT COUNT(*) FROM memo").fetchone()
            except sqlite3.Error:
                count = 0
            return count + sum(1 for key in self._pending if not self._known(key))

    def _known(self, key: bytes) -> bool:
        try:
            return (
                self._conn.execute(
                    "SELECT 1 FROM memo WHERE key = ?", (key,)
                ).fetchone()
                is not None
            )
        except sqlite3.Error:
            return False


class PersistentTier:
    """One session's view of a :class:`PersistentMemoStore`.

    Installed on a :class:`~repro.kernel.state.KernelState` by
    ``attach_memo_store``; the in-memory normalization cache consults
    :meth:`load` on miss and calls :meth:`save` on store.  The tier owns
    the *translation* between the session's identity-keyed world (context
    tokens, term objects) and the store's content-keyed world.
    """

    __slots__ = ("store", "_state", "_languages", "_ctx_keys", "hits", "stores", "skipped")

    def __init__(self, store: PersistentMemoStore, state: Any) -> None:
        self.store = store
        self._state = state
        self._languages: dict[str, Any] = {}
        self._ctx_keys: dict[int, bytes] = {}
        self.hits = 0
        self.stores = 0
        self.skipped = 0

    def _language(self, kind: str) -> Any:
        """The Language a memo kind belongs to (``"cc.nf"`` → cc), or None."""
        prefix = kind.split(".", 1)[0]
        lang = self._languages.get(prefix)
        if lang is None:
            from repro.kernel.state import _LANGUAGES

            for candidate in _LANGUAGES:
                if candidate.name == prefix:
                    lang = self._languages[prefix] = candidate
                    break
        return lang

    def _ctx_key(self, lang: Any, token: int) -> bytes | None:
        """The content key of the context-defs view ``token`` fingerprints.

        Translates the session-local token back into content via the token
        table's reverse index: sorted (name, content hash of definition)
        pairs.  Returns None — skip the tier — when the token cannot be
        resolved in this session (e.g. a context carrying a token issued
        by a different state) or a definition is not a term of ``lang``.
        """
        found = self._ctx_keys.get(token)
        if found is not None:
            return found
        visible = self._state.token_table("kernel.ctx_tokens").by_token.get(token)
        if visible is None:
            return None
        hasher = blake2b(digest_size=16, key=b"repro-memo-ctx")
        term_base = lang.term_base
        for name in sorted(visible):
            value = visible[name]
            if not isinstance(value, term_base):
                return None
            hasher.update(name.encode("utf-8"))
            hasher.update(b"\x00")
            hasher.update(content_hash(lang, value))
        key = hasher.digest()
        self._ctx_keys[token] = key
        return key

    def _key(self, kind: str, lang: Any, term: Any, token: int) -> bytes | None:
        ctx_key = self._ctx_key(lang, token)
        if ctx_key is None:
            return None
        hasher = blake2b(digest_size=24, key=b"repro-memo-key")
        hasher.update(FUEL_DISCIPLINE.to_bytes(4, "little"))
        hasher.update(kind.encode("ascii"))
        hasher.update(b"\x00")
        hasher.update(content_hash(lang, term))
        hasher.update(ctx_key)
        return hasher.digest()

    def load(self, kind: str, term: Any, token: int) -> tuple[Any, int] | None:
        """The persisted ``(result, steps)`` for this computation, or None."""
        lang = self._language(kind)
        if lang is None or not isinstance(term, lang.term_base):
            self.skipped += 1
            return None
        key = self._key(kind, lang, term, token)
        if key is None:
            self.skipped += 1
            return None
        found = self.store.get(key)
        if found is None:
            return None
        steps, blob = found
        try:
            result = decode_term(lang, blob)
        except ReproError:
            return None  # undecodable row: a miss, never an error
        self.hits += 1
        return result, steps

    def save(self, kind: str, term: Any, token: int, result: Any, steps: int) -> None:
        """Write one completed computation through to the store."""
        lang = self._language(kind)
        if (
            lang is None
            or not isinstance(term, lang.term_base)
            or not isinstance(result, lang.term_base)
        ):
            self.skipped += 1
            return
        key = self._key(kind, lang, term, token)
        if key is None:
            self.skipped += 1
            return
        self.store.put(key, steps, encode_term(lang, result))
        self.stores += 1

    def stats(self) -> dict[str, int]:
        document = self.store.stats()
        document.update(
            {"tier_hits": self.hits, "tier_stores": self.stores, "tier_skipped": self.skipped}
        )
        return document
