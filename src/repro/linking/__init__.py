"""Linking by closing substitutions (paper Section 5.2, Theorem 5.7)."""

from repro.linking.link import (
    ClosingSubstitution,
    TargetClosingSubstitution,
    check_substitution,
    check_target_substitution,
    link,
    link_target,
    translate_substitution,
)

__all__ = [
    "ClosingSubstitution",
    "TargetClosingSubstitution",
    "check_substitution",
    "check_target_substitution",
    "link",
    "link_target",
    "translate_substitution",
]
