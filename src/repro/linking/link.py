"""Components, closing substitutions, and linking (paper Section 5.2).

A *component* is a well-typed open term ``Γ ⊢ e : A``.  Linking is
substitution: a closing substitution ``γ`` maps every assumption of Γ to a
closed term of the right type (``Γ ⊢ γ`` in the paper), and ``γ(e)`` is
the linked program.

The paper's separate-compilation story (Theorem 5.7): compiling a
component and *then* linking with compiled imports gives the same ground
observation as linking first and compiling the whole program.  Because CC
types can mention earlier imports, checking ``Γ ⊢ γ`` must substitute γ
into later types as it walks the telescope — the same dependency ordering
closure conversion relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import cc, cccc
from repro.cc.context import Context as CCContext
from repro.cccc.context import Context as TargetContext
from repro.closconv.translate import translate
from repro.common.errors import LinkError, TypeCheckError
from repro.kernel.budget import Budget

__all__ = [
    "ClosingSubstitution",
    "TargetClosingSubstitution",
    "check_substitution",
    "check_target_substitution",
    "link",
    "link_target",
    "translate_substitution",
]


@dataclass(frozen=True)
class ClosingSubstitution:
    """A CC closing substitution γ: name → closed term."""

    mapping: dict[str, cc.Term] = field(default_factory=dict)

    def __getitem__(self, name: str) -> cc.Term:
        return self.mapping[name]

    def __contains__(self, name: str) -> bool:
        return name in self.mapping

    def items(self):
        """Iterate over (name, term) pairs."""
        return self.mapping.items()


@dataclass(frozen=True)
class TargetClosingSubstitution:
    """A CC-CC closing substitution: name → closed target term."""

    mapping: dict[str, cccc.Term] = field(default_factory=dict)

    def __getitem__(self, name: str) -> cccc.Term:
        return self.mapping[name]

    def __contains__(self, name: str) -> bool:
        return name in self.mapping

    def items(self):
        """Iterate over (name, term) pairs."""
        return self.mapping.items()


def check_substitution(
    ctx: CCContext, gamma: ClosingSubstitution, budget: Budget | None = None
) -> None:
    """Check ``Γ ⊢ γ``: each import receives a closed term of its type.

    Types of later entries are instantiated with the values chosen for
    earlier entries before checking.  Definition entries must be *matched*
    by γ (mapped to a term equivalent to their instantiated definition) or
    omitted, in which case the definition itself is used at link time.
    ``budget`` (a fresh default when omitted) is threaded through every
    per-import judgment, so callers — ``repro.api.Session.link`` in
    particular — can report the exact fuel the whole check spent.
    """
    if budget is None:
        budget = Budget()
    empty = CCContext.empty()
    applied: dict[str, cc.Term] = {}
    for binding in ctx:
        expected_type = cc.subst(binding.type_, applied)
        if binding.definition is not None:
            value = cc.subst(binding.definition, applied)
            if binding.name in gamma:
                supplied = gamma[binding.name]
                if not cc.equivalent(empty, supplied, value, budget):
                    raise LinkError(
                        f"substitution for defined import {binding.name!r} is not "
                        f"equivalent to its definition"
                    )
                value = supplied
        else:
            if binding.name not in gamma:
                raise LinkError(f"no substitution for import {binding.name!r}")
            value = gamma[binding.name]
            stray = cc.free_vars(value)
            if stray:
                raise LinkError(
                    f"substitution for {binding.name!r} is not closed: "
                    f"free variables {sorted(stray)}"
                )
        try:
            cc.check(empty, value, expected_type, budget)
        except TypeCheckError as error:
            raise LinkError(
                f"substitution for {binding.name!r} has the wrong type: {error}"
            ) from error
        applied[binding.name] = value


def link(ctx: CCContext, term: cc.Term, gamma: ClosingSubstitution) -> cc.Term:
    """``γ(e)``: close ``term`` over its imports.

    Entries are substituted in telescope order so that values chosen for
    earlier imports flow into the (possibly dependent) defaults of later
    definition entries.
    """
    applied: dict[str, cc.Term] = {}
    for binding in ctx:
        if binding.name in gamma:
            applied[binding.name] = cc.subst(gamma[binding.name], applied)
        elif binding.definition is not None:
            applied[binding.name] = cc.subst(binding.definition, applied)
    return cc.subst(term, applied)


def check_target_substitution(ctx: TargetContext, gamma: TargetClosingSubstitution) -> None:
    """Check a CC-CC closing substitution against a translated interface."""
    empty = TargetContext.empty()
    applied: dict[str, cccc.Term] = {}
    for binding in ctx:
        expected_type = cccc.subst(binding.type_, applied)
        if binding.definition is not None:
            value = cccc.subst(binding.definition, applied)
            if binding.name in gamma:
                supplied = gamma[binding.name]
                if not cccc.equivalent(empty, supplied, value):
                    raise LinkError(
                        f"substitution for defined import {binding.name!r} is not "
                        f"equivalent to its definition"
                    )
                value = supplied
        else:
            if binding.name not in gamma:
                raise LinkError(f"no substitution for import {binding.name!r}")
            value = gamma[binding.name]
            stray = cccc.free_vars(value)
            if stray:
                raise LinkError(
                    f"substitution for {binding.name!r} is not closed: "
                    f"free variables {sorted(stray)}"
                )
        try:
            cccc.check(empty, value, expected_type)
        except TypeCheckError as error:
            raise LinkError(
                f"substitution for {binding.name!r} has the wrong type: {error}"
            ) from error
        applied[binding.name] = value


def link_target(
    ctx: TargetContext, term: cccc.Term, gamma: TargetClosingSubstitution
) -> cccc.Term:
    """``γ(e)`` on the CC-CC side."""
    applied: dict[str, cccc.Term] = {}
    for binding in ctx:
        if binding.name in gamma:
            applied[binding.name] = cccc.subst(gamma[binding.name], applied)
        elif binding.definition is not None:
            applied[binding.name] = cccc.subst(binding.definition, applied)
    return cccc.subst(term, applied)


def translate_substitution(gamma: ClosingSubstitution) -> TargetClosingSubstitution:
    """``γ⁺``: compile a closing substitution pointwise (each value is closed)."""
    empty = CCContext.empty()
    return TargetClosingSubstitution(
        {name: translate(empty, value) for name, value in gamma.items()}
    )
