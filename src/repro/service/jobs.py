"""The service wire format: JSON job specs and split result documents.

A **job** is one independent unit of kernel work, described entirely by
JSON-serializable data (the dispatcher literally sends ``json.dumps`` of
the spec down the worker pipe, so nothing richer can leak through):

    {"id": "b0-7", "kind": "normalize", "program": "(\\\\ (x : Nat). x) 3",
     "engine": "nbe", "fuel": null, "key": "build-0"}

``kind`` selects the session entrypoint.  The service kinds mirror
:class:`repro.api.Session` — ``parse`` / ``check`` / ``normalize`` /
``compile`` / ``run`` / ``compile_py`` / ``link`` (``compile_py`` is
``run`` through the compile-to-host backend: the program is staged into
cached Python closures and its payload matches the machine ``run``
payload exactly, plus the backend name and artifact hash) — plus three
service-level kinds:

* ``reset`` — return the executing session to its cold deterministic zero
  (the classic start-of-build ``reset_fresh_counter`` discipline; with
  affinity keys this cools exactly one worker instead of the whole pool);
* ``stats`` — telemetry poll: the deterministic payload is the constant
  ``{"stats": true}`` (so a stats job can ride any stream without breaking
  the byte-identical differentials) and the *telemetry* travels in ``meta``
  — the executing session's cache statistics in-process, and the full
  aggregated :class:`~repro.service.dispatcher.PoolStats` document when a
  service endpoint answers the poll itself (``/metrics``-style);
* ``sleep`` / ``crash`` — chaos kinds for health checks and the
  worker-failure test suite (a worker executing ``crash`` dies hard; the
  in-process executor merely fails the job).

``key`` is the **affinity key**: jobs sharing a key are dispatched to the
same worker slot, so a stream of related jobs keeps hitting that worker's
warm memo caches.  Jobs without a key are sharded round-robin.

``deadline`` is the job's **wall-clock budget** in seconds, measured from
dispatcher acceptance.  An expired job never goes silent: it completes as
a structured ``JobTimeout`` dead-letter document (an overdue worker is
recycled exactly like a pool-level timeout), and the service endpoint maps
client-supplied per-job deadlines onto this field.

``trace`` opts the job into structured event tracing: the dispatcher and
executor record submit/execute/complete events (plus a wall-clock
timeline) into the result's ``meta["trace"]`` — out-of-band of the
deterministic payload, so traced results stay byte-identical to untraced
ones.  The schema lives in :mod:`repro.obs.trace`.

A **result** is split in two, and the split is load-bearing:

* ``payload`` (or ``error``) is the *deterministic* half — every term is
  rendered α-canonically (``pretty(intern(term))``), and every step count
  comes from the fuel-replaying caches, so the payload is byte-identical
  no matter which worker ran the job, how warm its caches were, or what
  had executed before it.  This is what the service's determinism
  differential compares.
* ``meta`` is the *telemetry* half — worker name, attempt number,
  per-job cache-hit deltas, wall time.  It legitimately varies run to run
  and feeds the dispatcher's aggregated pool stats.

Dead letters keep the split: a job quarantined by the dispatcher (crash
attempts exhausted, crash-loop breaker) completes as the *error* half of a
result — ``error["dead_letter"]`` is True and the type/message/attempts
are pure functions of the failure history, so even quarantine documents
are byte-identical across same-plan chaos runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["JOB_KINDS", "PROGRAM_KINDS", "WIRE_VERSIONS", "Job", "JobResult"]

#: Every job kind the executor understands, in dispatch order of interest:
#: the Session entrypoints, then the service-level kinds.
JOB_KINDS = (
    "parse",
    "check",
    "normalize",
    "compile",
    "run",
    "compile_py",
    "link",
    "reset",
    "stats",
    "sleep",
    "crash",
)

#: Kinds that require a program (as surface text or a binary term).
PROGRAM_KINDS = frozenset(
    {"parse", "check", "normalize", "compile", "run", "compile_py", "link"}
)
_PROGRAM_KINDS = PROGRAM_KINDS  # historical name

#: Wire-format versions this build speaks.  Version 1 is the original
#: text-only format (``program`` carries surface syntax); version 2 adds
#: the binary DAG form: jobs may carry ``term_b64`` (a base64
#: :mod:`repro.wire.codec` buffer) instead of — or alongside — ``program``,
#: and payloads echo ``*_b64`` renderings next to the pretty text.  Specs
#: without a ``wire`` field are version 1, so every old JSONL corpus loads
#: unchanged; unknown versions are rejected at parse time, not mid-batch.
WIRE_VERSIONS = (1, 2)


@dataclass(frozen=True)
class Job:
    """One unit of kernel work, fully described by JSON-safe data."""

    kind: str
    id: str | None = None
    program: str | None = None
    engine: str | None = None  # normalize only; None = session default
    fuel: int | None = None  # per-job fuel override; None = session default
    key: str | None = None  # affinity key; None = round-robin
    verify: bool = True  # compile/run
    imports: Mapping[str, str] = field(default_factory=dict)  # link
    interface: tuple[tuple[str, str], ...] = ()  # link: the telescope Γ
    seconds: float = 0.0  # sleep
    wire: int = 1  # wire-format version this spec speaks
    term_b64: str | None = None  # binary DAG program (wire >= 2)
    deadline: float | None = None  # wall-clock seconds the job may spend in the pool
    trace: bool = False  # record a structured event trace in the result meta

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            expected = ", ".join(JOB_KINDS)
            raise ValueError(f"unknown job kind {self.kind!r} (expected one of {expected})")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("'deadline' must be positive (wall-clock seconds)")
        if self.wire not in WIRE_VERSIONS:
            expected = ", ".join(str(version) for version in WIRE_VERSIONS)
            raise ValueError(
                f"unsupported wire version {self.wire!r} (this build speaks {expected})"
            )
        if self.term_b64 is not None and self.wire < 2:
            raise ValueError("'term_b64' requires wire version 2")
        if self.kind in PROGRAM_KINDS and not self.program and not self.term_b64:
            raise ValueError(f"{self.kind!r} job needs a 'program' or 'term_b64' field")

    @property
    def shard_key(self) -> str | None:
        """The affinity key the dispatcher shards on (None → round-robin)."""
        return self.key

    def to_dict(self) -> dict[str, Any]:
        """The JSON wire form (sparse: defaults are omitted)."""
        spec: dict[str, Any] = {"kind": self.kind}
        if self.id is not None:
            spec["id"] = self.id
        if self.program is not None:
            spec["program"] = self.program
        if self.engine is not None:
            spec["engine"] = self.engine
        if self.fuel is not None:
            spec["fuel"] = self.fuel
        if self.key is not None:
            spec["key"] = self.key
        if not self.verify:
            spec["verify"] = False
        if self.imports:
            spec["imports"] = dict(self.imports)
        if self.interface:
            spec["interface"] = [list(entry) for entry in self.interface]
        if self.seconds:
            spec["seconds"] = self.seconds
        if self.wire != 1:
            spec["wire"] = self.wire
        if self.term_b64 is not None:
            spec["term_b64"] = self.term_b64
        if self.deadline is not None:
            spec["deadline"] = self.deadline
        if self.trace:
            spec["trace"] = True
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "Job":
        """Parse a wire spec; unknown fields are rejected, not ignored."""
        known = {
            "kind",
            "id",
            "program",
            "engine",
            "fuel",
            "key",
            "verify",
            "imports",
            "interface",
            "seconds",
            "wire",
            "term_b64",
            "deadline",
            "trace",
        }
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown job fields: {', '.join(sorted(unknown))}")
        if "kind" not in spec:
            raise ValueError("job spec is missing 'kind'")
        interface = tuple(
            (str(name), str(type_)) for name, type_ in spec.get("interface", ())
        )
        return cls(
            kind=spec["kind"],
            id=spec.get("id"),
            program=spec.get("program"),
            engine=spec.get("engine"),
            fuel=spec.get("fuel"),
            key=spec.get("key"),
            verify=spec.get("verify", True),
            imports=dict(spec.get("imports", {})),
            interface=interface,
            seconds=spec.get("seconds", 0.0),
            wire=spec.get("wire", 1),
            term_b64=spec.get("term_b64"),
            deadline=spec.get("deadline"),
            trace=bool(spec.get("trace", False)),
        )


@dataclass(frozen=True)
class JobResult:
    """One job's outcome: deterministic payload/error plus telemetry meta."""

    id: str
    ok: bool
    payload: dict[str, Any] = field(default_factory=dict)
    error: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    def canonical(self) -> dict[str, Any]:
        """The deterministic half — what pooled-vs-solo differentials compare.

        Identical for the same job spec no matter which worker executed it,
        in what order, or against how warm a session: term renderings are
        α-canonical and step counts replay exactly from the fuel caches.
        """
        if self.ok:
            return {"id": self.id, "ok": True, "payload": dict(self.payload)}
        return {"id": self.id, "ok": False, "error": dict(self.error)}

    def to_dict(self) -> dict[str, Any]:
        """The full JSON wire form, telemetry included."""
        document = self.canonical()
        document["meta"] = dict(self.meta)
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "JobResult":
        return cls(
            id=document["id"],
            ok=document["ok"],
            payload=dict(document.get("payload", {})),
            error=dict(document.get("error", {})),
            meta=dict(document.get("meta", {})),
        )
