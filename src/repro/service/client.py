"""The bundled service client: windowed streaming, retry, resubmit.

One :class:`ServiceClient` drives one NDJSON connection to a
:mod:`repro.service.endpoint` server from a single thread: it keeps a
bounded *window* of jobs in flight (send-side mirror of the endpoint's
admission window — a windowed client never deadlocks against a server
that stops reading under backpressure, because it never floods the socket
and always returns to the read side), matches results to requests by job
id, and reassembles submission order for the caller.

Failure handling is the point:

* **Overloaded shed** (``error["shed"]``) — the job is retried after
  exponential backoff with *deterministic* jitter (a blake2b hash of the
  job id and attempt number — no random source, so two identical runs
  back off identically) up to ``max_retries`` times; past that the shed
  document itself is the job's result, never an exception.
* **Connection loss** (reset, EOF, a truncated line without its newline)
  — the client reconnects with the same deterministic backoff,
  re-announces its session token (job ids are client-scoped on the
  endpoint), and **resubmits every unacknowledged job**, in original
  submission order.  The endpoint recognizes ids it has already accepted
  and redelivers retained results instead of re-executing, so a flaky
  network costs latency, never correctness: the deterministic result
  halves are byte-identical to an uninterrupted run.
* **Chaos self-faults** — a :class:`~repro.service.faults.FaultPlan`
  handed to the client applies its *connection-category* faults from the
  client side at exact job coordinates: ``conn_drop`` closes the socket
  before sending the scheduled job, ``conn_stall`` sleeps, and
  ``conn_truncate`` sends half the line and closes.  This exercises the
  reconnect-and-resubmit machinery without server cooperation and must
  change nothing but timing (``batch --connect --chaos-seed``).
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import time
from hashlib import blake2b
from typing import Any, Iterable, Mapping

from repro.service.faults import FaultInjector, FaultPlan
from repro.service.jobs import Job

__all__ = ["ServiceClient", "parse_address"]


def parse_address(address: str) -> tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)`` (the ``--connect`` argument)."""
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise ValueError(f"malformed address {address!r} (expected HOST:PORT)")
    return host, int(port_text)


_SESSION_IDS = itertools.count()


def _jitter(token: str, attempt: int) -> float:
    """Deterministic backoff jitter in [0.75, 1.25) — no random source."""
    digest = blake2b(f"{token}:{attempt}".encode("utf-8"), digest_size=2).digest()
    return 0.75 + int.from_bytes(digest, "little") / 65536 * 0.5


class ServiceClient:
    """A synchronous windowed client for the repro service endpoint.

    Args:
        host/port: the endpoint address.
        window: jobs kept in flight at once (send pauses past it).
        max_retries: shed/reconnect retries per job before giving up with
            the last structured document (never an exception).
        backoff: base retry delay; doubles per attempt up to
            ``backoff_cap``, with deterministic jitter.
        timeout: wall-clock bound on one :meth:`run_batch` call.
        fault_plan: connection-category chaos applied *client-side* (see
            the module docstring); worker-category faults are ignored here.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        window: int = 32,
        max_retries: int = 8,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        timeout: float = 120.0,
        fault_plan: FaultPlan | Mapping[str, Any] | None = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.host = host
        self.port = port
        self.window = window
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.timeout = timeout
        plan = FaultPlan.coerce(fault_plan)
        self._injector = None if plan is None else FaultInjector(plan)
        # Job ids are client-scoped on the endpoint; this token names the
        # client's record namespace, and announcing it on every connect is
        # what makes resubmit-after-reconnect find the same records.  It
        # only needs to be unique — it never touches a deterministic payload.
        self.session = f"{os.getpid():x}.{next(_SESSION_IDS):x}.{time.monotonic_ns():x}"
        self._sock: socket.socket | None = None
        self._buffer = bytearray()
        self.reconnects = 0
        self.resubmitted = 0
        self.shed_retries = 0
        # Live-telemetry subscription state: snapshots accumulate here and
        # feed the optional callback as they arrive mid-batch.
        self.metrics: list[dict[str, Any]] = []
        self._metrics_callback: Any = None
        self._watch_interval: float | None = None

    @classmethod
    def from_address(cls, address: str, **options: Any) -> "ServiceClient":
        return cls(*parse_address(address), **options)

    # -- socket plumbing ------------------------------------------------------

    def _connect(self) -> None:
        attempt = 0
        while True:
            try:
                self._sock = socket.create_connection((self.host, self.port), timeout=10.0)
                self._sock.settimeout(0.05)
                self._buffer.clear()
                # Announce the session namespace; the welcome reply rides
                # the stream and is skipped by the batch loop's op filter.
                self._send_line({"op": "hello", "session": self.session})
                if self._watch_interval is not None:
                    # Subscriptions are per-socket server-side; re-announce
                    # so a reconnect resumes the metrics stream.
                    self._send_line(
                        {"op": "watch", "interval": self._watch_interval}
                    )
                return
            except OSError:
                self._disconnect()
                attempt += 1
                if attempt > self.max_retries:
                    raise
                self._sleep_backoff("connect", attempt)

    def _sleep_backoff(self, token: str, attempt: int) -> None:
        delay = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        time.sleep(delay * _jitter(token, attempt))

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close rarely fails
                pass
        self._sock = None
        self._buffer.clear()

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _send_line(self, document: Mapping[str, Any]) -> None:
        assert self._sock is not None
        self._sock.sendall(json.dumps(document).encode("utf-8") + b"\n")

    def _read_line(self, deadline: float) -> dict[str, Any] | None:
        """One document off the socket, or None on timeout; raises on loss.

        A closed connection with a partial line still buffered is a
        *truncated* document: discarded, surfaced as connection loss, and
        healed by resubmit — a half-written result must never parse.
        """
        assert self._sock is not None
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                if not line.strip():
                    continue
                return json.loads(line)
            if time.monotonic() > deadline:
                return None
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                return None
            except OSError as err:
                raise ConnectionError(str(err)) from err
            if not chunk:
                raise ConnectionError(
                    "server closed the connection"
                    + (" mid-document" if self._buffer else "")
                )
            self._buffer.extend(chunk)

    # -- chaos self-faults ----------------------------------------------------

    def _apply_send_fault(self, spec: Mapping[str, Any]) -> bool:
        """Fire any scheduled client-side connection fault for this send.

        Returns True when the fault consumed the send (the caller treats
        it as a connection loss and lets resubmit heal it).
        """
        if self._injector is None:
            return False
        fault = self._injector.delivery_fault(spec.get("id"))
        if fault is None:
            return False
        if fault.kind == "conn_stall":
            time.sleep(fault.seconds)
            return False
        if fault.kind == "conn_drop":
            self._disconnect()
            return True
        if fault.kind == "conn_truncate":
            line = json.dumps(spec).encode("utf-8")
            try:
                assert self._sock is not None
                self._sock.sendall(line[: max(1, len(line) // 2)])
            except OSError:
                pass
            self._disconnect()
            return True
        return False  # pragma: no cover - exhaustive over CONNECTION_KINDS

    # -- the batch loop -------------------------------------------------------

    def run_batch(self, jobs: Iterable[Job | Mapping[str, Any]]) -> list[dict[str, Any]]:
        """Stream ``jobs`` through the endpoint; documents in submission order.

        Every job resolves to a document — a result, a dead letter, or
        (retries exhausted) the endpoint's structured refusal.  Raises
        only for unrecoverable transport failure or the batch ``timeout``.
        """
        specs: list[dict[str, Any]] = []
        for index, job in enumerate(jobs):
            spec = dict(job.to_dict() if isinstance(job, Job) else job)
            spec.setdefault("id", f"job-{index}")
            specs.append(spec)
        order = [spec["id"] for spec in specs]
        if len(set(order)) != len(order):
            raise ValueError("duplicate job ids in one batch")

        results: dict[str, dict[str, Any]] = {}
        to_send: list[dict[str, Any]] = list(specs)  # FIFO of sends due now
        retries: list[tuple[float, dict[str, Any]]] = []  # (due_at, spec)
        unacked: dict[str, dict[str, Any]] = {}  # sent, not yet answered
        attempts: dict[str, int] = {}
        deadline = time.monotonic() + self.timeout
        reconnect_attempt = 0

        while len(results) < len(specs):
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"batch did not complete within {self.timeout}s "
                    f"({len(results)}/{len(specs)} results)"
                )
            if self._sock is None:
                if reconnect_attempt or unacked:
                    self.reconnects += 1
                if reconnect_attempt:
                    self._sleep_backoff("reconnect", reconnect_attempt)
                self._connect()
                if unacked:
                    # Resubmit everything unacknowledged, original order —
                    # the endpoint adopts known ids and redelivers retained
                    # results instead of re-executing.
                    self.resubmitted += len(unacked)
                    pending = [unacked[job_id] for job_id in order if job_id in unacked]
                    unacked.clear()
                    to_send = pending + to_send
            try:
                now = time.monotonic()
                due = [entry for entry in retries if entry[0] <= now]
                if due:
                    retries = [entry for entry in retries if entry[0] > now]
                    to_send.extend(spec for _, spec in due)
                while to_send and len(unacked) < self.window:
                    spec = to_send.pop(0)
                    if self._apply_send_fault(spec):
                        to_send.insert(0, spec)  # the drop consumed the send
                        raise ConnectionError("chaos: client dropped its connection")
                    # Mark unacked *before* sending: if sendall raises
                    # mid-line the spec must survive into the resubmit set,
                    # or the job is lost to neither queue.
                    unacked[spec["id"]] = spec
                    self._send_line(spec)
                document = self._read_line(
                    deadline=min(deadline, time.monotonic() + 0.1)
                )
                reconnect_attempt = 0
            except (OSError, json.JSONDecodeError):
                # OSError covers ConnectionError and a send-side timeout: a
                # partial sendall leaves the line half-written, so the only
                # safe recovery is reconnect-and-resubmit (the endpoint
                # discards the partial line at EOF).
                self._disconnect()
                reconnect_attempt += 1
                if reconnect_attempt > self.max_retries:
                    raise ConnectionError(
                        f"gave up after {self.max_retries} reconnect attempts"
                    )
                continue
            if document is None:
                continue
            if "op" in document and "id" not in document:
                if document.get("op") == "bye":
                    # Server drained under us: treat as loss; resubmit to
                    # whatever comes back up (or time out trying).
                    self._disconnect()
                elif document.get("op") == "metrics":
                    # Live-telemetry snapshot riding the result stream:
                    # collected out-of-band, never matched to a job.
                    self.metrics.append(document)
                    if self._metrics_callback is not None:
                        self._metrics_callback(document)
                continue
            job_id = document.get("id")
            spec = unacked.pop(job_id, None)
            if spec is None:
                continue  # duplicate delivery after a resubmit race: drop
            error = document.get("error") or {}
            if not document.get("ok") and error.get("shed"):
                attempt = attempts.get(job_id, 0) + 1
                attempts[job_id] = attempt
                if attempt <= self.max_retries:
                    self.shed_retries += 1
                    delay = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
                    retries.append(
                        (time.monotonic() + delay * _jitter(job_id, attempt), spec)
                    )
                    continue
            results[job_id] = document
        return [results[job_id] for job_id in order]

    # -- telemetry ------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """One ``stats`` poll: the endpoint + pool telemetry document."""
        [document] = self.run_batch([{"id": "stats-poll", "kind": "stats"}])
        return document

    def watch_stats(self, interval: float = 0.5, callback: Any = None) -> None:
        """Subscribe to the endpoint's live metrics stream.

        Snapshots (``{"op": "metrics", ...}`` documents: pool stats with
        per-slot health, endpoint counters, supervisor scaling signals,
        per-connection queue depths) arrive interleaved with result lines
        during :meth:`run_batch`; each is appended to :attr:`metrics` and
        handed to ``callback`` as it lands.  The subscription survives
        reconnects (it is re-announced after the hello) and never touches
        job results — a watched batch is byte-identical to an unwatched
        one.  Call :meth:`unwatch_stats` to stop.
        """
        if interval <= 0:
            raise ValueError("interval must be positive seconds")
        self._watch_interval = float(interval)
        self._metrics_callback = callback
        if self._sock is None:
            self._connect()  # _connect announces the subscription
        else:
            self._send_line({"op": "watch", "interval": self._watch_interval})

    def unwatch_stats(self) -> None:
        """Cancel a :meth:`watch_stats` subscription (keep collected snapshots)."""
        self._watch_interval = None
        self._metrics_callback = None
        if self._sock is not None:
            try:
                self._send_line({"op": "unwatch"})
            except OSError:  # pragma: no cover - socket died; nothing to cancel
                self._disconnect()
