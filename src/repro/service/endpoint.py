"""The service endpoint: a streaming socket front door over the dispatcher.

``python -m repro serve`` binds an asyncio server speaking
newline-delimited JSON: each line from a client is one job spec (the wire
format of :mod:`repro.service.jobs`, ``wire: 2`` binary programs welcome),
each line back is one result document.  Results stream back in completion
order, matched to requests by job id — clients keep a bounded window of
jobs in flight and never depend on ordering.

The endpoint is the part of the service that faces an *unbounded, hostile*
world, so every resource it hands out is bounded and every failure mode is
a structured document:

**Admission control.**  A connection may have at most ``conn_window``
accepted-but-unfinished jobs; past that the endpoint simply stops reading
the socket, so backpressure propagates to the client through TCP instead
of through unbounded buffering.  Endpoint-wide, at most ``max_inflight``
jobs are admitted; past the hard limit a job is **shed** with an
``Overloaded`` error document (``error["shed"]`` is True) the moment its
line is read — deterministic given the arrival order of accepted work,
and the bundled client knows to back off and resubmit.

**Per-client fair share.**  Accepted jobs enter a per-connection queue and
one scheduler round-robins across connections, handing the dispatcher one
job per client per turn — a client streaming thousands of jobs cannot
starve one streaming ten.  Job ids and affinity keys are client-scoped:
both are namespaced by the client's session (announced in its ``hello``,
or private to the socket), so two clients streaming the same ids or keys
never collide — each gets its own records, its own warm workers — while
the pool sees globally unique dispatch ids; and an optional ``fuel_quota`` clamps
every client job's fuel, threading the service's resource policy down into
the kernel checkers (a quota-exceeding job fails with the kernel's own
deterministic fuel-exhaustion error).

**Deadlines.**  A job spec carrying ``deadline`` rides the dispatcher's
deadline machinery (:mod:`repro.service.dispatcher`): expired jobs come
back as ``JobTimeout`` dead-letter documents whose deterministic half is a
pure function of the spec — never silence, never a hung client.

**Graceful drain.**  On SIGTERM (or :meth:`Endpoint.drain`) the endpoint
stops accepting connections and job lines, flushes every accepted job
through the pool — dispatcher drain dead-letters anything that cannot
finish — and delivers every result it can still deliver before closing.
Zero accepted-and-lost by construction: an accepted job always resolves to
a document, and the document is either written to its owner or retained
for redelivery until the endpoint exits.

**Elastic scaling.**  ``serve`` runs the pool between ``min_workers`` and
``max_workers`` under an :class:`~repro.service.dispatcher.ElasticSupervisor`:
queue depth past the high watermark grows the pool (new workers warm from
the shared persistent memo store), an idle pool shrinks back.  Capacity
and timing change; bytes do not.

**Live telemetry.**  Beyond the inline ``stats`` poll, a client may send
``{"op": "watch", "interval": 0.5}`` to subscribe to a periodic metrics
stream: the endpoint pushes ``{"op": "metrics", ...}`` snapshots (pool
stats with per-slot health, endpoint counters, supervisor scaling signals,
per-connection queue depths) between result lines until ``{"op":
"unwatch"}``, the socket closes, or the endpoint drains.  Metrics
documents carry no ``id``, so result-keyed clients skip them structurally;
the snapshots are telemetry only and never perturb job results or drain
semantics.  ``serve --metrics-interval N`` additionally prints the same
snapshots as NDJSON lines server-side.

**Redelivery.**  A result whose connection died before (or during)
delivery is retained, keyed by session and job id; when the client
reconnects (announcing the same session) and resubmits — the bundled
client resubmits everything unacknowledged — the
endpoint recognizes the id and delivers the retained document instead of
re-executing.  The deterministic halves make the distinction invisible:
re-execution would produce the same bytes, redelivery is just cheaper.
Scheduled **connection faults** (:mod:`repro.service.faults`:
``conn_drop`` / ``conn_stall`` / ``conn_truncate``) are applied at exactly
this point — the moment a result is about to be written — which is how the
chaos benchmark proves the retention/resubmit loop loses nothing.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import re
import signal
import threading
import time
from collections import deque
from typing import Any, Mapping

from repro.service.dispatcher import Dispatcher, ElasticSupervisor
from repro.service.faults import FaultInjector, FaultPlan
from repro.service.jobs import Job

__all__ = ["Endpoint", "EndpointServer", "serve", "serve_background"]

_CONNECTION_IDS = itertools.count(1)

#: Error document types the endpoint itself can emit (never the kernel).
SHED_TYPE = "Overloaded"
BAD_JOB_TYPE = "BadJob"
DRAINING_TYPE = "EndpointDraining"


def _error_doc(job_id: str | None, type_: str, message: str, **extra: Any) -> dict:
    """A structured endpoint-level error document (deterministic text)."""
    error = {"type": type_, "message": message}
    error.update(extra)
    return {"id": job_id, "ok": False, "error": error, "meta": {"endpoint": True}}


class _Connection:
    """Endpoint-side state for one client socket."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.id = next(_CONNECTION_IDS)
        self.reader = reader
        self.writer = writer
        self.queue: deque[_Record] = deque()  # accepted, not yet dispatched
        self.inflight = 0  # accepted, not yet completed (the window)
        self.window = asyncio.Condition()
        self.write_lock = asyncio.Lock()
        self.closed = False
        self.session: str | None = None  # hello-announced client identity
        self.watch_task: asyncio.Task | None = None  # metrics subscription

    @property
    def namespace(self) -> str:
        """The record/affinity namespace for this client.

        Job ids are client-scoped: two clients may stream the same ids
        concurrently without colliding.  A hello-announced session token
        keeps the namespace stable across reconnects (so resubmit finds
        its records); a client that never says hello gets a namespace
        private to the socket.
        """
        return self.session or f"conn{self.id}"

    async def send(self, document: Mapping[str, Any]) -> None:
        line = json.dumps(document).encode("utf-8") + b"\n"
        async with self.write_lock:
            if self.closed:
                raise ConnectionResetError("connection is closed")
            self.writer.write(line)
            await self.writer.drain()

    def abort(self) -> None:
        """Tear the socket down hard (connection-fault injection path)."""
        self.closed = True
        transport = self.writer.transport
        if transport is not None:
            transport.abort()


class _Record:
    """One accepted job: spec, owner, and (eventually) its result document."""

    __slots__ = (
        "key", "job", "dispatch_job", "owner", "window_conn", "document", "delivering"
    )

    def __init__(self, key: str, job: Job, dispatch_job: Job, owner: _Connection):
        self.key = key  # records-table key: "{namespace}/{job id}"
        self.job = job
        self.dispatch_job = dispatch_job
        self.owner: _Connection | None = owner
        self.window_conn: _Connection | None = owner
        self.document: dict[str, Any] | None = None
        self.delivering = False


class Endpoint:
    """The asyncio NDJSON server fronting one :class:`Dispatcher`.

    Args:
        dispatcher: the worker pool to front.  Its ``max_pending`` must be
            at least ``max_inflight`` (``serve`` constructs it that way);
            the scheduler additionally guards the bound so a foreign
            dispatcher can never block the event loop.
        host/port: bind address (port 0 picks a free port; read
            :attr:`port` after :meth:`start`).
        conn_window: accepted-but-unfinished jobs one connection may hold
            before the endpoint stops reading its socket.
        max_inflight: endpoint-wide hard admission limit; jobs arriving
            past it are shed with ``Overloaded`` documents.
        fuel_quota: per-client fuel clamp threaded into every job
            (None = no clamp).
        fault_plan: a :class:`FaultPlan` whose *connection-category* faults
            this endpoint fires at result-delivery time.  Worker-category
            faults in the same plan belong to the dispatcher (``serve``
            hands one plan to both).
        supervisor: an optional :class:`ElasticSupervisor` the endpoint
            starts alongside the server and stops on drain.
        metrics_interval: when set, the endpoint prints one NDJSON metrics
            snapshot to stdout every ``metrics_interval`` seconds while
            serving (the server-side twin of the ``watch`` subscription).
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        conn_window: int = 32,
        max_inflight: int = 128,
        fuel_quota: int | None = None,
        fault_plan: FaultPlan | Mapping[str, Any] | None = None,
        supervisor: ElasticSupervisor | None = None,
        metrics_interval: float | None = None,
    ) -> None:
        if conn_window < 1 or max_inflight < conn_window:
            raise ValueError("need 1 <= conn_window <= max_inflight")
        if metrics_interval is not None and metrics_interval <= 0:
            raise ValueError("metrics_interval must be positive seconds")
        self.dispatcher = dispatcher
        self.host = host
        self.port = port
        self.conn_window = conn_window
        self.max_inflight = max_inflight
        self.fuel_quota = fuel_quota
        self.supervisor = supervisor
        self.metrics_interval = metrics_interval
        self._metrics_task: asyncio.Task | None = None
        plan = FaultPlan.coerce(fault_plan)
        self._injector = None if plan is None else FaultInjector(plan)
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._records: dict[str, _Record] = {}
        self._connections: set[_Connection] = set()
        self._ready: deque[_Connection] = deque()
        self._work = asyncio.Event()
        self._inflight = 0  # endpoint-wide accepted, not yet completed
        self._draining = False
        self._drained = asyncio.Event()
        self._scheduler_task: asyncio.Task | None = None
        self._delivery_tasks: set[asyncio.Task] = set()
        self._counts = {
            "connections": 0,
            "accepted": 0,
            "shed": 0,
            "rejected": 0,
            "delivered": 0,
            "redelivered": 0,
            "retained": 0,
        }

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind the server and start the scheduler (and supervisor)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._on_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler_task = asyncio.ensure_future(self._schedule())
        if self.supervisor is not None and not self.supervisor.is_alive():
            self.supervisor.start()
        if self.metrics_interval is not None:
            self._metrics_task = asyncio.ensure_future(
                self._print_metrics(self.metrics_interval)
            )

    async def serve_until_drained(self) -> None:
        """Block until :meth:`drain` completes (signal-driven serving)."""
        await self._drained.wait()

    async def drain(self, timeout: float = 30.0) -> None:
        """Stop accepting, flush every accepted job, deliver, shut down."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.supervisor is not None:
            await asyncio.get_running_loop().run_in_executor(None, self.supervisor.stop)
        # Metrics streams stop first: telemetry must never delay (or
        # interleave into) the final result flush.
        if self._metrics_task is not None:
            self._metrics_task.cancel()
        for conn in list(self._connections):
            if conn.watch_task is not None:
                conn.watch_task.cancel()
        # Readers stop at the next line boundary (they check the flag); wake
        # any parked on a full window so they notice.
        for conn in list(self._connections):
            async with conn.window:
                conn.window.notify_all()
        # 1. Every accepted job reaches the dispatcher (per-connection
        #    queues empty through the scheduler as usual).
        deadline = asyncio.get_running_loop().time() + timeout
        while any(conn.queue for conn in self._connections):
            if asyncio.get_running_loop().time() > deadline:
                break
            self._work.set()
            await asyncio.sleep(0.01)
        # 2. The pool flushes: every dispatched job completes or
        #    dead-letters (DrainTimeout at worst) — zero accepted-and-lost.
        remaining = max(0.5, deadline - asyncio.get_running_loop().time())
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.dispatcher.drain(timeout=remaining)
        )
        # 3. Every completion callback has been queued via
        #    call_soon_threadsafe; yield until the documents land and the
        #    delivery tasks settle.
        while self._inflight > 0 or self._delivery_tasks:
            if asyncio.get_running_loop().time() > deadline + 5.0:
                break  # pragma: no cover - only a wedged event loop
            await asyncio.sleep(0.01)
        self._counts["retained"] = sum(
            1 for record in self._records.values() if record.document is not None
        )
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
        for conn in list(self._connections):
            try:
                await conn.send({"op": "bye", "drained": True})
            except (ConnectionError, OSError):
                pass
            conn.closed = True
            conn.writer.close()
        self._drained.set()

    # -- telemetry ------------------------------------------------------------

    def telemetry(self) -> dict[str, Any]:
        """Endpoint counters (the ``meta`` half of a ``stats`` poll)."""
        return {
            **self._counts,
            "open_connections": len(self._connections),
            "inflight": self._inflight,
            "conn_window": self.conn_window,
            "max_inflight": self.max_inflight,
            "draining": self._draining,
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """One live-telemetry document: pool, endpoint, supervisor, queues.

        ``at`` is the only wall-clock field a consumer should expect to
        vary run-to-run at equal load; everything else is counters.  The
        pool half is the full introspected :class:`PoolStats` document
        (per-slot health included), so a metrics stream is a superset of
        the inline ``stats`` poll.
        """
        snapshot: dict[str, Any] = {
            "op": "metrics",
            "at": time.time(),
            "pool": self.dispatcher.stats().to_dict(),
            "endpoint": self.telemetry(),
            "queues": {
                conn.namespace: {"queued": len(conn.queue), "inflight": conn.inflight}
                for conn in self._connections
            },
        }
        if self.supervisor is not None:
            snapshot["supervisor"] = self.supervisor.signals()
        return snapshot

    async def _watch_loop(self, conn: _Connection, interval: float) -> None:
        """Push metrics snapshots to one subscribed connection."""
        try:
            while not self._draining and not conn.closed:
                await conn.send(self.metrics_snapshot())
                await asyncio.sleep(interval)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass  # subscription ends with the socket; results are unaffected

    async def _print_metrics(self, interval: float) -> None:
        """Server-side metrics stream: one NDJSON snapshot per interval."""
        try:
            while not self._draining:
                await asyncio.sleep(interval)
                print(json.dumps(self.metrics_snapshot()), flush=True)
        except asyncio.CancelledError:
            pass

    # -- connection handling --------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        self._counts["connections"] += 1
        try:
            await self._read_loop(conn)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            conn.closed = True
            if conn.watch_task is not None:
                conn.watch_task.cancel()
                conn.watch_task = None
            self._connections.discard(conn)
            # Undelivered results and in-flight work owned by this socket
            # become orphans awaiting resubmit-on-reconnect adoption.
            for record in self._records.values():
                if record.owner is conn:
                    record.owner = None
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already gone
                pass

    async def _read_loop(self, conn: _Connection) -> None:
        while not self._draining:
            # Backpressure: a full window pauses the read, so the client
            # blocks on TCP instead of the endpoint buffering unboundedly.
            async with conn.window:
                while conn.inflight >= self.conn_window and not self._draining:
                    await conn.window.wait()
            if self._draining:
                return
            line = await conn.reader.readline()
            if not line:
                return
            line = line.strip()
            if not line:
                continue
            if self._draining:
                # A line raced the drain: it is *not* accepted — answer
                # with a structured refusal so the client resubmits to the
                # replacement server instead of waiting forever.
                try:
                    doc = json.loads(line)
                    job_id = doc.get("id") if isinstance(doc, dict) else None
                except json.JSONDecodeError:
                    job_id = None
                await conn.send(
                    _error_doc(job_id, DRAINING_TYPE, "endpoint is draining; not accepting jobs")
                )
                return
            try:
                spec = json.loads(line)
            except json.JSONDecodeError as err:
                await conn.send(_error_doc(None, BAD_JOB_TYPE, f"bad JSON line: {err}"))
                self._counts["rejected"] += 1
                continue
            if not isinstance(spec, dict):
                await conn.send(_error_doc(None, BAD_JOB_TYPE, "job spec must be a JSON object"))
                self._counts["rejected"] += 1
                continue
            if spec.get("op") == "hello":
                session = spec.get("session")
                if isinstance(session, str) and session:
                    # Sanitized so the token can never forge another
                    # client's "{namespace}/{id}" record keys.
                    conn.session = re.sub(r"[^0-9A-Za-z._:-]", "_", session)[:64]
                await conn.send(
                    {
                        "op": "welcome",
                        "server": self.dispatcher.name,
                        "wire": 2,
                        "conn_window": self.conn_window,
                    }
                )
                continue
            if spec.get("op") == "watch":
                interval = spec.get("interval", 1.0)
                if not isinstance(interval, (int, float)) or interval <= 0:
                    await conn.send(
                        _error_doc(None, BAD_JOB_TYPE, "'interval' must be positive seconds")
                    )
                    continue
                if conn.watch_task is not None:
                    conn.watch_task.cancel()
                # A floor keeps a hostile subscriber from turning the
                # metrics stream into a stats()-hammering busy loop.
                conn.watch_task = asyncio.ensure_future(
                    self._watch_loop(conn, max(0.05, float(interval)))
                )
                continue
            if spec.get("op") == "unwatch":
                if conn.watch_task is not None:
                    conn.watch_task.cancel()
                    conn.watch_task = None
                continue
            await self._admit(conn, spec)

    async def _admit(self, conn: _Connection, spec: Mapping[str, Any]) -> None:
        """Admission control for one job line; always answers something."""
        job_id = spec.get("id")
        if not isinstance(job_id, str) or not job_id:
            await conn.send(
                _error_doc(
                    None, BAD_JOB_TYPE,
                    "service jobs need a string 'id' (resubmit is keyed by it)",
                )
            )
            self._counts["rejected"] += 1
            return
        try:
            job = Job.from_dict(spec)
        except (ValueError, TypeError) as err:
            await conn.send(_error_doc(job_id, BAD_JOB_TYPE, str(err)))
            self._counts["rejected"] += 1
            return
        if job.kind == "stats":
            # /metrics-style poll: answered inline, outside the admission
            # windows, so telemetry stays available under full load.  The
            # deterministic payload is the same constant the executor
            # returns; the numbers ride the meta half.
            await conn.send(
                {
                    "id": job_id,
                    "ok": True,
                    "payload": {"stats": True},
                    "meta": {
                        "stats": {
                            "pool": self.dispatcher.stats().to_dict(),
                            "endpoint": self.telemetry(),
                        }
                    },
                }
            )
            return
        record_key = f"{conn.namespace}/{job_id}"
        record = self._records.get(record_key)
        if record is not None:
            # Resubmit of a known job (the client reconnected): adopt the
            # new connection as delivery target; redeliver if the result is
            # already in hand, otherwise delivery happens on completion.
            record.owner = conn
            if record.document is not None and not record.delivering:
                self._counts["redelivered"] += 1
                self._spawn_delivery(record)
            return
        if self._inflight >= self.max_inflight:
            # Hard shed: deterministic given the arrival order of accepted
            # work — the document says exactly why and the client backs off.
            self._counts["shed"] += 1
            await conn.send(
                _error_doc(
                    job_id, SHED_TYPE,
                    f"endpoint is over its hard admission limit "
                    f"({self.max_inflight} jobs in flight); back off and resubmit",
                    shed=True,
                )
            )
            return
        record = _Record(record_key, job, self._dispatch_form(conn, job), conn)
        self._records[record_key] = record
        self._inflight += 1
        conn.inflight += 1
        self._counts["accepted"] += 1
        conn.queue.append(record)
        if conn not in self._ready:
            self._ready.append(conn)
        self._work.set()

    def _dispatch_form(self, conn: _Connection, job: Job) -> Job:
        """The job as the dispatcher sees it: namespaced id/key, clamped fuel."""
        spec = job.to_dict()
        # Job ids are client-scoped; the pool's in-flight table is global.
        # Namespacing the dispatch id lets two clients stream the same ids
        # concurrently (delivery rewrites the id back — see _resolve).
        spec["id"] = f"{conn.namespace}/{job.id}"
        if job.key is not None:
            # Per-client affinity namespace: two clients using the same
            # key each get their own warm worker (payloads never depend on
            # slot assignment, so this is invisible on the wire).
            spec["key"] = f"{conn.namespace}:{job.key}"
        if self.fuel_quota is not None and (job.fuel is None or job.fuel > self.fuel_quota):
            # The per-client quota threads straight into the kernel
            # checkers via the executor's per-job fuel override; exceeding
            # it is the kernel's own deterministic fuel-exhaustion error.
            spec["fuel"] = self.fuel_quota
        return Job.from_dict(spec)

    # -- scheduling -----------------------------------------------------------

    async def _schedule(self) -> None:
        """Round-robin one job per connection per turn into the dispatcher."""
        assert self._loop is not None
        while True:
            await self._work.wait()
            self._work.clear()
            while self._ready:
                conn = self._ready.popleft()
                if not conn.queue:
                    continue
                record = conn.queue.popleft()
                if conn.queue:
                    self._ready.append(conn)  # fair share: back of the line
                # Guard the dispatcher bound so a foreign pool with a small
                # max_pending can never block the event loop in submit().
                while self.dispatcher.queue_depth() >= self.dispatcher.max_pending:
                    await asyncio.sleep(0.005)  # pragma: no cover - sized away by serve()
                try:
                    self.dispatcher.submit(record.dispatch_job, on_done=self._make_on_done(record))
                except RuntimeError as err:
                    # Draining/shutdown raced the submit: the job still
                    # resolves to a structured document, never silence.
                    self._resolve(record, _error_doc(record.job.id, DRAINING_TYPE, str(err)))
                except ValueError as err:  # pragma: no cover - duplicate dispatch id
                    self._resolve(record, _error_doc(record.job.id, BAD_JOB_TYPE, str(err)))

    def _make_on_done(self, record: _Record):
        loop = self._loop

        def on_done(pending: Any) -> None:
            document = pending.result.to_dict()
            loop.call_soon_threadsafe(self._resolve, record, document)

        return on_done

    # -- completion and delivery ----------------------------------------------

    def _resolve(self, record: _Record, document: dict[str, Any]) -> None:
        """A job completed: release its windows and schedule delivery."""
        if document.get("id") != record.job.id:
            # The pool saw the namespaced dispatch id; the client gets its
            # own id back.
            document = {**document, "id": record.job.id}
        record.document = document
        self._inflight -= 1
        window_conn = record.window_conn
        record.window_conn = None
        if window_conn is not None:
            window_conn.inflight -= 1
            task = asyncio.ensure_future(self._notify_window(window_conn))
            self._delivery_tasks.add(task)
            task.add_done_callback(self._delivery_tasks.discard)
        self._spawn_delivery(record)

    async def _notify_window(self, conn: _Connection) -> None:
        async with conn.window:
            conn.window.notify_all()

    def _spawn_delivery(self, record: _Record) -> None:
        task = asyncio.ensure_future(self._deliver(record))
        self._delivery_tasks.add(task)
        task.add_done_callback(self._delivery_tasks.discard)

    async def _deliver(self, record: _Record) -> None:
        """Write one result document to its owner, firing scheduled faults."""
        if record.delivering or record.document is None:
            return
        record.delivering = True
        try:
            conn = record.owner
            if conn is None or conn.closed:
                return  # retained for resubmit-on-reconnect redelivery
            fault = None
            if self._injector is not None:
                fault = self._injector.delivery_fault(record.job.id)
            if fault is not None and fault.kind == "conn_stall":
                await asyncio.sleep(fault.seconds)
                fault = None  # stalled deliveries still complete
            if fault is not None and fault.kind == "conn_drop":
                conn.abort()  # result retained; the client resubmits
                return
            if fault is not None and fault.kind == "conn_truncate":
                line = json.dumps(record.document).encode("utf-8")
                async with conn.write_lock:
                    conn.writer.write(line[: max(1, len(line) // 2)])
                    try:
                        await conn.writer.drain()
                    except (ConnectionError, OSError):  # pragma: no cover
                        pass
                conn.abort()  # half a document, no newline: client discards
                return
            try:
                await conn.send(record.document)
            except (ConnectionError, OSError):
                return  # owner vanished mid-write: retained for redelivery
            self._counts["delivered"] += 1
            self._records.pop(record.key, None)
        finally:
            record.delivering = False


# --------------------------------------------------------------------------
# Blocking front ends: the CLI server and the test/bench harness.
# --------------------------------------------------------------------------


def _build(
    host: str,
    port: int,
    *,
    min_workers: int = 1,
    max_workers: int | None = None,
    engine: str = "nbe",
    fuel: int | None = None,
    memo_store: str | None = None,
    fault_plan: FaultPlan | Mapping[str, Any] | None = None,
    job_timeout: float | None = None,
    conn_window: int = 32,
    max_inflight: int = 128,
    fuel_quota: int | None = None,
    metrics_interval: float | None = None,
    **dispatcher_options: Any,
) -> Endpoint:
    """Construct the dispatcher + supervisor + endpoint stack for ``serve``."""
    if max_workers is None:
        max_workers = min_workers
    dispatcher = Dispatcher(
        workers=min_workers,
        engine=engine,
        fuel=fuel,
        memo_store=memo_store,
        fault_plan=fault_plan,
        job_timeout=job_timeout,
        # The endpoint never admits more than max_inflight jobs, so this
        # bound guarantees Dispatcher.submit never blocks the event loop.
        max_pending=max(max_inflight, min_workers) + 8,
        **dispatcher_options,
    )
    supervisor = None
    if max_workers > min_workers:
        supervisor = ElasticSupervisor(
            dispatcher, min_workers=min_workers, max_workers=max_workers
        )
    return Endpoint(
        dispatcher,
        host,
        port,
        conn_window=conn_window,
        max_inflight=max_inflight,
        fuel_quota=fuel_quota,
        fault_plan=fault_plan,
        supervisor=supervisor,
        metrics_interval=metrics_interval,
    )


def serve(host: str = "127.0.0.1", port: int = 7420, **options: Any) -> None:
    """Run the endpoint in the foreground until SIGTERM/SIGINT, then drain.

    This is ``python -m repro serve``: build the pool (elastic between
    ``min_workers`` and ``max_workers``), bind, and serve.  A signal turns
    into a graceful drain — stop accepting, flush every accepted job,
    deliver what can be delivered, stop the pool — so a supervisor restart
    never loses accepted work.
    """
    endpoint = _build(host, port, **options)

    async def _main() -> None:
        await endpoint.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(endpoint.drain())
            )
        print(f"repro service listening on {endpoint.host}:{endpoint.port}", flush=True)
        await endpoint.serve_until_drained()
        counts = endpoint.telemetry()
        print(
            f"repro service drained: {counts['accepted']} accepted, "
            f"{counts['delivered']} delivered, {counts['retained']} retained",
            flush=True,
        )

    try:
        asyncio.run(_main())
    finally:
        endpoint.dispatcher.shutdown()


class EndpointServer:
    """A background endpoint for tests and benchmarks: thread + event loop.

    ``with EndpointServer(...) as server:`` yields a running endpoint;
    ``server.port`` is the bound port, ``server.stop()`` (or context exit)
    performs the full graceful drain on the loop thread and joins it.
    """

    def __init__(self, **options: Any) -> None:
        options.setdefault("host", "127.0.0.1")
        options.setdefault("port", 0)
        self.endpoint = _build(**options)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-endpoint", daemon=True
        )
        self._stopped = False

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def _main() -> None:
            await self.endpoint.start()
            self._started.set()
            await self.endpoint.serve_until_drained()

        try:
            self._loop.run_until_complete(_main())
        finally:
            self._loop.close()

    def start(self) -> "EndpointServer":
        if not self._thread.is_alive() and not self._started.is_set():
            self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("endpoint failed to start within 30s")
        return self

    @property
    def host(self) -> str:
        return self.endpoint.host

    @property
    def port(self) -> int:
        return self.endpoint.port

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully drain the endpoint and stop the loop thread."""
        if self._stopped:
            return
        self._stopped = True
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self.endpoint.drain(timeout=timeout), loop
            )
            try:
                future.result(timeout=timeout + 10.0)
            except Exception:  # pragma: no cover - drain wedged; hard stop below
                pass
        self._thread.join(timeout=10.0)
        self.endpoint.dispatcher.shutdown()

    def __enter__(self) -> "EndpointServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve_background(**options: Any) -> EndpointServer:
    """Start an :class:`EndpointServer` and return it running."""
    return EndpointServer(**options).start()
