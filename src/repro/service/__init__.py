"""The sharded normalization service: a process-pool dispatch layer.

PR 4 made :class:`repro.api.Session` the unit of isolation — interleaved
sessions are byte-identical to solo runs — but every session still shares
one interpreter and one GIL.  This subsystem is the next scaling step the
ROADMAP names: batches of independent kernel jobs (``check`` /
``normalize`` / ``compile`` / ``run`` / ``link``) dispatched across a pool
of **worker processes**, one session per worker.

The paper makes the sharding sound: Bowman & Ahmed's separate-compilation
story (Theorem 5.8) means each ``compile``/``link``/``run`` job carries no
shared mutable state, and closure-converted evaluation is embarrassingly
parallel across independent programs.  Operationally:

* :mod:`repro.service.jobs` — the JSON wire format: job specs in, split
  deterministic payloads / nondeterministic telemetry out;
* :mod:`repro.service.executor` — one job against one session, used
  identically by pool workers and by the in-process solo path, so pooled
  results are byte-identical to solo runs by construction;
* :mod:`repro.service.worker` — the worker process: state bootstrap, job
  loop, health and stats reporting;
* :mod:`repro.service.dispatcher` — the pool: bounded queue,
  round-robin-with-affinity sharding, crash detection with requeue onto a
  fresh worker, per-job timeouts, graceful shutdown, aggregated stats —
  and the hardened failure domains: poison-job quarantine (dead-letter
  documents), exponential respawn backoff with deterministic jitter, and
  a per-slot crash-loop breaker;
* :mod:`repro.service.faults` — the seeded deterministic fault-injection
  harness (:class:`~repro.service.faults.FaultPlan`): worker kills, hung
  jobs, persistent-tier errors, wire corruption, and connection faults
  (dropped/stalled/truncated deliveries) scheduled at exact jobs,
  reproducible from one seed, zero-cost when off;
* :mod:`repro.service.endpoint` — the socket front door: an asyncio
  NDJSON server with admission control (windowed backpressure, hard-limit
  shedding), per-client fair share, deadlines, graceful drain, and
  elastic pool scaling (:class:`~repro.service.dispatcher.ElasticSupervisor`);
* :mod:`repro.service.client` — the bundled windowed client: retry with
  deterministic backoff jitter, reconnect-and-resubmit keyed by job id.

The CLI front ends are ``python -m repro batch`` (local pool, or
``--connect HOST:PORT`` against a running server) and ``python -m repro
serve``; the programmatic front end is :func:`repro.api.execute_jobs`,
which runs the same executor pooled (``workers > 0``), solo
(``workers = 0``), or remotely (``connect=...``).
"""

from repro.service.client import ServiceClient
from repro.service.dispatcher import Dispatcher, ElasticSupervisor, PoolStats
from repro.service.endpoint import Endpoint, EndpointServer, serve_background
from repro.service.executor import execute_job
from repro.service.faults import Fault, FaultInjector, FaultPlan
from repro.service.jobs import Job, JobResult

__all__ = [
    "Dispatcher",
    "ElasticSupervisor",
    "Endpoint",
    "EndpointServer",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "Job",
    "JobResult",
    "PoolStats",
    "ServiceClient",
    "execute_job",
    "serve_background",
]
