"""Seeded, deterministic fault injection for the service and the store.

A :class:`FaultPlan` schedules failures at exact *jobs* — worker kills,
hung/slow executions, persistent-tier read/write errors, wire-payload
corruption — reproducibly from one seed.  The plan is pure JSON-safe data
(it crosses the fork boundary in the worker spawn args), and the same seed
always yields the same schedule, which is what lets the chaos benchmark use
Bowman–Ahmed determinism as its oracle: under any plan, every job the
faults do not *semantically* poison must produce a payload byte-identical
to a fault-free solo run, and two chaos runs of the same seed must agree on
every byte — dead-letter documents included.

Fault kinds and where they fire:

* ``kill`` — the worker hard-exits (``os._exit``) right after the job's
  ``begin`` ack, exactly like a ``crash`` job but aimed at a *real* job so
  its requeued retries exercise the recovery path.  ``attempts`` bounds
  which dispatch attempts die: ``1`` is a transient crasher (the retry
  survives), ``-1`` is a **poison job** that kills every attempt and must
  end as a dead-letter document.  In-process (solo) execution has no
  worker to kill, so ``kill`` faults are inert there.
* ``delay`` — the executor sleeps ``seconds`` before running the job.
  With ``seconds`` beyond the dispatcher's ``job_timeout`` this is a hung
  job: the worker is recycled and the retry (no longer delayed when
  ``attempts=1``) completes normally.
* ``store_read_error`` / ``store_write_error`` — every persistent-tier
  SQLite read/write issued *while this job executes* raises, via the
  :data:`repro.wire.persist.FAULT_HOOK` seam.  The store's error counting
  and circuit breaker absorb them; payloads must not change.
* ``wire_corrupt`` — the job's payload is deterministically corrupted
  before ingest (one byte of ``term_b64``, or one character of
  ``program``).  The decoder/lexer rejects it with a deterministic error
  document; like poison jobs, corrupted jobs are *expected* to diverge
  from the fault-free run, and :meth:`FaultPlan.divergent_ids` names them.
* ``conn_drop`` / ``conn_stall`` / ``conn_truncate`` — **connection**
  faults, fired by the service endpoint at the exact (connection, job)
  coordinate where a result is about to be delivered: the connection is
  aborted before the result line (``drop``), the delivery stalls for
  ``seconds`` (``stall``), or half the line is written and the connection
  closed mid-document (``truncate``).  The client's reconnect-and-resubmit
  machinery recovers every one of them — results stay byte-identical, so
  connection faults never enter :meth:`FaultPlan.divergent_ids`.  Delivery
  attempts are counted separately from dispatch attempts (a resubmitted
  job is a fresh delivery), and generated plans keep connection faults
  transient (``attempts=1``) so retries terminate.

The hook is zero-cost when off: the executor and the store consult one
module-level slot (:func:`active`, :data:`~repro.wire.persist.FAULT_HOOK`)
that is ``None`` outside chaos runs.
"""

from __future__ import annotations

import random
import sqlite3
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any, Iterable, Mapping

from repro.service.jobs import Job

__all__ = [
    "CONNECTION_KINDS",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "activate",
    "active",
    "install",
]

#: Every fault kind a plan may schedule.
FAULT_KINDS = (
    "kill",
    "delay",
    "store_read_error",
    "store_write_error",
    "wire_corrupt",
    "conn_drop",
    "conn_stall",
    "conn_truncate",
)

#: The connection-category kinds: fired at result-delivery time by the
#: service endpoint, recovered by the client's resubmit machinery.
CONNECTION_KINDS = frozenset({"conn_drop", "conn_stall", "conn_truncate"})


@dataclass(frozen=True)
class Fault:
    """One scheduled failure, bound to one job id.

    ``attempts`` bounds the dispatch attempts the fault fires on: it fires
    while ``attempt < attempts``, and ``-1`` means every attempt (poison).
    ``seconds`` is the stall length for ``delay`` faults.
    """

    kind: str
    job_id: str
    attempts: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            expected = ", ".join(FAULT_KINDS)
            raise ValueError(f"unknown fault kind {self.kind!r} (expected one of {expected})")
        if self.attempts == 0 or self.attempts < -1:
            raise ValueError("fault attempts must be positive or -1 (every attempt)")

    def fires_on(self, attempt: int) -> bool:
        """Does this fault fire on dispatch attempt ``attempt`` (0-based)?"""
        return self.attempts < 0 or attempt < self.attempts

    def to_dict(self) -> dict[str, Any]:
        spec: dict[str, Any] = {"kind": self.kind, "job_id": self.job_id}
        if self.attempts != 1:
            spec["attempts"] = self.attempts
        if self.seconds:
            spec["seconds"] = self.seconds
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "Fault":
        return cls(
            kind=spec["kind"],
            job_id=spec["job_id"],
            attempts=spec.get("attempts", 1),
            seconds=spec.get("seconds", 0.0),
        )


class FaultPlan:
    """A deterministic schedule of faults, keyed by job id.

    Build one explicitly from :class:`Fault` records, or derive one from a
    seed with :meth:`generate` — the same seed over the same job-id list
    always yields the same schedule (``random.Random`` is stable across
    runs and platforms for the operations used here).
    """

    def __init__(self, faults: Iterable[Fault] = (), seed: int | None = None) -> None:
        self.seed = seed
        self._by_job: dict[str, tuple[Fault, ...]] = {}
        for fault in faults:
            self._by_job[fault.job_id] = self._by_job.get(fault.job_id, ()) + (fault,)

    @classmethod
    def generate(
        cls,
        seed: int,
        job_ids: Iterable[str],
        *,
        kills: int = 0,
        poisons: int = 0,
        delays: int = 0,
        store_read_errors: int = 0,
        store_write_errors: int = 0,
        corruptions: int = 0,
        conn_drops: int = 0,
        conn_stalls: int = 0,
        conn_truncates: int = 0,
        delay_seconds: float = 0.05,
        stall_seconds: float = 0.05,
        corruptible_ids: Iterable[str] | None = None,
    ) -> "FaultPlan":
        """A seeded schedule over ``job_ids``; each job gets at most one fault.

        Categories draw disjoint victims in a fixed order, so the schedule
        is a pure function of (seed, job id list, counts).  ``poisons`` are
        ``kill`` faults with ``attempts=-1`` (they die on every attempt and
        must dead-letter); plain ``kills`` are transient (first attempt
        only).  ``corruptible_ids`` restricts ``wire_corrupt`` victims
        (e.g. to the jobs that actually carry a payload).  The connection
        categories (``conn_drops``/``conn_stalls``/``conn_truncates``) draw
        from the same single-seed stream, after the worker/store/wire
        categories, and are always transient — a dropped or truncated
        delivery is retried by the client, so connection faults never
        extend :meth:`divergent_ids`.
        """
        rng = random.Random(seed)
        pool = list(dict.fromkeys(job_ids))  # stable order, no duplicates
        faults: list[Fault] = []

        def draw(count: int, candidates: list[str]) -> list[str]:
            count = min(count, len(candidates))
            chosen = rng.sample(candidates, count) if count else []
            for job_id in chosen:
                pool.remove(job_id)
            return chosen

        for job_id in draw(poisons, list(pool)):
            faults.append(Fault("kill", job_id, attempts=-1))
        for job_id in draw(kills, list(pool)):
            faults.append(Fault("kill", job_id, attempts=1))
        for job_id in draw(delays, list(pool)):
            faults.append(Fault("delay", job_id, attempts=1, seconds=delay_seconds))
        for job_id in draw(store_read_errors, list(pool)):
            faults.append(Fault("store_read_error", job_id, attempts=-1))
        for job_id in draw(store_write_errors, list(pool)):
            faults.append(Fault("store_write_error", job_id, attempts=-1))
        corrupt_pool = list(pool)
        if corruptible_ids is not None:
            allowed = set(corruptible_ids)
            corrupt_pool = [job_id for job_id in corrupt_pool if job_id in allowed]
        for job_id in draw(corruptions, corrupt_pool):
            faults.append(Fault("wire_corrupt", job_id, attempts=-1))
        for job_id in draw(conn_drops, list(pool)):
            faults.append(Fault("conn_drop", job_id, attempts=1))
        for job_id in draw(conn_stalls, list(pool)):
            faults.append(Fault("conn_stall", job_id, attempts=1, seconds=stall_seconds))
        for job_id in draw(conn_truncates, list(pool)):
            faults.append(Fault("conn_truncate", job_id, attempts=1))
        return cls(faults, seed=seed)

    # -- queries --------------------------------------------------------------

    def for_job(self, job_id: str | None) -> tuple[Fault, ...]:
        if job_id is None:
            return ()
        return self._by_job.get(job_id, ())

    def __len__(self) -> int:
        return sum(len(faults) for faults in self._by_job.values())

    def faulted_ids(self) -> frozenset[str]:
        """Every job id the plan touches at all."""
        return frozenset(self._by_job)

    def poisoned_ids(self, max_attempts: int) -> frozenset[str]:
        """Jobs whose kill faults exhaust ``max_attempts`` → dead letters."""
        return frozenset(
            job_id
            for job_id, faults in self._by_job.items()
            if any(
                fault.kind == "kill"
                and (fault.attempts < 0 or fault.attempts >= max_attempts)
                for fault in faults
            )
        )

    def corrupted_ids(self) -> frozenset[str]:
        return frozenset(
            job_id
            for job_id, faults in self._by_job.items()
            if any(fault.kind == "wire_corrupt" for fault in faults)
        )

    def connection_ids(self) -> frozenset[str]:
        """Jobs whose result *delivery* is faulted (drop/stall/truncate)."""
        return frozenset(
            job_id
            for job_id, faults in self._by_job.items()
            if any(fault.kind in CONNECTION_KINDS for fault in faults)
        )

    def divergent_ids(self, max_attempts: int) -> frozenset[str]:
        """Jobs whose *payloads* legitimately differ from a fault-free run.

        Poison jobs end as dead-letter documents; corrupted jobs end as
        decode/parse error documents.  Every other faulted job (transient
        kills, delays, store errors, and every connection-category fault —
        dropped, stalled, or truncated deliveries are resubmitted by the
        client) must still be byte-identical to the fault-free solo run —
        that is the harness's whole point, and why this set is *complete*:
        anything outside it diverging is a bug.
        """
        return self.poisoned_ids(max_attempts) | self.corrupted_ids()

    def summary(self, max_attempts: int = 2) -> dict[str, Any]:
        """A JSON-safe digest for batch reports and benchmark artifacts."""
        by_kind: dict[str, int] = {}
        for faults in self._by_job.values():
            for fault in faults:
                by_kind[fault.kind] = by_kind.get(fault.kind, 0) + 1
        return {
            "seed": self.seed,
            "faults": len(self),
            "by_kind": dict(sorted(by_kind.items())),
            "faulted_ids": sorted(self.faulted_ids()),
            "divergent_ids": sorted(self.divergent_ids(max_attempts)),
        }

    # -- wire form ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        faults = [
            fault.to_dict()
            for job_id in sorted(self._by_job)
            for fault in self._by_job[job_id]
        ]
        spec: dict[str, Any] = {"faults": faults}
        if self.seed is not None:
            spec["seed"] = self.seed
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            (Fault.from_dict(entry) for entry in spec.get("faults", ())),
            seed=spec.get("seed"),
        )

    @classmethod
    def coerce(cls, plan: "FaultPlan | Mapping[str, Any] | None") -> "FaultPlan | None":
        """A :class:`FaultPlan` from a plan, its wire dict, or None."""
        if plan is None or isinstance(plan, FaultPlan):
            return plan
        return cls.from_dict(plan)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, FaultPlan) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed!r}, faults={len(self)})"


def _corrupt_position(job_id: str, length: int) -> int:
    """A deterministic byte position to corrupt — a pure function of the id."""
    digest = blake2b(job_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % max(length, 1)


class FaultInjector:
    """The runtime face of a plan: what actually fires, where, and when.

    One injector lives per worker process (installed by ``worker_main``)
    or per solo batch (activated around the executor loop).  The worker
    reports each job's dispatch attempt via :meth:`begin`; solo execution
    never calls it, so every fault behaves as attempt 0 there.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._attempts: dict[str, int] = {}
        self._deliveries: dict[str, int] = {}
        #: (kind, job_id, attempt) for every fault that actually fired —
        #: telemetry for tests; never part of a deterministic payload.
        self.fired: list[tuple[str, str, int]] = []

    def begin(self, job_id: str | None, attempt: int) -> None:
        """Record the dispatch attempt the worker is about to run."""
        if job_id is not None:
            self._attempts[job_id] = attempt

    def _attempt(self, job_id: str | None) -> int:
        return self._attempts.get(job_id, 0) if job_id is not None else 0

    def _firing(self, job_id: str | None, kind: str) -> Fault | None:
        attempt = self._attempt(job_id)
        for fault in self.plan.for_job(job_id):
            if fault.kind == kind and fault.fires_on(attempt):
                return fault
        return None

    # -- worker-level faults --------------------------------------------------

    def kill(self, job_id: str | None) -> bool:
        """Should the worker hard-exit instead of running this job?"""
        fault = self._firing(job_id, "kill")
        if fault is None:
            return False
        self.fired.append(("kill", fault.job_id, self._attempt(job_id)))
        return True

    # -- executor-level faults ------------------------------------------------

    def stall_seconds(self, job_id: str | None) -> float:
        """How long the executor must sleep before running this job."""
        fault = self._firing(job_id, "delay")
        if fault is None:
            return 0.0
        self.fired.append(("delay", fault.job_id, self._attempt(job_id)))
        return fault.seconds

    def mutate(self, job: Job) -> Job:
        """The job with its wire payload corrupted, when the plan says so.

        Corruption is a pure function of the job id: one base64 character
        of ``term_b64`` (or one character of ``program``) is replaced at a
        position derived from the id's hash, so the same job corrupts the
        same way in every run of the plan — the decode error document it
        produces is deterministic.
        """
        fault = self._firing(job.id, "wire_corrupt")
        if fault is None:
            return job
        self.fired.append(("wire_corrupt", fault.job_id, self._attempt(job.id)))
        spec = job.to_dict()
        if job.term_b64:
            position = _corrupt_position(job.id or "", len(job.term_b64))
            original = job.term_b64[position]
            flipped = "A" if original != "A" else "B"
            spec["term_b64"] = (
                job.term_b64[:position] + flipped + job.term_b64[position + 1 :]
            )
        elif job.program:
            position = _corrupt_position(job.id or "", len(job.program))
            # The lexer rejects this control character with a deterministic
            # ParseError carrying the corruption position.
            spec["program"] = (
                job.program[:position] + "\x07" + job.program[position + 1 :]
            )
        return Job.from_dict(spec)

    # -- endpoint-level (connection) faults -----------------------------------

    def delivery_fault(self, job_id: str | None) -> Fault | None:
        """The connection fault to apply to this job's result delivery.

        Called by the service endpoint exactly once per delivery attempt —
        the call *is* the attempt counter, separate from dispatch attempts:
        a resubmitted job (same id, fresh connection) is delivery attempt 1
        and a transient fault (``attempts=1``) no longer fires, which is
        what makes client reconnect-and-resubmit terminate.
        """
        if job_id is None:
            return None
        attempt = self._deliveries.get(job_id, 0)
        self._deliveries[job_id] = attempt + 1
        for fault in self.plan.for_job(job_id):
            if fault.kind in CONNECTION_KINDS and fault.fires_on(attempt):
                self.fired.append((fault.kind, fault.job_id, attempt))
                return fault
        return None

    def store_window(self, job_id: str | None):
        """Context manager arming store faults for this job's duration.

        Installs :data:`repro.wire.persist.FAULT_HOOK` so every SQLite
        read/write the persistent tier issues while the job executes
        raises ``sqlite3.OperationalError`` for the scheduled kinds.  The
        hook is restored on exit; when the job has no store faults this is
        a :func:`~contextlib.nullcontext`.
        """
        ops = set()
        for kind, op in (("store_read_error", "read"), ("store_write_error", "write")):
            fault = self._firing(job_id, kind)
            if fault is not None:
                ops.add(op)
                self.fired.append((kind, fault.job_id, self._attempt(job_id)))
        if not ops:
            return nullcontext()
        return self._armed(job_id, frozenset(ops))

    @contextmanager
    def _armed(self, job_id: str | None, ops: frozenset[str]):
        from repro.wire import persist

        def hook(op: str) -> None:
            if op in ops:
                raise sqlite3.OperationalError(
                    f"injected {op} fault (job {job_id})"
                )

        previous = persist.FAULT_HOOK
        persist.FAULT_HOOK = hook
        try:
            yield
        finally:
            persist.FAULT_HOOK = previous


# --------------------------------------------------------------------------
# The active injector: one module-level slot, None outside chaos runs.
# --------------------------------------------------------------------------

_ACTIVE: FaultInjector | None = None


def active() -> FaultInjector | None:
    """The injector in force for this process, or None (the fast path)."""
    return _ACTIVE


def install(injector: FaultInjector | None) -> None:
    """Install ``injector`` process-wide (worker bootstrap; None uninstalls)."""
    global _ACTIVE
    _ACTIVE = injector


@contextmanager
def activate(injector: FaultInjector):
    """Scope ``injector`` to a block — the solo chaos path."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous
