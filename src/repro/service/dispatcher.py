"""The pool dispatcher: sharded queues, crash recovery, aggregated stats.

One :class:`Dispatcher` owns a fixed array of worker *slots*.  Each slot
holds one worker process (:mod:`repro.service.worker`) with a private job
queue; all workers share one result queue.  Everything on either queue is
a JSON string — the wire format of :mod:`repro.service.jobs`.

**Sharding** is round-robin-with-affinity: the first job carrying a new
affinity key claims the next slot round-robin, and every later job with
the same key goes to that slot — so a stream of related jobs keeps
hitting one worker's warm memo caches, while distinct streams spread
evenly (hashing keys instead can collide several hot streams onto one
worker and leave others idle).  A job without a key takes the next slot
round-robin, unpinned.  Key assignments live for the dispatcher's
lifetime and survive worker restarts: a requeued job lands on the fresh
worker in its original slot.

**Lifecycle.**  The dispatcher's collector thread drains the result queue
and watches worker health.  When a worker dies (crash, kill, hard exit),
its slot is refilled with a *fresh* worker — new process, new generation,
new queue, cold session — and every unfinished job assigned to the slot is
requeued onto it.  The job that was in flight at the moment of death (the
worker ``begin``-acks each job precisely so this is known) is the culprit:
its attempt counter rises, and when attempts are exhausted it completes as
a failed result instead of looping forever.  Requeued jobs produce results
byte-identical to an uninterrupted run — cold caches change timing, never
payloads, because every term renders α-canonically and every step count
replays from the fuel caches.  Per-job timeouts reuse the same machinery:
an overdue worker is killed and handled as a death with a known culprit.

**Failure domains.**  Worker death is contained at three escalating
levels, all deterministic in everything but timing:

* *Quarantine* — the in-flight job is the culprit; when its attempts are
  exhausted it completes as a structured **dead-letter** document
  (``error["dead_letter"] is True``, counted under ``exhausted``) instead
  of consuming another worker.  A slot whose crashes *streak* past
  ``suspect_after`` is treated as facing a poison stream: each new culprit
  dead-letters immediately, so a sequence of poison jobs cannot serially
  recycle the pool one ``max_attempts`` cycle at a time.
* *Backoff* — a dead slot is not refilled instantly: respawn waits an
  exponentially growing delay (``respawn_backoff`` doubling per streak up
  to ``respawn_backoff_cap``) with deterministic jitter derived from the
  slot and generation, never from a random source.  The collector thread
  never sleeps for it; due respawns fire from the health scan.
* *Breaker* — ``max_slot_respawns`` consecutive crashes of one slot trip a
  crash-loop breaker: the slot is marked broken, every job stranded on it
  dead-letters with ``CrashLoopBreaker``, new keys shard around it, and
  the batch completes cleanly on the surviving slots (all slots broken is
  a hard ``RuntimeError`` — nothing could make progress).

**Elasticity.**  The slot array is no longer fixed: :meth:`Dispatcher.grow`
adds a worker slot (reviving the lowest retired slot as a new generation —
a scale event is just a controlled respawn — or appending a brand-new one)
and :meth:`Dispatcher.shrink` retires the highest active slot: new keys
shard around it immediately, its pending jobs finish where they are, and
once empty it is stopped gracefully.  Because every worker attaches the
shared persistent memo store at bootstrap, a freshly grown slot starts
*warm* from the fleet's accumulated entries.  :class:`ElasticSupervisor`
drives both from queue-depth watermarks.

**Deadlines.**  A job carrying ``deadline`` (wall-clock seconds, measured
from acceptance) never goes silent: an expired job completes as a
structured ``JobTimeout`` dead-letter document — an overdue *running* job
recycles its worker exactly like a pool-level timeout, an expired *queued*
job is dead-lettered in place — and the document's type/message are pure
functions of the job spec, never of timing.

**Stats.**  Pool-level aggregation sums per-worker counters without double
counting: each worker's session *is* its process-default state (the
bootstrap guarantees it), so the legacy-shim counters and the session
counters are one set of numbers, and the dispatcher keeps exactly one
cumulative snapshot per worker generation (the latest) and sums those.
The same latest-snapshot rule aggregates the workers' persistent-tier
counters into ``PoolStats.persist``, and per-slot health (generation,
liveness, crash streak, breaker state, heartbeat age) is surfaced under
``PoolStats.slots`` — workers post idle heartbeats precisely so this view
stays fresh between jobs.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field, fields as dataclass_fields
from hashlib import blake2b
from typing import Any, Iterable, Mapping

from repro.kernel.state import validate_engine
from repro.service.faults import FaultPlan
from repro.service.jobs import Job, JobResult
from repro.service.worker import worker_main

__all__ = ["Dispatcher", "ElasticSupervisor", "PoolStats"]

_POOL_IDS = itertools.count(1)


def _jitter(slot: int, generation: int) -> float:
    """Deterministic respawn jitter in [0.75, 1.25) — no random source.

    Derived from the (slot, generation) being replaced, so concurrent dead
    slots desynchronize their refills without timing ever depending on
    process state; two runs of the same failure history back off the same.
    """
    digest = blake2b(f"{slot}:{generation}".encode("ascii"), digest_size=2).digest()
    return 0.75 + int.from_bytes(digest, "little") / 65536 * 0.5


@dataclass
class PoolStats:
    """Aggregated pool-level statistics, JSON-ready via :meth:`to_dict`."""

    workers: int = 0
    active: int = 0
    pending: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    requeued: int = 0
    restarts: int = 0
    timeouts: int = 0
    exhausted: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    jobs_per_slot: dict[int, int] = field(default_factory=dict)
    cache_hits: dict[str, int] = field(default_factory=dict)
    persist: dict[str, Any] | None = None
    slots: dict[str, dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """The JSON wire form, built by field introspection.

        Iterating ``dataclasses.fields`` (rather than hand-listing keys)
        means a newly added counter reaches the wire automatically — the
        drift test in ``tests/test_obs.py`` asserts the key set matches
        the field set, so a counter can never again be silently dropped
        from the endpoint's stats payload.
        """
        document: dict[str, Any] = {}
        for spec in dataclass_fields(self):
            value = getattr(self, spec.name)
            if spec.name == "jobs_per_slot":
                value = {str(slot): n for slot, n in sorted(value.items())}
            elif spec.name == "slots":
                value = {slot: dict(health) for slot, health in sorted(value.items())}
            elif isinstance(value, dict):
                value = dict(value)
            document[spec.name] = value
        return document


@dataclass
class _Pending:
    """Dispatcher-side record of one submitted, not-yet-completed job."""

    job: Job
    slot: int
    sequence: int
    attempts: int = 0
    begun_at: float | None = None
    timed_out: bool = False
    deadline_at: float | None = None
    deadline_hit: bool = False
    on_done: Any = None
    done: threading.Event = field(default_factory=threading.Event)
    result: JobResult | None = None
    # Wall-clock trace entries (dispatch/requeue), populated only for
    # traced jobs; merged into the result meta's trace timeline section.
    trace_timeline: list = field(default_factory=list)


class _WorkerHandle:
    """One live worker process bound to a slot."""

    __slots__ = ("slot", "generation", "name", "process", "queue", "bye")

    def __init__(self, slot: int, generation: int, name: str, process: Any, jobs: Any):
        self.slot = slot
        self.generation = generation
        self.name = name
        self.process = process
        self.queue = jobs
        self.bye = threading.Event()


class Dispatcher:
    """A bounded-queue dispatcher over a pool of session workers.

    Args:
        workers: number of worker slots (processes).
        engine: normalization engine every worker session boots with.
        fuel: default fuel for worker sessions (None = kernel default).
        max_pending: bound on unfinished jobs; :meth:`submit` blocks at it.
        job_timeout: seconds a single job may run before its worker is
            killed and the job handled as a crash (None disables).
        max_attempts: dispatch attempts per job before it completes as a
            failed result (a crash/timeout consumes one attempt).
        start_method: multiprocessing start method (default: ``fork``
            where available, else the platform default).
        name: pool label used in worker session names.
        memo_store: path of a shared persistent memo store every worker
            attaches at bootstrap (None disables the tier).  Workers open
            independent connections and batch their own write-backs, so
            the tier adds no cross-process locking to the job hot path.
        fault_plan: a :class:`~repro.service.faults.FaultPlan` (or its wire
            dict) every worker installs at bootstrap — chaos testing only.
        respawn_backoff: base delay before refilling a dead slot; doubles
            per consecutive crash of that slot, capped at
            ``respawn_backoff_cap``, with deterministic jitter.
        suspect_after: consecutive crashes of one slot after which each new
            culprit dead-letters immediately (poison-stream fast fail).
        max_slot_respawns: consecutive crashes of one slot that trip its
            crash-loop breaker — the slot is abandoned, its stranded jobs
            dead-letter, and the batch finishes on the surviving slots.
    """

    def __init__(
        self,
        workers: int = 4,
        engine: str = "nbe",
        fuel: int | None = None,
        max_pending: int = 256,
        job_timeout: float | None = None,
        max_attempts: int = 2,
        start_method: str | None = None,
        name: str | None = None,
        memo_store: str | None = None,
        fault_plan: FaultPlan | Mapping[str, Any] | None = None,
        respawn_backoff: float = 0.05,
        respawn_backoff_cap: float = 2.0,
        suspect_after: int = 3,
        max_slot_respawns: int = 8,
    ) -> None:
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        if max_pending < workers:
            raise ValueError("max_pending must be at least the worker count")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if suspect_after < 1 or max_slot_respawns < 1:
            raise ValueError("suspect_after and max_slot_respawns must be positive")
        validate_engine(engine)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.name = name or f"pool-{next(_POOL_IDS)}"
        self.engine = engine
        self.fuel = fuel
        self.memo_store = None if memo_store is None else str(memo_store)
        self.max_pending = max_pending
        self.job_timeout = job_timeout
        self.max_attempts = max_attempts
        self.fault_plan = FaultPlan.coerce(fault_plan)
        self._fault_plan_spec = (
            None if self.fault_plan is None else self.fault_plan.to_dict()
        )
        self.respawn_backoff = respawn_backoff
        self.respawn_backoff_cap = respawn_backoff_cap
        self.suspect_after = suspect_after
        self.max_slot_respawns = max_slot_respawns
        self._mp = multiprocessing.get_context(start_method)
        self._results = self._mp.Queue()
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._pending: dict[str, _Pending] = {}
        self._key_slots: dict[str, int] = {}
        self._handles: list[_WorkerHandle] = []
        self._hit_snapshots: dict[tuple[int, int], dict[str, int]] = {}
        self._persist_snapshots: dict[tuple[int, int], dict[str, Any]] = {}
        self._jobs_per_slot: dict[int, int] = {}
        self._pings: dict[Any, threading.Event] = {}
        self._crash_streak: dict[int, int] = {}
        self._respawn_at: dict[int, float] = {}
        self._broken: set[int] = set()
        self._retiring: set[int] = set()
        self._retired: set[int] = set()
        self._last_seen: dict[int, float] = {}
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "requeued": 0,
            "restarts": 0,
            "timeouts": 0,
            "exhausted": 0,
            "scale_ups": 0,
            "scale_downs": 0,
        }
        self._sequence = itertools.count()
        self._round_robin = itertools.count()
        self._closing = False
        self._draining = False
        for slot in range(workers):
            self._handles.append(self._spawn(slot, generation=0))
        self._collector = threading.Thread(
            target=self._collect, name=f"{self.name}-collector", daemon=True
        )
        self._collector.start()

    # -- context management ---------------------------------------------------

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- sharding -------------------------------------------------------------

    def slot_for(self, job: Job) -> int:
        """The slot ``job`` shards to: round-robin with key affinity.

        A new key claims the next slot in rotation and keeps it for the
        dispatcher's lifetime; unkeyed jobs just take the rotation.  The
        assignment is deterministic in arrival order — and deterministic
        *payloads* never depend on it at all, which the service benchmark's
        reshard differential enforces.
        """
        key = job.shard_key
        if key is None:
            return self._next_slot()
        slot = self._key_slots.get(key)
        if slot is None or self._unavailable(slot):
            # New key — or a key whose slot tripped its crash-loop breaker
            # or was retired by a scale-down: the stream migrates to a
            # healthy slot (cold caches, same bytes).
            slot = self._key_slots[key] = self._next_slot()
        return slot

    def _unavailable(self, slot: int) -> bool:
        """Slots no new work may land on: broken, retiring, or retired."""
        return slot in self._broken or slot in self._retiring or slot in self._retired

    def _next_slot(self) -> int:
        """The next available slot in rotation."""
        for _ in range(len(self._handles)):
            slot = next(self._round_robin) % len(self._handles)
            if not self._unavailable(slot):
                return slot
        raise RuntimeError(
            "no worker slot is available (crash-loop breakers or retirement "
            "took every slot); the pool cannot make progress"
        )

    # -- submission -----------------------------------------------------------

    def submit(self, job: Job | Mapping[str, Any], on_done: Any = None) -> _Pending:
        """Queue one job; blocks while ``max_pending`` jobs are unfinished.

        ``on_done`` is an optional completion callback invoked (with the
        finished ``_Pending``) the moment the job completes — result, dead
        letter, or shutdown document alike.  It runs on the collector
        thread under the dispatcher lock, so it must be non-blocking (the
        service endpoint passes a ``call_soon_threadsafe`` trampoline).
        """
        if not isinstance(job, Job):
            job = Job.from_dict(job)
        with self._space:
            if self._closing:
                raise RuntimeError("dispatcher is shut down")
            if self._draining:
                raise RuntimeError("dispatcher is draining; not accepting jobs")
            sequence = next(self._sequence)
            if job.id is None:
                job = Job.from_dict({**job.to_dict(), "id": f"job-{sequence}"})
            if job.id in self._pending:
                raise ValueError(f"duplicate in-flight job id {job.id!r}")
            while len(self._pending) >= self.max_pending:
                self._space.wait()
                if self._closing:
                    raise RuntimeError("dispatcher is shut down")
                if self._draining:
                    raise RuntimeError("dispatcher is draining; not accepting jobs")
            slot = self.slot_for(job)
            pending = _Pending(
                job=job,
                slot=slot,
                sequence=sequence,
                deadline_at=(
                    None if job.deadline is None
                    else time.monotonic() + job.deadline
                ),
                on_done=on_done,
            )
            self._pending[job.id] = pending
            self._counts["submitted"] += 1
            if slot in self._respawn_at:
                # The slot is between workers (backoff running); the job is
                # registered and will ride the respawn's requeue instead of
                # landing on the dead worker's abandoned queue.
                pass
            else:
                self._send(self._handles[slot], pending)
        return pending

    def run_batch(self, jobs: Iterable[Job | Mapping[str, Any]]) -> list[JobResult]:
        """Dispatch ``jobs`` and block until every result is in.

        Results come back in submission order regardless of which workers
        finished first — the stable shape batch clients (and the
        determinism differential) want.  If a later ``submit`` raises (a
        duplicate job id, a shutdown racing the batch), the already
        submitted prefix is not abandoned: its jobs are waited out — every
        accepted job still resolves to a result document — before the
        failure propagates.
        """
        pendings: list[_Pending] = []
        try:
            for job in jobs:
                pendings.append(self.submit(job))
        except BaseException:
            for pending in pendings:
                pending.done.wait()
            raise
        for pending in pendings:
            pending.done.wait()
        return [pending.result for pending in pendings]  # type: ignore[misc]

    # -- elasticity -----------------------------------------------------------

    def queue_depth(self) -> int:
        """Unfinished jobs currently held by the dispatcher."""
        with self._lock:
            return len(self._pending)

    def active_workers(self) -> int:
        """Slots new work can land on (not broken, retiring, or retired)."""
        with self._lock:
            return sum(
                1 for slot in range(len(self._handles)) if not self._unavailable(slot)
            )

    def grow(self) -> int | None:
        """Add one worker slot; returns its index, or None if refused.

        Prefers reviving the lowest retired slot at a fresh generation — a
        scale-up is just a controlled respawn, so all the existing
        crash-containment machinery applies to it — and appends a
        brand-new slot otherwise.  The new worker attaches the shared
        persistent memo store at bootstrap, so it starts warm.
        """
        with self._space:
            if self._closing or self._draining:
                return None
            if self._retired:
                slot = min(self._retired)
                self._retired.discard(slot)
                dead = self._handles[slot]
                self._handles[slot] = self._spawn(slot, dead.generation + 1)
                self._crash_streak[slot] = 0
                self._last_seen.pop(slot, None)
            else:
                slot = len(self._handles)
                self._handles.append(self._spawn(slot, generation=0))
            self._counts["scale_ups"] += 1
            self._space.notify_all()
            return slot

    def shrink(self) -> int | None:
        """Retire the highest active slot; returns its index, or None.

        New keys shard around the slot immediately; its pending jobs
        finish where they are (warm caches), and once the slot is empty it
        is stopped gracefully.  Refuses to retire the last active slot.
        """
        with self._space:
            if self._closing:
                return None
            candidates = [
                slot
                for slot in range(len(self._handles))
                if not self._unavailable(slot)
            ]
            if len(candidates) <= 1:
                return None
            slot = max(candidates)
            self._retiring.add(slot)
            self._counts["scale_downs"] += 1
            self._maybe_finish_retire_locked(slot)
            self._space.notify_all()
            return slot

    def _maybe_finish_retire_locked(self, slot: int) -> None:
        """Complete a scale-down once a retiring slot has no pending work."""
        if slot not in self._retiring:
            return
        if any(
            p.slot == slot and not p.done.is_set() for p in self._pending.values()
        ):
            return
        self._retiring.discard(slot)
        self._retired.add(slot)
        self._respawn_at.pop(slot, None)
        self._crash_streak.pop(slot, None)
        handle = self._handles[slot]
        if handle.process.is_alive():
            try:
                handle.queue.put(json.dumps({"op": "stop"}))
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass

    # -- health ---------------------------------------------------------------

    def ping(self, slot: int, timeout: float = 5.0) -> bool:
        """True if the worker in ``slot`` answers a health probe in time."""
        token = f"ping-{slot}-{time.monotonic_ns()}"
        event = threading.Event()
        self._pings[token] = event
        try:
            with self._lock:
                self._handles[slot].queue.put(json.dumps({"op": "ping", "token": token}))
            return event.wait(timeout)
        finally:
            self._pings.pop(token, None)

    def alive_workers(self) -> list[bool]:
        """Liveness of each slot's current worker process."""
        return [handle.process.is_alive() for handle in self._handles]

    def kill_worker(self, slot: int) -> None:
        """Hard-kill the worker in ``slot`` (chaos hook for failure tests)."""
        self._handles[slot].process.kill()

    # -- statistics -----------------------------------------------------------

    def stats(self) -> PoolStats:
        """A consistent snapshot of the aggregated pool statistics."""
        with self._lock:
            hits: dict[str, int] = {}
            # One cumulative snapshot per worker generation: the worker's
            # session *is* its process default (bootstrap_worker_state), so
            # this is each counter counted exactly once — never session
            # plus legacy-shim double counting, never per-job double sums.
            for snapshot in self._hit_snapshots.values():
                for cache, count in snapshot.items():
                    hits[cache] = hits.get(cache, 0) + count
            # Same rule for the persistent tier: each generation is its own
            # process with its own store connection, so summing the latest
            # snapshot of every generation counts each op exactly once.
            persist: dict[str, Any] | None = None
            if self._persist_snapshots:
                persist = {}
                breakers_open = 0
                for snapshot in self._persist_snapshots.values():
                    for counter, value in snapshot.items():
                        if counter == "breaker":
                            breakers_open += value == "open"
                        elif isinstance(value, (int, float)):
                            persist[counter] = persist.get(counter, 0) + value
                persist["breakers_open"] = breakers_open
            now = time.monotonic()
            slots: dict[str, dict[str, Any]] = {}
            for handle in self._handles:
                seen = self._last_seen.get(handle.slot)
                slots[str(handle.slot)] = {
                    "generation": handle.generation,
                    "alive": handle.process.is_alive(),
                    "crash_streak": self._crash_streak.get(handle.slot, 0),
                    "broken": handle.slot in self._broken,
                    "retiring": handle.slot in self._retiring,
                    "retired": handle.slot in self._retired,
                    "respawn_pending": handle.slot in self._respawn_at,
                    "last_seen_seconds": None if seen is None else round(now - seen, 3),
                }
            active = sum(
                1 for slot in range(len(self._handles)) if not self._unavailable(slot)
            )
            return PoolStats(
                workers=len(self._handles),
                active=active,
                pending=len(self._pending),
                jobs_per_slot=dict(self._jobs_per_slot),
                cache_hits=hits,
                persist=persist,
                slots=slots,
                **self._counts,
            )

    # -- shutdown -------------------------------------------------------------

    def drain(self, timeout: float = 30.0) -> None:
        """Stop accepting, flush every accepted job, then shut down.

        Zero accepted-and-lost by construction: every job in the pending
        table either completes normally (crash recovery and dead-lettering
        included) or — past the drain deadline — completes as a
        ``DrainTimeout`` dead-letter document.  Either way its completion
        callback fires; nothing accepted goes silent.
        """
        with self._space:
            if self._closing:
                return
            self._draining = True
            self._space.notify_all()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending:
                    break
            time.sleep(0.01)
        with self._space:
            for pending in list(self._pending.values()):
                if not pending.done.is_set():
                    self._dead_letter_locked(
                        pending,
                        "DrainTimeout",
                        f"dispatcher drained before the job completed "
                        f"(drain timeout {timeout}s)",
                        exhausted=False,
                    )
            self._space.notify_all()
        self.shutdown()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker gracefully; escalate to kill on the deadline."""
        with self._space:
            if self._closing:
                return
            self._closing = True
            self._respawn_at.clear()
            self._space.notify_all()
            handles = list(self._handles)
        stop = json.dumps({"op": "stop"})
        for handle in handles:
            try:
                handle.queue.put(stop)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        deadline = time.monotonic() + timeout
        for handle in handles:
            # A slot that died and never respawned (backoff pending when the
            # pool closed, or crash-loop broken) has no worker to say "bye" —
            # waiting for one would burn the whole deadline.
            if not handle.process.is_alive():
                continue
            handle.bye.wait(max(0.0, deadline - time.monotonic()))
        for handle in handles:
            handle.process.join(max(0.05, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
        self._collector.join(timeout=2.0)
        with self._space:
            for pending in self._pending.values():
                if not pending.done.is_set():
                    pending.result = JobResult(
                        id=pending.job.id or "?",
                        ok=False,
                        error={
                            "type": "DispatcherShutdown",
                            "message": "dispatcher shut down before the job completed",
                        },
                        meta={"slot": pending.slot, "attempts": pending.attempts},
                    )
                    self._complete_locked(pending)
            self._pending.clear()

    # -- internals ------------------------------------------------------------

    def _spawn(self, slot: int, generation: int) -> _WorkerHandle:
        """Start a fresh worker process for ``slot``."""
        worker_name = f"{self.name}-w{slot}g{generation}"
        jobs = self._mp.Queue()
        process = self._mp.Process(
            target=worker_main,
            args=(
                slot,
                generation,
                worker_name,
                jobs,
                self._results,
                self.engine,
                self.fuel,
                self.memo_store,
                self._fault_plan_spec,
            ),
            name=worker_name,
            daemon=True,
        )
        process.start()
        return _WorkerHandle(slot, generation, worker_name, process, jobs)

    def _complete_locked(self, pending: _Pending) -> None:
        """Mark ``pending`` finished and fire its completion callback.

        Caller holds the lock.  The callback runs on the collector (or
        shutdown) thread and must be non-blocking; a callback exception is
        swallowed so a client bug can never kill the collector.
        """
        pending.done.set()
        if pending.on_done is not None:
            try:
                pending.on_done(pending)
            except Exception:  # pragma: no cover - client callback bug
                pass

    def _send(self, handle: _WorkerHandle, pending: _Pending) -> None:
        """Put one job on a worker queue (caller holds the lock)."""
        pending.begun_at = None
        if pending.job.trace:
            # Slot assignment and timing are scheduling-dependent: timeline
            # section, never the deterministic events.
            pending.trace_timeline.append(
                {"ev": "dispatch", "slot": handle.slot, "at": time.monotonic()}
            )
        handle.queue.put(
            json.dumps(
                {
                    "op": "job",
                    "spec": pending.job.to_dict(),
                    "attempt": pending.attempts,
                }
            )
        )

    def _collect(self) -> None:
        """Collector thread: drain results, watch health, enforce timeouts.

        Health runs on the idle branch *and* at a bounded interval while
        results are flowing — a continuous stream from healthy workers
        must not starve the detection of a dead or overdue one.  The 20ms
        tick bounds failure-detection latency: a killed worker costs one
        tick to notice plus its respawn backoff, so recovery time is
        dominated by the (configurable) backoff, not by polling.
        """
        last_health = time.monotonic()
        while True:
            try:
                raw = self._results.get(timeout=0.02)
            except queue_module.Empty:
                if self._closing and all(h.bye.is_set() or not h.process.is_alive()
                                         for h in self._handles):
                    return
                self._watch_health()
                last_health = time.monotonic()
                continue
            if time.monotonic() - last_health > 0.02:
                self._watch_health()
                last_health = time.monotonic()
            message = json.loads(raw)
            op = message.get("op")
            self._note_seen(message)
            if op == "begin":
                self._on_begin(message)
            elif op == "result":
                self._on_result(message)
            elif op == "hb":
                self._store_snapshot(message)
            elif op == "pong":
                event = self._pings.get(message.get("token"))
                if event is not None:
                    event.set()
                self._store_snapshot(message)
            elif op == "bye":
                self._store_snapshot(message)
                for handle in self._handles:
                    if (
                        handle.slot == message.get("slot")
                        and handle.generation == message.get("generation")
                    ):
                        handle.bye.set()

    def _note_seen(self, message: Mapping[str, Any]) -> None:
        """Track heartbeat freshness per slot (current generation only)."""
        slot, generation = message.get("slot"), message.get("generation")
        if slot is None:
            return
        with self._lock:
            if 0 <= slot < len(self._handles) and self._handles[slot].generation == generation:
                self._last_seen[slot] = time.monotonic()

    def _store_snapshot(self, message: Mapping[str, Any]) -> None:
        """Record a worker generation's cumulative counters (latest wins)."""
        hits = message.get("hits")
        persist = message.get("persist")
        if hits is None and persist is None:
            return
        key = (message.get("slot"), message.get("generation"))
        with self._lock:
            if hits is not None:
                self._hit_snapshots[key] = dict(hits)
            if persist is not None:
                self._persist_snapshots[key] = dict(persist)

    def _on_begin(self, message: Mapping[str, Any]) -> None:
        slot, generation = message.get("slot"), message.get("generation")
        with self._lock:
            handle = self._handles[slot]
            if handle.generation != generation:
                return  # stale: that worker generation is already retired
            pending = self._pending.get(message.get("id"))
            if pending is not None and pending.slot == slot:
                pending.begun_at = time.monotonic()

    def _on_result(self, message: Mapping[str, Any]) -> None:
        self._store_snapshot(message)
        document = message["result"]
        with self._space:
            slot, generation = message.get("slot"), message.get("generation")
            if (
                slot is not None
                and 0 <= slot < len(self._handles)
                and self._handles[slot].generation == generation
            ):
                # A completed job from the *current* worker proves the slot
                # healthy again: its crash streak is over.
                self._crash_streak[slot] = 0
            pending = self._pending.pop(document["id"], None)
            if pending is None or pending.done.is_set():
                return  # duplicate (a retired worker's late result): drop
            self._jobs_per_slot[slot] = self._jobs_per_slot.get(slot, 0) + 1
            result = JobResult.from_dict(document)
            result.meta["attempts"] = pending.attempts + 1
            if pending.job.trace:
                self._stamp_trace_locked(pending, result)
            pending.result = result
            self._counts["completed"] += 1
            if not result.ok:
                self._counts["failed"] += 1
            self._complete_locked(pending)
            if pending.slot in self._retiring:
                self._maybe_finish_retire_locked(pending.slot)
            self._space.notify_all()

    def _watch_health(self) -> None:
        """Kill overdue jobs, expire deadlines, absorb deaths, fire respawns."""
        now = time.monotonic()
        overdue: list[int] = []
        with self._space:
            for pending in list(self._pending.values()):
                if pending.done.is_set() or pending.timed_out:
                    continue
                past_deadline = (
                    pending.deadline_at is not None and now > pending.deadline_at
                )
                past_timeout = (
                    self.job_timeout is not None
                    and pending.begun_at is not None
                    and now - pending.begun_at > self.job_timeout
                )
                if pending.begun_at is not None and (past_timeout or past_deadline):
                    if self._handles[pending.slot].process.is_alive():
                        # Overdue while running: recycle the worker exactly
                        # like a pool-level timeout — the death handler sees
                        # the marked culprit, so no innocent job is blamed.
                        pending.timed_out = True
                        pending.deadline_hit = past_deadline
                        overdue.append(pending.slot)
                elif past_deadline:
                    # Expired while queued (behind other work, or waiting out
                    # a respawn backoff): dead-letter in place; the worker
                    # never sees it, and any late duplicate result is dropped.
                    # Attempts pin to 1 so the document is a pure function of
                    # the job spec, not of where the overrun caught the job.
                    self._counts["timeouts"] += 1
                    pending.attempts = 1
                    self._dead_letter_locked(
                        pending,
                        "JobTimeout",
                        f"job missed its {pending.job.deadline}s deadline",
                        exhausted=True,
                    )
                    if pending.slot in self._retiring:
                        self._maybe_finish_retire_locked(pending.slot)
                    self._space.notify_all()
        for slot in set(overdue):
            self._counts["timeouts"] += 1
            self._handles[slot].process.kill()
            self._handles[slot].process.join(2.0)
        for slot, handle in enumerate(list(self._handles)):
            if (
                not handle.process.is_alive()
                and not self._closing
                and not handle.bye.is_set()
                and slot not in self._broken
                and slot not in self._retired
                and slot not in self._respawn_at
            ):
                self._on_worker_death(slot)
        if self._retiring and not self._closing:
            with self._space:
                for slot in list(self._retiring):
                    self._maybe_finish_retire_locked(slot)
        if self._respawn_at and not self._closing:
            now = time.monotonic()
            for slot, due_at in list(self._respawn_at.items()):
                if now >= due_at:
                    self._respawn_slot(slot)

    def _stamp_trace_locked(self, pending: _Pending, result: JobResult) -> None:
        """Assemble a traced job's final trace document in its result meta.

        Deterministic ``events``: the dispatcher's submit (sequence number
        — a pure function of submission order), the executor's events, and
        a completion record whose attempt count is a pure function of the
        failure history (same-seed chaos runs agree byte for byte).  The
        wall-clock ``timeline`` prepends the dispatcher's dispatch/requeue
        entries to the executor's.
        """
        trace = result.meta.get("trace") or {"events": [], "timeline": []}
        events = [{"ev": "submit", "seq": pending.sequence}]
        events.extend(trace.get("events", ()))
        attempts = result.meta.get("attempts", pending.attempts + 1)
        if events and events[-1].get("ev") == "complete":
            events[-1] = {**events[-1], "attempts": attempts}
        else:
            events.append({"ev": "complete", "ok": result.ok, "attempts": attempts})
        result.meta["trace"] = {
            "events": events,
            "timeline": list(pending.trace_timeline) + list(trace.get("timeline", ())),
        }

    def _dead_letter_locked(
        self, pending: _Pending, error_type: str, message: str, exhausted: bool
    ) -> None:
        """Complete a quarantined job as a structured dead-letter document.

        The document is deterministic: type, message, and attempt count
        are pure functions of the job's failure history and the pool
        configuration — never of timing or slot assignment.
        """
        self._pending.pop(pending.job.id, None)
        pending.result = JobResult(
            id=pending.job.id or "?",
            ok=False,
            error={
                "type": error_type,
                "message": message,
                "dead_letter": True,
                "attempts": pending.attempts,
            },
            meta={"slot": pending.slot, "attempts": pending.attempts},
        )
        if pending.job.trace:
            self._stamp_trace_locked(pending, pending.result)
        self._counts["completed"] += 1
        self._counts["failed"] += 1
        if exhausted:
            self._counts["exhausted"] += 1
        self._complete_locked(pending)

    def _on_worker_death(self, slot: int) -> None:
        """Contain one worker death: blame, quarantine, schedule the refill.

        The job that was in flight (its ``begin`` arrived, its result never
        did) is the culprit: one attempt is consumed, and when attempts run
        out — or the slot's crash streak marks it a poison stream — it
        completes as a dead-letter document.  Everything else stranded on
        the slot stays pending and is requeued when the slot respawns after
        its backoff; cold caches change timing only, payloads and
        fuel-replay step counts are byte-identical to an uninterrupted run.
        A streak reaching ``max_slot_respawns`` trips the crash-loop
        breaker instead: the slot is abandoned and all its jobs dead-letter.
        """
        with self._space:
            dead = self._handles[slot]
            if dead.process.is_alive():  # pragma: no cover - lost the race
                return
            streak = self._crash_streak.get(slot, 0) + 1
            self._crash_streak[slot] = streak
            stranded = sorted(
                (p for p in self._pending.values() if p.slot == slot and not p.done.is_set()),
                key=lambda p: p.sequence,
            )
            # The culprit is the job whose begin-ack arrived without a
            # result.  A hard kill can lose the ack in the worker's queue
            # feeder; the slot queue is FIFO, so the oldest stranded job is
            # the one that was (or was about to be) in flight — blaming it
            # keeps every crash loop bounded by max_attempts.
            culprit = next((p for p in stranded if p.begun_at is not None), None)
            if culprit is None and stranded:
                culprit = stranded[0]
            if culprit is not None and culprit.deadline_hit:
                # A missed per-job deadline never retries: the document
                # (type, message, pinned attempt count) is a pure function
                # of the job spec, so the error half stays byte-identical
                # across runs however the overrun interleaved with crashes.
                culprit.attempts = 1
                self._dead_letter_locked(
                    culprit,
                    "JobTimeout",
                    f"job missed its {culprit.job.deadline}s deadline",
                    exhausted=True,
                )
            elif culprit is not None:
                culprit.attempts += 1
                culprit.begun_at = None
                if culprit.attempts >= self.max_attempts:
                    if culprit.timed_out:
                        self._dead_letter_locked(
                            culprit,
                            "JobTimeout",
                            f"job exceeded the {self.job_timeout}s timeout "
                            f"({culprit.attempts} attempt(s))",
                            exhausted=True,
                        )
                    else:
                        self._dead_letter_locked(
                            culprit,
                            "WorkerCrash",
                            f"worker died while executing this job "
                            f"({culprit.attempts} attempt(s))",
                            exhausted=True,
                        )
                elif streak > self.suspect_after:
                    # Poison-stream fast fail: the slot is crashing job
                    # after job, so each new culprit stops burning workers
                    # immediately instead of cycling through max_attempts.
                    self._dead_letter_locked(
                        culprit,
                        "WorkerCrash",
                        f"worker died while executing this job and the slot's "
                        f"crash streak exceeded {self.suspect_after}; quarantined "
                        f"after {culprit.attempts} attempt(s)",
                        exhausted=True,
                    )
            if streak >= self.max_slot_respawns:
                # Crash-loop breaker: abandon the slot, fail its remaining
                # jobs cleanly, and let the batch finish elsewhere.
                self._broken.add(slot)
                self._respawn_at.pop(slot, None)
                for pending in stranded:
                    if pending.done.is_set():
                        continue
                    self._dead_letter_locked(
                        pending,
                        "CrashLoopBreaker",
                        f"worker slot crash-looped {streak} times and was "
                        f"abandoned; job not retried",
                        exhausted=False,
                    )
            else:
                backoff = min(
                    self.respawn_backoff_cap,
                    self.respawn_backoff * (2 ** (streak - 1)),
                )
                self._respawn_at[slot] = time.monotonic() + backoff * _jitter(
                    slot, dead.generation
                )
            self._space.notify_all()
        dead.process.join(0.1)

    def _respawn_slot(self, slot: int) -> None:
        """Refill a dead slot (its backoff has elapsed) and requeue its jobs."""
        with self._space:
            if slot not in self._respawn_at:  # pragma: no cover - raced
                return
            del self._respawn_at[slot]
            dead = self._handles[slot]
            replacement = self._spawn(slot, dead.generation + 1)
            self._handles[slot] = replacement
            self._counts["restarts"] += 1
            stranded = sorted(
                (p for p in self._pending.values() if p.slot == slot and not p.done.is_set()),
                key=lambda p: p.sequence,
            )
            for pending in stranded:
                self._counts["requeued"] += 1
                if pending.job.trace:
                    # Which non-culprit jobs get stranded depends on where
                    # the crash caught the queue: timeline, not events.
                    pending.trace_timeline.append(
                        {"ev": "requeue", "slot": slot, "at": time.monotonic()}
                    )
                self._send(replacement, pending)
            self._space.notify_all()


class ElasticSupervisor(threading.Thread):
    """Scale a dispatcher's worker pool on queue-depth watermarks.

    Polls queue depth against the active worker count every ``interval``
    seconds: above ``high_watermark`` pending jobs per worker it calls
    :meth:`Dispatcher.grow` (up to ``max_workers``); below
    ``low_watermark`` it calls :meth:`Dispatcher.shrink` (down to
    ``min_workers``).  A ``cooldown`` between scale events keeps a bursty
    stream from thrashing the pool — growth is cheap (a revived slot warms
    from the shared persistent memo store) but not free.  Scale events are
    appended to :attr:`events` as ``(direction, slot, depth)`` tuples and
    counted in the pool stats (``scale_ups`` / ``scale_downs``).

    Scaling changes *capacity and timing only*: sharding stays
    deterministic in arrival order, and deterministic payloads never
    depend on slot assignment at all, so an elastic pool produces the
    same bytes as a fixed one.

    Beyond queue depth, each tick derives two richer signals from the
    pool stats — the **completion rate** (jobs/second since the previous
    tick) and the **memo hit rate** (persistent-tier hits over
    hits+misses, None without a store) — published via :meth:`signals`
    and streamed by the endpoint's metrics subscription.  A pool that is
    *stalled* (more queued work than workers and several consecutive
    ticks with zero completions) grows even below the depth watermark:
    depth alone cannot distinguish "busy" from "stuck behind long jobs".
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        min_workers: int = 1,
        max_workers: int = 8,
        high_watermark: float = 2.0,
        low_watermark: float = 0.5,
        interval: float = 0.05,
        cooldown: float = 0.2,
    ) -> None:
        if min_workers < 1 or max_workers < min_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if low_watermark >= high_watermark:
            raise ValueError("low_watermark must sit below high_watermark")
        super().__init__(name=f"{dispatcher.name}-elastic", daemon=True)
        self.dispatcher = dispatcher
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.interval = interval
        self.cooldown = cooldown
        self.events: list[tuple[str, int, int]] = []
        self._halt = threading.Event()
        self._signals_lock = threading.Lock()
        self._signals: dict[str, Any] = {
            "depth": 0,
            "active": 0,
            "completion_rate": 0.0,
            "memo_hit_rate": None,
            "high_watermark": high_watermark,
            "low_watermark": low_watermark,
            "min_workers": min_workers,
            "max_workers": max_workers,
            "scale_ups": 0,
            "scale_downs": 0,
            "stalled_ticks": 0,
        }

    def signals(self) -> dict[str, Any]:
        """The latest derived scaling signals (JSON-safe snapshot).

        ``completion_rate`` is jobs/second completed since the previous
        supervision tick; ``memo_hit_rate`` is the persistent tier's
        hits/(hits+misses) over the pool's lifetime (None without a
        store).  Refreshed once per ``interval`` by the run loop, so a
        metrics stream can read it without touching the dispatcher lock.
        """
        with self._signals_lock:
            return dict(self._signals)

    def stop(self) -> None:
        """Stop the supervision loop and wait for the thread to exit."""
        self._halt.set()
        if self.is_alive():
            self.join(timeout=5.0)

    @staticmethod
    def _memo_hit_rate(persist: dict[str, Any] | None) -> float | None:
        if not persist:
            return None
        # Defensive key matching: the store counters are named *_hits /
        # *_misses per tier; summing by suffix survives a renamed tier.
        hits = sum(v for k, v in persist.items() if k.endswith("hits"))
        misses = sum(v for k, v in persist.items() if k.endswith("misses"))
        total = hits + misses
        return hits / total if total else None

    def run(self) -> None:  # pragma: no cover - exercised via integration tests
        last_scale = 0.0
        last_completed: int | None = None
        last_tick = time.monotonic()
        stalled_ticks = 0
        while not self._halt.wait(self.interval):
            try:
                stats = self.dispatcher.stats()
            except Exception:
                return  # the pool was torn down under us; nothing to supervise
            depth = stats.pending
            active = stats.active
            now = time.monotonic()
            elapsed = now - last_tick
            completed_delta = (
                0 if last_completed is None else stats.completed - last_completed
            )
            rate = completed_delta / elapsed if elapsed > 0 else 0.0
            last_completed = stats.completed
            last_tick = now
            # A stalled pool has queued work and idle-looking throughput:
            # depth alone cannot tell "busy" from "stuck behind long jobs".
            if depth > active and completed_delta == 0:
                stalled_ticks += 1
            else:
                stalled_ticks = 0
            with self._signals_lock:
                self._signals.update(
                    depth=depth,
                    active=active,
                    completion_rate=round(rate, 3),
                    memo_hit_rate=self._memo_hit_rate(stats.persist),
                    scale_ups=stats.scale_ups,
                    scale_downs=stats.scale_downs,
                    stalled_ticks=stalled_ticks,
                )
            if active == 0 or now - last_scale < self.cooldown:
                continue
            over_depth = depth > self.high_watermark * active
            stalled = depth > active and stalled_ticks >= 5
            if (over_depth or stalled) and active < self.max_workers:
                slot = self.dispatcher.grow()
                if slot is not None:
                    self.events.append(("up", slot, depth))
                    last_scale = now
                    stalled_ticks = 0
            elif depth < self.low_watermark * active and active > self.min_workers:
                slot = self.dispatcher.shrink()
                if slot is not None:
                    self.events.append(("down", slot, depth))
                    last_scale = now