"""The pool dispatcher: sharded queues, crash recovery, aggregated stats.

One :class:`Dispatcher` owns a fixed array of worker *slots*.  Each slot
holds one worker process (:mod:`repro.service.worker`) with a private job
queue; all workers share one result queue.  Everything on either queue is
a JSON string — the wire format of :mod:`repro.service.jobs`.

**Sharding** is round-robin-with-affinity: the first job carrying a new
affinity key claims the next slot round-robin, and every later job with
the same key goes to that slot — so a stream of related jobs keeps
hitting one worker's warm memo caches, while distinct streams spread
evenly (hashing keys instead can collide several hot streams onto one
worker and leave others idle).  A job without a key takes the next slot
round-robin, unpinned.  Key assignments live for the dispatcher's
lifetime and survive worker restarts: a requeued job lands on the fresh
worker in its original slot.

**Lifecycle.**  The dispatcher's collector thread drains the result queue
and watches worker health.  When a worker dies (crash, kill, hard exit),
its slot is refilled with a *fresh* worker — new process, new generation,
new queue, cold session — and every unfinished job assigned to the slot is
requeued onto it.  The job that was in flight at the moment of death (the
worker ``begin``-acks each job precisely so this is known) is the culprit:
its attempt counter rises, and when attempts are exhausted it completes as
a failed result instead of looping forever.  Requeued jobs produce results
byte-identical to an uninterrupted run — cold caches change timing, never
payloads, because every term renders α-canonically and every step count
replays from the fuel caches.  Per-job timeouts reuse the same machinery:
an overdue worker is killed and handled as a death with a known culprit.

**Stats.**  Pool-level aggregation sums per-worker counters without double
counting: each worker's session *is* its process-default state (the
bootstrap guarantees it), so the legacy-shim counters and the session
counters are one set of numbers, and the dispatcher keeps exactly one
cumulative snapshot per worker generation (the latest) and sums those.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.kernel.state import validate_engine
from repro.service.jobs import Job, JobResult
from repro.service.worker import worker_main

__all__ = ["Dispatcher", "PoolStats"]

_POOL_IDS = itertools.count(1)


@dataclass
class PoolStats:
    """Aggregated pool-level statistics, JSON-ready via :meth:`to_dict`."""

    workers: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    requeued: int = 0
    restarts: int = 0
    timeouts: int = 0
    jobs_per_slot: dict[int, int] = field(default_factory=dict)
    cache_hits: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "workers": self.workers,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "requeued": self.requeued,
            "restarts": self.restarts,
            "timeouts": self.timeouts,
            "jobs_per_slot": {str(slot): n for slot, n in sorted(self.jobs_per_slot.items())},
            "cache_hits": dict(self.cache_hits),
        }


@dataclass
class _Pending:
    """Dispatcher-side record of one submitted, not-yet-completed job."""

    job: Job
    slot: int
    sequence: int
    attempts: int = 0
    begun_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event)
    result: JobResult | None = None


class _WorkerHandle:
    """One live worker process bound to a slot."""

    __slots__ = ("slot", "generation", "name", "process", "queue", "bye")

    def __init__(self, slot: int, generation: int, name: str, process: Any, jobs: Any):
        self.slot = slot
        self.generation = generation
        self.name = name
        self.process = process
        self.queue = jobs
        self.bye = threading.Event()


class Dispatcher:
    """A bounded-queue dispatcher over a pool of session workers.

    Args:
        workers: number of worker slots (processes).
        engine: normalization engine every worker session boots with.
        fuel: default fuel for worker sessions (None = kernel default).
        max_pending: bound on unfinished jobs; :meth:`submit` blocks at it.
        job_timeout: seconds a single job may run before its worker is
            killed and the job handled as a crash (None disables).
        max_attempts: dispatch attempts per job before it completes as a
            failed result (a crash/timeout consumes one attempt).
        start_method: multiprocessing start method (default: ``fork``
            where available, else the platform default).
        name: pool label used in worker session names.
        memo_store: path of a shared persistent memo store every worker
            attaches at bootstrap (None disables the tier).  Workers open
            independent connections and batch their own write-backs, so
            the tier adds no cross-process locking to the job hot path.
    """

    def __init__(
        self,
        workers: int = 4,
        engine: str = "nbe",
        fuel: int | None = None,
        max_pending: int = 256,
        job_timeout: float | None = None,
        max_attempts: int = 2,
        start_method: str | None = None,
        name: str | None = None,
        memo_store: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        if max_pending < workers:
            raise ValueError("max_pending must be at least the worker count")
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        validate_engine(engine)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.name = name or f"pool-{next(_POOL_IDS)}"
        self.engine = engine
        self.fuel = fuel
        self.memo_store = None if memo_store is None else str(memo_store)
        self.max_pending = max_pending
        self.job_timeout = job_timeout
        self.max_attempts = max_attempts
        self._mp = multiprocessing.get_context(start_method)
        self._results = self._mp.Queue()
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._pending: dict[str, _Pending] = {}
        self._key_slots: dict[str, int] = {}
        self._handles: list[_WorkerHandle] = []
        self._hit_snapshots: dict[tuple[int, int], dict[str, int]] = {}
        self._jobs_per_slot: dict[int, int] = {}
        self._pings: dict[Any, threading.Event] = {}
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "requeued": 0,
            "restarts": 0,
            "timeouts": 0,
        }
        self._sequence = itertools.count()
        self._round_robin = itertools.count()
        self._closing = False
        for slot in range(workers):
            self._handles.append(self._spawn(slot, generation=0))
        self._collector = threading.Thread(
            target=self._collect, name=f"{self.name}-collector", daemon=True
        )
        self._collector.start()

    # -- context management ---------------------------------------------------

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- sharding -------------------------------------------------------------

    def slot_for(self, job: Job) -> int:
        """The slot ``job`` shards to: round-robin with key affinity.

        A new key claims the next slot in rotation and keeps it for the
        dispatcher's lifetime; unkeyed jobs just take the rotation.  The
        assignment is deterministic in arrival order — and deterministic
        *payloads* never depend on it at all, which the service benchmark's
        reshard differential enforces.
        """
        key = job.shard_key
        if key is None:
            return next(self._round_robin) % len(self._handles)
        slot = self._key_slots.get(key)
        if slot is None:
            slot = self._key_slots.setdefault(
                key, next(self._round_robin) % len(self._handles)
            )
        return slot

    # -- submission -----------------------------------------------------------

    def submit(self, job: Job | Mapping[str, Any]) -> _Pending:
        """Queue one job; blocks while ``max_pending`` jobs are unfinished."""
        if not isinstance(job, Job):
            job = Job.from_dict(job)
        with self._space:
            if self._closing:
                raise RuntimeError("dispatcher is shut down")
            sequence = next(self._sequence)
            if job.id is None:
                job = Job.from_dict({**job.to_dict(), "id": f"job-{sequence}"})
            if job.id in self._pending:
                raise ValueError(f"duplicate in-flight job id {job.id!r}")
            while len(self._pending) >= self.max_pending:
                self._space.wait()
                if self._closing:
                    raise RuntimeError("dispatcher is shut down")
            slot = self.slot_for(job)
            pending = _Pending(job=job, slot=slot, sequence=sequence)
            self._pending[job.id] = pending
            self._counts["submitted"] += 1
            self._send(self._handles[slot], pending)
        return pending

    def run_batch(self, jobs: Iterable[Job | Mapping[str, Any]]) -> list[JobResult]:
        """Dispatch ``jobs`` and block until every result is in.

        Results come back in submission order regardless of which workers
        finished first — the stable shape batch clients (and the
        determinism differential) want.
        """
        pendings = [self.submit(job) for job in jobs]
        for pending in pendings:
            pending.done.wait()
        return [pending.result for pending in pendings]  # type: ignore[misc]

    # -- health ---------------------------------------------------------------

    def ping(self, slot: int, timeout: float = 5.0) -> bool:
        """True if the worker in ``slot`` answers a health probe in time."""
        token = f"ping-{slot}-{time.monotonic_ns()}"
        event = threading.Event()
        self._pings[token] = event
        try:
            with self._lock:
                self._handles[slot].queue.put(json.dumps({"op": "ping", "token": token}))
            return event.wait(timeout)
        finally:
            self._pings.pop(token, None)

    def alive_workers(self) -> list[bool]:
        """Liveness of each slot's current worker process."""
        return [handle.process.is_alive() for handle in self._handles]

    def kill_worker(self, slot: int) -> None:
        """Hard-kill the worker in ``slot`` (chaos hook for failure tests)."""
        self._handles[slot].process.kill()

    # -- statistics -----------------------------------------------------------

    def stats(self) -> PoolStats:
        """A consistent snapshot of the aggregated pool statistics."""
        with self._lock:
            hits: dict[str, int] = {}
            # One cumulative snapshot per worker generation: the worker's
            # session *is* its process default (bootstrap_worker_state), so
            # this is each counter counted exactly once — never session
            # plus legacy-shim double counting, never per-job double sums.
            for snapshot in self._hit_snapshots.values():
                for cache, count in snapshot.items():
                    hits[cache] = hits.get(cache, 0) + count
            return PoolStats(
                workers=len(self._handles),
                jobs_per_slot=dict(self._jobs_per_slot),
                cache_hits=hits,
                **self._counts,
            )

    # -- shutdown -------------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker gracefully; escalate to kill on the deadline."""
        with self._space:
            if self._closing:
                return
            self._closing = True
            self._space.notify_all()
            handles = list(self._handles)
        stop = json.dumps({"op": "stop"})
        for handle in handles:
            try:
                handle.queue.put(stop)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        deadline = time.monotonic() + timeout
        for handle in handles:
            handle.bye.wait(max(0.0, deadline - time.monotonic()))
        for handle in handles:
            handle.process.join(max(0.05, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
        self._collector.join(timeout=2.0)
        with self._space:
            for pending in self._pending.values():
                if not pending.done.is_set():
                    pending.result = JobResult(
                        id=pending.job.id or "?",
                        ok=False,
                        error={
                            "type": "DispatcherShutdown",
                            "message": "dispatcher shut down before the job completed",
                        },
                        meta={"slot": pending.slot, "attempts": pending.attempts},
                    )
                    pending.done.set()
            self._pending.clear()

    # -- internals ------------------------------------------------------------

    def _spawn(self, slot: int, generation: int) -> _WorkerHandle:
        """Start a fresh worker process for ``slot``."""
        worker_name = f"{self.name}-w{slot}g{generation}"
        jobs = self._mp.Queue()
        process = self._mp.Process(
            target=worker_main,
            args=(
                slot,
                generation,
                worker_name,
                jobs,
                self._results,
                self.engine,
                self.fuel,
                self.memo_store,
            ),
            name=worker_name,
            daemon=True,
        )
        process.start()
        return _WorkerHandle(slot, generation, worker_name, process, jobs)

    def _send(self, handle: _WorkerHandle, pending: _Pending) -> None:
        """Put one job on a worker queue (caller holds the lock)."""
        pending.begun_at = None
        handle.queue.put(json.dumps({"op": "job", "spec": pending.job.to_dict()}))

    def _collect(self) -> None:
        """Collector thread: drain results, watch health, enforce timeouts.

        Health runs on the idle branch *and* at a bounded interval while
        results are flowing — a continuous stream from healthy workers
        must not starve the detection of a dead or overdue one.
        """
        last_health = time.monotonic()
        while True:
            try:
                raw = self._results.get(timeout=0.05)
            except queue_module.Empty:
                if self._closing and all(h.bye.is_set() or not h.process.is_alive()
                                         for h in self._handles):
                    return
                self._watch_health()
                last_health = time.monotonic()
                continue
            if time.monotonic() - last_health > 0.05:
                self._watch_health()
                last_health = time.monotonic()
            message = json.loads(raw)
            op = message.get("op")
            if op == "begin":
                self._on_begin(message)
            elif op == "result":
                self._on_result(message)
            elif op == "pong":
                event = self._pings.get(message.get("token"))
                if event is not None:
                    event.set()
                self._store_snapshot(message)
            elif op == "bye":
                self._store_snapshot(message)
                for handle in self._handles:
                    if (
                        handle.slot == message.get("slot")
                        and handle.generation == message.get("generation")
                    ):
                        handle.bye.set()

    def _store_snapshot(self, message: Mapping[str, Any]) -> None:
        """Record a worker generation's cumulative hit counters (latest wins)."""
        hits = message.get("hits")
        if hits is None:
            return
        key = (message.get("slot"), message.get("generation"))
        with self._lock:
            self._hit_snapshots[key] = dict(hits)

    def _on_begin(self, message: Mapping[str, Any]) -> None:
        slot, generation = message.get("slot"), message.get("generation")
        with self._lock:
            handle = self._handles[slot]
            if handle.generation != generation:
                return  # stale: that worker generation is already retired
            pending = self._pending.get(message.get("id"))
            if pending is not None and pending.slot == slot:
                pending.begun_at = time.monotonic()

    def _on_result(self, message: Mapping[str, Any]) -> None:
        self._store_snapshot(message)
        document = message["result"]
        with self._space:
            pending = self._pending.pop(document["id"], None)
            if pending is None or pending.done.is_set():
                return  # duplicate (a retired worker's late result): drop
            slot = message.get("slot")
            self._jobs_per_slot[slot] = self._jobs_per_slot.get(slot, 0) + 1
            result = JobResult.from_dict(document)
            result.meta["attempts"] = pending.attempts + 1
            pending.result = result
            self._counts["completed"] += 1
            if not result.ok:
                self._counts["failed"] += 1
            pending.done.set()
            self._space.notify_all()

    def _watch_health(self) -> None:
        """Respawn dead workers; kill overdue ones (handled as deaths)."""
        now = time.monotonic()
        if self.job_timeout is not None:
            overdue: list[int] = []
            with self._lock:
                for pending in self._pending.values():
                    if (
                        pending.begun_at is not None
                        and now - pending.begun_at > self.job_timeout
                        and self._handles[pending.slot].process.is_alive()
                    ):
                        overdue.append(pending.slot)
            for slot in set(overdue):
                self._counts["timeouts"] += 1
                self._handles[slot].process.kill()
                self._handles[slot].process.join(2.0)
        for slot, handle in enumerate(list(self._handles)):
            if not handle.process.is_alive() and not self._closing:
                if handle.bye.is_set():
                    continue  # exited gracefully
                self._recover_slot(slot)

    def _recover_slot(self, slot: int) -> None:
        """Refill a dead slot with a fresh worker and requeue its jobs.

        The job that was in flight (its ``begin`` arrived, its result never
        did) is the culprit: one attempt is consumed, and when attempts run
        out it completes as a failed result.  Every other unfinished job of
        the slot is requeued unchanged — the fresh worker starts cold, but
        cold caches change timing only: payloads and fuel-replay step
        counts are byte-identical to an uninterrupted run.
        """
        with self._space:
            dead = self._handles[slot]
            replacement = self._spawn(slot, dead.generation + 1)
            self._handles[slot] = replacement
            self._counts["restarts"] += 1
            stranded = sorted(
                (p for p in self._pending.values() if p.slot == slot and not p.done.is_set()),
                key=lambda p: p.sequence,
            )
            # The culprit is the job whose begin-ack arrived without a
            # result.  A hard kill can lose the ack in the worker's queue
            # feeder; the slot queue is FIFO, so the oldest stranded job is
            # the one that was (or was about to be) in flight — blaming it
            # keeps every crash loop bounded by max_attempts.
            culprit = next((p for p in stranded if p.begun_at is not None), None)
            if culprit is None and stranded:
                culprit = stranded[0]
            for pending in stranded:
                if pending is culprit:
                    pending.attempts += 1
                    pending.begun_at = None
                    if pending.attempts >= self.max_attempts:
                        self._pending.pop(pending.job.id, None)
                        pending.result = JobResult(
                            id=pending.job.id or "?",
                            ok=False,
                            error={
                                "type": "WorkerCrash",
                                "message": (
                                    f"worker died while executing this job "
                                    f"({pending.attempts} attempt(s))"
                                ),
                            },
                            meta={"slot": slot, "attempts": pending.attempts},
                        )
                        self._counts["completed"] += 1
                        self._counts["failed"] += 1
                        pending.done.set()
                        continue
                self._counts["requeued"] += 1
                self._send(replacement, pending)
            self._space.notify_all()
        dead.process.join(0.1)