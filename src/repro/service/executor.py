"""Execute one wire job against one session — pooled and solo alike.

This is the single definition of what a job *means*.  Pool workers call it
from their process-private session; the in-process solo path
(:func:`repro.api.execute_jobs` with ``workers=0``) calls the same function
against a local session.  Pooled results are therefore byte-identical to
solo runs by construction — there is exactly one executor.

Determinism across shard assignments comes from two mechanisms:

* **α-canonical ingest and egress.**  The program — surface text, or a
  binary DAG buffer when the job speaks wire version 2 — is decoded and
  then *interned* (:func:`repro.kernel.intern.intern`), so α-equivalent
  jobs resolve to the same canonical term object — which is what lets a
  warm worker's identity-keyed memo caches hit across repeated jobs.  Every
  term in the payload is rendered from its interned representative, whose
  binder names are a pure function of the α-class: machine-freshened
  names (which depend on execution history) can never reach the wire.
* **Fuel replay.**  Step counts come from :class:`~repro.kernel.budget.Budget`
  totals, and every cache in the kernel replays recorded fuel on a hit —
  a warm worker reports exactly the steps a cold solo run reports,
  including the position of a fuel-exhaustion error.

Failures of kernel work (parse errors, type errors, fuel exhaustion, link
errors) are *results*, not exceptions: they travel the wire as the
deterministic ``error`` half of the result document.

Fault injection (:mod:`repro.service.faults`) hooks in exactly here,
because here is where solo and pooled execution coincide: when an injector
is active the job is first run through ``mutate`` (scheduled wire
corruption — the resulting decode/parse failure is a deterministic error
document like any other), stalled by ``stall_seconds`` (scheduled hangs),
and dispatched inside ``store_window`` (scheduled persistent-tier
read/write errors).  Worker kills live in ``worker.py`` — there is no
process to kill solo.  The off path costs one module-global ``None`` check.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import TYPE_CHECKING, Any

from repro import cc, cccc
from repro.common.errors import ReproError
from repro.service import faults
from repro.service.jobs import Job, JobResult
from repro.surface import parse_term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import Session

__all__ = ["execute_job"]


def _canon_cc(term: cc.Term) -> str:
    """α-canonical rendering of a CC term (deterministic across sessions)."""
    return cc.pretty(cc.intern(term))


def _canon_cccc(term: cccc.Term) -> str:
    """α-canonical rendering of a CC-CC term."""
    return cccc.pretty(cccc.intern(term))


def _b64_cc(term: cc.Term) -> str:
    """Binary DAG rendering of a CC term's interned representative.

    As deterministic as the pretty text: the encoder is canonical and the
    interned representative is a pure function of the α-class.
    """
    from repro.wire.codec import term_to_b64

    return term_to_b64(cc.ast.LANGUAGE, cc.intern(term))


def _b64_cccc(term: cccc.Term) -> str:
    """Binary DAG rendering of a CC-CC term's interned representative."""
    from repro.wire.codec import term_to_b64

    return term_to_b64(cccc.ast.LANGUAGE, cccc.intern(term))


def _ingest(job: Job) -> cc.Term:
    """The job's program as an interned CC term — binary or text path.

    Binary ingest is O(new nodes): the decoder adopts every node whose
    content hash the session already knows, and interning the decoded DAG
    memoizes per unique (node, depth).  Both paths land on the same
    α-canonical representative, so payloads are byte-identical whichever
    wire the job arrived on.
    """
    if job.term_b64 is not None:
        from repro.wire.codec import term_from_b64

        return cc.intern(term_from_b64(cc.ast.LANGUAGE, job.term_b64))
    return cc.intern(parse_term(job.program))


@contextmanager
def _fuel_override(session: "Session", fuel: int | None):
    """Run the body under a per-job fuel limit, restoring the session's."""
    if fuel is None:
        yield
        return
    state = session.state
    saved = state.fuel
    state.fuel = fuel
    try:
        yield
    finally:
        state.fuel = saved


def execute_job(session: "Session", job: Job) -> JobResult:
    """Run ``job`` against ``session``; never raises for kernel failures."""
    injector = faults.active()
    store_window = nullcontext()
    if injector is not None:
        job = injector.mutate(job)
        stall = injector.stall_seconds(job.id)
        if stall:
            time.sleep(stall)
        store_window = injector.store_window(job.id)
    job_id = job.id if job.id is not None else job.kind
    started = time.perf_counter()
    hits_before = session.state.hit_counts()
    try:
        with _fuel_override(session, job.fuel), store_window:
            payload = _dispatch(session, job)
        ok, error = True, {}
    except ReproError as failure:
        # Deterministic kernel failures: part of the job's defined result.
        payload, ok = {}, False
        error = {"type": type(failure).__name__, "message": str(failure)}
    hits_after = session.state.hit_counts()
    meta = {
        "session": session.name,
        "elapsed_seconds": time.perf_counter() - started,
        "cache_hits": {
            name: hits_after[name] - hits_before.get(name, 0) for name in hits_after
        },
    }
    if ok and job.kind == "stats":
        meta["stats"] = {
            "cache_stats": session.cache_stats(),
            "hit_counts": dict(hits_after),
        }
    if job.trace:
        # The trace rides the telemetry half, never the payload, so traced
        # results stay byte-identical to untraced ones.  ``events`` holds
        # only deterministic fields; wall-clock and warmth-dependent data
        # (elapsed time, cache-hit deltas) go to ``timeline``.  Schema:
        # repro.obs.trace.
        meta["trace"] = {
            "events": [
                {"ev": "execute", "kind": job.kind},
                {"ev": "complete", "ok": ok},
            ],
            "timeline": [
                {
                    "ev": "memo",
                    "elapsed_seconds": meta["elapsed_seconds"],
                    "cache_hits": dict(meta["cache_hits"]),
                }
            ],
        }
    return JobResult(id=job_id, ok=ok, payload=payload, error=error, meta=meta)


def _run_payload(result: Any) -> dict[str, Any]:
    """The deterministic payload both run backends share.

    Built from the flat :class:`~repro.api.RunResult` fields (never
    ``compile_result``, which is None on a warm artifact hit), so a warm
    pooled run renders byte-for-byte what a cold solo run renders.
    """
    shown = (
        result.observation
        if result.observation is not None
        else type(result.value).__name__
    )
    return {
        "term": _canon_cc(result.source),
        "value": shown,
        "code_blocks": result.code_count,
        "machine_steps": result.machine_steps,
        "closure_allocs": result.closure_allocs,
        "tuple_allocs": result.tuple_allocs,
        "projections": result.projections,
        "env_allocs": result.env_allocs,
        "max_env_size": result.max_env_size,
        "verified": result.verified,
        "compile_steps": result.compile_steps,
        "backend": result.backend,
    }


def _dispatch(session: "Session", job: Job) -> dict[str, Any]:
    """The kind table: one wire job → one deterministic payload dict."""
    if job.kind == "reset":
        # Service policy: a reset returns the session to its cold
        # deterministic zero but keeps the worker *configured* — the shared
        # persistent tier (attached at bootstrap) is re-attached after the
        # state-level detach, because the store holds only content-keyed,
        # fuel-replaying entries that are byte-identical to cold recomputes.
        tier = getattr(session.state, "persistent", None)
        session.reset()
        if tier is not None:
            session.state.attach_memo_store(tier.store)
        return {"reset": True}
    if job.kind == "stats":
        # The deterministic payload is a constant: a telemetry poll must be
        # able to ride any job stream without perturbing the byte-identical
        # pooled-vs-solo differentials.  The actual numbers (session cache
        # stats here; aggregated PoolStats when an endpoint answers the
        # poll itself) travel in the result's telemetry half — see
        # ``execute_job``, which stamps ``meta["stats"]``.
        return {"stats": True}
    if job.kind == "sleep":
        time.sleep(job.seconds)
        return {"slept": job.seconds}
    if job.kind == "crash":
        # Only a pool worker turns this into a real process death (see
        # repro.service.worker); in-process it is a plain failed job.
        raise ReproError("crash job executed outside a worker process")

    binary = job.wire >= 2
    with session.activate():
        term = _ingest(job)
        if job.kind == "parse":
            payload = {"term": _canon_cc(term)}
            if binary:
                payload["term_b64"] = _b64_cc(term)
            return payload
        if job.kind == "check":
            result = session.check(term)
            payload = {
                "term": _canon_cc(result.term),
                "type": _canon_cc(result.type_),
                "steps": result.steps,
            }
            if binary:
                payload["term_b64"] = _b64_cc(result.term)
                payload["type_b64"] = _b64_cc(result.type_)
            return payload
        if job.kind == "normalize":
            result = session.normalize(term, engine=job.engine)
            payload = {
                "term": _canon_cc(result.term),
                "normal": _canon_cc(result.value),
                "type": _canon_cc(result.type_),
                "steps": result.steps,
                "check_steps": result.check_steps,
                "engine": result.engine,
            }
            if binary:
                payload["term_b64"] = _b64_cc(result.term)
                payload["normal_b64"] = _b64_cc(result.value)
            return payload
        if job.kind == "compile":
            result = session.compile(term, verify=job.verify)
            payload = {
                "term": _canon_cc(result.compilation.source),
                "type": _canon_cc(result.compilation.source_type),
                "target": _canon_cccc(result.target),
                "target_type": _canon_cccc(result.target_type),
                "verified": result.verified,
                "steps": result.steps,
                "check_steps": result.check_steps,
                "verify_steps": result.verify_steps,
            }
            if binary:
                payload["term_b64"] = _b64_cc(result.compilation.source)
                payload["target_b64"] = _b64_cccc(result.target)
            return payload
        if job.kind == "run":
            result = session.run(term, verify=job.verify)
            return _run_payload(result)
        if job.kind == "compile_py":
            # The differential contract: this payload equals the machine
            # "run" payload for the same spec once the two backend-only
            # keys ("backend", "artifact") are dropped — values, counters,
            # fuel, and error documents alike.
            result = session.run(term, verify=job.verify, engine="compiled")
            payload = _run_payload(result)
            payload["artifact"] = result.artifact
            return payload
        if job.kind == "link":
            ctx = cc.Context.empty()
            for name, type_text in job.interface:
                ctx = ctx.extend(name, parse_term(type_text))
            imports = {
                name: parse_term(text) for name, text in job.imports.items()
            }
            result = session.link(ctx, term, imports)
            payload = {
                "term": _canon_cc(result.term),
                "type": _canon_cc(result.type_),
                "steps": result.steps,
                "imports_linked": len(job.imports),
            }
            if binary:
                payload["term_b64"] = _b64_cc(result.term)
            return payload
    raise AssertionError(f"unhandled job kind {job.kind!r}")  # pragma: no cover
