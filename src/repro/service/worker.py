"""The pool worker: one process, one session, one job loop.

A worker is spawned (or forked) by the dispatcher with two queues — its
private job queue and the pool-shared result queue — and a slot/generation
identity.  Everything crossing either queue is a JSON *string*; the wire
format of :mod:`repro.service.jobs` is enforced by construction.

Startup runs the **worker-side state bootstrap**
(:func:`repro.kernel.state.bootstrap_worker_state`): a forked child
inherits the parent's process-default kernel state — warm caches, an
advanced fresh-name counter, accumulated hit counters — and serving jobs
against that would make results depend on parent history and double-count
the parent's statistics in every pool report.  The bootstrap installs a
pristine :class:`~repro.kernel.state.KernelState` as the process default
and the worker's session wraps *that same state*, so the session and every
legacy shim observe one cold, deterministic world.

Protocol (worker → dispatcher on the result queue):

* ``{"op": "begin", "id", "slot", "generation"}`` — sent before executing
  each job, so the dispatcher knows exactly which job was in flight if
  this process dies (crash culpability and timeout tracking);
* ``{"op": "result", "slot", "generation", "result", "hits", "jobs"}`` —
  the job's result document plus the session's *cumulative* hit counters
  (the dispatcher keeps the latest snapshot per worker generation);
* ``{"op": "pong", "token", ...}`` — health-check reply;
* ``{"op": "hb", ...}`` — idle heartbeat (posted when the job queue stays
  empty for a beat), carrying the same cumulative counters as a result;
* ``{"op": "bye", ...}`` — graceful-shutdown acknowledgement with final
  counters.

Every post also carries ``"persist"``: the persistent tier's in-memory
counters (None when no store is attached), so the dispatcher can aggregate
store health — errors, breaker trips, buffer drops — across the pool
without ever touching the workers' SQLite connections.

A ``crash`` job acknowledges ``begin`` and then hard-exits the process
(``os._exit``) — no result, no cleanup — which is exactly the failure the
dispatcher's requeue-on-fresh-worker machinery exists for.  A chaos plan
(``fault_plan``, see :mod:`repro.service.faults`) turns *scheduled* jobs
into exactly that failure: an injected kill dies after the begin-ack with
the tier's unflushed write-buffer still in memory, so recovery is
exercised against genuinely lost cache warmth.
"""

from __future__ import annotations

import json
import os
import queue
from typing import Any

from repro.service.executor import execute_job
from repro.service.jobs import Job

__all__ = ["worker_main"]

#: Seconds of empty job queue before an idle worker posts a heartbeat.
_HEARTBEAT_SECONDS = 2.0


def worker_main(
    slot: int,
    generation: int,
    name: str,
    job_queue: Any,
    result_queue: Any,
    engine: str,
    fuel: int | None,
    memo_store: str | None = None,
    fault_plan: dict[str, Any] | None = None,
) -> None:
    """The worker process entry point (top-level, so ``spawn`` can import it).

    ``memo_store`` is the path of the pool's shared persistent memo tier;
    each worker opens its own SQLite connection (WAL arbitrates the
    cross-process traffic) and batches write-backs in its own append
    transactions — flushed at a size threshold and on graceful shutdown.
    A crash loses only unflushed cache warmth, never correctness: the
    store is an append-only cache of fuel-replaying, content-keyed entries.

    ``fault_plan`` is a :class:`~repro.service.faults.FaultPlan` wire dict;
    when present the worker installs a process-wide
    :class:`~repro.service.faults.FaultInjector` so the executor (and the
    store underneath it) fire the scheduled faults.
    """
    from repro.api import Session
    from repro.kernel.state import bootstrap_worker_state

    state = bootstrap_worker_state(name, engine=engine, fuel=fuel, memo_store=memo_store)
    session = Session(_state=state)
    jobs_done = 0

    injector = None
    if fault_plan:
        from repro.service import faults

        injector = faults.FaultInjector(faults.FaultPlan.from_dict(fault_plan))
        faults.install(injector)

    def flush_tier() -> None:
        if state.persistent is not None:
            state.persistent.store.flush()

    def post(document: dict[str, Any]) -> None:
        document.setdefault("slot", slot)
        document.setdefault("generation", generation)
        document.setdefault("worker", name)
        document.setdefault(
            "persist",
            state.persistent.counters() if state.persistent is not None else None,
        )
        result_queue.put(json.dumps(document))

    while True:
        try:
            raw = job_queue.get(timeout=_HEARTBEAT_SECONDS)
        except queue.Empty:
            post({"op": "hb", "jobs": jobs_done, "hits": state.hit_counts()})
            continue
        message = json.loads(raw)
        op = message.get("op")
        if op == "stop":
            flush_tier()
            post({"op": "bye", "hits": state.hit_counts(), "jobs": jobs_done})
            return
        if op == "ping":
            post(
                {
                    "op": "pong",
                    "token": message.get("token"),
                    "pid": os.getpid(),
                    "jobs": jobs_done,
                    "hits": state.hit_counts(),
                }
            )
            continue
        if op != "job":  # pragma: no cover - protocol misuse
            post({"op": "error", "message": f"unknown op {op!r}"})
            continue
        job = Job.from_dict(message["spec"])
        if injector is not None:
            injector.begin(job.id, message.get("attempt", 0))
        post({"op": "begin", "id": job.id})
        if job.kind == "crash" or (injector is not None and injector.kill(job.id)):
            # Flush the begin-ack before dying: ``put`` hands the message
            # to a feeder thread, and ``os._exit`` would race it.  (A real
            # SIGKILL *can* lose the ack — the dispatcher's recovery blames
            # the queue head in that case, so the retry loop stays bounded.)
            # The tier is deliberately NOT flushed: an injected kill must
            # lose its unflushed store entries, like any real crash.
            result_queue.close()
            result_queue.join_thread()
            os._exit(3)
        result = execute_job(session, job)
        jobs_done += 1
        result.meta["slot"] = slot
        result.meta["generation"] = generation
        post(
            {
                "op": "result",
                "result": result.to_dict(),
                "hits": state.hit_counts(),
                "jobs": jobs_done,
            }
        )
