"""Abstract syntax of CC-CC, the closure-converted target calculus.

CC-CC (paper Figure 5) is CC with first-class functions *removed* and
replaced by:

* **closed code** ``λ (x′:A′, x:A). e`` (:class:`CodeLam`) of **code type**
  ``Code (x′:A′, x:A). B`` (:class:`CodeType`) — a two-argument function
  (environment, then argument) that must type check in the *empty*
  environment;
* **closures** ``⟨⟨e, e′⟩⟩`` (:class:`Clo`) pairing code with its
  environment; closures inhabit the dependent closure type ``Π x:A. B``
  (``Pi`` is kept, but in CC-CC it classifies closures, not functions);
* the **unit type** ``1`` (:class:`Unit`) with value ``⟨⟩``
  (:class:`UnitVal`), used to terminate environment tuples.

Application ``e e′`` is unchanged syntactically but now eliminates
closures.  Everything else (let, Σ, pairs, projections, and the Section 5.2
ground types Bool/Nat) carries over from CC.

Binding structure:

* ``CodeType(env_name, env_type, arg_name, arg_type, result)`` binds
  ``env_name`` in ``arg_type`` and ``result``; ``arg_name`` in ``result``.
* ``CodeLam(env_name, env_type, arg_name, arg_type, body)`` binds
  ``env_name`` in ``arg_type`` and ``body``; ``arg_name`` in ``body``.

The n-tuple environments ``⟨e…⟩ as Σ(x:A…)`` and pattern lets
``let ⟨x…⟩ = e in b`` of Section 4 are *syntactic sugar*, elaborated by
:mod:`repro.cccc.ntuple` into nested pairs / projection lets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

__all__ = [
    "App",
    "Bool",
    "BoolLit",
    "Box",
    "Clo",
    "CodeLam",
    "CodeType",
    "Fst",
    "If",
    "Let",
    "Nat",
    "NatElim",
    "Pair",
    "Pi",
    "Sigma",
    "Snd",
    "Star",
    "Succ",
    "Term",
    "Unit",
    "UnitVal",
    "Var",
    "Zero",
    "app_spine",
    "arrow",
    "free_vars",
    "make_app",
    "nat_literal",
    "nat_value",
    "subterms",
    "term_size",
]


class Term:
    """Base class of all CC-CC expressions (structural ``==`` is syntactic)."""

    __slots__ = ()

    def __str__(self) -> str:
        from repro.cccc.pretty import pretty

        return pretty(self)


@dataclass(frozen=True, slots=True)
class Var(Term):
    """A variable occurrence ``x``."""

    name: str


@dataclass(frozen=True, slots=True)
class Star(Term):
    """The impredicative universe ``⋆``."""


@dataclass(frozen=True, slots=True)
class Box(Term):
    """The predicative universe ``□`` (the type of ``⋆``; untypable itself)."""


@dataclass(frozen=True, slots=True)
class Pi(Term):
    """Dependent *closure* type ``Π name:domain. codomain``.

    In CC-CC, inhabitants of Π are closures ⟨⟨code, env⟩⟩ (paper [Clo]), not
    λ-abstractions — there is no ``Lam`` node in this language.
    """

    name: str
    domain: Term
    codomain: Term


@dataclass(frozen=True, slots=True)
class CodeType(Term):
    """Dependent code type ``Code (env_name:env_type, arg_name:arg_type). result``."""

    env_name: str
    env_type: Term
    arg_name: str
    arg_type: Term
    result: Term


@dataclass(frozen=True, slots=True)
class CodeLam(Term):
    """Closed code ``λ (env_name:env_type, arg_name:arg_type). body``.

    Typing rule [Code] requires the body to check in the environment
    ``·, env_name:env_type, arg_name:arg_type`` — i.e. code is *closed*,
    which is the entire point of typed closure conversion.
    """

    env_name: str
    env_type: Term
    arg_name: str
    arg_type: Term
    body: Term


@dataclass(frozen=True, slots=True)
class Clo(Term):
    """A closure ``⟨⟨code, env⟩⟩``.

    Not a pair: think of it as a *delayed partial application* of ``code``
    to ``env`` (Section 3.2) — the typing rule [Clo] substitutes ``env``
    into the code type, exactly like dependent application.
    """

    code: Term
    env: Term


@dataclass(frozen=True, slots=True)
class App(Term):
    """Application ``fn arg`` — the elimination form for closures."""

    fn: Term
    arg: Term


@dataclass(frozen=True, slots=True)
class Let(Term):
    """Dependent let ``let name = bound : annot in body`` (δ/ζ as in CC)."""

    name: str
    bound: Term
    annot: Term
    body: Term


@dataclass(frozen=True, slots=True)
class Sigma(Term):
    """Strong dependent pair type ``Σ name:first. second``."""

    name: str
    first: Term
    second: Term


@dataclass(frozen=True, slots=True)
class Pair(Term):
    """Dependent pair ``⟨fst_val, snd_val⟩ as annot`` (annot a Σ type)."""

    fst_val: Term
    snd_val: Term
    annot: Term


@dataclass(frozen=True, slots=True)
class Fst(Term):
    """First projection ``fst pair``."""

    pair: Term


@dataclass(frozen=True, slots=True)
class Snd(Term):
    """Second projection ``snd pair``."""

    pair: Term


@dataclass(frozen=True, slots=True)
class Unit(Term):
    """The unit type ``1`` (terminates environment tuples; Figure 5)."""


@dataclass(frozen=True, slots=True)
class UnitVal(Term):
    """The unit value ``⟨⟩``."""


# Ground types (Section 5.2), mirrored from CC.


@dataclass(frozen=True, slots=True)
class Bool(Term):
    """The ground type of booleans."""


@dataclass(frozen=True, slots=True)
class BoolLit(Term):
    """``true`` or ``false``."""

    value: bool


@dataclass(frozen=True, slots=True)
class If(Term):
    """Non-dependent conditional."""

    cond: Term
    then_branch: Term
    else_branch: Term


@dataclass(frozen=True, slots=True)
class Nat(Term):
    """The ground type of natural numbers."""


@dataclass(frozen=True, slots=True)
class Zero(Term):
    """The numeral ``zero``."""


@dataclass(frozen=True, slots=True)
class Succ(Term):
    """Successor ``succ pred``."""

    pred: Term


@dataclass(frozen=True, slots=True)
class NatElim(Term):
    """Dependent eliminator for ``Nat``; its ``step`` is a *closure* here."""

    motive: Term
    base: Term
    step: Term
    target: Term


# --------------------------------------------------------------------------
# Construction helpers.
# --------------------------------------------------------------------------

_UNUSED = "_"


def arrow(domain: Term, codomain: Term) -> Pi:
    """Non-dependent closure type ``domain → codomain``."""
    return Pi(_UNUSED, domain, codomain)


def make_app(fn: Term, *args: Term) -> Term:
    """Left-nested application ``fn arg0 arg1 …``."""
    result = fn
    for arg in args:
        result = App(result, arg)
    return result


def app_spine(term: Term) -> tuple[Term, list[Term]]:
    """Decompose left-nested applications into ``(head, [args…])``."""
    args: list[Term] = []
    while isinstance(term, App):
        args.append(term.arg)
        term = term.fn
    args.reverse()
    return term, args


def nat_literal(value: int) -> Term:
    """Build the numeral ``succ^value zero``."""
    if value < 0:
        raise ValueError(f"nat_literal of negative value {value}")
    result: Term = Zero()
    for _ in range(value):
        result = Succ(result)
    return result


def nat_value(term: Term) -> int | None:
    """Inverse of :func:`nat_literal`; ``None`` if not a numeral."""
    count = 0
    while isinstance(term, Succ):
        count += 1
        term = term.pred
    if isinstance(term, Zero):
        return count
    return None


# --------------------------------------------------------------------------
# Generic traversal.
# --------------------------------------------------------------------------

#: (bound names in scope for the subterm, the subterm).  Multi-binder nodes
#: (code) list both names for the body.
Child = tuple[tuple[str, ...], Term]


def children(term: Term) -> list[Child]:
    """Immediate subterms with the names the parent binds in each."""
    match term:
        case Var() | Star() | Box() | Unit() | UnitVal() | Bool() | BoolLit() | Nat() | Zero():
            return []
        case Pi(name, domain, codomain):
            return [((), domain), ((name,), codomain)]
        case CodeType(env_name, env_type, arg_name, arg_type, result):
            return [((), env_type), ((env_name,), arg_type), ((env_name, arg_name), result)]
        case CodeLam(env_name, env_type, arg_name, arg_type, body):
            return [((), env_type), ((env_name,), arg_type), ((env_name, arg_name), body)]
        case Clo(code, env):
            return [((), code), ((), env)]
        case App(fn, arg):
            return [((), fn), ((), arg)]
        case Let(name, bound, annot, body):
            return [((), bound), ((), annot), ((name,), body)]
        case Sigma(name, first, second):
            return [((), first), ((name,), second)]
        case Pair(fst_val, snd_val, annot):
            return [((), fst_val), ((), snd_val), ((), annot)]
        case Fst(pair):
            return [((), pair)]
        case Snd(pair):
            return [((), pair)]
        case If(cond, then_branch, else_branch):
            return [((), cond), ((), then_branch), ((), else_branch)]
        case Succ(pred):
            return [((), pred)]
        case NatElim(motive, base, step, target):
            return [((), motive), ((), base), ((), step), ((), target)]
        case _:
            raise TypeError(f"not a CC-CC term: {term!r}")


def free_vars(term: Term) -> set[str]:
    """The set of free variable names of ``term``."""
    out: set[str] = set()
    _free_vars_into(term, frozenset(), out)
    return out


def _free_vars_into(term: Term, bound: frozenset[str], out: set[str]) -> None:
    if isinstance(term, Var):
        if term.name not in bound:
            out.add(term.name)
        return
    for names, sub in children(term):
        _free_vars_into(sub, bound | set(names) if names else bound, out)


def subterms(term: Term) -> Iterator[Term]:
    """Pre-order iterator over ``term`` and all of its subterms."""
    yield term
    for _, sub in children(term):
        yield from subterms(sub)


def term_size(term: Term) -> int:
    """Number of AST nodes in ``term``."""
    return sum(1 for _ in subterms(term))
