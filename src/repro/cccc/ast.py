"""Abstract syntax of CC-CC, the closure-converted target calculus.

CC-CC (paper Figure 5) is CC with first-class functions *removed* and
replaced by:

* **closed code** ``λ (x′:A′, x:A). e`` (:class:`CodeLam`) of **code type**
  ``Code (x′:A′, x:A). B`` (:class:`CodeType`) — a two-argument function
  (environment, then argument) that must type check in the *empty*
  environment;
* **closures** ``⟨⟨e, e′⟩⟩`` (:class:`Clo`) pairing code with its
  environment; closures inhabit the dependent closure type ``Π x:A. B``
  (``Pi`` is kept, but in CC-CC it classifies closures, not functions);
* the **unit type** ``1`` (:class:`Unit`) with value ``⟨⟩``
  (:class:`UnitVal`), used to terminate environment tuples.

Application ``e e′`` is unchanged syntactically but now eliminates
closures.  Everything else (let, Σ, pairs, projections, and the Section 5.2
ground types Bool/Nat) carries over from CC.

Binding structure:

* ``CodeType(env_name, env_type, arg_name, arg_type, result)`` binds
  ``env_name`` in ``arg_type`` and ``result``; ``arg_name`` in ``result``.
* ``CodeLam(env_name, env_type, arg_name, arg_type, body)`` binds
  ``env_name`` in ``arg_type`` and ``body``; ``arg_name`` in ``body``.

The n-tuple environments ``⟨e…⟩ as Σ(x:A…)`` and pattern lets
``let ⟨x…⟩ = e in b`` of Section 4 are *syntactic sugar*, elaborated by
:mod:`repro.cccc.ntuple` into nested pairs / projection lets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.kernel import fv as _kernel_fv  # noqa: F401 (submodule import)
from repro.kernel import traverse as _kernel_traverse
from repro.kernel.intern import build as _kernel_build
from repro.kernel.intern import intern as _kernel_intern_fn
from repro.kernel.nodespec import Language

__all__ = [
    "App",
    "Bool",
    "BoolLit",
    "Box",
    "Clo",
    "CodeLam",
    "CodeType",
    "Fst",
    "If",
    "LANGUAGE",
    "Let",
    "Nat",
    "NatElim",
    "Pair",
    "Pi",
    "Sigma",
    "Snd",
    "Star",
    "Succ",
    "Term",
    "Unit",
    "UnitVal",
    "Var",
    "Zero",
    "app_spine",
    "arrow",
    "cached_free_vars",
    "free_vars",
    "hashcons",
    "intern",
    "make_app",
    "nat_literal",
    "nat_value",
    "subterms",
    "term_size",
]


class Term:
    """Base class of all CC-CC expressions (structural ``==`` is syntactic).

    The ``__weakref__`` slot lets the shared kernel keep identity-keyed
    weak caches (free variables, interned representatives) over terms.
    """

    __slots__ = ("__weakref__",)

    def __str__(self) -> str:
        from repro.cccc.pretty import pretty

        return pretty(self)


@dataclass(frozen=True, slots=True)
class Var(Term):
    """A variable occurrence ``x``."""

    name: str


@dataclass(frozen=True, slots=True)
class Star(Term):
    """The impredicative universe ``⋆``."""


@dataclass(frozen=True, slots=True)
class Box(Term):
    """The predicative universe ``□`` (the type of ``⋆``; untypable itself)."""


@dataclass(frozen=True, slots=True)
class Pi(Term):
    """Dependent *closure* type ``Π name:domain. codomain``.

    In CC-CC, inhabitants of Π are closures ⟨⟨code, env⟩⟩ (paper [Clo]), not
    λ-abstractions — there is no ``Lam`` node in this language.
    """

    name: str
    domain: Term
    codomain: Term


@dataclass(frozen=True, slots=True)
class CodeType(Term):
    """Dependent code type ``Code (env_name:env_type, arg_name:arg_type). result``."""

    env_name: str
    env_type: Term
    arg_name: str
    arg_type: Term
    result: Term


@dataclass(frozen=True, slots=True)
class CodeLam(Term):
    """Closed code ``λ (env_name:env_type, arg_name:arg_type). body``.

    Typing rule [Code] requires the body to check in the environment
    ``·, env_name:env_type, arg_name:arg_type`` — i.e. code is *closed*,
    which is the entire point of typed closure conversion.
    """

    env_name: str
    env_type: Term
    arg_name: str
    arg_type: Term
    body: Term


@dataclass(frozen=True, slots=True)
class Clo(Term):
    """A closure ``⟨⟨code, env⟩⟩``.

    Not a pair: think of it as a *delayed partial application* of ``code``
    to ``env`` (Section 3.2) — the typing rule [Clo] substitutes ``env``
    into the code type, exactly like dependent application.
    """

    code: Term
    env: Term


@dataclass(frozen=True, slots=True)
class App(Term):
    """Application ``fn arg`` — the elimination form for closures."""

    fn: Term
    arg: Term


@dataclass(frozen=True, slots=True)
class Let(Term):
    """Dependent let ``let name = bound : annot in body`` (δ/ζ as in CC)."""

    name: str
    bound: Term
    annot: Term
    body: Term


@dataclass(frozen=True, slots=True)
class Sigma(Term):
    """Strong dependent pair type ``Σ name:first. second``."""

    name: str
    first: Term
    second: Term


@dataclass(frozen=True, slots=True)
class Pair(Term):
    """Dependent pair ``⟨fst_val, snd_val⟩ as annot`` (annot a Σ type)."""

    fst_val: Term
    snd_val: Term
    annot: Term


@dataclass(frozen=True, slots=True)
class Fst(Term):
    """First projection ``fst pair``."""

    pair: Term


@dataclass(frozen=True, slots=True)
class Snd(Term):
    """Second projection ``snd pair``."""

    pair: Term


@dataclass(frozen=True, slots=True)
class Unit(Term):
    """The unit type ``1`` (terminates environment tuples; Figure 5)."""


@dataclass(frozen=True, slots=True)
class UnitVal(Term):
    """The unit value ``⟨⟩``."""


# Ground types (Section 5.2), mirrored from CC.


@dataclass(frozen=True, slots=True)
class Bool(Term):
    """The ground type of booleans."""


@dataclass(frozen=True, slots=True)
class BoolLit(Term):
    """``true`` or ``false``."""

    value: bool


@dataclass(frozen=True, slots=True)
class If(Term):
    """Non-dependent conditional."""

    cond: Term
    then_branch: Term
    else_branch: Term


@dataclass(frozen=True, slots=True)
class Nat(Term):
    """The ground type of natural numbers."""


@dataclass(frozen=True, slots=True)
class Zero(Term):
    """The numeral ``zero``."""


@dataclass(frozen=True, slots=True)
class Succ(Term):
    """Successor ``succ pred``."""

    pred: Term


@dataclass(frozen=True, slots=True)
class NatElim(Term):
    """Dependent eliminator for ``Nat``; its ``step`` is a *closure* here."""

    motive: Term
    base: Term
    step: Term
    target: Term


# --------------------------------------------------------------------------
# Construction helpers.
# --------------------------------------------------------------------------

_UNUSED = "_"


def arrow(domain: Term, codomain: Term) -> Pi:
    """Non-dependent closure type ``domain → codomain``."""
    return Pi(_UNUSED, domain, codomain)


def make_app(fn: Term, *args: Term) -> Term:
    """Left-nested application ``fn arg0 arg1 …``."""
    result = fn
    for arg in args:
        result = App(result, arg)
    return result


def app_spine(term: Term) -> tuple[Term, list[Term]]:
    """Decompose left-nested applications into ``(head, [args…])``."""
    args: list[Term] = []
    while isinstance(term, App):
        args.append(term.arg)
        term = term.fn
    args.reverse()
    return term, args


def nat_literal(value: int) -> Term:
    """Build the numeral ``succ^value zero``."""
    if value < 0:
        raise ValueError(f"nat_literal of negative value {value}")
    result: Term = Zero()
    for _ in range(value):
        result = Succ(result)
    return result


def nat_value(term: Term) -> int | None:
    """Inverse of :func:`nat_literal`; ``None`` if not a numeral."""
    count = 0
    while isinstance(term, Succ):
        count += 1
        term = term.pred
    if isinstance(term, Zero):
        return count
    return None


# --------------------------------------------------------------------------
# Generic traversal.
# --------------------------------------------------------------------------

#: (bound names in scope for the subterm, the subterm).  Multi-binder nodes
#: (code) list both names for the body.
Child = tuple[tuple[str, ...], Term]


def children(term: Term) -> list[Child]:
    """Immediate subterms with the names the parent binds in each.

    Derived from the kernel node specs registered below, so the binding
    structure has a single source of truth.
    """
    spec = LANGUAGE.spec(term)
    return [
        (tuple(getattr(term, b) for b in child.binders), getattr(term, child.attr))
        for child in spec.children
    ]


# --------------------------------------------------------------------------
# Kernel registration: binding structure of every node, used by the shared
# engines for free variables, substitution, α-equivalence, traversal, and
# hash-consing (see repro.kernel).  The two-binder code forms register their
# telescopic scoping: the environment binder scopes the argument annotation
# and the body/result; the argument binder scopes the body/result only.
# --------------------------------------------------------------------------

LANGUAGE = Language("cc-cc", Term, Var)
LANGUAGE.node(Var, data=("name",))
LANGUAGE.node(Star)
LANGUAGE.node(Box)
LANGUAGE.node(Pi, binders=("name",), scopes={"codomain": 1})
LANGUAGE.node(
    CodeType,
    binders=("env_name", "arg_name"),
    scopes={"arg_type": 1, "result": 2},
)
LANGUAGE.node(
    CodeLam,
    binders=("env_name", "arg_name"),
    scopes={"arg_type": 1, "body": 2},
)
LANGUAGE.node(Clo)
LANGUAGE.node(App)
LANGUAGE.node(Let, binders=("name",), scopes={"body": 1})
LANGUAGE.node(Sigma, binders=("name",), scopes={"second": 1})
LANGUAGE.node(Pair)
LANGUAGE.node(Fst)
LANGUAGE.node(Snd)
LANGUAGE.node(Unit)
LANGUAGE.node(UnitVal)
LANGUAGE.node(Bool)
LANGUAGE.node(BoolLit, data=("value",))
LANGUAGE.node(If)
LANGUAGE.node(Nat)
LANGUAGE.node(Zero)
LANGUAGE.node(Succ)
LANGUAGE.node(NatElim)


def free_vars(term: Term) -> set[str]:
    """The set of free variable names of ``term`` (a fresh, mutable copy).

    Computed once per node and cached by identity in the kernel; prefer
    :func:`cached_free_vars` when a shared immutable set suffices.
    """
    return set(_kernel_fv.free_vars(LANGUAGE, term))


def cached_free_vars(term: Term) -> frozenset[str]:
    """The kernel's cached free-variable set for ``term`` (shared, frozen)."""
    return _kernel_fv.free_vars(LANGUAGE, term)


def intern(term: Term) -> Term:
    """The canonical (hash-consed) representative of ``term``'s α-class.

    ``intern(a) is intern(b)`` exactly when ``a`` and ``b`` are α-equivalent.
    """
    return _kernel_intern_fn(LANGUAGE, term)


def hashcons(cls: type, *args) -> Term:
    """Hash-consing constructor: ``cls(*args)`` interned by structure."""
    return _kernel_build(LANGUAGE, cls, *args)


def subterms(term: Term) -> Iterator[Term]:
    """Pre-order iterator over ``term`` and all of its subterms (iterative)."""
    return _kernel_traverse.subterms(LANGUAGE, term)


def term_size(term: Term) -> int:
    """Number of AST nodes in ``term``."""
    return _kernel_traverse.term_size(LANGUAGE, term)
