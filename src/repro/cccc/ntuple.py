"""Dependent n-tuples and pattern lets — the Section 4 environment sugar.

The paper writes environments as dependent n-tuples ``⟨e…⟩ as Σ (x:A…)``
and opens them with pattern lets ``let ⟨x…⟩ = e′ in e``.  Both are sugar:

* the telescope type ``Σ (x0:A0, …, xn:An)`` is the nested strong pairs
  ``Σ x0:A0. (… (Σ xn:An. 1))`` terminated by the unit type;
* the tuple ``⟨e0, …, en⟩`` is nested pairs ``⟨e0, ⟨…, ⟨en, ⟨⟩⟩⟩⟩`` with
  each inner annotation instantiated with the values of earlier
  components (the typing rule for pairs substitutes the first component
  into the type of the second);
* the pattern let is a chain of ``let xi = fst (snd^i e′) : Ai in …``
  projections.

This module is the single place that elaborates the sugar, used by the
closure-conversion translation (Figure 9) and by tests.
"""

from __future__ import annotations

from repro.cccc.ast import (
    Fst,
    Let,
    Pair,
    Sigma,
    Snd,
    Term,
    Unit,
    UnitVal,
    Var,
)
from repro.cccc.subst import subst

__all__ = [
    "Telescope",
    "bind_env",
    "env_sigma",
    "env_tuple",
    "project",
    "tuple_values",
]

#: A dependent telescope: ordered (name, type) pairs; each type may mention
#: the names of *earlier* entries.
Telescope = list[tuple[str, Term]]


def env_sigma(telescope: Telescope) -> Term:
    """The environment type ``Σ (x0:A0, …, xn:An)`` as nested Σ's over 1."""
    result: Term = Unit()
    for name, type_ in reversed(telescope):
        result = Sigma(name, type_, result)
    return result


def env_tuple(telescope: Telescope, values: list[Term]) -> Term:
    """The environment tuple ``⟨v0, …, vn⟩ as Σ (x0:A0, …)``.

    ``values[i]`` is the term stored for telescope entry ``i``.  In the
    paper's [CC-Lam] the values are exactly the free variables
    ``⟨xi …⟩``; the general form (arbitrary values) is what substitution
    produces and what the compositionality property exercises.

    Each nested pair is annotated with its telescope suffix, with the
    values of earlier components substituted for their names — this is
    forced by the pair typing rule, which checks the second component at
    ``B[e1/x]``.
    """
    if len(telescope) != len(values):
        raise ValueError(
            f"telescope has {len(telescope)} entries but {len(values)} values given"
        )

    def build(index: int, instantiation: dict[str, Term]) -> Term:
        if index == len(telescope):
            return UnitVal()
        name = telescope[index][0]
        annot = subst(env_sigma(telescope[index:]), instantiation)
        rest = build(index + 1, {**instantiation, name: values[index]})
        return Pair(values[index], rest, annot)

    return build(0, {})


def project(env: Term, index: int) -> Term:
    """The ``index``-th component of an n-tuple: ``fst (snd^index env)``."""
    for _ in range(index):
        env = Snd(env)
    return Fst(env)


def bind_env(telescope: Telescope, env: Term, body: Term) -> Term:
    """The pattern let ``let ⟨x0, …, xn⟩ = env in body``.

    Elaborates to ``let x0 = fst env : A0 in … let xn = fst (snd^n env) :
    An in body``.  Later annotations ``Ai`` may mention earlier ``xj``;
    those occurrences are bound by the outer lets, whose *definitions*
    (δ-equivalence to the projections) make the chain type check.
    """
    result = body
    for index in range(len(telescope) - 1, -1, -1):
        name, type_ = telescope[index]
        result = Let(name, project(env, index), type_, result)
    return result


def tuple_values(term: Term) -> list[Term] | None:
    """Invert :func:`env_tuple`: the component list of a literal n-tuple.

    Returns ``None`` if ``term`` is not a nested-pair tuple ending in ⟨⟩.
    """
    values: list[Term] = []
    while isinstance(term, Pair):
        values.append(term.fst_val)
        term = term.snd_val
    if isinstance(term, UnitVal):
        return values
    return None
