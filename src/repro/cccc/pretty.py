"""Pretty printer for CC-CC terms (paper notation: ⟨⟨e, e′⟩⟩, Code, 1, ⟨⟩).

Like :mod:`repro.cc.pretty`, the renderer is iterative — driven by the
shared work-stack engine of :mod:`repro.common.render` — so deep terms
print without approaching the Python recursion limit.
"""

from __future__ import annotations

from repro.cccc.ast import (
    App,
    Bool,
    BoolLit,
    Box,
    Clo,
    CodeLam,
    CodeType,
    Fst,
    If,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Unit,
    UnitVal,
    Var,
    Zero,
    cached_free_vars,
)
from repro.common.render import render, succ_chain, wrap as _wrap

__all__ = ["pretty"]

_PREC_BINDER = 0
_PREC_ARROW = 1
_PREC_APP = 2
_PREC_ATOM = 3


def pretty(term: Term) -> str:
    """Render ``term`` as human-readable concrete syntax."""
    return render(term, _pieces, _PREC_BINDER)


def _pieces(term: Term, prec: int) -> list:
    """The fragments of ``term`` at ``prec``: strings and (subterm, prec)."""
    match term:
        case Var(name):
            return [name]
        case Star():
            return ["⋆"]
        case Box():
            return ["□"]
        case Unit():
            return ["1"]
        case UnitVal():
            return ["⟨⟩"]
        case Bool():
            return ["Bool"]
        case BoolLit(value):
            return ["true" if value else "false"]
        case Nat():
            return ["Nat"]
        case Zero():
            return ["0"]
        case Succ():
            depth, core = succ_chain(term, Succ)
            if isinstance(core, Zero):
                return [str(depth)]
            pieces = ["succ (" * (depth - 1), "succ ", (core, _PREC_ATOM), ")" * (depth - 1)]
            return _wrap(pieces, prec > _PREC_APP)
        case Pi(name, domain, codomain):
            if name == "_" or name not in cached_free_vars(codomain):
                pieces = [(domain, _PREC_APP), " -> ", (codomain, _PREC_ARROW)]
                return _wrap(pieces, prec > _PREC_ARROW)
            pieces = [
                f"Π ({name} : ",
                (domain, _PREC_BINDER),
                "). ",
                (codomain, _PREC_BINDER),
            ]
            return _wrap(pieces, prec > _PREC_BINDER)
        case CodeType(env_name, env_type, arg_name, arg_type, result):
            pieces = [
                f"Code ({env_name} : ",
                (env_type, _PREC_BINDER),
                f", {arg_name} : ",
                (arg_type, _PREC_BINDER),
                "). ",
                (result, _PREC_BINDER),
            ]
            return _wrap(pieces, prec > _PREC_BINDER)
        case CodeLam(env_name, env_type, arg_name, arg_type, body):
            pieces = [
                f"λ ({env_name} : ",
                (env_type, _PREC_BINDER),
                f", {arg_name} : ",
                (arg_type, _PREC_BINDER),
                "). ",
                (body, _PREC_BINDER),
            ]
            return _wrap(pieces, prec > _PREC_BINDER)
        case Clo(code, env):
            return ["⟨⟨", (code, _PREC_BINDER), ", ", (env, _PREC_BINDER), "⟩⟩"]
        case App(fn, arg):
            return _wrap([(fn, _PREC_APP), " ", (arg, _PREC_ATOM)], prec > _PREC_APP)
        case Let(name, bound, annot, body):
            pieces = [
                f"let {name} = ",
                (bound, _PREC_BINDER),
                " : ",
                (annot, _PREC_BINDER),
                " in ",
                (body, _PREC_BINDER),
            ]
            return _wrap(pieces, prec > _PREC_BINDER)
        case Sigma(name, first, second):
            pieces = [f"Σ ({name} : ", (first, _PREC_BINDER), "). ", (second, _PREC_BINDER)]
            return _wrap(pieces, prec > _PREC_BINDER)
        case Pair(fst_val, snd_val, annot):
            return [
                "⟨",
                (fst_val, _PREC_BINDER),
                ", ",
                (snd_val, _PREC_BINDER),
                "⟩ as ",
                (annot, _PREC_ATOM),
            ]
        case Fst(pair):
            return _wrap(["fst ", (pair, _PREC_ATOM)], prec > _PREC_APP)
        case Snd(pair):
            return _wrap(["snd ", (pair, _PREC_ATOM)], prec > _PREC_APP)
        case If(cond, then_branch, else_branch):
            pieces = [
                "if ",
                (cond, _PREC_BINDER),
                " then ",
                (then_branch, _PREC_BINDER),
                " else ",
                (else_branch, _PREC_BINDER),
            ]
            return _wrap(pieces, prec > _PREC_BINDER)
        case NatElim(motive, base, step, target):
            return [
                "natelim(",
                (motive, _PREC_BINDER),
                ", ",
                (base, _PREC_BINDER),
                ", ",
                (step, _PREC_BINDER),
                ", ",
                (target, _PREC_BINDER),
                ")",
            ]
        case _:
            raise TypeError(f"not a CC-CC term: {term!r}")
