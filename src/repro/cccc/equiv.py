"""Definitional equivalence for CC-CC (paper Figure 6).

CC-CC drops function η (there are no first-class functions) and replaces
it with the paper's η-principle for closures:

* [≡-Clo1]  if ``e1 ⊲* ⟨⟨λ (x′:A′, x:A). b, e′⟩⟩`` then ``e1 ≡ e2`` when
  ``Γ, x:A ⊢ b[e′/x′] ≡ e2 x``;
* [≡-Clo2]  symmetrically.

Operationally: *open* the closure — inline its environment into the code
body, leave the argument free — and compare against the other side applied
to that argument.  This is what makes two closures that differ only in how
much of the environment was inlined (the compositionality problem of
Section 5.1) definitionally equal.

Algorithm: normalize both sides, then α-compare with the Clo-rules applied
whenever either side is a closure with literal code.  Opening substitutes a
normal environment into a normal body, which can create new β/π redexes,
so opened bodies are re-normalized before the recursive comparison.
"""

from __future__ import annotations

from repro.cccc.ast import (
    App,
    BoolLit,
    Clo,
    CodeLam,
    CodeType,
    Fst,
    If,
    Let,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Succ,
    Term,
    Var,
)
from repro.cccc.context import Context
from repro.cccc.reduce import Budget, normalize
from repro.cccc.subst import subst
from repro.common.names import fresh

__all__ = ["equivalent", "norm_equal_clo"]


def equivalent(ctx: Context, left: Term, right: Term, budget: Budget | None = None) -> bool:
    """Decide ``Γ ⊢ left ≡ right`` in CC-CC."""
    if budget is None:
        budget = Budget()
    if left is right or left == right:
        return True
    left_nf = normalize(ctx, left, budget)
    right_nf = normalize(ctx, right, budget)
    return norm_equal_clo(left_nf, right_nf, budget)


def norm_equal_clo(left: Term, right: Term, budget: Budget | None = None) -> bool:
    """Compare two *normal forms* up to the closure η-rules."""
    if budget is None:
        budget = Budget()
    return _eq(left, right, {}, {}, [0], budget)


def _openable(term: Term) -> bool:
    """A closure whose code is literal, so [≡-Clo1/2] can fire."""
    return isinstance(term, Clo) and isinstance(term.code, CodeLam)


def _open(term: Clo, probe: str, budget: Budget) -> Term:
    """``b[e′/x′][probe/x]``, normalized (opening creates new redexes)."""
    code = term.code
    assert isinstance(code, CodeLam)
    body = subst(code.body, {code.env_name: term.env, code.arg_name: Var(probe)})
    return normalize(Context.empty(), body, budget)


def _apply_probe(term: Term, probe: str, budget: Budget) -> Term:
    """``term probe``, normalized (β-reduces if ``term`` is itself openable)."""
    return normalize(Context.empty(), App(term, Var(probe)), budget)


def _eq(
    left: Term,
    right: Term,
    env_l: dict[str, int],
    env_r: dict[str, int],
    counter: list[int],
    budget: Budget,
) -> bool:
    # Closure η first, mirroring [≡-Clo1] / [≡-Clo2].  When both sides are
    # openable this degenerates to comparing both opened bodies at a shared
    # fresh argument, which is the declarative closure-equivalence rule of
    # Section 3.2.  Each opening spends reduction budget, bounding the
    # comparison even on adversarial inputs.
    if _openable(left):
        budget.spend()
        probe = fresh("cloeta")
        assert isinstance(left, Clo)
        return _eq(
            _open(left, probe, budget),
            _apply_probe(right, probe, budget),
            env_l,
            env_r,
            counter,
            budget,
        )
    if _openable(right):
        budget.spend()
        probe = fresh("cloeta")
        assert isinstance(right, Clo)
        return _eq(
            _apply_probe(left, probe, budget),
            _open(right, probe, budget),
            env_l,
            env_r,
            counter,
            budget,
        )

    match left, right:
        case Var(a), Var(b):
            la, lb = env_l.get(a), env_r.get(b)
            if la is None and lb is None:
                return a == b
            return la is not None and la == lb
        case BoolLit(a), BoolLit(b):
            return a == b
        case Pi(n1, d1, c1), Pi(n2, d2, c2):
            if not _eq(d1, d2, env_l, env_r, counter, budget):
                return False
            return _eq_binder(n1, c1, n2, c2, env_l, env_r, counter, budget)
        case CodeType(en1, et1, an1, at1, r1), CodeType(en2, et2, an2, at2, r2):
            if not _eq(et1, et2, env_l, env_r, counter, budget):
                return False
            mid_l, mid_r = _bind(en1, en2, env_l, env_r, counter)
            if not _eq(at1, at2, mid_l, mid_r, counter, budget):
                return False
            inner_l, inner_r = _bind(an1, an2, mid_l, mid_r, counter)
            return _eq(r1, r2, inner_l, inner_r, counter, budget)
        case CodeLam(en1, et1, an1, at1, b1), CodeLam(en2, et2, an2, at2, b2):
            # No η for bare code: code is only ever eliminated through a
            # closure, so literal code values compare structurally.
            if not _eq(et1, et2, env_l, env_r, counter, budget):
                return False
            mid_l, mid_r = _bind(en1, en2, env_l, env_r, counter)
            if not _eq(at1, at2, mid_l, mid_r, counter, budget):
                return False
            inner_l, inner_r = _bind(an1, an2, mid_l, mid_r, counter)
            return _eq(b1, b2, inner_l, inner_r, counter, budget)
        case Clo(c1, e1), Clo(c2, e2):
            # Both closures with neutral code (otherwise the η cases above
            # fired): compare structurally.
            return _eq(c1, c2, env_l, env_r, counter, budget) and _eq(
                e1, e2, env_l, env_r, counter, budget
            )
        case App(f1, a1), App(f2, a2):
            return _eq(f1, f2, env_l, env_r, counter, budget) and _eq(
                a1, a2, env_l, env_r, counter, budget
            )
        case Sigma(n1, f1, s1), Sigma(n2, f2, s2):
            if not _eq(f1, f2, env_l, env_r, counter, budget):
                return False
            return _eq_binder(n1, s1, n2, s2, env_l, env_r, counter, budget)
        case Pair(f1, s1, _t1), Pair(f2, s2, _t2):
            return _eq(f1, f2, env_l, env_r, counter, budget) and _eq(
                s1, s2, env_l, env_r, counter, budget
            )
        case Fst(p1), Fst(p2):
            return _eq(p1, p2, env_l, env_r, counter, budget)
        case Snd(p1), Snd(p2):
            return _eq(p1, p2, env_l, env_r, counter, budget)
        case If(c1, t1, e1), If(c2, t2, e2):
            return (
                _eq(c1, c2, env_l, env_r, counter, budget)
                and _eq(t1, t2, env_l, env_r, counter, budget)
                and _eq(e1, e2, env_l, env_r, counter, budget)
            )
        case Succ(p1), Succ(p2):
            return _eq(p1, p2, env_l, env_r, counter, budget)
        case NatElim(m1, z1, s1, t1), NatElim(m2, z2, s2, t2):
            return (
                _eq(m1, m2, env_l, env_r, counter, budget)
                and _eq(z1, z2, env_l, env_r, counter, budget)
                and _eq(s1, s2, env_l, env_r, counter, budget)
                and _eq(t1, t2, env_l, env_r, counter, budget)
            )
        case Let(), _:
            raise AssertionError("normal forms contain no let")
        case _:
            return type(left) is type(right) and not getattr(left, "__slots__", ())


def _bind(
    name_l: str, name_r: str, env_l: dict[str, int], env_r: dict[str, int], counter: list[int]
) -> tuple[dict[str, int], dict[str, int]]:
    index = counter[0]
    counter[0] += 1
    new_l = dict(env_l)
    new_r = dict(env_r)
    new_l[name_l] = index
    new_r[name_r] = index
    return new_l, new_r


def _eq_binder(
    name_l: str,
    body_l: Term,
    name_r: str,
    body_r: Term,
    env_l: dict[str, int],
    env_r: dict[str, int],
    counter: list[int],
    budget: Budget,
) -> bool:
    """Compare two binder bodies at a shared de Bruijn level."""
    inner_l, inner_r = _bind(name_l, name_r, env_l, env_r, counter)
    return _eq(body_l, body_r, inner_l, inner_r, counter, budget)
