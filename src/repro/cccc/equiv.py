"""Definitional equivalence for CC-CC (paper Figure 6), decided incrementally.

CC-CC drops function η (there are no first-class functions) and replaces
it with the paper's η-principle for closures:

* [≡-Clo1]  if ``e1 ⊲* ⟨⟨λ (x′:A′, x:A). b, e′⟩⟩`` then ``e1 ≡ e2`` when
  ``Γ, x:A ⊢ b[e′/x′] ≡ e2 x``;
* [≡-Clo2]  symmetrically.

Operationally: *open* the closure — inline its environment into the code
body, leave the argument free — and compare against the other side applied
to that argument.  This is what makes two closures that differ only in how
much of the environment was inlined (the compositionality problem of
Section 5.1) definitionally equal.

Algorithm: the shared engine of :mod:`repro.kernel.convert` weak-head
normalizes each side lazily with pointer/intern short-circuits at every
recursion point; this module contributes the closure rules.  The closure η
hook fires whenever either side is a closure with literal code — the
``prepare`` hook weak-head-normalizes a closure's code position first, so a
closure over a δ-defined code variable still opens.  Opened bodies are
*not* re-normalized eagerly (the old implementation normalized them fully);
the engine's lazy whnf reduces the projection redexes opening creates only
as far as the comparison actually needs.  Each opening spends reduction
budget, bounding the comparison even on adversarial inputs.

Results are memoized per (left identity, right identity, context
definitions) with exact fuel replay, mirroring the normalization cache.
"""

from __future__ import annotations

from repro.cccc.ast import (
    LANGUAGE,
    App,
    Bool,
    BoolLit,
    Box,
    Clo,
    CodeLam,
    Nat,
    Pair,
    Star,
    Term,
    Unit,
    UnitVal,
    Var,
    Zero,
)
from repro.cccc.context import Context
from repro.cccc.reduce import Budget, whnf
from repro.cccc.subst import subst
from repro.common.names import fresh
from repro.kernel.convert import ConversionRules, convert
from repro.kernel.judgment import judgment_cache
from repro.kernel.memo import context_token

__all__ = ["equivalent", "equivalent_structural", "norm_equal_clo"]


def _openable(term: Term) -> bool:
    """A closure whose code is literal, so [≡-Clo1/2] can fire."""
    return isinstance(term, Clo) and isinstance(term.code, CodeLam)


def _open(term: Clo, probe: Var) -> Term:
    """``b[e′/x′][probe/x]`` — *not* normalized; the engine reduces lazily."""
    code = term.code
    assert isinstance(code, CodeLam)
    return subst(code.body, {code.env_name: term.env, code.arg_name: probe})


class _CCCCRules(ConversionRules):
    """CC-CC hooks: closure η, code exposure, pair annotations ignored."""

    lang = LANGUAGE
    irrelevant = {Pair: ("annot",)}
    whnf = staticmethod(whnf)

    def prepare(self, ctx, term, budget):
        # Closures are weak-head normal, but their code position may hide a
        # CodeLam behind δ/projections; expose it so the η hook can open.
        if isinstance(term, Clo):
            code = whnf(ctx, term.code, budget)
            if code is not term.code:
                return Clo(code, term.env)
        return term

    def eta(self, left, right, ctx_l, ctx_r, scope, budget):
        # [≡-Clo1] / [≡-Clo2].  When both sides are openable this
        # degenerates to comparing both opened bodies at a shared fresh
        # argument (the whnf of ``right probe`` β-fires the right closure),
        # which is the declarative closure-equivalence rule of Section 3.2.
        if _openable(left):
            budget.spend()
            probe = Var(fresh("cloeta"))
            return [(_open(left, probe), App(right, probe), ctx_l, ctx_r, scope)]
        if _openable(right):
            budget.spend()
            probe = Var(fresh("cloeta"))
            return [(App(left, probe), _open(right, probe), ctx_l, ctx_r, scope)]
        return None


class _NoCloEtaRules(_CCCCRules):
    """The ablation variant: [≡-Clo1/2] disabled, closures compare
    structurally.  Used by :mod:`repro.closconv.ablation` to demonstrate
    that compositionality (Lemma 5.1) *needs* the closure η-principle."""

    def eta(self, left, right, ctx_l, ctx_r, scope, budget):
        return None


_RULES = _CCCCRules()
_NO_CLO_ETA_RULES = _NoCloEtaRules()

#: Irreducible leaves: comparisons between them are O(1) in the engine, so
#: the memo round-trip would cost more than just deciding.
_LEAF = (Star, Box, Unit, UnitVal, Bool, BoolLit, Nat, Zero)


def equivalent(ctx: Context, left: Term, right: Term, budget: Budget | None = None) -> bool:
    """Decide ``Γ ⊢ left ≡ right`` in CC-CC."""
    if budget is None:
        budget = Budget()
    if left is right:
        return True
    if isinstance(left, _LEAF) and isinstance(right, _LEAF):
        return convert(_RULES, ctx, ctx, left, right, budget)
    cache = judgment_cache()
    token = context_token(ctx)
    hit = cache.lookup("cccc.equiv", left, right, token)
    if hit is not None:
        verdict, steps = hit
        budget.charge(steps)
        return verdict
    before = budget.spent
    verdict = convert(_RULES, ctx, ctx, left, right, budget)
    cache.store("cccc.equiv", left, right, token, verdict, budget.spent - before)
    return verdict


def norm_equal_clo(left: Term, right: Term, budget: Budget | None = None) -> bool:
    """Compare two *normal forms* up to the closure η-rules.

    Compatibility wrapper over the incremental engine under the empty
    context (normal forms have no δ-redexes left to unfold).
    """
    if budget is None:
        budget = Budget()
    empty = Context.empty()
    return convert(_RULES, empty, empty, left, right, budget)


def equivalent_structural(
    ctx: Context, left: Term, right: Term, budget: Budget | None = None
) -> bool:
    """CC-CC ≡ with [≡-Clo1/2] disabled (the ablation comparator)."""
    if budget is None:
        budget = Budget()
    return convert(_NO_CLO_ETA_RULES, ctx, ctx, left, right, budget)
