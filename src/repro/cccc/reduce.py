"""Reduction and normalization for CC-CC (paper Figure 6).

CC-CC inherits δ, ζ, π1/π2 (and the ground-type ι-rules) from CC.  The β
rule changes: code cannot be applied directly, only through a closure::

    ⟨⟨λ (x′:A′, x:A). e1, e′⟩⟩ e  ⊲β  e1[e′/x′][e/x]

Closures themselves are values; their code position only matters when the
closure is applied.

Like :mod:`repro.cc.reduce`, two engines decide the same relation: the NbE
environment machine of :mod:`repro.kernel.nbe` behind the public
:func:`whnf`/:func:`normalize` (closure β binds environment and argument in
parallel, as ``_beta`` does), and the substitution engine kept verbatim as
:func:`whnf_subst`/:func:`normalize_subst` — the differential oracle and
the counting path of :func:`normalize_counting`.  The engines memoize under
distinct cache kinds and never share entries.
"""

from __future__ import annotations

from repro.cccc.ast import (
    LANGUAGE,
    App,
    Bool,
    BoolLit,
    Box,
    Clo,
    CodeLam,
    CodeType,
    Fst,
    If,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Unit,
    UnitVal,
    Var,
    Zero,
    make_app,
)
from repro.cccc.context import Context
from repro.cccc.subst import subst, subst1
from repro.kernel.budget import DEFAULT_FUEL, Budget
from repro.kernel.memo import head_is_weak_normal, memoized_reduction, normalization_cache
from repro.kernel.nbe import NbeSpec, nbe_normalize, nbe_whnf

__all__ = [
    "DEFAULT_FUEL",
    "Budget",
    "head_reducts",
    "normalize",
    "normalize_counting",
    "normalize_subst",
    "reducts",
    "whnf",
    "whnf_subst",
]


def _beta(clo: Clo, code: CodeLam, arg: Term) -> Term:
    """The closure β-contractum ``body[env/env_name][arg/arg_name]``.

    The two substitutions are performed in *parallel*: sequential
    application would let the second capture free variables of ``clo.env``
    that happen to share the argument binder's name (the same hazard the
    [Clo] typing rule guards against by renaming).  When the code shadows
    ``env_name`` with ``arg_name``, the argument mapping wins, matching the
    binder scoping of ``CodeLam``.
    """
    return subst(code.body, {code.env_name: clo.env, code.arg_name: arg})


#: Node classes a whnf step can act on; anything else is already weak-head
#: normal, so whnf returns it without touching the memo cache.  MUST list
#: exactly the head classes matched by the `_whnf` loop below — a class
#: with a reduction arm missing here would be returned unreduced
#: (tests/test_kernel.py guards this with a no-reducts-in-normal-forms check).
_WHNF_ACTIVE = (Var, Let, App, Fst, Snd, If, NatElim)

#: Leaf classes whose normal form is always themselves (no children, no δ).
_NF_TRIVIAL = (Star, Box, Unit, UnitVal, Bool, BoolLit, Nat, Zero)

#: The NbE wiring for CC-CC: β applies a closure whose code position
#: weak-head-exposes a literal ``CodeLam``.
_NBE = NbeSpec(
    lang=LANGUAGE,
    var_cls=Var,
    let_cls=Let,
    app_cls=App,
    fst_cls=Fst,
    snd_cls=Snd,
    pair_cls=Pair,
    if_cls=If,
    boollit_cls=BoolLit,
    natelim_cls=NatElim,
    zero_cls=Zero,
    succ_cls=Succ,
    trivial=_NF_TRIVIAL,
    clo_cls=Clo,
    codelam_cls=CodeLam,
)


def _whnf_head_normal(ctx: Context, term: Term) -> bool:
    return head_is_weak_normal(ctx, term, Var, _WHNF_ACTIVE)


def _nbe_whnf_compute(ctx: Context, term: Term, budget: Budget) -> Term:
    return nbe_whnf(_NBE, ctx, term, budget)


def whnf(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """Reduce ``term`` to weak-head normal form under ``ctx`` (NbE engine).

    Results are memoized per (term identity, context definitions); hits
    replay the originally recorded fuel cost into ``budget``.
    """
    if budget is None:
        budget = Budget()
    if _whnf_head_normal(ctx, term):
        return term
    return memoized_reduction(ctx, term, budget, "cccc.whnf", _nbe_whnf_compute)


def whnf_subst(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """:func:`whnf` on the substitution engine (the differential oracle)."""
    if budget is None:
        budget = Budget()
    if _whnf_head_normal(ctx, term):
        return term
    return memoized_reduction(ctx, term, budget, "cccc.whnf.subst", _whnf)


def _whnf(ctx: Context, term: Term, budget: Budget) -> Term:
    while True:
        match term:
            case Var(name):
                binding = ctx.lookup(name)
                if binding is not None and binding.definition is not None:
                    budget.spend()
                    term = binding.definition
                    continue
                return term
            case Let(name, bound, _annot, body):
                budget.spend()
                term = subst1(body, name, bound)
                continue
            case App(fn, arg):
                fn_whnf = whnf_subst(ctx, fn, budget)
                if isinstance(fn_whnf, Clo):
                    code_whnf = whnf_subst(ctx, fn_whnf.code, budget)
                    if isinstance(code_whnf, CodeLam):
                        budget.spend()
                        term = _beta(fn_whnf, code_whnf, arg)
                        continue
                    if code_whnf is not fn_whnf.code:
                        fn_whnf = Clo(code_whnf, fn_whnf.env)
                return term if fn_whnf is fn else App(fn_whnf, arg)
            case Fst(pair):
                pair_whnf = whnf_subst(ctx, pair, budget)
                if isinstance(pair_whnf, Pair):
                    budget.spend()
                    term = pair_whnf.fst_val
                    continue
                return term if pair_whnf is pair else Fst(pair_whnf)
            case Snd(pair):
                pair_whnf = whnf_subst(ctx, pair, budget)
                if isinstance(pair_whnf, Pair):
                    budget.spend()
                    term = pair_whnf.snd_val
                    continue
                return term if pair_whnf is pair else Snd(pair_whnf)
            case If(cond, then_branch, else_branch):
                cond_whnf = whnf_subst(ctx, cond, budget)
                if isinstance(cond_whnf, BoolLit):
                    budget.spend()
                    term = then_branch if cond_whnf.value else else_branch
                    continue
                return term if cond_whnf is cond else If(cond_whnf, then_branch, else_branch)
            case NatElim(motive, base, step, target):
                target_whnf = whnf_subst(ctx, target, budget)
                if isinstance(target_whnf, Zero):
                    budget.spend()
                    term = base
                    continue
                if isinstance(target_whnf, Succ):
                    budget.spend()
                    pred = target_whnf.pred
                    term = make_app(step, pred, NatElim(motive, base, step, pred))
                    continue
                if target_whnf is target:
                    return term
                return NatElim(motive, base, step, target_whnf)
            case _:
                return term


def normalize(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """Fully normalize ``term`` under ``ctx`` (NbE engine).

    Environment-independent subcomputations are memoized per (term
    identity, context definitions) with fuel replay on hits.
    """
    if budget is None:
        budget = Budget()
    if isinstance(term, _NF_TRIVIAL):
        return term
    if isinstance(term, Var):
        binding = ctx.lookup(term.name)
        if binding is None or binding.definition is None:
            return term
    return nbe_normalize(_NBE, ctx, term, budget, normalization_cache(), "cccc.nf")


def normalize_subst(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """:func:`normalize` on the substitution engine (the counting oracle)."""
    if budget is None:
        budget = Budget()
    if isinstance(term, _NF_TRIVIAL):
        return term
    if isinstance(term, Var):
        binding = ctx.lookup(term.name)
        if binding is None or binding.definition is None:
            return term
    return memoized_reduction(ctx, term, budget, "cccc.nf.subst", _normalize)


def _normalize(ctx: Context, term: Term, budget: Budget) -> Term:
    term = whnf_subst(ctx, term, budget)
    match term:
        case Pi(name, domain, codomain):
            inner = ctx.extend(name, domain)
            return Pi(name, normalize_subst(ctx, domain, budget), normalize_subst(inner, codomain, budget))
        case CodeType(env_name, env_type, arg_name, arg_type, result):
            env_ctx = ctx.extend(env_name, env_type)
            arg_ctx = env_ctx.extend(arg_name, arg_type)
            return CodeType(
                env_name,
                normalize_subst(ctx, env_type, budget),
                arg_name,
                normalize_subst(env_ctx, arg_type, budget),
                normalize_subst(arg_ctx, result, budget),
            )
        case CodeLam(env_name, env_type, arg_name, arg_type, body):
            env_ctx = ctx.extend(env_name, env_type)
            arg_ctx = env_ctx.extend(arg_name, arg_type)
            return CodeLam(
                env_name,
                normalize_subst(ctx, env_type, budget),
                arg_name,
                normalize_subst(env_ctx, arg_type, budget),
                normalize_subst(arg_ctx, body, budget),
            )
        case Clo(code, env):
            return Clo(normalize_subst(ctx, code, budget), normalize_subst(ctx, env, budget))
        case App(fn, arg):
            return App(normalize_subst(ctx, fn, budget), normalize_subst(ctx, arg, budget))
        case Sigma(name, first, second):
            inner = ctx.extend(name, first)
            return Sigma(name, normalize_subst(ctx, first, budget), normalize_subst(inner, second, budget))
        case Pair(fst_val, snd_val, annot):
            return Pair(
                normalize_subst(ctx, fst_val, budget),
                normalize_subst(ctx, snd_val, budget),
                normalize_subst(ctx, annot, budget),
            )
        case Fst(pair):
            return Fst(normalize_subst(ctx, pair, budget))
        case Snd(pair):
            return Snd(normalize_subst(ctx, pair, budget))
        case If(cond, then_branch, else_branch):
            return If(
                normalize_subst(ctx, cond, budget),
                normalize_subst(ctx, then_branch, budget),
                normalize_subst(ctx, else_branch, budget),
            )
        case Succ(pred):
            return Succ(normalize_subst(ctx, pred, budget))
        case NatElim(motive, base, step, target):
            return NatElim(
                normalize_subst(ctx, motive, budget),
                normalize_subst(ctx, base, budget),
                normalize_subst(ctx, step, budget),
                normalize_subst(ctx, target, budget),
            )
        case _:
            return term


def normalize_counting(ctx: Context, term: Term, fuel: int = DEFAULT_FUEL) -> tuple[Term, int]:
    """Normalize and report the number of reduction steps taken."""
    budget = Budget(remaining=fuel)
    result = normalize_subst(ctx, term, budget)
    return result, budget.spent


# --------------------------------------------------------------------------
# The one-step relation.
# --------------------------------------------------------------------------


def head_reducts(ctx: Context, term: Term) -> list[Term]:
    """Results of applying a reduction axiom at the root (≤ 1 result)."""
    match term:
        case Var(name):
            binding = ctx.lookup(name)
            if binding is not None and binding.definition is not None:
                return [binding.definition]
            return []
        case Let(name, bound, _annot, body):
            return [subst1(body, name, bound)]
        case App(Clo(CodeLam() as code, _env) as clo, arg):
            return [_beta(clo, code, arg)]
        case Fst(Pair(fst_val, _snd_val, _annot)):
            return [fst_val]
        case Snd(Pair(_fst_val, snd_val, _annot)):
            return [snd_val]
        case If(BoolLit(value), then_branch, else_branch):
            return [then_branch if value else else_branch]
        case NatElim(_motive, base, _step, Zero()):
            return [base]
        case NatElim(motive, base, step, Succ(pred)):
            return [make_app(step, pred, NatElim(motive, base, step, pred))]
        case _:
            return []


def reducts(ctx: Context, term: Term) -> list[Term]:
    """All one-step reducts (contextual closure of the axioms)."""
    results = list(head_reducts(ctx, term))
    match term:
        case Pi(name, domain, codomain):
            results += [Pi(name, d, codomain) for d in reducts(ctx, domain)]
            inner = ctx.extend(name, domain)
            results += [Pi(name, domain, c) for c in reducts(inner, codomain)]
        case CodeType(env_name, env_type, arg_name, arg_type, result):
            results += [
                CodeType(env_name, t, arg_name, arg_type, result) for t in reducts(ctx, env_type)
            ]
            env_ctx = ctx.extend(env_name, env_type)
            results += [
                CodeType(env_name, env_type, arg_name, t, result)
                for t in reducts(env_ctx, arg_type)
            ]
            arg_ctx = env_ctx.extend(arg_name, arg_type)
            results += [
                CodeType(env_name, env_type, arg_name, arg_type, r)
                for r in reducts(arg_ctx, result)
            ]
        case CodeLam(env_name, env_type, arg_name, arg_type, body):
            results += [
                CodeLam(env_name, t, arg_name, arg_type, body) for t in reducts(ctx, env_type)
            ]
            env_ctx = ctx.extend(env_name, env_type)
            results += [
                CodeLam(env_name, env_type, arg_name, t, body) for t in reducts(env_ctx, arg_type)
            ]
            arg_ctx = env_ctx.extend(arg_name, arg_type)
            results += [
                CodeLam(env_name, env_type, arg_name, arg_type, b) for b in reducts(arg_ctx, body)
            ]
        case Clo(code, env):
            results += [Clo(c, env) for c in reducts(ctx, code)]
            results += [Clo(code, e) for e in reducts(ctx, env)]
        case App(fn, arg):
            results += [App(f, arg) for f in reducts(ctx, fn)]
            results += [App(fn, a) for a in reducts(ctx, arg)]
        case Let(name, bound, annot, body):
            results += [Let(name, b, annot, body) for b in reducts(ctx, bound)]
            results += [Let(name, bound, a, body) for a in reducts(ctx, annot)]
            inner = ctx.define(name, bound, annot)
            results += [Let(name, bound, annot, b) for b in reducts(inner, body)]
        case Sigma(name, first, second):
            results += [Sigma(name, f, second) for f in reducts(ctx, first)]
            inner = ctx.extend(name, first)
            results += [Sigma(name, first, s) for s in reducts(inner, second)]
        case Pair(fst_val, snd_val, annot):
            results += [Pair(f, snd_val, annot) for f in reducts(ctx, fst_val)]
            results += [Pair(fst_val, s, annot) for s in reducts(ctx, snd_val)]
            results += [Pair(fst_val, snd_val, a) for a in reducts(ctx, annot)]
        case Fst(pair):
            results += [Fst(p) for p in reducts(ctx, pair)]
        case Snd(pair):
            results += [Snd(p) for p in reducts(ctx, pair)]
        case If(cond, then_branch, else_branch):
            results += [If(c, then_branch, else_branch) for c in reducts(ctx, cond)]
            results += [If(cond, t, else_branch) for t in reducts(ctx, then_branch)]
            results += [If(cond, then_branch, e) for e in reducts(ctx, else_branch)]
        case Succ(pred):
            results += [Succ(p) for p in reducts(ctx, pred)]
        case NatElim(motive, base, step, target):
            results += [NatElim(m, base, step, target) for m in reducts(ctx, motive)]
            results += [NatElim(motive, b, step, target) for b in reducts(ctx, base)]
            results += [NatElim(motive, base, s, target) for s in reducts(ctx, step)]
            results += [NatElim(motive, base, step, t) for t in reducts(ctx, target)]
        case _:
            pass
    return results
