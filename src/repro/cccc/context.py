"""Typing environments Γ for CC-CC.

Same telescope structure as CC (assumptions and definitions); see
:mod:`repro.common.telescope`.
"""

from repro.common.telescope import Binding, Context

__all__ = ["Binding", "Context"]
