"""The CC-CC type checker (paper Figure 7).

The two rules that carry the weight of the paper:

* **[Code]** — code ``λ (x′:A′, x:A). e`` checks its body in the
  environment ``·, x′:A′, x:A`` — *the empty context extended only with
  the two parameters*.  This is the static, machine-checked guarantee
  that closure conversion produced closed code.

* **[Clo]** — a closure ``⟨⟨e, e′⟩⟩`` where ``e : Code (x′:A′, x:A). B``
  and ``e′ : A′`` has type ``Π x:A[e′/x′]. B[e′/x′]``: the environment is
  substituted into the type, exactly like dependent application.  This is
  what synchronizes the (open) closure type with the (closed) code type
  and makes the translation type preserving.

``Code`` formation ([T-Code-⋆]/[T-Code-□]) mirrors Π: impredicative in ⋆,
predicative at □.  Everything else is inherited from CC — including the
judgment-level memoization of :mod:`repro.kernel.judgment`: every
``infer``/``check``/``infer_universe`` result is cached per (term
identity, visible context bindings) with exact fuel replay into the
threaded :class:`Budget`, and failures are never cached so errors
re-derive identically.
"""

from __future__ import annotations

from repro.cccc.ast import (
    App,
    Bool,
    BoolLit,
    Box,
    Clo,
    CodeLam,
    CodeType,
    Fst,
    If,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Unit,
    UnitVal,
    Var,
    Zero,
    cached_free_vars,
)
from repro.cccc.context import Context
from repro.cccc.equiv import equivalent
from repro.cccc.pretty import pretty
from repro.cccc.reduce import Budget, whnf
from repro.cccc.subst import rename, subst1
from repro.common.errors import TypeCheckError
from repro.common.names import fresh
from repro.kernel.judgment import judgment_cache, typing_token

__all__ = ["check", "check_context", "infer", "infer_universe", "well_typed"]

# Shared leaf instances.  check/equivalent memo keys are identity-based, so
# passing one stable object for the ubiquitous ground types makes those
# entries hittable instead of pinning a fresh leaf term per call.
_STAR = Star()
_BOX = Box()
_UNIT = Unit()
_NAT = Nat()
_BOOL = Bool()
_ZERO = Zero()


def infer(ctx: Context, term: Term, budget: Budget | None = None) -> Term:
    """Synthesize the type of ``term`` under ``ctx`` (judgment Γ ⊢ e : t)."""
    if budget is None:
        budget = Budget()
    # O(1) judgments skip the memo round-trip: a cache entry would cost
    # more than re-deriving the axiom (and replays zero steps either way).
    match term:
        case Var(name):
            binding = ctx.lookup(name)
            if binding is None:
                raise TypeCheckError(f"unbound variable {name!r}")
            return binding.type_
        case Star():
            return _BOX
        case Unit() | Bool() | Nat():
            return _STAR
        case UnitVal():
            return _UNIT
        case BoolLit():
            return _BOOL
        case Zero():
            return _NAT
    cache = judgment_cache()
    token = typing_token(ctx)
    hit = cache.lookup("cccc.infer", term, None, token)
    if hit is not None:
        result, steps = hit
        budget.charge(steps)
        return result
    before = budget.spent
    result = _infer(ctx, term, budget)
    cache.store("cccc.infer", term, None, token, result, budget.spent - before)
    return result


def _infer(ctx: Context, term: Term, budget: Budget) -> Term:
    # Leaf axioms (⋆, [Var], Unit and the ground types) are decided by
    # infer()'s fast path and never reach this function.
    match term:
        case Box():
            raise TypeCheckError("□ has no type (it is not a valid term)")
        case Pi(name, domain, codomain):
            infer_universe(ctx, domain, budget)
            return infer_universe(ctx.extend(name, domain), codomain, budget)
        case CodeType(env_name, env_type, arg_name, arg_type, result):
            infer_universe(ctx, env_type, budget)
            env_ctx = ctx.extend(env_name, env_type)
            infer_universe(env_ctx, arg_type, budget)
            arg_ctx = env_ctx.extend(arg_name, arg_type)
            return infer_universe(arg_ctx, result, budget)  # [T-Code-⋆] / [T-Code-□]
        case CodeLam(env_name, env_type, arg_name, arg_type, body):
            # [Code]: the body checks under the *empty* environment — this
            # is the static closedness guarantee.
            empty = Context.empty()
            stray = cached_free_vars(term)
            if stray:
                raise TypeCheckError(
                    f"code is not closed: free variables {sorted(stray)}"
                ).with_note(f"checking {pretty(term)}")
            infer_universe(empty, env_type, budget)
            env_ctx = empty.extend(env_name, env_type)
            infer_universe(env_ctx, arg_type, budget)
            arg_ctx = env_ctx.extend(arg_name, arg_type)
            result = infer(arg_ctx, body, budget)
            return CodeType(env_name, env_type, arg_name, arg_type, result)
        case Clo(code, env):
            code_type = whnf(ctx, infer(ctx, code, budget), budget)
            if not isinstance(code_type, CodeType):
                raise TypeCheckError(
                    f"closure over non-code of type {pretty(code_type)}"
                ).with_note(f"checking {pretty(term)}")
            check(ctx, env, code_type.env_type, budget)
            # [Clo]: Π x : A[e′/x′]. B[e′/x′].  Rename the argument binder
            # if the environment value happens to mention a variable with
            # the same name (the substitution is under the Π binder).
            arg_name = code_type.arg_name
            arg_type = code_type.arg_type
            result = code_type.result
            if arg_name in cached_free_vars(env):
                renamed = fresh(arg_name)
                result = rename(result, arg_name, renamed)
                arg_name = renamed
            return Pi(
                arg_name,
                subst1(arg_type, code_type.env_name, env),
                subst1(result, code_type.env_name, env),
            )
        case App(fn, arg):
            fn_type = whnf(ctx, infer(ctx, fn, budget), budget)
            if not isinstance(fn_type, Pi):
                raise TypeCheckError(
                    f"application head has non-Π type {pretty(fn_type)}"
                ).with_note(f"checking {pretty(term)}")
            check(ctx, arg, fn_type.domain, budget)
            return subst1(fn_type.codomain, fn_type.name, arg)
        case Let(name, bound, annot, body):
            infer_universe(ctx, annot, budget)
            check(ctx, bound, annot, budget)
            body_type = infer(ctx.define(name, bound, annot), body, budget)
            return subst1(body_type, name, bound)
        case Sigma(name, first, second):
            first_universe = infer_universe(ctx, first, budget)
            second_universe = infer_universe(ctx.extend(name, first), second, budget)
            if isinstance(first_universe, Star) and isinstance(second_universe, Star):
                return Star()
            return Box()
        case Pair(fst_val, snd_val, annot):
            infer_universe(ctx, annot, budget)
            annot_whnf = whnf(ctx, annot, budget)
            if not isinstance(annot_whnf, Sigma):
                raise TypeCheckError(
                    f"pair annotation {pretty(annot)} is not a Σ type"
                ).with_note(f"checking {pretty(term)}")
            check(ctx, fst_val, annot_whnf.first, budget)
            check(ctx, snd_val, subst1(annot_whnf.second, annot_whnf.name, fst_val), budget)
            return annot
        case Fst(pair):
            pair_type = whnf(ctx, infer(ctx, pair, budget), budget)
            if not isinstance(pair_type, Sigma):
                raise TypeCheckError(f"fst of non-Σ type {pretty(pair_type)}").with_note(
                    f"checking {pretty(term)}"
                )
            return pair_type.first
        case Snd(pair):
            pair_type = whnf(ctx, infer(ctx, pair, budget), budget)
            if not isinstance(pair_type, Sigma):
                raise TypeCheckError(f"snd of non-Σ type {pretty(pair_type)}").with_note(
                    f"checking {pretty(term)}"
                )
            return subst1(pair_type.second, pair_type.name, Fst(pair))
        case Succ(pred):
            check(ctx, pred, _NAT, budget)
            return _NAT
        case If(cond, then_branch, else_branch):
            check(ctx, cond, _BOOL, budget)
            then_type = infer(ctx, then_branch, budget)
            check(ctx, else_branch, then_type, budget)
            return then_type
        case NatElim(motive, base, step, target):
            _check_motive(ctx, motive, budget)
            check(ctx, target, _NAT, budget)
            check(ctx, base, App(motive, _ZERO), budget)
            check(ctx, step, _step_type(motive), budget)
            return App(motive, target)
        case _:
            raise TypeCheckError(f"not a CC-CC term: {term!r}")


def _check_motive(ctx: Context, motive: Term, budget: Budget) -> None:
    """Require ``motive : Π _:Nat. U`` for some universe ``U``."""
    motive_type = whnf(ctx, infer(ctx, motive, budget), budget)
    if not isinstance(motive_type, Pi):
        raise TypeCheckError(f"natelim motive has non-Π type {pretty(motive_type)}")
    if not equivalent(ctx, motive_type.domain, _NAT, budget):
        raise TypeCheckError(
            f"natelim motive domain {pretty(motive_type.domain)} is not Nat"
        )
    inner = ctx.extend(motive_type.name, _NAT)
    codomain = whnf(inner, motive_type.codomain, budget)
    if not isinstance(codomain, (Star, Box)):
        raise TypeCheckError(f"natelim motive codomain {pretty(codomain)} is not a universe")


def _step_type(motive: Term) -> Term:
    """``Π n:Nat. Π ih:(motive n). motive (succ n)`` (a closure type here)."""
    n = fresh("n")
    ih = fresh("ih")
    return Pi(n, _NAT, Pi(ih, App(motive, Var(n)), App(motive, Succ(Var(n)))))


def check(ctx: Context, term: Term, expected: Term, budget: Budget | None = None) -> None:
    """Check ``Γ ⊢ term : expected`` (inference + [Conv])."""
    if budget is None:
        budget = Budget()
    cache = judgment_cache()
    token = typing_token(ctx)
    hit = cache.lookup("cccc.check", term, expected, token)
    if hit is not None:
        budget.charge(hit[1])
        return
    before = budget.spent
    actual = infer(ctx, term, budget)
    if not equivalent(ctx, actual, expected, budget):
        raise TypeCheckError(
            f"type mismatch: term {pretty(term)}\n"
            f"  has type      {pretty(actual)}\n"
            f"  but expected  {pretty(expected)}"
        )
    cache.store("cccc.check", term, expected, token, True, budget.spent - before)


def infer_universe(ctx: Context, type_: Term, budget: Budget | None = None) -> Star | Box:
    """Require ``type_`` to be a type; return its universe (⋆ or □)."""
    if budget is None:
        budget = Budget()
    cache = judgment_cache()
    token = typing_token(ctx)
    hit = cache.lookup("cccc.universe", type_, None, token)
    if hit is not None:
        sort, steps = hit
        budget.charge(steps)
        return sort
    before = budget.spent
    sort = whnf(ctx, infer(ctx, type_, budget), budget)
    if not isinstance(sort, (Star, Box)):
        raise TypeCheckError(f"expected a type but {pretty(type_)} has type {pretty(sort)}")
    cache.store("cccc.universe", type_, None, token, sort, budget.spent - before)
    return sort


def well_typed(ctx: Context, term: Term, budget: Budget | None = None) -> bool:
    """Does ``term`` have *some* type under ``ctx``?"""
    try:
        infer(ctx, term, budget)
    except TypeCheckError:
        return False
    return True


def check_context(ctx: Context, budget: Budget | None = None) -> None:
    """Check well-formedness ``⊢ Γ``."""
    if budget is None:
        budget = Budget()
    prefix = Context.empty()
    for binding in ctx:
        infer_universe(prefix, binding.type_, budget)
        if binding.definition is not None:
            check(prefix, binding.definition, binding.type_, budget)
            prefix = prefix.define(binding.name, binding.definition, binding.type_)
        else:
            prefix = prefix.extend(binding.name, binding.type_)
