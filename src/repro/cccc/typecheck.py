"""The CC-CC type checker (paper Figure 7).

The two rules that carry the weight of the paper:

* **[Code]** — code ``λ (x′:A′, x:A). e`` checks its body in the
  environment ``·, x′:A′, x:A`` — *the empty context extended only with
  the two parameters*.  This is the static, machine-checked guarantee
  that closure conversion produced closed code.

* **[Clo]** — a closure ``⟨⟨e, e′⟩⟩`` where ``e : Code (x′:A′, x:A). B``
  and ``e′ : A′`` has type ``Π x:A[e′/x′]. B[e′/x′]``: the environment is
  substituted into the type, exactly like dependent application.  This is
  what synchronizes the (open) closure type with the (closed) code type
  and makes the translation type preserving.

``Code`` formation ([T-Code-⋆]/[T-Code-□]) mirrors Π: impredicative in ⋆,
predicative at □.  Everything else is inherited from CC.
"""

from __future__ import annotations

from repro.cccc.ast import (
    App,
    Bool,
    BoolLit,
    Box,
    Clo,
    CodeLam,
    CodeType,
    Fst,
    If,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Unit,
    UnitVal,
    Var,
    Zero,
    cached_free_vars,
)
from repro.cccc.context import Context
from repro.cccc.equiv import equivalent
from repro.cccc.pretty import pretty
from repro.cccc.reduce import whnf
from repro.cccc.subst import rename, subst1
from repro.common.errors import TypeCheckError
from repro.common.names import fresh

__all__ = ["check", "check_context", "infer", "infer_universe", "well_typed"]


def infer(ctx: Context, term: Term) -> Term:
    """Synthesize the type of ``term`` under ``ctx`` (judgment Γ ⊢ e : t)."""
    match term:
        case Star():
            return Box()
        case Box():
            raise TypeCheckError("□ has no type (it is not a valid term)")
        case Var(name):
            binding = ctx.lookup(name)
            if binding is None:
                raise TypeCheckError(f"unbound variable {name!r}")
            return binding.type_
        case Pi(name, domain, codomain):
            infer_universe(ctx, domain)
            return infer_universe(ctx.extend(name, domain), codomain)
        case CodeType(env_name, env_type, arg_name, arg_type, result):
            infer_universe(ctx, env_type)
            env_ctx = ctx.extend(env_name, env_type)
            infer_universe(env_ctx, arg_type)
            arg_ctx = env_ctx.extend(arg_name, arg_type)
            return infer_universe(arg_ctx, result)  # [T-Code-⋆] / [T-Code-□]
        case CodeLam(env_name, env_type, arg_name, arg_type, body):
            # [Code]: the body checks under the *empty* environment — this
            # is the static closedness guarantee.
            empty = Context.empty()
            stray = cached_free_vars(term)
            if stray:
                raise TypeCheckError(
                    f"code is not closed: free variables {sorted(stray)}"
                ).with_note(f"checking {pretty(term)}")
            infer_universe(empty, env_type)
            env_ctx = empty.extend(env_name, env_type)
            infer_universe(env_ctx, arg_type)
            arg_ctx = env_ctx.extend(arg_name, arg_type)
            result = infer(arg_ctx, body)
            return CodeType(env_name, env_type, arg_name, arg_type, result)
        case Clo(code, env):
            code_type = whnf(ctx, infer(ctx, code))
            if not isinstance(code_type, CodeType):
                raise TypeCheckError(
                    f"closure over non-code of type {pretty(code_type)}"
                ).with_note(f"checking {pretty(term)}")
            check(ctx, env, code_type.env_type)
            # [Clo]: Π x : A[e′/x′]. B[e′/x′].  Rename the argument binder
            # if the environment value happens to mention a variable with
            # the same name (the substitution is under the Π binder).
            arg_name = code_type.arg_name
            arg_type = code_type.arg_type
            result = code_type.result
            if arg_name in cached_free_vars(env):
                renamed = fresh(arg_name)
                result = rename(result, arg_name, renamed)
                arg_name = renamed
            return Pi(
                arg_name,
                subst1(arg_type, code_type.env_name, env),
                subst1(result, code_type.env_name, env),
            )
        case App(fn, arg):
            fn_type = whnf(ctx, infer(ctx, fn))
            if not isinstance(fn_type, Pi):
                raise TypeCheckError(
                    f"application head has non-Π type {pretty(fn_type)}"
                ).with_note(f"checking {pretty(term)}")
            check(ctx, arg, fn_type.domain)
            return subst1(fn_type.codomain, fn_type.name, arg)
        case Let(name, bound, annot, body):
            infer_universe(ctx, annot)
            check(ctx, bound, annot)
            body_type = infer(ctx.define(name, bound, annot), body)
            return subst1(body_type, name, bound)
        case Sigma(name, first, second):
            first_universe = infer_universe(ctx, first)
            second_universe = infer_universe(ctx.extend(name, first), second)
            if isinstance(first_universe, Star) and isinstance(second_universe, Star):
                return Star()
            return Box()
        case Pair(fst_val, snd_val, annot):
            infer_universe(ctx, annot)
            annot_whnf = whnf(ctx, annot)
            if not isinstance(annot_whnf, Sigma):
                raise TypeCheckError(
                    f"pair annotation {pretty(annot)} is not a Σ type"
                ).with_note(f"checking {pretty(term)}")
            check(ctx, fst_val, annot_whnf.first)
            check(ctx, snd_val, subst1(annot_whnf.second, annot_whnf.name, fst_val))
            return annot
        case Fst(pair):
            pair_type = whnf(ctx, infer(ctx, pair))
            if not isinstance(pair_type, Sigma):
                raise TypeCheckError(f"fst of non-Σ type {pretty(pair_type)}").with_note(
                    f"checking {pretty(term)}"
                )
            return pair_type.first
        case Snd(pair):
            pair_type = whnf(ctx, infer(ctx, pair))
            if not isinstance(pair_type, Sigma):
                raise TypeCheckError(f"snd of non-Σ type {pretty(pair_type)}").with_note(
                    f"checking {pretty(term)}"
                )
            return subst1(pair_type.second, pair_type.name, Fst(pair))
        case Unit():
            return Star()
        case UnitVal():
            return Unit()
        case Bool() | Nat():
            return Star()
        case BoolLit():
            return Bool()
        case Zero():
            return Nat()
        case Succ(pred):
            check(ctx, pred, Nat())
            return Nat()
        case If(cond, then_branch, else_branch):
            check(ctx, cond, Bool())
            then_type = infer(ctx, then_branch)
            check(ctx, else_branch, then_type)
            return then_type
        case NatElim(motive, base, step, target):
            _check_motive(ctx, motive)
            check(ctx, target, Nat())
            check(ctx, base, App(motive, Zero()))
            check(ctx, step, _step_type(motive))
            return App(motive, target)
        case _:
            raise TypeCheckError(f"not a CC-CC term: {term!r}")


def _check_motive(ctx: Context, motive: Term) -> None:
    """Require ``motive : Π _:Nat. U`` for some universe ``U``."""
    motive_type = whnf(ctx, infer(ctx, motive))
    if not isinstance(motive_type, Pi):
        raise TypeCheckError(f"natelim motive has non-Π type {pretty(motive_type)}")
    if not equivalent(ctx, motive_type.domain, Nat()):
        raise TypeCheckError(
            f"natelim motive domain {pretty(motive_type.domain)} is not Nat"
        )
    inner = ctx.extend(motive_type.name, Nat())
    codomain = whnf(inner, motive_type.codomain)
    if not isinstance(codomain, (Star, Box)):
        raise TypeCheckError(f"natelim motive codomain {pretty(codomain)} is not a universe")


def _step_type(motive: Term) -> Term:
    """``Π n:Nat. Π ih:(motive n). motive (succ n)`` (a closure type here)."""
    n = fresh("n")
    ih = fresh("ih")
    return Pi(n, Nat(), Pi(ih, App(motive, Var(n)), App(motive, Succ(Var(n)))))


def check(ctx: Context, term: Term, expected: Term) -> None:
    """Check ``Γ ⊢ term : expected`` (inference + [Conv])."""
    actual = infer(ctx, term)
    if not equivalent(ctx, actual, expected):
        raise TypeCheckError(
            f"type mismatch: term {pretty(term)}\n"
            f"  has type      {pretty(actual)}\n"
            f"  but expected  {pretty(expected)}"
        )


def infer_universe(ctx: Context, type_: Term) -> Star | Box:
    """Require ``type_`` to be a type; return its universe (⋆ or □)."""
    sort = whnf(ctx, infer(ctx, type_))
    if isinstance(sort, (Star, Box)):
        return sort
    raise TypeCheckError(f"expected a type but {pretty(type_)} has type {pretty(sort)}")


def well_typed(ctx: Context, term: Term) -> bool:
    """Does ``term`` have *some* type under ``ctx``?"""
    try:
        infer(ctx, term)
    except TypeCheckError:
        return False
    return True


def check_context(ctx: Context) -> None:
    """Check well-formedness ``⊢ Γ``."""
    prefix = Context.empty()
    for binding in ctx:
        infer_universe(prefix, binding.type_)
        if binding.definition is not None:
            check(prefix, binding.definition, binding.type_)
            prefix = prefix.define(binding.name, binding.definition, binding.type_)
        else:
            prefix = prefix.extend(binding.name, binding.type_)
