"""Capture-avoiding substitution and α-equivalence for CC-CC terms.

Identical in spirit to :mod:`repro.cc.subst`; the only new wrinkle is the
two-binder code forms (``CodeLam``/``CodeType``), whose environment binder
scopes over both the argument annotation and the body/result.  That
telescopic scoping is registered declaratively in :mod:`repro.cccc.ast`,
and the shared kernel engines (:mod:`repro.kernel.substitution`,
:mod:`repro.kernel.alpha`) handle it generically — with free-variable
scans served from the kernel's identity-keyed cache.
"""

from __future__ import annotations

from repro.cccc.ast import LANGUAGE, Term, Var
from repro.kernel import alpha as _kernel_alpha
from repro.kernel import substitution as _kernel_subst

__all__ = ["alpha_equal", "rename", "subst", "subst1"]

Substitution = dict[str, Term]


def subst1(term: Term, name: str, replacement: Term) -> Term:
    """The paper's ``e[e'/x]``."""
    return _kernel_subst.subst(LANGUAGE, term, {name: replacement})


def rename(term: Term, old: str, new: str) -> Term:
    """Rename free occurrences of ``old`` to ``new`` (capture-avoiding)."""
    return _kernel_subst.subst(LANGUAGE, term, {old: Var(new)})


def subst(term: Term, mapping: Substitution) -> Term:
    """Apply the parallel substitution ``mapping`` to ``term``."""
    return _kernel_subst.subst(LANGUAGE, term, mapping)


def alpha_equal(left: Term, right: Term) -> bool:
    """Structural equality up to bound names."""
    return _kernel_alpha.alpha_equal(LANGUAGE, left, right)
