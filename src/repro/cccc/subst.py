"""Capture-avoiding substitution and α-equivalence for CC-CC terms.

Identical in spirit to :mod:`repro.cc.subst`; the only new wrinkle is the
two-binder code forms (``CodeLam``/``CodeType``), whose environment binder
scopes over both the argument annotation and the body/result.
"""

from __future__ import annotations

from repro.cccc.ast import (
    App,
    Bool,
    BoolLit,
    Box,
    Clo,
    CodeLam,
    CodeType,
    Fst,
    If,
    Let,
    Nat,
    NatElim,
    Pair,
    Pi,
    Sigma,
    Snd,
    Star,
    Succ,
    Term,
    Unit,
    UnitVal,
    Var,
    Zero,
    free_vars,
)
from repro.common.names import fresh

__all__ = ["alpha_equal", "rename", "subst", "subst1"]

Substitution = dict[str, Term]


def subst1(term: Term, name: str, replacement: Term) -> Term:
    """The paper's ``e[e'/x]``."""
    return subst(term, {name: replacement})


def rename(term: Term, old: str, new: str) -> Term:
    """Rename free occurrences of ``old`` to ``new`` (capture-avoiding)."""
    return subst(term, {old: Var(new)})


def subst(term: Term, mapping: Substitution) -> Term:
    """Apply the parallel substitution ``mapping`` to ``term``."""
    if not mapping:
        return term
    relevant = {k: v for k, v in mapping.items() if k in free_vars(term)}
    if not relevant:
        return term
    capturable: set[str] = set()
    for value in relevant.values():
        capturable |= free_vars(value)
    return _subst(term, relevant, capturable)


def _under_binder(
    name: str, bodies: list[Term], mapping: Substitution, capturable: set[str]
) -> tuple[str, list[Term], Substitution]:
    """Prepare to substitute inside subterms where ``name`` is bound."""
    inner = {k: v for k, v in mapping.items() if k != name}
    if not inner:
        return name, bodies, inner
    if name in capturable:
        renamed = fresh(name)
        bodies = [subst(body, {name: Var(renamed)}) for body in bodies]
        return renamed, bodies, inner
    return name, bodies, inner


def _subst(term: Term, mapping: Substitution, capturable: set[str]) -> Term:
    match term:
        case Var(name):
            return mapping.get(name, term)
        case Star() | Box() | Unit() | UnitVal() | Bool() | BoolLit() | Nat() | Zero():
            return term
        case Pi(name, domain, codomain):
            new_domain = _subst(domain, mapping, capturable)
            name, [codomain], inner = _under_binder(name, [codomain], mapping, capturable)
            new_codomain = _subst(codomain, inner, capturable) if inner else codomain
            return Pi(name, new_domain, new_codomain)
        case CodeType(env_name, env_type, arg_name, arg_type, result):
            new_env_type = _subst(env_type, mapping, capturable)
            env_name, [arg_type, result], inner = _under_binder(
                env_name, [arg_type, result], mapping, capturable
            )
            new_arg_type = _subst(arg_type, inner, capturable) if inner else arg_type
            arg_name, [result], inner2 = _under_binder(arg_name, [result], inner, capturable)
            new_result = _subst(result, inner2, capturable) if inner2 else result
            return CodeType(env_name, new_env_type, arg_name, new_arg_type, new_result)
        case CodeLam(env_name, env_type, arg_name, arg_type, body):
            new_env_type = _subst(env_type, mapping, capturable)
            env_name, [arg_type, body], inner = _under_binder(
                env_name, [arg_type, body], mapping, capturable
            )
            new_arg_type = _subst(arg_type, inner, capturable) if inner else arg_type
            arg_name, [body], inner2 = _under_binder(arg_name, [body], inner, capturable)
            new_body = _subst(body, inner2, capturable) if inner2 else body
            return CodeLam(env_name, new_env_type, arg_name, new_arg_type, new_body)
        case Clo(code, env):
            return Clo(_subst(code, mapping, capturable), _subst(env, mapping, capturable))
        case App(fn, arg):
            return App(_subst(fn, mapping, capturable), _subst(arg, mapping, capturable))
        case Let(name, bound, annot, body):
            new_bound = _subst(bound, mapping, capturable)
            new_annot = _subst(annot, mapping, capturable)
            name, [body], inner = _under_binder(name, [body], mapping, capturable)
            new_body = _subst(body, inner, capturable) if inner else body
            return Let(name, new_bound, new_annot, new_body)
        case Sigma(name, first, second):
            new_first = _subst(first, mapping, capturable)
            name, [second], inner = _under_binder(name, [second], mapping, capturable)
            new_second = _subst(second, inner, capturable) if inner else second
            return Sigma(name, new_first, new_second)
        case Pair(fst_val, snd_val, annot):
            return Pair(
                _subst(fst_val, mapping, capturable),
                _subst(snd_val, mapping, capturable),
                _subst(annot, mapping, capturable),
            )
        case Fst(pair):
            return Fst(_subst(pair, mapping, capturable))
        case Snd(pair):
            return Snd(_subst(pair, mapping, capturable))
        case If(cond, then_branch, else_branch):
            return If(
                _subst(cond, mapping, capturable),
                _subst(then_branch, mapping, capturable),
                _subst(else_branch, mapping, capturable),
            )
        case Succ(pred):
            return Succ(_subst(pred, mapping, capturable))
        case NatElim(motive, base, step, target):
            return NatElim(
                _subst(motive, mapping, capturable),
                _subst(base, mapping, capturable),
                _subst(step, mapping, capturable),
                _subst(target, mapping, capturable),
            )
        case _:
            raise TypeError(f"not a CC-CC term: {term!r}")


# --------------------------------------------------------------------------
# α-equivalence.
# --------------------------------------------------------------------------


def alpha_equal(left: Term, right: Term) -> bool:
    """Structural equality up to bound names."""
    return _alpha(left, right, {}, {}, [0])


def _bind(
    name_l: str, name_r: str, env_l: dict[str, int], env_r: dict[str, int], counter: list[int]
) -> tuple[dict[str, int], dict[str, int]]:
    index = counter[0]
    counter[0] += 1
    new_l = dict(env_l)
    new_r = dict(env_r)
    new_l[name_l] = index
    new_r[name_r] = index
    return new_l, new_r


def _alpha(
    left: Term,
    right: Term,
    env_l: dict[str, int],
    env_r: dict[str, int],
    counter: list[int],
) -> bool:
    match left, right:
        case Var(a), Var(b):
            la, lb = env_l.get(a), env_r.get(b)
            if la is None and lb is None:
                return a == b
            return la is not None and la == lb
        case BoolLit(a), BoolLit(b):
            return a == b
        case Pi(n1, d1, c1), Pi(n2, d2, c2):
            if not _alpha(d1, d2, env_l, env_r, counter):
                return False
            inner_l, inner_r = _bind(n1, n2, env_l, env_r, counter)
            return _alpha(c1, c2, inner_l, inner_r, counter)
        case CodeType(en1, et1, an1, at1, r1), CodeType(en2, et2, an2, at2, r2):
            if not _alpha(et1, et2, env_l, env_r, counter):
                return False
            mid_l, mid_r = _bind(en1, en2, env_l, env_r, counter)
            if not _alpha(at1, at2, mid_l, mid_r, counter):
                return False
            inner_l, inner_r = _bind(an1, an2, mid_l, mid_r, counter)
            return _alpha(r1, r2, inner_l, inner_r, counter)
        case CodeLam(en1, et1, an1, at1, b1), CodeLam(en2, et2, an2, at2, b2):
            if not _alpha(et1, et2, env_l, env_r, counter):
                return False
            mid_l, mid_r = _bind(en1, en2, env_l, env_r, counter)
            if not _alpha(at1, at2, mid_l, mid_r, counter):
                return False
            inner_l, inner_r = _bind(an1, an2, mid_l, mid_r, counter)
            return _alpha(b1, b2, inner_l, inner_r, counter)
        case Clo(c1, e1), Clo(c2, e2):
            return _alpha(c1, c2, env_l, env_r, counter) and _alpha(e1, e2, env_l, env_r, counter)
        case App(f1, a1), App(f2, a2):
            return _alpha(f1, f2, env_l, env_r, counter) and _alpha(a1, a2, env_l, env_r, counter)
        case Let(n1, e1, t1, b1), Let(n2, e2, t2, b2):
            if not (
                _alpha(e1, e2, env_l, env_r, counter) and _alpha(t1, t2, env_l, env_r, counter)
            ):
                return False
            inner_l, inner_r = _bind(n1, n2, env_l, env_r, counter)
            return _alpha(b1, b2, inner_l, inner_r, counter)
        case Sigma(n1, f1, s1), Sigma(n2, f2, s2):
            if not _alpha(f1, f2, env_l, env_r, counter):
                return False
            inner_l, inner_r = _bind(n1, n2, env_l, env_r, counter)
            return _alpha(s1, s2, inner_l, inner_r, counter)
        case Pair(f1, s1, t1), Pair(f2, s2, t2):
            return (
                _alpha(f1, f2, env_l, env_r, counter)
                and _alpha(s1, s2, env_l, env_r, counter)
                and _alpha(t1, t2, env_l, env_r, counter)
            )
        case Fst(p1), Fst(p2):
            return _alpha(p1, p2, env_l, env_r, counter)
        case Snd(p1), Snd(p2):
            return _alpha(p1, p2, env_l, env_r, counter)
        case If(c1, t1, e1), If(c2, t2, e2):
            return (
                _alpha(c1, c2, env_l, env_r, counter)
                and _alpha(t1, t2, env_l, env_r, counter)
                and _alpha(e1, e2, env_l, env_r, counter)
            )
        case Succ(p1), Succ(p2):
            return _alpha(p1, p2, env_l, env_r, counter)
        case NatElim(m1, z1, s1, t1), NatElim(m2, z2, s2, t2):
            return (
                _alpha(m1, m2, env_l, env_r, counter)
                and _alpha(z1, z2, env_l, env_r, counter)
                and _alpha(s1, s2, env_l, env_r, counter)
                and _alpha(t1, t2, env_l, env_r, counter)
            )
        case _:
            return type(left) is type(right) and not _has_fields(left)


def _has_fields(term: Term) -> bool:
    """True if the node carries data (so bare type equality is unsound)."""
    return bool(getattr(term, "__slots__", ()))
