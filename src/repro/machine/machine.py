"""A call-by-value environment machine for hoisted CC-CC programs.

After closure conversion and hoisting, execution needs no substitution at
all: code blocks live in a static table, every activation record holds
exactly *two* bindings (the environment tuple and the argument), and
closures are two-word heap objects (code label + environment pointer).
This machine makes the paper's "statically allocate the code" motivation
executable and lets the benchmarks measure the cost the paper's Section 7
discusses (environment-tuple allocations and projection dereferences).

Type-level expressions can flow through a full-spectrum program at run
time (e.g. ``id Nat 3``); the machine treats them as inert
:class:`MType` values — they are stored in environments and passed as
arguments, but never eliminated.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Union

from repro import cccc
from repro.common.errors import ReproError
from repro.machine.hoist import Program

__all__ = [
    "MachineError",
    "MachineStats",
    "MBool",
    "MClo",
    "MCode",
    "MNat",
    "MPair",
    "MType",
    "MUnit",
    "Value",
    "machine_observation",
    "run",
]


class MachineError(ReproError):
    """The machine reached a state the type system should have ruled out."""


@dataclass
class MachineStats:
    """Cost counters for one program run.

    ``env_allocs``/``max_env_size`` mirror the NbE engine's environment
    discipline (one environment per activation or ``let``), so machine
    benchmarks and :mod:`repro.kernel.nbe` normalization can be compared on
    the same axes: closures allocated, environments allocated, and how wide
    those environments grow.
    """

    steps: int = 0
    closure_allocs: int = 0  # ⟨⟨code, env⟩⟩ objects built
    tuple_allocs: int = 0  # pairs / environment-tuple cells built
    projections: int = 0  # fst/snd dereferences
    code_lookups: int = 0  # static code-table fetches
    max_frame_size: int = 0  # largest activation record (should stay ≤ 2 + table)
    env_allocs: int = 0  # environment dicts built (activation records + lets)
    max_env_size: int = 0  # widest environment ever built


# -- runtime values ----------------------------------------------------------


@dataclass(frozen=True)
class MCode:
    """A code pointer into the static table."""

    label: str


@dataclass(frozen=True)
class MClo:
    """A closure object: code pointer + environment value."""

    code: MCode
    env: "Value"


@dataclass(frozen=True)
class MPair:
    """A heap pair (also the cells of environment tuples)."""

    first: "Value"
    second: "Value"


@dataclass(frozen=True)
class MUnit:
    """The unit value ⟨⟩."""


@dataclass(frozen=True)
class MBool:
    """A boolean."""

    value: bool


@dataclass(frozen=True)
class MNat:
    """A natural number (unary in the calculus, machine-int here)."""

    value: int


@dataclass(frozen=True)
class MType:
    """An inert type value (types are data at run time, never eliminated)."""

    tag: str


Value = Union[MCode, MClo, MPair, MUnit, MBool, MNat, MType]

_TYPE_NODES = (
    cccc.Star,
    cccc.Box,
    cccc.Pi,
    cccc.Sigma,
    cccc.CodeType,
    cccc.Unit,
    cccc.Bool,
    cccc.Nat,
)


@dataclass
class _Machine:
    program: Program
    stats: MachineStats
    code_values: dict[str, MCode] = field(default_factory=dict)
    label_counts: dict[str, int] | None = None

    def lookup_code(self, label: str) -> cccc.CodeLam:
        self.stats.code_lookups += 1
        counts = self.label_counts
        if counts is not None:
            counts[label] = counts.get(label, 0) + 1
        code = self.program.code_table.get(label)
        if code is None:
            raise MachineError(f"unknown code label {label!r}")
        return code

    def eval(self, term: cccc.Term, env: dict[str, Value]) -> Value:
        # Tail positions (let/if bodies, β-entry) iterate instead of
        # recursing, so call depth tracks term depth, not reduction length;
        # genuinely deep *terms* are covered by the stack guard in `run`.
        while True:
            self.stats.steps += 1
            self.stats.max_frame_size = max(self.stats.max_frame_size, len(env))
            match term:
                case cccc.Var(name):
                    if name in env:
                        return env[name]
                    if name in self.program.code_table:
                        return MCode(name)
                    raise MachineError(f"unbound variable at runtime: {name!r}")
                case cccc.Clo(code, env_expr):
                    code_value = self.eval(code, env)
                    if not isinstance(code_value, MCode):
                        raise MachineError("closure over a non-code value")
                    env_value = self.eval(env_expr, env)
                    self.stats.closure_allocs += 1
                    return MClo(code_value, env_value)
                case cccc.App(fn, arg):
                    fn_value = self.eval(fn, env)
                    arg_value = self.eval(arg, env)
                    if not isinstance(fn_value, MClo):
                        raise MachineError(f"application of non-closure {fn_value!r}")
                    self.stats.steps += 1
                    code = self.lookup_code(fn_value.code.label)
                    env = self._frame(code, fn_value.env, arg_value)
                    term = code.body
                    continue
                case cccc.Let(name, bound, _annot, body):
                    bound_value = self.eval(bound, env)
                    inner = dict(env)
                    inner[name] = bound_value
                    self.stats.env_allocs += 1
                    self.stats.max_env_size = max(self.stats.max_env_size, len(inner))
                    term, env = body, inner
                    continue
                case cccc.Pair(fst_val, snd_val, _annot):
                    self.stats.tuple_allocs += 1
                    return MPair(self.eval(fst_val, env), self.eval(snd_val, env))
                case cccc.Fst(pair):
                    self.stats.projections += 1
                    value = self.eval(pair, env)
                    if not isinstance(value, MPair):
                        raise MachineError("fst of a non-pair")
                    return value.first
                case cccc.Snd(pair):
                    self.stats.projections += 1
                    value = self.eval(pair, env)
                    if not isinstance(value, MPair):
                        raise MachineError("snd of a non-pair")
                    return value.second
                case cccc.UnitVal():
                    return MUnit()
                case cccc.BoolLit(value):
                    return MBool(value)
                case cccc.If(cond, then_branch, else_branch):
                    cond_value = self.eval(cond, env)
                    if not isinstance(cond_value, MBool):
                        raise MachineError("if on a non-boolean")
                    term = then_branch if cond_value.value else else_branch
                    continue
                case cccc.Zero():
                    return MNat(0)
                case cccc.Succ(pred):
                    value = self.eval(pred, env)
                    if not isinstance(value, MNat):
                        raise MachineError("succ of a non-number")
                    return MNat(value.value + 1)
                case cccc.NatElim(_motive, base, step, target):
                    target_value = self.eval(target, env)
                    if not isinstance(target_value, MNat):
                        raise MachineError("natelim of a non-number")
                    accumulator = self.eval(base, env)
                    step_value = self.eval(step, env)
                    for index in range(target_value.value):
                        partial = self.apply(step_value, MNat(index))
                        accumulator = self.apply(partial, accumulator)
                    return accumulator
                case cccc.CodeLam():
                    raise MachineError("un-hoisted code literal reached the machine")
                case _ if isinstance(term, _TYPE_NODES):
                    return MType(type(term).__name__)
                case _:
                    raise MachineError(f"cannot evaluate {term!r}")

    def _frame(self, code: cccc.CodeLam, env_value: Value, arg_value: Value) -> dict[str, Value]:
        # The paper's closedness guarantee, realized: the activation
        # record is exactly {environment, argument}.
        frame: dict[str, Value] = {
            code.env_name: env_value,
            code.arg_name: arg_value,
        }
        self.stats.env_allocs += 1
        self.stats.max_env_size = max(self.stats.max_env_size, len(frame))
        return frame

    def apply(self, fn_value: Value, arg_value: Value) -> Value:
        self.stats.steps += 1
        if not isinstance(fn_value, MClo):
            raise MachineError(f"application of non-closure {fn_value!r}")
        code = self.lookup_code(fn_value.code.label)
        return self.eval(code.body, self._frame(code, fn_value.env, arg_value))


#: Programs larger than this run inside a dedicated worker thread with a
#: deep C stack and a raised recursion limit: ``eval``'s remaining
#: recursion (argument positions) is bounded by *term* depth, which for
#: ~10k-node-deep programs exceeds the default interpreter limits.  Size
#: must count the code table too — hoisting moves every deep body out of
#: ``main`` and into it.
_DEEP_TERM_THRESHOLD = 2_000
_DEEP_STACK_BYTES = 256 * 1024 * 1024


def _run_guarded(machine: _Machine, term: cccc.Term, size: int) -> Value:
    """Evaluate in a thread with a deep stack (bump-guarded recursion)."""
    result: list = []
    failure: list = []

    def worker() -> None:
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 4 * size + 10_000))
        try:
            result.append(machine.eval(term, {}))
        except BaseException as error:  # noqa: BLE001 — re-raised in the caller
            failure.append(error)
        finally:
            sys.setrecursionlimit(limit)

    old_size = threading.stack_size(_DEEP_STACK_BYTES)
    try:
        thread = threading.Thread(target=worker, name="repro-machine-deep")
        thread.start()
        thread.join()
    finally:
        threading.stack_size(old_size)
    if failure:
        raise failure[0]
    return result[0]


def run(
    program: Program,
    stats: MachineStats | None = None,
    label_counts: dict[str, int] | None = None,
) -> tuple[Value, MachineStats]:
    """Execute a hoisted program to a value, returning (value, counters).

    Deep programs (main plus code-table bodies past
    ``_DEEP_TERM_THRESHOLD`` nodes) are evaluated under a dedicated
    deep-stack thread so that evaluation depth is bounded by memory, not
    the interpreter's default recursion limit.

    ``label_counts`` (profiling mode) receives per-code-label β-entry
    counts — one increment per ``lookup_code``, so the counts sum to
    ``stats.code_lookups`` exactly.  When None (the default) the hot loop
    pays a single attribute check per β and nothing else.
    """
    if stats is None:
        stats = MachineStats()
    machine = _Machine(program, stats, label_counts=label_counts)
    size = cccc.term_size(program.main) + sum(
        cccc.term_size(code) for code in program.code_table.values()
    )
    if size > _DEEP_TERM_THRESHOLD:
        value = _run_guarded(machine, program.main, size)
    else:
        value = machine.eval(program.main, {})
    return value, stats


def machine_observation(value: Value) -> bool | int | None:
    """The ground observation (Theorem 5.7's ``≈``) of a machine value."""
    if isinstance(value, MBool):
        return value.value
    if isinstance(value, MNat):
        return value.value
    return None
