"""Code hoisting: lift closed code to a top-level, statically allocated table.

Closure conversion's purpose (paper Section 3) is that code becomes
*closed* and can therefore be "lifted to the top-level and statically
allocated".  This pass performs that lift for CC-CC programs: every
:class:`repro.cccc.ast.CodeLam` is replaced by a reference to a label in a
program-wide code table.  Because the [Code] typing rule already
guarantees closedness, hoisting cannot capture anything — which the pass
re-checks defensively.

The hoisted program is still a well-typed CC-CC artifact: the code table
becomes a telescope of *definitions* ``ℓ = λ(x′,x).e : Code …``, and the
main expression type checks under it (see :func:`program_context`).
Identical code bodies are deduplicated by α-invariant structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import cccc
from repro.cccc.context import Context
from repro.common.errors import TranslationError

__all__ = ["Program", "hoist", "program_context"]


@dataclass(frozen=True)
class Program:
    """A hoisted CC-CC program: static code table + main expression."""

    code_table: dict[str, cccc.CodeLam]
    main: cccc.Term

    @property
    def code_count(self) -> int:
        """Number of statically allocated code blocks."""
        return len(self.code_table)

    def __str__(self) -> str:
        lines = []
        for label, code in self.code_table.items():
            lines.append(f"{label} = {cccc.pretty(code)}")
        lines.append(f"main = {cccc.pretty(self.main)}")
        return "\n".join(lines)


@dataclass
class _Hoister:
    table: dict[str, cccc.CodeLam] = field(default_factory=dict)
    counter: int = 0

    def add(self, code: cccc.CodeLam) -> str:
        # Deduplicate α-equivalent code blocks (compiled code differs only
        # in machine-generated environment names).
        for label, existing in self.table.items():
            if cccc.alpha_equal(existing, code):
                return label
        label = f"code${self.counter}"
        self.counter += 1
        self.table[label] = code
        return label


def hoist(term: cccc.Term) -> Program:
    """Lift every code literal in ``term`` into a top-level table."""
    hoister = _Hoister()
    main = _hoist(term, hoister)
    return Program(hoister.table, main)


def _hoist(term: cccc.Term, hoister: _Hoister) -> cccc.Term:
    match term:
        case cccc.CodeLam(env_name, env_type, arg_name, arg_type, body):
            stray = cccc.free_vars(term)
            if stray:
                raise TranslationError(
                    f"cannot hoist open code (free variables {sorted(stray)})"
                )
            hoisted_body = _hoist(body, hoister)
            code = cccc.CodeLam(
                env_name,
                _hoist(env_type, hoister),
                arg_name,
                _hoist(arg_type, hoister),
                hoisted_body,
            )
            return cccc.Var(hoister.add(code))
        case cccc.Var() | cccc.Star() | cccc.Box() | cccc.Unit() | cccc.UnitVal():
            return term
        case cccc.Bool() | cccc.BoolLit() | cccc.Nat() | cccc.Zero():
            return term
        case cccc.Pi(name, domain, codomain):
            return cccc.Pi(name, _hoist(domain, hoister), _hoist(codomain, hoister))
        case cccc.CodeType(env_name, env_type, arg_name, arg_type, result):
            return cccc.CodeType(
                env_name,
                _hoist(env_type, hoister),
                arg_name,
                _hoist(arg_type, hoister),
                _hoist(result, hoister),
            )
        case cccc.Clo(code, env):
            return cccc.Clo(_hoist(code, hoister), _hoist(env, hoister))
        case cccc.App(fn, arg):
            return cccc.App(_hoist(fn, hoister), _hoist(arg, hoister))
        case cccc.Let(name, bound, annot, body):
            return cccc.Let(
                name, _hoist(bound, hoister), _hoist(annot, hoister), _hoist(body, hoister)
            )
        case cccc.Sigma(name, first, second):
            return cccc.Sigma(name, _hoist(first, hoister), _hoist(second, hoister))
        case cccc.Pair(fst_val, snd_val, annot):
            return cccc.Pair(
                _hoist(fst_val, hoister), _hoist(snd_val, hoister), _hoist(annot, hoister)
            )
        case cccc.Fst(pair):
            return cccc.Fst(_hoist(pair, hoister))
        case cccc.Snd(pair):
            return cccc.Snd(_hoist(pair, hoister))
        case cccc.If(cond, then_branch, else_branch):
            return cccc.If(
                _hoist(cond, hoister), _hoist(then_branch, hoister), _hoist(else_branch, hoister)
            )
        case cccc.Succ(pred):
            return cccc.Succ(_hoist(pred, hoister))
        case cccc.NatElim(motive, base, step, target):
            return cccc.NatElim(
                _hoist(motive, hoister),
                _hoist(base, hoister),
                _hoist(step, hoister),
                _hoist(target, hoister),
            )
        case _:
            raise TranslationError(f"not a CC-CC term: {term!r}")


def unhoist(program: Program) -> cccc.Term:
    """Invert :func:`hoist`: substitute code blocks back for their labels.

    Hoisted code bodies may reference *earlier* labels (nested code is
    hoisted innermost-first), so reconstitution walks the table in order,
    closing each entry over the already-reconstituted ones.
    """
    closed: dict[str, cccc.Term] = {}
    for label, code in program.code_table.items():
        closed[label] = cccc.subst(code, closed)
    return cccc.subst(program.main, closed)


def program_context(program: Program) -> Context:
    """The typing context of a hoisted program: each label *defined* as its code.

    Labels in hoisted bodies are references into the static code segment;
    the kernel's [Code] rule demands literal closedness, so each table
    entry is first reconstituted into a fully closed code literal
    (:func:`unhoist` style) and then bound as a *definition*.  Typing
    ``program.main`` under this context re-verifies the whole program
    after hoisting: labels δ-reduce to their code blocks, so the CC-CC
    kernel sees exactly the pre-hoist term.
    """
    ctx = Context.empty()
    closed: dict[str, cccc.Term] = {}
    for label, code in program.code_table.items():
        literal = cccc.subst(code, closed)
        closed[label] = literal
        code_type = cccc.infer(ctx, literal)
        ctx = ctx.define(label, literal, code_type)
    return ctx
