"""Code hoisting: lift closed code to a top-level, statically allocated table.

Closure conversion's purpose (paper Section 3) is that code becomes
*closed* and can therefore be "lifted to the top-level and statically
allocated".  This pass performs that lift for CC-CC programs: every
:class:`repro.cccc.ast.CodeLam` is replaced by a reference to a label in a
program-wide code table.  Because the [Code] typing rule already
guarantees closedness, hoisting cannot capture anything — which the pass
re-checks defensively.

The hoisted program is still a well-typed CC-CC artifact: the code table
becomes a telescope of *definitions* ``ℓ = λ(x′,x).e : Code …``, and the
main expression type checks under it (see :func:`program_context`).
Identical code bodies are deduplicated by α-invariant structure.

The walk is **iterative** (an explicit work stack driven by the CC-CC node
specs, like every other kernel traversal), so closure-converted programs
with ~10k-node spines hoist without touching the Python recursion limit —
the printers and the machine they feed were already stack-safe, and this
pass was the last recursive tree walk in front of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import cccc
from repro.cccc.ast import LANGUAGE
from repro.cccc.context import Context
from repro.common.errors import TranslationError

__all__ = ["Program", "hoist", "program_context"]


@dataclass(frozen=True)
class Program:
    """A hoisted CC-CC program: static code table + main expression."""

    code_table: dict[str, cccc.CodeLam]
    main: cccc.Term

    @property
    def code_count(self) -> int:
        """Number of statically allocated code blocks."""
        return len(self.code_table)

    def __str__(self) -> str:
        lines = []
        for label, code in self.code_table.items():
            lines.append(f"{label} = {cccc.pretty(code)}")
        lines.append(f"main = {cccc.pretty(self.main)}")
        return "\n".join(lines)


@dataclass
class _Hoister:
    table: dict[str, cccc.CodeLam] = field(default_factory=dict)
    counter: int = 0

    def add(self, code: cccc.CodeLam) -> str:
        # Deduplicate α-equivalent code blocks (compiled code differs only
        # in machine-generated environment names).
        for label, existing in self.table.items():
            if cccc.alpha_equal(existing, code):
                return label
        label = f"code${self.counter}"
        self.counter += 1
        self.table[label] = code
        return label


def hoist(term: cccc.Term) -> Program:
    """Lift every code literal in ``term`` into a top-level table."""
    hoister = _Hoister()
    main = _hoist(term, hoister)
    if __debug__:
        _check_earlier_labels(hoister.table)
    return Program(hoister.table, main)


def _check_earlier_labels(table: dict[str, cccc.CodeLam]) -> None:
    """Cheap debug guard on the earlier-labels invariant.

    Every table consumer replays under it (``unhoist``, ``program_context``,
    the machine's lazy code lookup, the backend's staging pass): code
    blocks are closed before hoisting, so a hoisted entry's free variables
    are exactly the labels it references — and innermost-first hoisting
    means those labels were all allocated *before* its own.
    """
    earlier: set[str] = set()
    for label, code in table.items():
        stray = cccc.free_vars(code) - earlier
        if stray:
            raise AssertionError(
                f"hoist invariant broken: block {label!r} references "
                f"non-earlier label(s) {sorted(stray)}"
            )
        earlier.add(label)


def _hoist(root: cccc.Term, hoister: _Hoister) -> cccc.Term:
    """Rebuild ``root`` with every (closed) ``CodeLam`` replaced by a label.

    Iterative post-order over the node specs: a frame is ``(term,
    expanded?)``.  First visit checks code closedness (the [Code] rule's
    guarantee, re-checked defensively) and pushes the children; second
    visit pops their results and rebuilds — sharing the original node when
    no child changed — then swaps a rebuilt ``CodeLam`` for a table label.
    Nested code is hoisted innermost-first, so a hoisted body only ever
    references *earlier* labels — the invariant ``unhoist`` and
    ``program_context`` replay the table under.  (Children are visited in
    field order; the old recursion visited a ``CodeLam``'s body before its
    type annotations, so label *numbering* can differ from pre-iterative
    releases when code sits in a type position — the invariant, not the
    numbering, is the contract.)
    """
    specs = LANGUAGE.specs
    results: list[cccc.Term] = []
    stack: list[tuple[cccc.Term, bool]] = [(root, False)]
    while stack:
        term, expanded = stack.pop()
        spec = specs.get(type(term))
        if spec is None:
            raise TranslationError(f"not a CC-CC term: {term!r}")
        if not expanded:
            if isinstance(term, cccc.CodeLam):
                stray = cccc.free_vars(term)
                if stray:
                    raise TranslationError(
                        f"cannot hoist open code (free variables {sorted(stray)})"
                    )
            if not spec.children:
                results.append(term)
                continue
            stack.append((term, True))
            for child in reversed(spec.children):
                stack.append((getattr(term, child.attr), False))
        else:
            count = len(spec.children)
            values = results[-count:]
            del results[-count:]
            child_iter = iter(values)
            args: list = []
            changed = False
            for attr in spec.field_order:
                if attr in spec.child_attrs:
                    value = next(child_iter)
                    changed = changed or value is not getattr(term, attr)
                    args.append(value)
                else:
                    args.append(getattr(term, attr))
            rebuilt = type(term)(*args) if changed else term
            if isinstance(rebuilt, cccc.CodeLam):
                results.append(cccc.Var(hoister.add(rebuilt)))
            else:
                results.append(rebuilt)
    return results[-1]


def unhoist(program: Program) -> cccc.Term:
    """Invert :func:`hoist`: substitute code blocks back for their labels.

    Hoisted code bodies may reference *earlier* labels (nested code is
    hoisted innermost-first), so reconstitution walks the table in order,
    closing each entry over the already-reconstituted ones.
    """
    closed: dict[str, cccc.Term] = {}
    for label, code in program.code_table.items():
        closed[label] = cccc.subst(code, closed)
    return cccc.subst(program.main, closed)


def program_context(program: Program) -> Context:
    """The typing context of a hoisted program: each label *defined* as its code.

    Labels in hoisted bodies are references into the static code segment;
    the kernel's [Code] rule demands literal closedness, so each table
    entry is first reconstituted into a fully closed code literal
    (:func:`unhoist` style) and then bound as a *definition*.  Typing
    ``program.main`` under this context re-verifies the whole program
    after hoisting: labels δ-reduce to their code blocks, so the CC-CC
    kernel sees exactly the pre-hoist term.
    """
    ctx = Context.empty()
    closed: dict[str, cccc.Term] = {}
    for label, code in program.code_table.items():
        literal = cccc.subst(code, closed)
        closed[label] = literal
        code_type = cccc.infer(ctx, literal)
        ctx = ctx.define(label, literal, code_type)
    return ctx
