"""Hoisting and a CBV machine: the paper's "statically allocated code" story."""

from repro.machine.hoist import Program, hoist, program_context, unhoist
from repro.machine.machine import (
    MachineError,
    MachineStats,
    MBool,
    MClo,
    MCode,
    MNat,
    MPair,
    MType,
    MUnit,
    Value,
    machine_observation,
    run,
)

__all__ = [
    "MBool",
    "MClo",
    "MCode",
    "MNat",
    "MPair",
    "MType",
    "MUnit",
    "MachineError",
    "MachineStats",
    "Program",
    "Value",
    "hoist",
    "machine_observation",
    "program_context",
    "unhoist",
    "run",
]
