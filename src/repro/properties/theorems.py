"""Executable statements of the paper's lemmas and theorems.

Each function decides one metatheoretic property on concrete inputs; the
test suite and benchmark harness quantify them over the hand-written
corpus and the random generator.  Function names cite the paper item they
implement.

A ``True`` result is one checked instance of the theorem; a ``False``
result is a *counterexample* — the tests treat any False as a hard
failure, which is exactly how an implementation bug in the translation or
either kernel would surface.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import cc, cccc
from repro.cc.context import Context as CCContext
from repro.closconv.pipeline import TypePreservationViolation, compile_term
from repro.closconv.translate import translate, translate_context
from repro.common.errors import TypeCheckError
from repro.kernel.budget import Budget
from repro.linking.link import (
    ClosingSubstitution,
    check_substitution,
    link,
    link_target,
    translate_substitution,
)
from repro.model.translate import decompile, decompile_context

__all__ = [
    "GroundObservation",
    "check_coherence",
    "check_compositionality",
    "check_consistency_of_term",
    "check_model_coherence",
    "check_model_compositionality",
    "check_model_reduction_preservation",
    "check_model_type_preservation",
    "check_preservation_of_reduction",
    "check_roundtrip",
    "check_separate_compilation",
    "check_subject_reduction",
    "check_type_preservation",
    "check_type_safety_of_target",
    "ground_observation",
    "is_target_value",
]


# --------------------------------------------------------------------------
# Compiler-side properties (Section 5).
# --------------------------------------------------------------------------


def check_compositionality(
    prefix: CCContext,
    name: str,
    name_type: cc.Term,
    body: cc.Term,
    value: cc.Term,
) -> bool:
    """Lemma 5.1: ``(e1[e2/x])⁺ ≡ e1⁺[e2⁺/x]``.

    ``prefix ⊢ value : name_type`` and ``prefix, name:name_type ⊢ body``.
    The two sides produce closures with different environment shapes (the
    left inlines ``value`` before FV is computed; the right stores ``x`` in
    the environment and substitutes afterwards) — the closure η-principle
    is what makes them definitionally equal.
    """
    extended = prefix.extend(name, name_type)
    left = translate(prefix, cc.subst1(body, name, value))
    right = cccc.subst1(translate(extended, body), name, translate(prefix, value))
    return cccc.equivalent(translate_context(prefix), left, right, Budget())


def check_preservation_of_reduction(ctx: CCContext, term: cc.Term) -> bool:
    """Lemmas 5.2–5.3: every ``e ⊲ e′`` satisfies ``e⁺ ≡ e′⁺`` in CC-CC.

    (The paper proves ``e⁺ ⊲* ẽ ≡ e′⁺``; since CC-CC's ≡ contains ⊲*,
    the checkable consequence is definitional equivalence of the images.)
    """
    target_ctx = translate_context(ctx)
    source_image = translate(ctx, term)
    budget = Budget()  # one fuel pool across the whole reduct fan-out
    for reduct in cc.reducts(ctx, term):
        reduct_image = translate(ctx, reduct)
        if not cccc.equivalent(target_ctx, source_image, reduct_image, budget):
            return False
    return True


def check_coherence(ctx: CCContext, left: cc.Term, right: cc.Term) -> bool:
    """Lemma 5.4: ``e ≡ e′`` implies ``e⁺ ≡ e′⁺``.

    Vacuously true when the inputs are not equivalent in CC.
    """
    budget = Budget()
    if not cc.equivalent(ctx, left, right, budget):
        return True
    target_ctx = translate_context(ctx)
    return cccc.equivalent(target_ctx, translate(ctx, left), translate(ctx, right), budget)


def check_type_preservation(ctx: CCContext, term: cc.Term) -> bool:
    """Theorem 5.6: ``Γ ⊢ e : t`` implies ``Γ⁺ ⊢ e⁺ : t⁺``.

    Runs the CC-CC kernel on the compiled output; the pipeline raises on
    violation, which we surface as False.
    """
    try:
        compile_term(ctx, term, verify=True)
    except TypePreservationViolation:
        return False
    return True


def check_subject_reduction(ctx: CCContext, term: cc.Term) -> bool:
    """CC kernel sanity: every one-step reduct keeps an equivalent type."""
    budget = Budget()
    type_ = cc.infer(ctx, term, budget)
    for reduct in cc.reducts(ctx, term):
        try:
            reduct_type = cc.infer(ctx, reduct, budget)
        except TypeCheckError:
            return False
        if not cc.equivalent(ctx, reduct_type, type_, budget):
            return False
    return True


# --------------------------------------------------------------------------
# Separate compilation (Theorem 5.7, Corollary 5.8).
# --------------------------------------------------------------------------

#: A ground observation: the source and target values at a ground type.
GroundObservation = bool | int | None


def ground_observation(term: cc.Term) -> GroundObservation:
    """The ``≈``-observable content of a normal form at a ground type."""
    if isinstance(term, cc.BoolLit):
        return term.value
    return cc.nat_value(term)


def _target_ground_observation(term: cccc.Term) -> GroundObservation:
    if isinstance(term, cccc.BoolLit):
        return term.value
    return cccc.nat_value(term)


@dataclass(frozen=True)
class SeparateCompilationReport:
    """Evidence produced by one Theorem 5.7 check."""

    source_value: cc.Term
    target_value: cccc.Term
    observation: GroundObservation
    agrees: bool


def check_separate_compilation(
    ctx: CCContext, term: cc.Term, gamma: ClosingSubstitution
) -> SeparateCompilationReport:
    """Theorem 5.7: linking commutes with compilation at ground types.

    ``γ(e) ⊲* v`` in CC and ``γ⁺(e⁺) ⊲* v′`` in CC-CC with ``v⁺ ≈ v′``.
    """
    check_substitution(ctx, gamma)
    # Source side: link then run.
    linked_source = link(ctx, term, gamma)
    source_value = cc.normalize(CCContext.empty(), linked_source)
    # Target side: compile separately, then link with the compiled imports.
    compiled = translate(ctx, term)
    gamma_target = translate_substitution(gamma)
    target_ctx = translate_context(ctx)
    linked_target = link_target(target_ctx, compiled, gamma_target)
    target_value = cccc.normalize(cccc.Context.empty(), linked_target)

    source_obs = ground_observation(source_value)
    target_obs = _target_ground_observation(target_value)
    agrees = source_obs is not None and source_obs == target_obs
    return SeparateCompilationReport(source_value, target_value, target_obs, agrees)


# --------------------------------------------------------------------------
# Model-side properties (Section 4.1).
# --------------------------------------------------------------------------


def check_model_compositionality(term: cccc.Term, name: str, value: cccc.Term) -> bool:
    """Lemma 4.2: ``(e[e′/x])° = e°[e′°/x]`` (syntactic, up to α)."""
    left = decompile(cccc.subst1(term, name, value))
    right = cc.subst1(decompile(term), name, decompile(value))
    return cc.alpha_equal(left, right)


def check_model_reduction_preservation(ctx: cccc.Context, term: cccc.Term) -> bool:
    """Lemmas 4.3–4.4: ``e ⊲ e′`` in CC-CC implies ``e° ⊲* e′°`` in CC.

    Checked as definitional equivalence of the images (which ⊲* implies),
    plus actual multi-step reachability for head steps.
    """
    cc_ctx = decompile_context(ctx)
    image = decompile(term)
    budget = Budget()
    for reduct in cccc.reducts(ctx, term):
        if not cc.equivalent(cc_ctx, image, decompile(reduct), budget):
            return False
    return True


def check_model_coherence(ctx: cccc.Context, left: cccc.Term, right: cccc.Term) -> bool:
    """Lemma 4.5: ``e1 ≡ e2`` in CC-CC implies ``e1° ≡ e2°`` in CC."""
    budget = Budget()
    if not cccc.equivalent(ctx, left, right, budget):
        return True
    cc_ctx = decompile_context(ctx)
    return cc.equivalent(cc_ctx, decompile(left), decompile(right), budget)


def check_model_type_preservation(ctx: cccc.Context, term: cccc.Term) -> bool:
    """Lemma 4.6: ``Γ ⊢ e : A`` in CC-CC implies ``Γ° ⊢ e° : A°`` in CC."""
    budget = Budget()
    type_ = cccc.infer(ctx, term, budget)
    cc_ctx = decompile_context(ctx)
    try:
        image_type = cc.infer(cc_ctx, decompile(term), budget)
    except TypeCheckError:
        return False
    return cc.equivalent(cc_ctx, image_type, decompile(type_), budget)


def check_consistency_of_term(term: cccc.Term) -> bool:
    """Theorem 4.7 (one instance): no closed CC-CC term proves ``False``.

    Returns False — i.e. reports inconsistency — only if ``term`` is a
    closed well-typed proof of ``Π A:⋆. A``.
    """
    empty = cccc.Context.empty()
    if cccc.free_vars(term):
        return True
    try:
        type_ = cccc.infer(empty, term)
    except TypeCheckError:
        return True
    false_type = cccc.Pi("A", cccc.Star(), cccc.Var("A"))
    return not cccc.equivalent(empty, type_, false_type)


def is_target_value(term: cccc.Term) -> bool:
    """Is this closed normal form a value (Theorem 4.8's observable)?"""
    match term:
        case (
            cccc.Star()
            | cccc.Pi()
            | cccc.CodeType()
            | cccc.Sigma()
            | cccc.Unit()
            | cccc.UnitVal()
            | cccc.Bool()
            | cccc.BoolLit()
            | cccc.Nat()
            | cccc.Zero()
            | cccc.CodeLam()
        ):
            return True
        case cccc.Succ(pred):
            return is_target_value(pred)
        case cccc.Clo(code, env):
            return is_target_value(code) and is_target_value(env)
        case cccc.Pair(fst_val, snd_val, _annot):
            return is_target_value(fst_val) and is_target_value(snd_val)
        case _:
            return False


def check_type_safety_of_target(term: cccc.Term) -> bool:
    """Theorem 4.8: a closed well-typed CC-CC term normalizes to a value."""
    empty = cccc.Context.empty()
    cccc.infer(empty, term)  # must be well-typed; raises otherwise
    normal_form = cccc.normalize(empty, term)
    return is_target_value(normal_form)


# --------------------------------------------------------------------------
# The Section 6 round-trip conjecture.
# --------------------------------------------------------------------------


def check_roundtrip(ctx: CCContext, term: cc.Term) -> bool:
    """Section 6 conjecture: ``e ≡ (e⁺)°``.

    Compile to CC-CC, decompile back through the model, and compare with
    the original in CC.
    """
    image = decompile(translate(ctx, term))
    return cc.equivalent(ctx, term, image, Budget())


def check_equivalence_reflection(ctx: CCContext, left: cc.Term, right: cc.Term) -> bool:
    """Section 6's *reflection* direction: ``e1⁺ ≡ e2⁺`` implies ``e1 ≡ e2``.

    The paper derives this from Lemma 4.5 (model coherence) plus the
    round-trip conjecture: if the compiled images are equivalent, their
    decompilations are (4.5), and each decompilation is ≡ to its source
    (the conjecture), so the sources are equivalent.  Vacuously true when
    the images are inequivalent.
    """
    budget = Budget()
    target_ctx = translate_context(ctx)
    if not cccc.equivalent(target_ctx, translate(ctx, left), translate(ctx, right), budget):
        return True
    return cc.equivalent(ctx, left, right, budget)
