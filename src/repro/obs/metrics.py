"""Metrics snapshots for the endpoint's subscribable telemetry stream.

A snapshot is one NDJSON-able dict: the dispatcher's full
:class:`~repro.service.dispatcher.PoolStats` (including per-slot health
and persistent-store counters), the elastic supervisor's scaling signals
(queue depth, completion rate, memo hit rate, watermarks), and — when the
endpoint builds it — endpoint telemetry and per-connection fair-share
queue depths.  Snapshots are telemetry, not results: they ride the wire
as ``{"op": "metrics", ...}`` documents, out-of-band of every job result,
so subscribing cannot perturb payload bytes or drain semantics.
"""

from __future__ import annotations

import time
from typing import Any

__all__ = ["pool_snapshot", "summarize_snapshot"]


def pool_snapshot(dispatcher: Any, supervisor: Any = None) -> dict[str, Any]:
    """One metrics snapshot of a dispatcher (and its supervisor, if any).

    ``at`` is wall-clock (timeline-class data — snapshots are never part
    of any determinism gate).
    """
    snapshot: dict[str, Any] = {
        "at": time.time(),
        "pool": dispatcher.stats().to_dict(),
    }
    if supervisor is not None:
        snapshot["supervisor"] = supervisor.signals()
    return snapshot


def summarize_snapshot(snapshot: dict[str, Any]) -> str:
    """A one-line human summary of a snapshot (pool health at a glance)."""
    pool = snapshot.get("pool", {})
    slots = pool.get("slots", {})
    alive = sum(1 for health in slots.values() if health.get("alive"))
    broken = sum(1 for health in slots.values() if health.get("broken"))
    parts = [
        f"workers {pool.get('active', pool.get('workers', 0))}",
        f"alive {alive}/{len(slots)}" if slots else "alive ?",
        f"pending {pool.get('pending', 0)}",
        f"done {pool.get('completed', 0)}",
        f"failed {pool.get('failed', 0)}",
    ]
    if broken:
        parts.append(f"broken {broken}")
    supervisor = snapshot.get("supervisor")
    if supervisor:
        parts.append(f"rate {supervisor.get('completion_rate', 0.0):.1f}/s")
        memo_rate = supervisor.get("memo_hit_rate")
        if memo_rate is not None:
            parts.append(f"memo {memo_rate:.0%}")
    endpoint = snapshot.get("endpoint")
    if endpoint:
        parts.append(f"conns {endpoint.get('connections', 0)}")
    return " | ".join(parts)
