"""Observability: per-span cost profiling, job tracing, live telemetry.

This package is the unified observability layer the ROADMAP asks for:

- :mod:`repro.obs.profile` — a per-session :class:`Profile` collector that
  attributes fuel, machine/NbE steps, environment allocations, and cache
  hits to *pipeline phases* and *hoisted code labels*, emitting a
  deterministic speedscope-compatible flamegraph document.
- :mod:`repro.obs.trace` — the wire-job trace schema: structured events
  with monotonic ordering, split into a deterministic ``events`` section
  (byte-identical across same-seed chaos runs) and a wall-clock
  ``timeline`` section.
- :mod:`repro.obs.metrics` — snapshot builders and one-line summaries for
  the endpoint's subscribable metrics stream.

Nothing in the default pipeline imports this package: the profile hook is
a single slot check (``repro.api._PROFILE``) owned by the API layer, and
trace/metrics construction is inline dict-building gated on per-job and
per-connection flags.  A process that never profiles never pays more than
those ``None`` checks — and never even imports ``repro.obs``.
"""

from repro.obs.metrics import pool_snapshot, summarize_snapshot
from repro.obs.profile import PHASES, Profile, activate, active
from repro.obs.trace import (
    DETERMINISTIC_EVENTS,
    TIMELINE_EVENTS,
    deterministic_section,
    validate_trace,
)

__all__ = [
    "DETERMINISTIC_EVENTS",
    "PHASES",
    "Profile",
    "TIMELINE_EVENTS",
    "activate",
    "active",
    "deterministic_section",
    "pool_snapshot",
    "summarize_snapshot",
    "validate_trace",
]
