"""The per-session profiling collector and its flamegraph emitter.

A :class:`Profile` attributes cost to *source spans* at two granularities:

- **Pipeline phases** (``parse``, ``typecheck``, ``closconv``, ``verify``,
  ``hoist``, ``normalize``, ``execute``, ``link``): each entrypoint of
  :class:`repro.api.Session` records one phase per budget it spends, so
  the phase weights are the *same numbers* the result objects already
  carry (``check_steps``, ``verify_steps``, ``steps``, ``machine_steps``)
  and reconcile with them exactly — that equality is the acceptance gate.
- **Hoisted code labels**: when a profile is active, the machine counts
  β-entries per code label at its two ``lookup_code`` sites, and the
  compiled backend stages a freshly *instrumented* program whose block
  closures are wrapped with the same per-label counter.  The compiled
  backend's ``app_known`` fast path captures blocks at stage time, so
  wrapping a cached program's table after the fact would miss it — the
  profiled path therefore always stages fresh and never touches the
  artifact caches (in-memory or persistent).

Every weight is a deterministic counter (fuel, machine steps, term
nodes), never wall time, so two profiles of the same program are
byte-identical.  The emitted document is speedscope's ``evented`` format
(https://www.speedscope.app/file-format-schema.json) plus a ``totals``
extension key used by the reconciliation tests.

Activation follows :mod:`repro.service.faults`: one module-level slot,
``None`` outside profiling, checked (not imported) by the API layer::

    from repro import api, obs
    with obs.activate() as profile:
        api.default_session().run("(\\ (x : Nat). succ x) 41")
    document = profile.to_speedscope()
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro import api as _api

__all__ = ["PHASES", "Profile", "activate", "active"]

#: The pipeline phases in their canonical (pipeline) order.
PHASES = (
    "parse",
    "typecheck",
    "closconv",
    "verify",
    "hoist",
    "normalize",
    "execute",
    "link",
)

#: Counter keys that aggregate by maximum, not by sum (high-water marks).
_MAX_KEYS = frozenset({"max_env_size", "max_frame_size"})

_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


class Profile:
    """One profiling run: an ordered list of phase records plus label counts.

    Phase records are appended in execution order; ``totals()`` aggregates
    them per phase.  All fields are deterministic — no timestamps.
    """

    def __init__(self, subject: str = "") -> None:
        self.subject = subject
        self.phases: list[dict[str, Any]] = []
        self.labels: dict[str, int] = {}

    # -- recording (called by the API layer through the hook slot) ----------

    def phase(
        self,
        name: str,
        weight: int = 0,
        counters: dict[str, int] | None = None,
        labels: dict[str, int] | None = None,
    ) -> None:
        """Record one phase: ``weight`` cost units plus named counters.

        ``labels`` (execute phases only) maps hoisted code labels to
        β-entry counts; they become child frames of the phase in the
        flamegraph and accumulate into :attr:`labels`.
        """
        record: dict[str, Any] = {
            "phase": name,
            "weight": int(weight),
            "counters": {k: int(v) for k, v in (counters or {}).items()},
        }
        if labels:
            record["labels"] = {k: int(v) for k, v in labels.items()}
            for label, count in labels.items():
                self.labels[label] = self.labels.get(label, 0) + int(count)
        self.phases.append(record)

    # -- aggregation ---------------------------------------------------------

    def totals(self) -> dict[str, Any]:
        """Per-phase aggregate: summed weights and counters, merged labels.

        The reconciliation contract: ``totals()["typecheck"]["weight"]``
        equals the summed ``check_steps`` of the profiled entrypoints,
        ``execute`` equals the summed ``machine_steps``, and the label
        counts sum to the run's ``code_lookups`` — identical between the
        machine and compiled backends.
        """
        phases: dict[str, dict[str, Any]] = {}
        for record in self.phases:
            total = phases.setdefault(record["phase"], {"weight": 0, "counters": {}})
            total["weight"] += record["weight"]
            counters = total["counters"]
            for key, value in record["counters"].items():
                if key in _MAX_KEYS:
                    counters[key] = max(counters.get(key, 0), value)
                else:
                    counters[key] = counters.get(key, 0) + value
        document: dict[str, Any] = {"phases": phases}
        if self.labels:
            document["labels"] = dict(sorted(self.labels.items()))
        return document

    # -- emission ------------------------------------------------------------

    def to_speedscope(self, name: str | None = None) -> dict[str, Any]:
        """Render the profile as a speedscope ``evented`` document.

        Frames are pipeline phases, with per-label child frames inside
        execute phases; event positions are running totals of the
        deterministic weights (``unit: "none"`` — cost units, not time).
        """
        frames: list[dict[str, str]] = []
        index: dict[str, int] = {}

        def frame(frame_name: str) -> int:
            slot = index.get(frame_name)
            if slot is None:
                slot = index[frame_name] = len(frames)
                frames.append({"name": frame_name})
            return slot

        events: list[dict[str, int | str]] = []
        at = 0
        for record in self.phases:
            phase_frame = frame(record["phase"])
            events.append({"type": "O", "frame": phase_frame, "at": at})
            cursor = at
            for label in sorted(record.get("labels", ())):
                count = record["labels"][label]
                label_frame = frame(f"{record['phase']}:{label}")
                events.append({"type": "O", "frame": label_frame, "at": cursor})
                cursor += count
                events.append({"type": "C", "frame": label_frame, "at": cursor})
            at += record["weight"]
            events.append({"type": "C", "frame": phase_frame, "at": at})
        title = name if name is not None else (self.subject or "repro profile")
        return {
            "$schema": _SCHEMA,
            "exporter": "repro-obs",
            "name": title,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "evented",
                    "name": title,
                    "unit": "none",
                    "startValue": 0,
                    "endValue": at,
                    "events": events,
                }
            ],
            "totals": self.totals(),
        }


def active() -> Profile | None:
    """The in-effect profile, or None — the same object the API layer sees."""
    return _api._PROFILE[0]


@contextmanager
def activate(profile: Profile | None = None) -> Iterator[Profile]:
    """Install ``profile`` (a fresh one by default) for the dynamic extent.

    The slot lives on :mod:`repro.api` so the default pipeline checks it
    without importing this package; activations nest, restoring the
    previous profile on exit.
    """
    installed = profile if profile is not None else Profile()
    slot = _api._PROFILE
    previous = slot[0]
    slot[0] = installed
    try:
        yield installed
    finally:
        slot[0] = previous
