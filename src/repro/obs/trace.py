"""The wire-job trace schema: deterministic events vs. wall-clock timeline.

A traced job (``Job.trace = True``) carries a ``trace`` document in its
result *meta* — never in the deterministic payload, so traced results
remain byte-identical to untraced ones under ``JobResult.canonical()``.
The document has two sections:

- ``events`` — the **deterministic** section: monotonic, ordered records
  whose every field is a pure function of the job stream and the fault
  plan (submit sequence numbers, execution kind, completion ok/attempts).
  Two same-seed chaos runs produce byte-identical ``events`` sections;
  ``benchmarks/bench_e24_obs.py`` gates exactly that.
- ``timeline`` — the **wall-clock** section: anything scheduling- or
  warmth-dependent (dispatch slot assignments, monotonic timestamps,
  requeues of stranded non-culprits, cache-hit deltas).  Free to differ
  run to run; useful for humans, excluded from the determinism gates.

Event kinds, in causal order through the stack::

    submit    {seq}                 dispatcher accepted the job
    execute   {kind}                the executor ran it (solo or worker)
    complete  {ok, attempts}        final disposition, dead letters included

    dispatch  {slot, at}            handed to a worker slot        (timeline)
    requeue   {slot, at}            stranded by a dying worker     (timeline)
    memo      {cache_hits, at}      per-call cache-hit deltas      (timeline)

The builders here are the schema's single source of truth; the service
modules construct the dicts inline (no import on the untraced path) and
the tests validate them against :func:`validate_trace`.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "DETERMINISTIC_EVENTS",
    "TIMELINE_EVENTS",
    "deterministic_section",
    "new_trace",
    "validate_trace",
]

#: Event kinds allowed in the deterministic ``events`` section.
DETERMINISTIC_EVENTS = frozenset({"submit", "execute", "complete"})

#: Event kinds allowed in the wall-clock ``timeline`` section.
TIMELINE_EVENTS = frozenset({"dispatch", "requeue", "memo"})

#: Field names that may carry wall-clock or scheduling values; they are
#: confined to the timeline section.
_WALLCLOCK_FIELDS = frozenset({"at", "slot", "elapsed_seconds", "cache_hits"})


def new_trace() -> dict[str, list]:
    """An empty trace document (both sections present, in schema order)."""
    return {"events": [], "timeline": []}


def deterministic_section(result: Any) -> list[dict[str, Any]] | None:
    """The deterministic ``events`` of a result (object or wire dict).

    Returns None when the result carries no trace — untraced jobs, or
    documents from a pre-trace peer.  This is what the determinism gates
    compare across same-seed runs.
    """
    meta = result.get("meta", {}) if isinstance(result, dict) else result.meta
    trace = (meta or {}).get("trace")
    if trace is None:
        return None
    return trace.get("events", [])


def validate_trace(trace: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``trace`` conforms to the schema.

    Checks section membership, event-kind vocabulary, and that no
    wall-clock field leaked into the deterministic section.
    """
    unknown = set(trace) - {"events", "timeline"}
    if unknown:
        raise ValueError(f"unknown trace sections: {sorted(unknown)}")
    for event in trace.get("events", []):
        kind = event.get("ev")
        if kind not in DETERMINISTIC_EVENTS:
            raise ValueError(f"non-deterministic event kind in events: {kind!r}")
        leaked = set(event) & _WALLCLOCK_FIELDS
        if leaked:
            raise ValueError(
                f"wall-clock field(s) {sorted(leaked)} in deterministic event {kind!r}"
            )
    for entry in trace.get("timeline", []):
        kind = entry.get("ev")
        if kind not in TIMELINE_EVENTS:
            raise ValueError(f"unknown timeline event kind: {kind!r}")
