"""Baselines: untyped closure conversion and the failing ∃-encoding of §3."""

from repro.baseline.existential import classify_failure, translate_existential
from repro.baseline.untyped import EvalStats, erase, uconvert, ueval

__all__ = [
    "EvalStats",
    "classify_failure",
    "erase",
    "translate_existential",
    "uconvert",
    "ueval",
]
