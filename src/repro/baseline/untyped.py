"""Baseline 1: *untyped* (type-erasing) closure conversion.

This is the compiler the paper's introduction argues against: CertiCoq-style
pipelines erase types before compiling, so the output runs correctly but
carries no interface against which linking can be checked.  We reproduce
it to (a) show the operational behaviour of closure conversion independent
of types, and (b) give the benchmarks an untyped cost baseline.

Pipeline::

    CC  --erase-->  U (untyped λ-calculus with pairs/ground data)
        --uconvert-->  U_cc (code + flat environment tuples)
        --ueval-->   value (CBV environment machine with counters)

Types appearing in *term* positions (CC is full-spectrum, so programs pass
types around, e.g. ``id Nat 3``) erase to inert constants: they are
stored and moved but never eliminated at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

from repro import cc
from repro.common.errors import TranslationError

__all__ = [
    "EvalStats",
    "UApp",
    "UBool",
    "UClo",
    "UCode",
    "UConst",
    "UIf",
    "ULam",
    "ULet",
    "UNat",
    "UNatRec",
    "UPair",
    "UProj",
    "USucc",
    "UTuple",
    "UVar",
    "erase",
    "ueval",
    "uconvert",
]


# --------------------------------------------------------------------------
# Untyped syntax.
# --------------------------------------------------------------------------


class UTerm:
    """Base class of untyped terms (both direct and closure-converted)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class UVar(UTerm):
    """Variable."""

    name: str


@dataclass(frozen=True, slots=True)
class ULam(UTerm):
    """First-class function (only before conversion)."""

    name: str
    body: UTerm


@dataclass(frozen=True, slots=True)
class UApp(UTerm):
    """Application."""

    fn: UTerm
    arg: UTerm


@dataclass(frozen=True, slots=True)
class ULet(UTerm):
    """Non-recursive let."""

    name: str
    bound: UTerm
    body: UTerm


@dataclass(frozen=True, slots=True)
class UPair(UTerm):
    """Binary pair (from CC's Σ introductions)."""

    first: UTerm
    second: UTerm


@dataclass(frozen=True, slots=True)
class UProj(UTerm):
    """Projection: index 0 = fst, 1 = snd."""

    pair: UTerm
    index: int


@dataclass(frozen=True, slots=True)
class UConst(UTerm):
    """An inert constant — the erasure of a type or universe."""

    tag: str


@dataclass(frozen=True, slots=True)
class UBool(UTerm):
    """Boolean literal."""

    value: bool


@dataclass(frozen=True, slots=True)
class UIf(UTerm):
    """Conditional."""

    cond: UTerm
    then_branch: UTerm
    else_branch: UTerm


@dataclass(frozen=True, slots=True)
class UNat(UTerm):
    """Natural-number literal."""

    value: int


@dataclass(frozen=True, slots=True)
class USucc(UTerm):
    """Successor."""

    pred: UTerm


@dataclass(frozen=True, slots=True)
class UNatRec(UTerm):
    """Primitive recursion (the erasure of ``natelim``; motive dropped)."""

    base: UTerm
    step: UTerm
    target: UTerm


# Closure-converted forms.


@dataclass(frozen=True, slots=True)
class UCode(UTerm):
    """Closed code taking (environment, argument)."""

    env_name: str
    arg_name: str
    body: UTerm


@dataclass(frozen=True, slots=True)
class UClo(UTerm):
    """Closure: code paired with an environment tuple."""

    code: UTerm
    env: UTerm


@dataclass(frozen=True, slots=True)
class UTuple(UTerm):
    """Flat n-ary environment tuple (indexed by :class:`UIndex`)."""

    items: tuple[UTerm, ...]


@dataclass(frozen=True, slots=True)
class UIndex(UTerm):
    """Indexing into a flat environment tuple."""

    tuple_: UTerm
    index: int


# --------------------------------------------------------------------------
# Erasure CC → U.
# --------------------------------------------------------------------------

_TYPE_NODES = (cc.Star, cc.Box, cc.Pi, cc.Sigma, cc.Bool, cc.Nat)


def erase(term: cc.Term) -> UTerm:
    """Erase types from a CC term.

    Type-level constructs in term position become :class:`UConst`; the
    ``natelim`` motive is dropped entirely.
    """
    match term:
        case cc.Var(name):
            return UVar(name)
        case cc.Lam(name, _domain, body):
            return ULam(name, erase(body))
        case cc.App(fn, arg):
            return UApp(erase(fn), erase(arg))
        case cc.Let(name, bound, _annot, body):
            return ULet(name, erase(bound), erase(body))
        case cc.Pair(fst_val, snd_val, _annot):
            return UPair(erase(fst_val), erase(snd_val))
        case cc.Fst(pair):
            return UProj(erase(pair), 0)
        case cc.Snd(pair):
            return UProj(erase(pair), 1)
        case cc.BoolLit(value):
            return UBool(value)
        case cc.If(cond, then_branch, else_branch):
            return UIf(erase(cond), erase(then_branch), erase(else_branch))
        case cc.Zero():
            return UNat(0)
        case cc.Succ(pred):
            return USucc(erase(pred))
        case cc.NatElim(_motive, base, step, target):
            return UNatRec(erase(base), erase(step), erase(target))
        case _ if isinstance(term, _TYPE_NODES):
            return UConst(type(term).__name__)
        case _:
            raise TranslationError(f"cannot erase {term!r}")


# --------------------------------------------------------------------------
# Untyped closure conversion U → U_cc.
# --------------------------------------------------------------------------


def _ufree(term: UTerm, bound: frozenset[str]) -> set[str]:
    match term:
        case UVar(name):
            return set() if name in bound else {name}
        case ULam(name, body):
            return _ufree(body, bound | {name})
        case UCode(env_name, arg_name, body):
            return _ufree(body, bound | {env_name, arg_name})
        case ULet(name, value, body):
            return _ufree(value, bound) | _ufree(body, bound | {name})
        case UApp(f, a):
            return _ufree(f, bound) | _ufree(a, bound)
        case UPair(f, s):
            return _ufree(f, bound) | _ufree(s, bound)
        case UProj(p, _):
            return _ufree(p, bound)
        case UIf(c, t, e):
            return _ufree(c, bound) | _ufree(t, bound) | _ufree(e, bound)
        case USucc(p):
            return _ufree(p, bound)
        case UNatRec(b, s, t):
            return _ufree(b, bound) | _ufree(s, bound) | _ufree(t, bound)
        case UClo(c, e):
            return _ufree(c, bound) | _ufree(e, bound)
        case UTuple(items):
            out: set[str] = set()
            for item in items:
                out |= _ufree(item, bound)
            return out
        case UIndex(t, _):
            return _ufree(t, bound)
        case _:
            return set()


def uconvert(term: UTerm) -> UTerm:
    """Classic untyped closure conversion with flat environment tuples."""
    match term:
        case ULam(name, body):
            converted_body = uconvert(body)
            free = sorted(_ufree(term, frozenset()))
            env_name = f"env${id(term) % 100000}"
            opened = converted_body
            # Rebind free variables as tuple projections inside the code.
            for index, free_name in reversed(list(enumerate(free))):
                opened = ULet(free_name, UIndex(UVar(env_name), index), opened)
            code = UCode(env_name, name, opened)
            return UClo(code, UTuple(tuple(UVar(free_name) for free_name in free)))
        case UVar() | UConst() | UBool() | UNat():
            return term
        case UApp(f, a):
            return UApp(uconvert(f), uconvert(a))
        case ULet(name, value, body):
            return ULet(name, uconvert(value), uconvert(body))
        case UPair(f, s):
            return UPair(uconvert(f), uconvert(s))
        case UProj(p, i):
            return UProj(uconvert(p), i)
        case UIf(c, t, e):
            return UIf(uconvert(c), uconvert(t), uconvert(e))
        case USucc(p):
            return USucc(uconvert(p))
        case UNatRec(b, s, t):
            return UNatRec(uconvert(b), uconvert(s), uconvert(t))
        case _:
            raise TranslationError(f"cannot closure-convert {term!r}")


# --------------------------------------------------------------------------
# CBV evaluation with cost counters.
# --------------------------------------------------------------------------


@dataclass
class EvalStats:
    """Cost counters for one evaluation."""

    steps: int = 0
    closure_allocs: int = 0
    env_allocs: int = 0
    projections: int = 0


Value = Union[bool, int, tuple, "_VClosure", "_VCode", "_VCloPair", str]


@dataclass
class _VClosure:
    """Runtime value of a first-class λ (pre-conversion): captures its env."""

    name: str
    body: UTerm
    env: dict[str, Value]


@dataclass
class _VCode:
    """Runtime value of closed code (post-conversion): captures nothing."""

    env_name: str
    arg_name: str
    body: UTerm


@dataclass
class _VCloPair:
    """Runtime closure: code value + environment tuple value."""

    code: "_VCode"
    env: Value


def ueval(term: UTerm, stats: EvalStats | None = None) -> Value:
    """Call-by-value evaluation of direct or closure-converted terms."""
    if stats is None:
        stats = EvalStats()
    return _eval(term, {}, stats)


def _eval(term: UTerm, env: dict[str, Value], stats: EvalStats) -> Value:
    stats.steps += 1
    match term:
        case UVar(name):
            if name not in env:
                raise TranslationError(f"unbound variable at runtime: {name}")
            return env[name]
        case UConst(tag):
            return f"<{tag}>"
        case UBool(value):
            return value
        case UNat(value):
            return value
        case USucc(pred):
            result = _eval(pred, env, stats)
            assert isinstance(result, int)
            return result + 1
        case ULam(name, body):
            stats.closure_allocs += 1
            return _VClosure(name, body, dict(env))
        case UCode(env_name, arg_name, body):
            return _VCode(env_name, arg_name, body)
        case UClo(code, env_expr):
            code_value = _eval(code, env, stats)
            env_value = _eval(env_expr, env, stats)
            stats.closure_allocs += 1
            assert isinstance(code_value, _VCode)
            return _VCloPair(code_value, env_value)
        case UTuple(items):
            stats.env_allocs += 1
            return tuple(_eval(item, env, stats) for item in items)
        case UIndex(tuple_, index):
            stats.projections += 1
            value = _eval(tuple_, env, stats)
            assert isinstance(value, tuple)
            return value[index]
        case UApp(fn, arg):
            fn_value = _eval(fn, env, stats)
            arg_value = _eval(arg, env, stats)
            return _apply(fn_value, arg_value, stats)
        case ULet(name, bound, body):
            bound_value = _eval(bound, env, stats)
            inner = dict(env)
            inner[name] = bound_value
            return _eval(body, inner, stats)
        case UPair(first, second):
            stats.env_allocs += 1
            return (_eval(first, env, stats), _eval(second, env, stats))
        case UProj(pair, index):
            stats.projections += 1
            value = _eval(pair, env, stats)
            assert isinstance(value, tuple)
            return value[index]
        case UIf(cond, then_branch, else_branch):
            cond_value = _eval(cond, env, stats)
            return _eval(then_branch if cond_value else else_branch, env, stats)
        case UNatRec(base, step, target):
            count = _eval(target, env, stats)
            assert isinstance(count, int)
            accumulator = _eval(base, env, stats)
            step_value = _eval(step, env, stats)
            for current in range(count):
                partial = _apply(step_value, current, stats)
                accumulator = _apply(partial, accumulator, stats)
            return accumulator
        case _:
            raise TranslationError(f"cannot evaluate {term!r}")


def _apply(fn_value: Value, arg_value: Value, stats: EvalStats) -> Value:
    stats.steps += 1
    if isinstance(fn_value, _VClosure):
        inner = dict(fn_value.env)
        inner[fn_value.name] = arg_value
        return _eval(fn_value.body, inner, stats)
    if isinstance(fn_value, _VCloPair):
        code = fn_value.code
        # The entire point: code runs in an environment of exactly two
        # bindings — its environment tuple and its argument.
        inner: dict[str, Value] = {code.env_name: fn_value.env, code.arg_name: arg_value}
        return _eval(code.body, inner, stats)
    raise TranslationError(f"application of non-function value {fn_value!r}")
